#![warn(missing_docs)]
//! Umbrella crate for the PrivIM reproduction workspace.
//!
//! This crate exists to host the runnable examples in `examples/` and the
//! cross-crate integration tests in `tests/`. The actual library surface
//! lives in the member crates and is re-exported here for convenience:
//!
//! - [`privim`] — the PrivIM framework (pipelines, baselines, training)
//! - [`privim_graph`] — graph core + calibrated dataset generators
//! - [`privim_tensor`] — reverse-mode autodiff engine
//! - [`privim_gnn`] — GCN / GraphSAGE / GAT / GRAT / GIN
//! - [`privim_dp`] — RDP accounting and DP mechanisms
//! - [`privim_sampling`] — Algorithms 1 & 3 and the parameter indicator
//! - [`privim_im`] — diffusion models, CELF and IM heuristics

pub use privim;
pub use privim_dp;
pub use privim_gnn;
pub use privim_graph;
pub use privim_im;
pub use privim_sampling;
pub use privim_tensor;

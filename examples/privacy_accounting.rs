//! A walkthrough of the PrivIM privacy accounting (§II-B, §III-D) with no
//! training involved: sensitivity bounds (Lemmas 1–2), the Theorem 3
//! subsampled-Gaussian RDP curve, the Theorem 1 conversion, and noise
//! calibration — showing exactly why the dual-stage sampler's `M = 4`
//! beats the naive sampler's `N_g = 1111`.
//!
//! ```text
//! cargo run --release --example privacy_accounting
//! ```

use privim_dp::accountant::{
    best_epsilon, calibrate_sigma, rdp_gamma_per_step, rdp_to_dp, PrivacyParams,
};
use privim_dp::sensitivity::{naive_occurrence_bound, node_sensitivity, sampled_occurrence_bound};

fn main() {
    println!("== Lemma 1: occurrence bounds ==");
    let theta = 10u64;
    let r = 3u32;
    let n_g = naive_occurrence_bound(theta, r);
    println!("naive sampler, θ = {theta}, r = {r}:  N_g = Σ θ^i = {n_g}");
    let refined = sampled_occurrence_bound(theta, r, 256.0 / 3_800.0, 1e-6);
    println!("  with q = 256/3800 start sampling (Chernoff, δ_s = 1e-6): {refined}");
    let m = 4u64;
    println!("dual-stage sampler (Algorithm 3):  N_g* = M = {m}");

    println!("\n== Lemma 2: sensitivity at clip bound C = 1 ==");
    println!("naive:      Δ_g = C·N_g  = {}", node_sensitivity(1.0, n_g));
    println!(
        "refined:    Δ_g = C·N_g' = {}",
        node_sensitivity(1.0, refined)
    );
    println!("dual-stage: Δ_g = C·M    = {}", node_sensitivity(1.0, m));

    println!("\n== Theorem 3: per-step RDP γ(α) at σ = 1 ==");
    let dual = PrivacyParams {
        n_g: m,
        batch: 32,
        container: 300,
        steps: 80,
    };
    println!("  α     γ(α) per step");
    for alpha in [2.0, 4.0, 8.0, 16.0, 32.0] {
        println!("  {alpha:<5} {:.6}", rdp_gamma_per_step(alpha, 1.0, &dual));
    }

    println!("\n== Theorem 1: (α, γT)-RDP → (ε, δ)-DP at δ = 1e-4 ==");
    for alpha in [2.0, 8.0, 32.0] {
        let gamma_total = rdp_gamma_per_step(alpha, 1.0, &dual) * dual.steps as f64;
        println!(
            "  α = {alpha:<4}: ε = {:.4}",
            rdp_to_dp(alpha, gamma_total, 1e-4)
        );
    }
    println!(
        "  optimised over the α grid: ε = {:.4}",
        best_epsilon(1.0, 1e-4, &dual)
    );

    println!("\n== Calibration: smallest σ reaching a target ε ==");
    println!("  target ε | σ (M = 4) | σ (N_g' = {refined}) | effective noise ratio");
    for eps in [1.0, 2.0, 4.0, 6.0] {
        let s_dual = calibrate_sigma(eps, 1e-4, &dual);
        let naive_params = PrivacyParams {
            n_g: refined,
            ..dual
        };
        let s_naive = calibrate_sigma(eps, 1e-4, &naive_params);
        let ratio = (s_naive * refined as f64) / (s_dual * m as f64);
        println!("  {eps:<8} | {s_dual:<9.3} | {s_naive:<12.3} | {ratio:.1}x more noise");
    }

    println!(
        "\nThe dual-stage sampler wins not by a smaller multiplier σ but by \
         shrinking the sensitivity Δ_g = C·N_g the multiplier scales — \
         the mechanism behind every utility gap in Figure 5."
    );
}

//! Network monitoring / outbreak detection (§I): place `k` monitors in an
//! email network so that a spreading event (worm, rumour) is observed as
//! widely as possible — the classic CELF application (Leskovec et al.,
//! KDD'07). Here the network's structure is sensitive (who mails whom
//! inside an institution), so monitor placement is computed from a
//! DP-trained model and compared with the exact CELF placement and with
//! future-work diffusion models (LT, SIS from §VII).
//!
//! ```text
//! cargo run --release --example outbreak_detection
//! ```

use privim::pipeline::{run_method, EvalSetup, Method};
use privim_graph::datasets::Dataset;
use privim_im::{lt_spread_estimate, sis_spread_estimate};
use privim_rt::ChaCha8Rng;
use privim_rt::SeedableRng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2024);

    let graph = Dataset::Email.generate_scaled(1.0, &mut rng);
    println!(
        "institution email graph: {} accounts, {} messages-edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    let k = 30;
    let setup = EvalSetup::paper_defaults(&graph, k, &mut rng);
    println!(
        "CELF monitor placement covers {:.0} accounts",
        setup.celf_spread
    );

    // Private placement at a conservative budget.
    let private = run_method(Method::PrivImStar { epsilon: 2.0 }, &setup, 1).unwrap();
    println!(
        "private placement (ε = 2) covers {:.0} accounts ({:.1}% of CELF)",
        private.spread, private.coverage_ratio
    );

    // How well do the same monitors do under richer diffusion dynamics?
    // (§VII lists LT and SIS as future work; the substrate ships both.)
    let wc = graph.clone().with_weighted_cascade();
    let lt_celf = lt_spread_estimate(&wc, &setup.celf_seeds, 300, 5);
    let lt_priv = lt_spread_estimate(&wc, &private.seeds, 300, 5);
    println!(
        "\nLinear Threshold reach:  CELF seeds {lt_celf:.0}, private seeds {lt_priv:.0} \
         ({:.1}%)",
        100.0 * lt_priv / lt_celf.max(1.0)
    );
    let sis_celf = sis_spread_estimate(&wc, &setup.celf_seeds, 0.3, 10, 300, 5);
    let sis_priv = sis_spread_estimate(&wc, &private.seeds, 0.3, 10, 300, 5);
    println!(
        "SIS epidemic reach:      CELF seeds {sis_celf:.0}, private seeds {sis_priv:.0} \
         ({:.1}%)",
        100.0 * sis_priv / sis_celf.max(1.0)
    );

    println!(
        "\nThe private monitors transfer across diffusion models: seeds chosen \
         under the IC objective remain competitive under LT and SIS dynamics."
    );
}

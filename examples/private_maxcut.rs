//! Beyond IM: the §VI generality claim in action — train a node-level
//! differentially private GNN for **Maximum Cut** by swapping only the
//! loss function, reusing the dual-stage sampler, the RDP accountant and
//! DP-SGD unchanged.
//!
//! ```text
//! cargo run --release --example private_maxcut
//! ```

use privim::maxcut::{cut_value, greedy_local_cut, train_maxcut};
use privim::trainer::{DpSgdConfig, NoiseKind, TrainItem};
use privim::LossConfig;
use privim_dp::accountant::{calibrate_sigma, PrivacyParams};
use privim_gnn::{GnnConfig, GnnKind, GnnModel};
use privim_graph::{generators, induced_subgraph};
use privim_rt::ChaCha8Rng;
use privim_rt::SeedableRng;
use privim_sampling::{dual_stage_sampling, DualStageConfig, FreqConfig};

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    // A locally clustered network — the regime where Max-Cut is non-trivial.
    let g = generators::erdos_renyi(600, 2_400, false, &mut rng);
    println!("graph: {} nodes, {} edges", g.num_nodes(), g.num_edges());

    // Module 1: the same dual-stage sampler (M = 4 occurrence budget).
    let scfg = DualStageConfig {
        stage1: FreqConfig {
            subgraph_size: 20,
            return_prob: 0.3,
            decay: 1.0,
            sampling_rate: 1.0,
            walk_len: 150,
            threshold: 4,
        },
        shrink: 2,
        enable_bes: true,
    };
    let out = dual_stage_sampling(&g, &scfg, &mut rng).unwrap();
    let subs: Vec<_> = out
        .container
        .subgraphs
        .iter()
        .map(|s| induced_subgraph(&g, &s.original))
        .collect();
    let items = TrainItem::from_container(&subs);
    println!(
        "sampler: {} subgraphs, max node occurrence {} (bound M = 4)",
        out.container.len(),
        out.container.max_occurrence()
    );

    // Module 2: the same accountant, ε = 3.
    let params = PrivacyParams {
        n_g: 4,
        batch: 16,
        container: out.container.len().max(1) as u64,
        steps: 60,
    };
    let sigma = calibrate_sigma(3.0, 1e-3, &params);
    println!("accountant: σ = {sigma:.3} for (ε = 3, δ = 1e-3)-node-DP");

    // Module 3: DP-SGD with the Max-Cut loss instead of the IM loss.
    let mut model = GnnModel::new(
        GnnConfig {
            kind: GnnKind::Gcn,
            layers: 2,
            hidden: 16,
            in_dim: privim_gnn::FEATURE_DIM,
        },
        &mut rng,
    );
    let cfg = DpSgdConfig {
        batch: 16,
        iters: 60,
        lr: 0.1,
        clip: 1.0,
        sigma,
        occurrence_bound: 4,
        loss: LossConfig::paper_default(), // unused by the Max-Cut loop
        noise: NoiseKind::Gaussian,
        seed: 11,
        tail_average: true,
        weight_decay: 0.01,
        max_recoveries: 8,
        fault: None,
    };
    let side = train_maxcut(&mut model, &items, &g, &cfg, 0.5);

    let private_cut = cut_value(&g, &side);
    let trivial = cut_value(&g, &vec![true; g.num_nodes()]);
    let expected_random = g.num_edges() / 2;
    let local = cut_value(&g, &greedy_local_cut(&g, &side));
    println!("\ncut values:");
    println!("  all-one partition      {trivial}");
    println!("  random expectation     ~{expected_random}");
    println!("  private GNN (ε = 3)    {private_cut}");
    println!("  + greedy local polish  {local}");
    println!(
        "\nSame pipeline, different combinatorial problem — the framework \
         generality §VI claims."
    );
}

//! Quickstart: train a differentially private GNN for influence
//! maximization on a LastFM-like social network, pick 50 seeds, and compare
//! against the CELF ground truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use privim::pipeline::{run_method, EvalSetup, Method};
use privim_graph::datasets::Dataset;
use privim_im::heuristics;
use privim_im::one_step_spread;
use privim_rt::ChaCha8Rng;
use privim_rt::SeedableRng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);

    // 1. A social network. Real SNAP edge lists load via
    //    `privim_graph::io::read_edge_list`; here we synthesise a
    //    LastFM-calibrated graph (10% scale keeps this example fast).
    let graph = Dataset::LastFm.generate_scaled(0.25, &mut rng);
    println!(
        "graph: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // 2. The evaluation setup: 50/50 train split, CELF(50) reference,
    //    indicator-selected subgraph size n and threshold M.
    let setup = EvalSetup::paper_defaults(&graph, 50, &mut rng);
    println!(
        "CELF reference spread: {:.0} (k = {})",
        setup.celf_spread, setup.k
    );
    println!(
        "indicator-selected n = {}, M = {}",
        setup.params.subgraph_size, setup.params.threshold
    );

    // 3. Train PrivIM* with a privacy budget of ε = 3 and select seeds.
    let out = run_method(Method::PrivImStar { epsilon: 3.0 }, &setup, 1).unwrap();
    println!(
        "PrivIM* (ε = 3): spread {:.0} → coverage {:.1}% of CELF \
         (σ = {:.3}, container of {} subgraphs, max node occurrence {})",
        out.spread, out.coverage_ratio, out.sigma, out.container_size, out.max_occurrence
    );

    // 4. Sanity references: random and degree seeds.
    let random = heuristics::random_seeds(&graph, 50, &mut rng);
    let degree = heuristics::degree_top_k(&graph, 50);
    println!(
        "references: random {:.0}, degree {:.0}",
        one_step_spread(&graph, &random) as f64,
        one_step_spread(&graph, &degree) as f64,
    );

    assert!(
        out.coverage_ratio > 50.0,
        "private model should beat random"
    );
    println!("\nfirst ten private seeds: {:?}", &out.seeds[..10]);
}

//! Viral marketing (§I): a company wants to seed a product campaign with
//! the most influential users of a social platform, but the platform must
//! not leak whether any individual user is in the training graph. This
//! example sweeps the privacy budget and shows the privacy-utility
//! trade-off the paper's Figure 5 quantifies, then runs the chosen seed set
//! through full multi-step IC simulations (not just the one-step training
//! objective) to estimate the actual campaign reach.
//!
//! ```text
//! cargo run --release --example viral_marketing
//! ```

use privim::pipeline::{run_method, EvalSetup, Method};
use privim_graph::datasets::Dataset;
use privim_im::ic_spread_estimate;
use privim_rt::ChaCha8Rng;
use privim_rt::SeedableRng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);

    // A Facebook-page-like network with realistic influence probabilities:
    // weighted-cascade weights (w_vu = 1 / in-degree(u)).
    let graph = Dataset::Facebook
        .generate_scaled(0.05, &mut rng)
        .with_weighted_cascade();
    println!(
        "campaign network: {} pages, {} mutual-like edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    let setup = EvalSetup::paper_defaults(&graph, 25, &mut rng);

    println!("\n  ε      | coverage of CELF | est. campaign reach (IC, 500 runs)");
    println!("  -------|------------------|-----------------------------------");
    for eps in [1.0, 2.0, 4.0, 6.0] {
        let out = run_method(Method::PrivImStar { epsilon: eps }, &setup, 1).unwrap();
        // Multi-step IC Monte-Carlo with the weighted-cascade probabilities:
        // the "real" reach a marketer cares about.
        let reach = ic_spread_estimate(&graph, &out.seeds, None, 500, 99);
        println!(
            "  {eps:<6} | {:>15.1}% | {reach:.0} users",
            out.coverage_ratio
        );
    }

    let non_private = run_method(Method::NonPrivate, &setup, 1).unwrap();
    let np_reach = ic_spread_estimate(&graph, &non_private.seeds, None, 500, 99);
    println!(
        "  ∞      | {:>15.1}% | {np_reach:.0} users (no privacy)",
        non_private.coverage_ratio
    );

    println!(
        "\nTakeaway: the campaign keeps most of its reach under a strict \
         node-level DP guarantee — the paper's headline trade-off."
    );
}

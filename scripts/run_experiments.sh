#!/usr/bin/env bash
# Regenerates every table and figure of the paper at CPU-feasible scales
# (see EXPERIMENTS.md for the scale rationale). Results land in results/.
#
# Fault tolerance: every run is recorded as PASSED/FAILED/SKIPPED; a failed
# run never aborts the suite, the summary lists it and the script exits
# non-zero. Completed runs drop a `results/<name>.done` stamp holding the
# exact command line — re-running the script skips them (so an interrupted
# suite resumes where it died), and the `exp_*` binaries additionally resume
# per-cell from their own --out files. Set FORCE=1 to re-run everything.
set -uo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
BIN=target/release
FORCE="${FORCE:-0}"

PASSED=()
FAILED=()
SKIPPED=()

run() {
    local name="$1"; shift
    local stamp="results/$name.done"
    local cmdline="$* --out results/$name.json"
    if [[ "$FORCE" != 1 && -f "$stamp" ]] && [[ "$(cat "$stamp")" == "$cmdline" ]]; then
        echo "=== $name: already done, skipping (FORCE=1 to re-run) ==="
        SKIPPED+=("$name")
        return 0
    fi
    echo "=== $name: $* ==="
    local status=0
    if "$@" --out "results/$name.json" 2>&1 | tee "results/$name.log"; then
        status=0
    else
        status=$?
    fi
    if [[ $status -eq 0 ]]; then
        printf '%s' "$cmdline" > "$stamp"
        PASSED+=("$name")
    else
        rm -f "$stamp"
        FAILED+=("$name (exit $status)")
        echo "!!! $name FAILED with exit $status (continuing)"
    fi
    return 0
}

# Table I — dataset statistics (full published sizes except Friendster).
run table1 $BIN/exp_table1 --scale 1

# Figure 5 + Figure 14 (hepph panel) — influence spread vs ε, all methods.
run fig5_small  $BIN/exp_fig5 --dataset email,bitcoin,lastfm --scale 0.5  --eps 1,4 --reps 1
run fig5_medium $BIN/exp_fig5 --dataset hepph,facebook       --scale 0.2  --eps 1,4 --reps 1
run fig5_gowalla $BIN/exp_fig5 --dataset gowalla             --scale 0.05 --eps 1,4 --reps 1

# Table II — SCS/BES ablation at ε ∈ {1, 4}.
run table2 $BIN/exp_table2 --dataset email,bitcoin,lastfm,hepph,facebook,gowalla \
    --scale 0.25 --reps 1 --eps 4,1

# Figures 6/10 — threshold M sweep (the paper's main-text datasets).
run fig6_m $BIN/exp_fig6_m --dataset facebook,gowalla --scale 0.06 --reps 1

# Figures 7/11 — subgraph size n sweep.
run fig7_n $BIN/exp_fig7_n --dataset lastfm,gowalla --scale 0.15 --reps 1

# Figures 8/12 — indicator vs empirical peaks (ε = 3).
run fig8_indicator $BIN/exp_fig8_indicator --dataset lastfm --scale 0.2 --reps 1

# Figure 15 — indicator at ε ∈ {1, 6} on LastFM.
run fig15_indicator $BIN/exp_fig8_indicator --dataset lastfm --scale 0.2 --reps 1 --eps 1,6

# Figure 9 — five GNN architectures at ε ∈ {2, 5}.
run fig9_gnn $BIN/exp_fig9_gnn --dataset lastfm,facebook --scale 0.2 --reps 1

# Figure 13 — θ sweep for naive PrivIM.
run fig13_theta $BIN/exp_fig13_theta --dataset lastfm --scale 0.2 --reps 1

# Table III — preprocessing vs per-epoch time.
run table3_time $BIN/exp_table3_time --scale 0.15 --reps 1

# Friendster panel of Figure 5 — partitioned large-scale run.
run friendster $BIN/exp_friendster --scale 6 --eps 1,4 --reps 1

# Example 2 — private greedy infeasibility.
run example2 $BIN/exp_example2_naive_greedy --scale 0.25 --reps 3

# Ablations (DESIGN.md §5).
run ablation_mu  $BIN/exp_ablations --which mu  --dataset lastfm --scale 0.2 --reps 1
run ablation_s   $BIN/exp_ablations --which s   --dataset lastfm --scale 0.2 --reps 1
run ablation_tau $BIN/exp_ablations --which tau --dataset lastfm --scale 0.2 --reps 1
run ablation_clipping $BIN/exp_ablations --which clipping --dataset lastfm --scale 0.2 --reps 1
run ablation_accountant $BIN/exp_ablations --which accountant

echo
echo "=== SUITE SUMMARY ==="
echo "passed:  ${#PASSED[@]} (${PASSED[*]:-})"
echo "skipped: ${#SKIPPED[@]} (${SKIPPED[*]:-})"
echo "failed:  ${#FAILED[@]}"
if [[ ${#FAILED[@]} -gt 0 ]]; then
    for f in "${FAILED[@]}"; do echo "  FAILED: $f"; done
    echo "re-run ./scripts/run_experiments.sh to retry only the failed runs"
    exit 1
fi
echo "ALL EXPERIMENTS DONE"

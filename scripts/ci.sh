#!/usr/bin/env bash
# Offline CI gate: the workspace must lint clean (DP accounting,
# determinism, panic-surface, and dependency-policy invariants — see
# DESIGN.md §"Static invariant enforcement"), then build and test with
# crates.io unreachable.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== static analysis (privim-lint)"
# Covers the dependency policy (every Cargo.toml must be path-only) and
# the panic-surface gate that used to be separate script steps.
cargo run -q --offline -p privim-lint -- --workspace

echo "== offline release build (all targets)"
cargo build --release --offline --all-targets

echo "== offline tests (workspace)"
cargo test -q --offline --workspace

echo "== bench smoke (kernel harness + bit-identity assertions, tiny sizes)"
# bench_kernels asserts tiled/parallel kernels match their naive references
# bitwise before timing anything; --smoke proves that in well under a
# second without touching the checked-in BENCH_kernels.json trajectory.
cargo run -q --release --offline -p privim-bench --bin bench_kernels -- --smoke

echo "== fault-injection matrix (divergence recovery under seeded faults)"
for seed in 1 2; do
    echo "-- PRIVIM_FAULT_SEED=$seed"
    PRIVIM_FAULT_SEED=$seed cargo test -q --offline -p privim-repro --test fault_tolerance
done

echo "CI green"

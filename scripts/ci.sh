#!/usr/bin/env bash
# Offline CI gate: the workspace must build and test with crates.io
# unreachable, and no Cargo.toml may reintroduce an external (non-path)
# dependency. See DESIGN.md ("zero-external-dependency policy").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== dependency policy check"
fail=0
for toml in Cargo.toml crates/*/Cargo.toml; do
    # Inside any dependency section, every entry must be a pure path
    # dependency (`name = { path = "..." }`) or a workspace inheritance
    # (`name = { workspace = true }` — the root maps those to paths).
    # Anything with `version`, `git`, or a bare version string is external.
    bad=$(awk '
        /^\[/ { in_deps = ($0 ~ /dependencies/) }
        in_deps && /^[a-zA-Z0-9_-]+[ \t]*=/ {
            if ($0 !~ /path[ \t]*=/ && $0 !~ /workspace[ \t]*=[ \t]*true/)
                print FILENAME ": " $0
        }
    ' "$toml")
    if [ -n "$bad" ]; then
        echo "external dependency found:" >&2
        echo "$bad" >&2
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "FAIL: only path dependencies are allowed (privim-rt replaces crates.io)" >&2
    exit 1
fi
echo "ok: all dependencies are path-only"

echo "== offline release build (all targets)"
cargo build --release --offline --all-targets

echo "== offline tests (workspace)"
cargo test -q --offline --workspace

echo "== panic-surface gate (library code must stay Result-based)"
scripts/panic_gate.sh

echo "== fault-injection matrix (divergence recovery under seeded faults)"
for seed in 1 2; do
    echo "-- PRIVIM_FAULT_SEED=$seed"
    PRIVIM_FAULT_SEED=$seed cargo test -q --offline -p privim-repro --test fault_tolerance
done

echo "CI green"

#!/usr/bin/env bash
# Offline CI gate: the workspace must lint clean (DP accounting,
# determinism, panic-surface, and dependency-policy invariants — see
# DESIGN.md §"Static invariant enforcement"), then build and test with
# crates.io unreachable.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== static analysis (privim-lint, all rules incl. cross-file flow)"
# Covers the dependency policy (every Cargo.toml must be path-only), the
# panic-surface gate, and the v2 flow rules (lock-order, dp-taint,
# unsafe-audit) that analyze the workspace call graph. The run is timed:
# whole-workspace analysis staying interactive (< 15 s wall, lexing +
# parsing + fixpoint included, debug build) is part of the contract —
# a quadratic regression in the resolver should fail CI, not annoy users.
LINT_JSON="results/lint.json"
mkdir -p results
LINT_T0=$(date +%s)
cargo run -q --offline -p privim-lint -- --workspace --json > "$LINT_JSON"
LINT_T1=$(date +%s)
LINT_SECS=$((LINT_T1 - LINT_T0))
if [ "$LINT_SECS" -gt 15 ]; then
    echo "privim-lint took ${LINT_SECS}s (> 15s budget)" >&2
    exit 1
fi
# Schema drift gate: the archived artifact must be v2 with call-graph
# stats; downstream dashboards key on these fields.
grep -q '"version":2' "$LINT_JSON" || { echo "lint.json is not schema v2" >&2; exit 1; }
grep -q '"callgraph"' "$LINT_JSON" || { echo "lint.json lacks callgraph stats" >&2; exit 1; }
grep -q '"rules"' "$LINT_JSON" || { echo "lint.json lacks per-rule counts" >&2; exit 1; }
echo "archived $LINT_JSON (${LINT_SECS}s)"

echo "== lint self-check (the analyzer's own sources must pass its rules)"
cargo run -q --offline -p privim-lint -- --workspace --under crates/lint

echo "== lint audit of the unsafe intrinsics modules (SIMD + aligned pool)"
# The only `unsafe` in the tensor crate lives in the SIMD dispatch layer
# and the 64-byte-aligned allocator. Run the unsafe-audit / panic-surface
# rules scoped to exactly those modules and archive the artifact so a new
# uncommented unsafe block fails CI even if the workspace-wide run above
# is ever relaxed.
cargo run -q --offline -p privim-lint -- --workspace \
    --under crates/tensor/src/simd.rs --json > results/lint-simd.json
cargo run -q --offline -p privim-lint -- --workspace \
    --under crates/tensor/src/pool.rs --json > results/lint-pool.json
echo "archived results/lint-simd.json results/lint-pool.json"

echo "== offline release build (all targets)"
cargo build --release --offline --all-targets

echo "== offline tests (workspace)"
cargo test -q --offline --workspace

echo "== offline tests (workspace, PRIVIM_SIMD=scalar)"
# Every test must pass with SIMD dispatch pinned to the scalar backend.
# Because the lane-accumulator contract (DESIGN.md §14) makes all
# backends bit-identical, this leg catches any kernel that quietly
# diverges from the scalar reference — the determinism suite compares
# the two backends directly, and the rest of the workspace re-runs its
# numeric assertions on the fallback path.
PRIVIM_SIMD=scalar cargo test -q --offline --workspace

echo "== bench smoke (kernel harness + bit-identity assertions, tiny sizes)"
# bench_kernels asserts SIMD/tiled/parallel kernels match their scalar
# and naive references bitwise before timing anything; --smoke proves
# that in well under a second without touching the checked-in
# BENCH_kernels.json trajectory. Run it twice — once with dispatch
# free (auto picks the widest backend the CPU has) and once pinned to
# scalar — so the bit-identity assertions execute under both dispatch
# entry points.
cargo run -q --release --offline -p privim-bench --bin bench_kernels -- --smoke
PRIVIM_SIMD=scalar cargo run -q --release --offline -p privim-bench --bin bench_kernels -- --smoke

echo "== fault-injection matrix (divergence recovery under seeded faults)"
for seed in 1 2; do
    echo "-- PRIVIM_FAULT_SEED=$seed"
    PRIVIM_FAULT_SEED=$seed cargo test -q --offline -p privim-repro --test fault_tolerance
done

echo "== serve smoke (pack a tiny checkpoint bundle, hit every endpoint, drain)"
# `pack --fast` trains a CI-sized model through the real pipeline and
# writes the versioned+checksummed bundle; bench_serve --smoke self-hosts
# the server on an ephemeral port, sends one request per endpoint with
# response assertions, checks /metrics accounting, and asserts the
# shutdown drain completes cleanly.
SERVE_BUNDLE="$(mktemp /tmp/privim-serve-ci-XXXXXX.json)"
CHAOS_BUNDLE="$(mktemp /tmp/privim-chaos-ci-XXXXXX.json)"
trap 'rm -f "$SERVE_BUNDLE" "$CHAOS_BUNDLE" "$CHAOS_BUNDLE.wal"' EXIT
cargo run -q --release --offline -p privim-serve -- pack \
    --out "$SERVE_BUNDLE" --nodes 120 --k 10 --fast
cargo run -q --release --offline -p privim-bench --bin bench_serve -- \
    --smoke --bundle "$SERVE_BUNDLE"

echo "== slowloris + idle-connection gate (reactor reaps abusive connections)"
# slowloris_serve spawns a real privim-serve process with short header and
# idle timeouts, opens a pack of connections that dribble a half-request
# one byte at a time, and exits non-zero unless every one is reaped and
# attributed in /metrics while a healthy keep-alive client keeps getting
# 200s; an idle kept-alive connection must likewise be closed and counted.
cargo run -q --release --offline -p privim-bench --bin slowloris_serve -- \
    --server-bin target/release/privim-serve --bundle "$SERVE_BUNDLE" --smoke

echo "== attack canary (empirical ε lower bound must not exceed accounted ε)"
# Trains canary-scale IN/OUT/shadow models through the real DP-SGD path,
# mounts the membership + topology attacks, and exits non-zero if the
# empirical ε lower bound ever climbs above the accountant's upper bound
# — the ordering a correct DP implementation can never violate.
cargo run -q --release --offline -p privim-attack --bin attack-canary -- \
    --nodes 60 --sigma 1.5 --seed 2024

echo "== budget-ledger gate (exhausted tenant must get 429 + correct gauges)"
# e2e over real TCP: a metered bundle with a tight per-tenant budget is
# driven to exhaustion; the test asserts the 429 + Retry-After refusal,
# tenant isolation, and that /metrics budget gauges match the spend.
cargo test -q --release --offline -p privim-serve --test e2e \
    exhausted_tenant_gets_429_with_retry_after_and_correct_gauges

echo "== WAL I/O fault matrix (journal appends under each injected I/O failure)"
# One leg per privim_rt::fault I/O point. The env plan applies to the
# whole test process, so each leg runs only the env-driven recovery test
# (by name filter) rather than the full suite: it appends through the
# armed fault at a 40% rate with restarts on poison, recovers, and
# asserts no 2xx-acknowledged charge was lost (DESIGN.md §13).
for point in io_short_write io_torn_write io_fsync_fail crash_after_write; do
    echo "-- PRIVIM_FAULT=$point"
    PRIVIM_FAULT=$point PRIVIM_FAULT_RATE=0.4 PRIVIM_FAULT_SEED=11 \
        cargo test -q --release --offline -p privim-serve --test wal \
        env_plan_io_faults_recovery
done

echo "== kill-9 chaos gate (crash-durable ledger across a real process death)"
# chaos_serve drives a real privim-serve process with metered traffic,
# SIGKILLs it mid-flight, restarts it on the same bundle + journal, and
# exits non-zero if any tenant's recovered spend is below what clients
# saw acknowledged with a 2xx — the never-undercharge contract.
cargo run -q --release --offline -p privim-serve -- pack \
    --out "$CHAOS_BUNDLE" --nodes 120 --k 10 --fast --seed 7 \
    --tenant-budget 4 --query-sigma 24
cargo run -q --release --offline -p privim-bench --bin chaos_serve -- \
    --server-bin target/release/privim-serve --bundle "$CHAOS_BUNDLE" --smoke

echo "CI green"

#!/usr/bin/env bash
# Panic-surface gate: library code (crate `src/` trees, excluding `src/bin/`
# CLI entry points, tests, benches and examples) must not grow new
# `unwrap()` / `expect(` / `panic!(` sites. Everything above the first
# `#[cfg(test)]` line of each file is counted and compared against the
# audited baseline in scripts/panic_allowlist.txt.
#
#   scripts/panic_gate.sh          # gate: fail if any file exceeds baseline
#   scripts/panic_gate.sh --print  # emit the current counts (baseline format)
set -euo pipefail
cd "$(dirname "$0")/.."

ALLOWLIST=scripts/panic_allowlist.txt
MODE="${1:-gate}"

count_file() {
    # Strip the embedded test module (everything from the first #[cfg(test)]
    # on), then count panic-capable call sites.
    awk '/^[ \t]*#\[cfg\(test\)\]/ { exit } { print }' "$1" \
        | grep -o -E '\.unwrap\(\)|\.expect\(|panic!\(' | wc -l || true
}

current_counts() {
    for f in $(find crates/*/src -name '*.rs' -not -path '*/src/bin/*' | sort); do
        local n
        n=$(count_file "$f")
        if [ "$n" -gt 0 ]; then
            echo "$f $n"
        fi
    done
}

if [ "$MODE" = "--print" ]; then
    current_counts
    exit 0
fi

if [ ! -f "$ALLOWLIST" ]; then
    echo "missing $ALLOWLIST — generate it with: scripts/panic_gate.sh --print > $ALLOWLIST" >&2
    exit 1
fi

fail=0
while read -r f n; do
    [ -z "$f" ] && continue
    allowed=$(awk -v f="$f" '$1 == f { print $2 }' "$ALLOWLIST")
    allowed="${allowed:-0}"
    if [ "$n" -gt "$allowed" ]; then
        echo "FAIL: $f has $n panic-capable sites (allowlisted: $allowed)" >&2
        echo "      new unwrap()/expect()/panic!() in library code — return" >&2
        echo "      privim_rt::PrivimResult instead, or (for a provably" >&2
        echo "      infallible site) audit it and update $ALLOWLIST" >&2
        fail=1
    fi
done < <(current_counts)

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "ok: no new panic-capable sites in library code"

#!/usr/bin/env bash
# DEPRECATED shim. The grep-based panic gate and its side-car allowlist
# (scripts/panic_allowlist.txt) were replaced by the token-aware
# `panic-surface` rule in privim-lint: audited sites now carry inline
# `// privim-lint: allow(panic, reason = "...")` annotations next to the
# code they excuse. Kept so existing invocations keep gating.
#
#   cargo run -q --offline -p privim-lint -- --rule panic-surface
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--print" ]; then
    echo "panic_gate.sh --print is gone: counts live in privim-lint findings now." >&2
    echo "Run: cargo run -q --offline -p privim-lint -- --rule panic-surface --json" >&2
    exit 2
fi

echo "panic_gate.sh is deprecated; running: privim-lint --rule panic-surface" >&2
exec cargo run -q --offline -p privim-lint -- --rule panic-surface

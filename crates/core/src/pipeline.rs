//! End-to-end method pipelines — one entry point per line of Figure 5.
//!
//! Every learning method follows the three-module PrivIM workflow (Fig. 2):
//! extract subgraphs from the training half of the graph, calibrate noise
//! to the method's occurrence bound, train with DP-SGD, then score the full
//! graph and take the top-`k` nodes as seeds. Non-learning references
//! (CELF, degree, random) skip straight to seed selection.

use crate::baselines::{egn_container, hp_container};
use crate::loss::LossConfig;
use crate::results::MethodOutput;
use crate::trainer::{train_dpgnn, DpSgdConfig, NoiseKind, TrainItem};
use privim_dp::accountant::{calibrate_sigma, PrivacyParams};
use privim_dp::sensitivity::sampled_occurrence_bound;
use privim_gnn::{GnnConfig, GnnKind, GnnModel};
use privim_graph::{induced_subgraph, projection::theta_projection, Graph, NodeId, Subgraph};
use privim_im::{celf_exact, coverage_ratio, heuristics, one_step_spread};
use privim_rt::ChaCha8Rng;
use privim_rt::{PrivimResult, Rng, SeedableRng, SliceRandom};
use privim_sampling::{
    dual_stage_sampling, extract_subgraphs, DualStageConfig, FreqConfig, Indicator,
    IndicatorParams, RwrConfig, SubgraphContainer,
};
use std::time::Instant;

/// Shared pipeline hyperparameters (paper values in §V-A).
#[derive(Clone, Copy, Debug)]
pub struct PipelineParams {
    /// Max in-degree bound θ for the naive projection (10).
    pub theta: usize,
    /// GNN depth `r` = walk hop bound (3).
    pub layers: usize,
    /// Hidden width (32).
    pub hidden: usize,
    /// Subgraph size `n` (indicator-selected per dataset).
    pub subgraph_size: usize,
    /// Frequency threshold `M` (indicator-selected per dataset).
    pub threshold: u32,
    /// BES shrink factor `s` (2).
    pub shrink: usize,
    /// Frequency decay `μ` (1).
    pub decay: f64,
    /// RWR restart probability `τ` (0.3).
    pub return_prob: f64,
    /// Walk length `L` (200).
    pub walk_len: usize,
    /// Expected number of start nodes (q = starts / |V_train|; 256).
    pub expected_starts: usize,
    /// DP-SGD batch size `B` (48 — the paper does not report B; larger
    /// batches improve the per-step signal-to-noise ratio at a modest
    /// subsampling-accounting cost).
    pub batch: usize,
    /// DP-SGD iterations `T` (80).
    pub iters: usize,
    /// Learning rate η (0.005 in the paper; our CPU stack uses 0.05 to
    /// converge in the same iteration budget).
    pub lr: f64,
    /// Clip bound `C` (1).
    pub clip: f64,
    /// DP δ (`< 1/|V_train|`).
    pub delta: f64,
    /// Loss settings (Eq. 5).
    pub loss: LossConfig,
    /// Fraction of nodes used for training subgraph extraction (0.5).
    pub train_fraction: f64,
}

impl PipelineParams {
    /// Paper defaults with `n` and `M` chosen by the §IV-C indicator for a
    /// graph of `num_nodes` nodes.
    pub fn paper_defaults(num_nodes: usize) -> Self {
        let ind = Indicator::for_dataset(IndicatorParams::paper_values(), num_nodes.max(2));
        let (n, m) =
            ind.best_parameters(&[10, 20, 30, 40, 50, 60, 70, 80], &[2, 3, 4, 6, 8, 10, 12]);
        let train_nodes = (num_nodes as f64 * 0.5).max(2.0);
        PipelineParams {
            theta: 10,
            layers: 3,
            hidden: 32,
            subgraph_size: n,
            threshold: m,
            shrink: 2,
            decay: 1.0,
            return_prob: 0.3,
            walk_len: 200,
            expected_starts: 256,
            batch: 48,
            iters: 80,
            lr: 0.1,
            clip: 1.0,
            delta: (0.5 / train_nodes).min(1e-3),
            loss: LossConfig::paper_default(),
            train_fraction: 0.5,
        }
    }

    fn sampling_rate(&self, v_train: usize) -> f64 {
        (self.expected_starts as f64 / v_train.max(1) as f64).min(1.0)
    }

    fn freq_config(&self, v_train: usize) -> FreqConfig {
        FreqConfig {
            subgraph_size: self.subgraph_size,
            return_prob: self.return_prob,
            decay: self.decay,
            sampling_rate: self.sampling_rate(v_train),
            walk_len: self.walk_len,
            threshold: self.threshold,
        }
    }

    fn rwr_config(&self, v_train: usize) -> RwrConfig {
        RwrConfig {
            subgraph_size: self.subgraph_size,
            return_prob: self.return_prob,
            sampling_rate: self.sampling_rate(v_train),
            walk_len: self.walk_len,
            hops: self.layers,
        }
    }
}

/// A dataset instance prepared for evaluation: the full graph, its training
/// half, and the CELF reference spread.
pub struct EvalSetup<'a> {
    /// The full evaluation graph.
    pub graph: &'a Graph,
    /// Training half (induced subgraph on a random 50% of nodes).
    pub train_graph: Subgraph,
    /// Seed-set size `k`.
    pub k: usize,
    /// CELF's spread on the full graph (the coverage-ratio denominator).
    pub celf_spread: f64,
    /// CELF's seed set.
    pub celf_seeds: Vec<NodeId>,
    /// Pipeline hyperparameters.
    pub params: PipelineParams,
}

impl<'a> EvalSetup<'a> {
    /// Build the paper's evaluation setup: random 50/50 node split,
    /// CELF(k) reference, indicator-selected `n` and `M`.
    pub fn paper_defaults(graph: &'a Graph, k: usize, rng: &mut impl Rng) -> Self {
        let params = PipelineParams::paper_defaults(graph.num_nodes());
        Self::with_params(graph, k, params, rng)
    }

    /// Same, with explicit hyperparameters (parameter-study experiments).
    pub fn with_params(
        graph: &'a Graph,
        k: usize,
        params: PipelineParams,
        rng: &mut impl Rng,
    ) -> Self {
        let mut nodes: Vec<NodeId> = graph.nodes().collect();
        nodes.shuffle(rng);
        let n_train = ((graph.num_nodes() as f64 * params.train_fraction) as usize).max(2);
        let train_graph = induced_subgraph(graph, &nodes[..n_train.min(nodes.len())]);
        let celf = celf_exact(graph, k);
        EvalSetup {
            graph,
            train_graph,
            k,
            celf_spread: celf.spread.max(1.0),
            celf_seeds: celf.seeds,
            params,
        }
    }
}

/// The evaluated methods (Figure 5 legend plus reference heuristics).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Method {
    /// Naive PrivIM (§III): θ-projection + Algorithm 1, `N_g = Σθ^i`.
    PrivIm {
        /// Privacy budget ε.
        epsilon: f64,
    },
    /// PrivIM + Stage-1 SCS only (Table II ablation), `N_g = M`.
    PrivImScs {
        /// Privacy budget ε.
        epsilon: f64,
    },
    /// PrivIM* — SCS + BES (§IV), `N_g = M`.
    PrivImStar {
        /// Privacy budget ε.
        epsilon: f64,
    },
    /// PrivIM* with a non-default GNN (Fig. 9).
    PrivImStarWith {
        /// Privacy budget ε.
        epsilon: f64,
        /// Architecture to train.
        kind: GnnKind,
    },
    /// PrivIM* with ε = ∞ (no clipping, no noise).
    NonPrivate,
    /// Erdős-goes-neural with DP-SGD and uniform random subgraphs.
    Egn {
        /// Privacy budget ε.
        epsilon: f64,
    },
    /// HeterPoisson + SML noise, GCN backbone.
    Hp {
        /// Privacy budget ε.
        epsilon: f64,
    },
    /// HP with the GRAT backbone.
    HpGrat {
        /// Privacy budget ε.
        epsilon: f64,
    },
    /// CELF ground truth (non-private, non-learning).
    Celf,
    /// Degree top-k heuristic.
    Degree,
    /// Uniform random seeds.
    Random,
}

impl Method {
    /// Canonical lowercase name.
    pub fn name(&self) -> String {
        match self {
            Method::PrivIm { .. } => "privim".into(),
            Method::PrivImScs { .. } => "privim+scs".into(),
            Method::PrivImStar { .. } => "privim*".into(),
            Method::PrivImStarWith { kind, .. } => format!("privim*:{}", kind.name()),
            Method::NonPrivate => "non-private".into(),
            Method::Egn { .. } => "egn".into(),
            Method::Hp { .. } => "hp".into(),
            Method::HpGrat { .. } => "hp-grat".into(),
            Method::Celf => "celf".into(),
            Method::Degree => "degree".into(),
            Method::Random => "random".into(),
        }
    }

    /// The ε this method was configured with, if private.
    pub fn epsilon(&self) -> Option<f64> {
        match *self {
            Method::PrivIm { epsilon }
            | Method::PrivImScs { epsilon }
            | Method::PrivImStar { epsilon }
            | Method::PrivImStarWith { epsilon, .. }
            | Method::Egn { epsilon }
            | Method::Hp { epsilon }
            | Method::HpGrat { epsilon } => Some(epsilon),
            _ => None,
        }
    }
}

struct PreparedRun {
    container: SubgraphContainer,
    occurrence_bound: u64,
    gnn: GnnKind,
    noise: NoiseKind,
    /// For HP the training graph was θ-capped; scoring still uses the full
    /// graph, so only the container differs.
    preprocess_secs: f64,
    /// HP trains on one Poisson batch per step instead of B subgraphs.
    batch_override: Option<usize>,
    /// HP's per-step subsampled accounting: effective container size
    /// `round(1/rate)` with `n_g = batch = 1`.
    privacy_override: Option<PrivacyParams>,
}

/// Run one method once. `rep` perturbs every RNG so repeated calls give
/// independent replicates (Table II's mean ± std over 5 runs).
///
/// Failures surface as typed errors rather than panics so the experiment
/// runner can isolate and retry a single (dataset, method, ε) cell.
pub fn run_method(method: Method, setup: &EvalSetup<'_>, rep: u64) -> PrivimResult<MethodOutput> {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9e3779b9u64.wrapping_mul(rep + 1));
    Ok(match method {
        Method::Celf => {
            let spread = one_step_spread(setup.graph, &setup.celf_seeds) as f64;
            MethodOutput::non_learning("celf", spread, 100.0, setup.celf_seeds.clone())
        }
        Method::Degree => {
            let seeds = heuristics::degree_top_k(setup.graph, setup.k);
            let spread = one_step_spread(setup.graph, &seeds) as f64;
            let cr = coverage_ratio(spread, setup.celf_spread);
            MethodOutput::non_learning("degree", spread, cr, seeds)
        }
        Method::Random => {
            let seeds = heuristics::random_seeds(setup.graph, setup.k, &mut rng);
            let spread = one_step_spread(setup.graph, &seeds) as f64;
            let cr = coverage_ratio(spread, setup.celf_spread);
            MethodOutput::non_learning("random", spread, cr, seeds)
        }
        _ => run_learning_method(method, setup, &mut rng)?,
    })
}

fn prepare(
    method: Method,
    setup: &EvalSetup<'_>,
    rng: &mut ChaCha8Rng,
) -> PrivimResult<PreparedRun> {
    let p = &setup.params;
    let tg = &setup.train_graph.graph;
    let v_train = tg.num_nodes();
    // privim-lint: allow(wall-clock, reason = "timing-only telemetry: preprocess_secs reporting for Table III, never feeds results")
    let t0 = Instant::now();
    Ok(match method {
        Method::PrivIm { .. } => {
            let projected = theta_projection(tg, p.theta, rng);
            let container = extract_subgraphs(&projected, &p.rwr_config(v_train), rng);
            // High-probability refinement of Lemma 1 under the q-rate start
            // sampling; half of δ pays for the Chernoff failure event (the
            // accounting below calibrates to the other half).
            let q = p.sampling_rate(v_train);
            let refined =
                sampled_occurrence_bound(p.theta as u64, p.layers as u32, q, p.delta * 0.5);
            PreparedRun {
                container,
                occurrence_bound: refined,
                gnn: GnnKind::Grat,
                noise: NoiseKind::Gaussian,
                preprocess_secs: t0.elapsed().as_secs_f64(),
                batch_override: None,
                privacy_override: None,
            }
        }
        Method::PrivImScs { .. } => {
            let cfg = DualStageConfig {
                stage1: p.freq_config(v_train),
                shrink: p.shrink,
                enable_bes: false,
            };
            let out = dual_stage_sampling(tg, &cfg, rng)?;
            PreparedRun {
                container: out.container,
                occurrence_bound: p.threshold as u64,
                gnn: GnnKind::Grat,
                noise: NoiseKind::Gaussian,
                preprocess_secs: t0.elapsed().as_secs_f64(),
                batch_override: None,
                privacy_override: None,
            }
        }
        Method::PrivImStar { .. } | Method::NonPrivate => {
            let cfg = DualStageConfig {
                stage1: p.freq_config(v_train),
                shrink: p.shrink,
                enable_bes: true,
            };
            let out = dual_stage_sampling(tg, &cfg, rng)?;
            PreparedRun {
                container: out.container,
                occurrence_bound: p.threshold as u64,
                gnn: GnnKind::Grat,
                noise: NoiseKind::Gaussian,
                preprocess_secs: t0.elapsed().as_secs_f64(),
                batch_override: None,
                privacy_override: None,
            }
        }
        Method::PrivImStarWith { kind, .. } => {
            let cfg = DualStageConfig {
                stage1: p.freq_config(v_train),
                shrink: p.shrink,
                enable_bes: true,
            };
            let out = dual_stage_sampling(tg, &cfg, rng)?;
            PreparedRun {
                container: out.container,
                occurrence_bound: p.threshold as u64,
                gnn: kind,
                noise: NoiseKind::Gaussian,
                preprocess_secs: t0.elapsed().as_secs_f64(),
                batch_override: None,
                privacy_override: None,
            }
        }
        Method::Egn { .. } => {
            let count = (p.sampling_rate(v_train) * v_train as f64).round() as usize;
            let count = count.max(8);
            let container = egn_container(tg, count, p.subgraph_size.min(v_train / 2).max(2), rng);
            let m = container.len() as u64;
            PreparedRun {
                container,
                // uniform sampling gives no occurrence control: worst case a
                // node is in every subgraph.
                occurrence_bound: m.max(1),
                gnn: GnnKind::Gcn,
                noise: NoiseKind::Gaussian,
                preprocess_secs: t0.elapsed().as_secs_f64(),
                batch_override: None,
                privacy_override: None,
            }
        }
        Method::Hp { .. } | Method::HpGrat { .. } => {
            // HeterPoisson: per-node ego samples over the θ-capped graph,
            // Poisson batches, SML noise. Occurrence bound θ + 1 (own ego
            // plus at most θ neighbours' egos) is enforced by construction.
            let (_, container) = hp_container(tg, p.theta, rng);
            PreparedRun {
                container,
                occurrence_bound: p.theta as u64 + 1,
                gnn: if matches!(method, Method::HpGrat { .. }) {
                    GnnKind::Grat
                } else {
                    GnnKind::Gcn
                },
                noise: NoiseKind::Sml,
                preprocess_secs: t0.elapsed().as_secs_f64(),
                batch_override: None,
                privacy_override: None,
            }
        }
        Method::Celf | Method::Degree | Method::Random => {
            // privim-lint: allow(panic, reason = "run_method dispatches the non-learning baselines before calling prepare; this arm is unreachable by construction")
            unreachable!("handled before prepare")
        }
    })
}

/// Everything the training stage produces, before any seed scoring: the
/// trained model plus the accounting and telemetry that both the
/// evaluation path ([`run_method`]) and the serving export path
/// ([`export_serve_artifact`]) need.
struct TrainedStage {
    model: GnnModel,
    sigma: f64,
    epsilon: Option<f64>,
    batch: usize,
    container_size: usize,
    max_occurrence: u32,
    occurrence_bound: u64,
    preprocess_secs: f64,
    train_secs: f64,
    final_loss: f64,
}

/// A trained model packaged for serving, together with the privacy
/// statement it was trained under. This is what `privim-serve pack`
/// wraps into a checkpoint bundle: under DP, (model, ε, δ, σ, steps) is
/// exactly the releasable artifact — the bundle never includes training
/// subgraphs.
#[derive(Clone, Debug)]
pub struct ServeArtifact {
    /// The trained (privatised) model.
    pub model: GnnModel,
    /// Privacy budget ε the noise was calibrated to (`None` = non-private).
    pub epsilon: Option<f64>,
    /// The δ of the (ε, δ)-DP statement.
    pub delta: f64,
    /// Calibrated Gaussian noise multiplier σ.
    pub sigma: f64,
    /// DP-SGD steps taken (accountant state: σ and steps pin the spend).
    pub steps: usize,
}

/// Train a model with `method` and export it for serving, without running
/// the evaluation-side seed scoring. Same training path as [`run_method`]
/// (a unit test pins the equivalence), so the ε/δ/σ accounting in the
/// returned artifact is exactly what the experiments report.
pub fn export_serve_artifact(
    method: Method,
    setup: &EvalSetup<'_>,
    rep: u64,
) -> PrivimResult<ServeArtifact> {
    if method.epsilon().is_none() && !matches!(method, Method::NonPrivate) {
        return Err(privim_rt::PrivimError::invalid(format!(
            "method {} does not train a model; nothing to serve",
            method.name()
        )));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(0x9e3779b9u64.wrapping_mul(rep + 1));
    let stage = train_stage(method, setup, &mut rng)?;
    Ok(ServeArtifact {
        model: stage.model,
        epsilon: stage.epsilon,
        delta: setup.params.delta,
        sigma: stage.sigma,
        steps: setup.params.iters,
    })
}

fn train_stage(
    method: Method,
    setup: &EvalSetup<'_>,
    rng: &mut ChaCha8Rng,
) -> PrivimResult<TrainedStage> {
    let p = &setup.params;
    let mut prep = prepare(method, setup, rng)?;
    if prep.container.is_empty() {
        // Degenerate graphs (too small / too sparse for the walk length):
        // fall back to a single subgraph over the whole training graph so
        // the pipeline stays total.
        let all: Vec<NodeId> = setup.train_graph.graph.nodes().collect();
        prep.container = SubgraphContainer::from_node_sets(&setup.train_graph.graph, &[all]);
        prep.occurrence_bound = prep.occurrence_bound.max(1);
    }

    // Tensor prep is part of preprocessing (Table III).
    // privim-lint: allow(wall-clock, reason = "timing-only telemetry: preprocess_secs reporting for Table III, never feeds results")
    let t_prep = Instant::now();
    let items = TrainItem::from_container(&prep.container.subgraphs);
    let preprocess_secs = prep.preprocess_secs + t_prep.elapsed().as_secs_f64();

    // Privacy accounting: calibrate σ to the requested ε.
    let batch = prep.batch_override.unwrap_or(p.batch);
    let (sigma, epsilon) = match method.epsilon() {
        Some(eps) => {
            let params = prep.privacy_override.unwrap_or(PrivacyParams {
                n_g: prep.occurrence_bound.max(1),
                batch: batch as u64,
                container: prep.container.len().max(1) as u64,
                steps: p.iters as u64,
            });
            // the naive pipeline spends half its δ on the Lemma 1
            // refinement's failure probability
            let delta = if matches!(method, Method::PrivIm { .. }) {
                p.delta * 0.5
            } else {
                p.delta
            };
            let mut sigma = calibrate_sigma(eps, delta, &params);
            // The SML mechanism's Rényi divergence is strictly worse than a
            // Gaussian of equal scale (the Exp(1) radial mixture fattens the
            // tails); following the HP paper's own constants we charge a 2×
            // scale penalty to reach the same budget.
            if prep.noise == NoiseKind::Sml {
                sigma *= 2.0;
            }
            (sigma, Some(eps))
        }
        None => (0.0, None),
    };

    // Train.
    let mut model_rng = ChaCha8Rng::seed_from_u64(rng.gen());
    let mut model = GnnModel::new(
        GnnConfig {
            kind: prep.gnn,
            layers: p.layers,
            hidden: p.hidden,
            in_dim: privim_gnn::FEATURE_DIM,
        },
        &mut model_rng,
    );
    let train_cfg = DpSgdConfig {
        batch,
        iters: p.iters,
        lr: p.lr,
        clip: p.clip,
        sigma,
        occurrence_bound: prep.occurrence_bound,
        loss: p.loss,
        noise: prep.noise,
        seed: rng.gen(),
        tail_average: true,
        weight_decay: 0.01,
        max_recoveries: 8,
        fault: None,
    };
    // privim-lint: allow(wall-clock, reason = "timing-only telemetry: train_secs reporting for Table III, never feeds results")
    let t_train = Instant::now();
    let report = train_dpgnn(&mut model, &items, &train_cfg)?;
    let train_secs = t_train.elapsed().as_secs_f64();

    Ok(TrainedStage {
        model,
        sigma,
        epsilon,
        batch,
        container_size: prep.container.len(),
        max_occurrence: prep.container.max_occurrence(),
        occurrence_bound: prep.occurrence_bound,
        preprocess_secs,
        train_secs,
        final_loss: report.loss_trace.last().copied().unwrap_or(f64::NAN),
    })
}

fn run_learning_method(
    method: Method,
    setup: &EvalSetup<'_>,
    rng: &mut ChaCha8Rng,
) -> PrivimResult<MethodOutput> {
    let p = &setup.params;
    let stage = train_stage(method, setup, rng)?;

    // Seed selection on the full graph + evaluation.
    let scores = stage.model.score_graph(setup.graph);
    let seeds = heuristics::score_top_k(&scores, setup.k);
    let spread = one_step_spread(setup.graph, &seeds) as f64;
    let cr = coverage_ratio(spread, setup.celf_spread);

    let iters_per_epoch = (stage.container_size as f64 / stage.batch as f64).max(1.0);
    Ok(MethodOutput {
        method: method.name(),
        spread,
        coverage_ratio: cr,
        epsilon: stage.epsilon,
        sigma: stage.sigma,
        container_size: stage.container_size,
        max_occurrence: stage.max_occurrence,
        occurrence_bound: stage.occurrence_bound,
        preprocess_secs: stage.preprocess_secs,
        train_secs: stage.train_secs,
        per_epoch_secs: stage.train_secs / p.iters as f64 * iters_per_epoch,
        train_iters: p.iters,
        seeds,
        final_loss: stage.final_loss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_graph::generators;

    fn small_setup(rng: &mut ChaCha8Rng) -> (Graph, PipelineParams) {
        let g = generators::barabasi_albert(250, 4, rng).with_uniform_weights(1.0);
        let mut p = PipelineParams::paper_defaults(g.num_nodes());
        // shrink the budget so tests stay fast
        p.iters = 10;
        p.batch = 4;
        p.hidden = 8;
        p.layers = 2;
        p.subgraph_size = 10;
        p.walk_len = 80;
        (g, p)
    }

    #[test]
    fn celf_reference_is_100_percent() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let (g, p) = small_setup(&mut rng);
        let setup = EvalSetup::with_params(&g, 10, p, &mut rng);
        let out = run_method(Method::Celf, &setup, 1).unwrap();
        assert_eq!(out.coverage_ratio, 100.0);
        assert_eq!(out.seeds.len(), 10);
    }

    #[test]
    fn every_learning_method_runs_end_to_end() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let (g, p) = small_setup(&mut rng);
        let setup = EvalSetup::with_params(&g, 10, p, &mut rng);
        for m in [
            Method::PrivIm { epsilon: 4.0 },
            Method::PrivImScs { epsilon: 4.0 },
            Method::PrivImStar { epsilon: 4.0 },
            Method::NonPrivate,
            Method::Egn { epsilon: 4.0 },
            Method::Hp { epsilon: 4.0 },
            Method::HpGrat { epsilon: 4.0 },
        ] {
            let out = run_method(m, &setup, 1).unwrap();
            assert_eq!(out.seeds.len(), 10, "{}", out.method);
            assert!(out.spread >= 10.0, "{}: spread {}", out.method, out.spread);
            assert!(out.coverage_ratio > 0.0);
            if m.epsilon().is_some() {
                assert!(out.sigma > 0.0, "{}: sigma not calibrated", out.method);
            } else {
                assert_eq!(out.sigma, 0.0);
            }
        }
    }

    #[test]
    fn dual_stage_bounds_occurrences_but_naive_bound_is_huge() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (g, p) = small_setup(&mut rng);
        let threshold = p.threshold;
        let setup = EvalSetup::with_params(&g, 10, p, &mut rng);
        let star = run_method(Method::PrivImStar { epsilon: 4.0 }, &setup, 1).unwrap();
        assert!(star.max_occurrence <= threshold);
        assert_eq!(star.occurrence_bound, threshold as u64);
        let naive = run_method(Method::PrivIm { epsilon: 4.0 }, &setup, 1).unwrap();
        // layers = 2, θ = 10 ⇒ N_g = 1 + 10 + 100 (Lemma 1)
        assert_eq!(naive.occurrence_bound, 111);
        assert!(naive.occurrence_bound >= 9 * star.occurrence_bound);
        // the effective noise std σ·C·N_g must be far larger for the naive
        // pipeline at the same ε
        let noise_naive = naive.sigma * naive.occurrence_bound as f64;
        let noise_star = star.sigma * star.occurrence_bound as f64;
        assert!(
            noise_naive > 3.0 * noise_star,
            "naive noise {noise_naive} vs star {noise_star}"
        );
    }

    #[test]
    fn non_private_beats_heavy_noise_egn() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let (g, mut p) = small_setup(&mut rng);
        p.iters = 30; // enough budget for the non-private model to learn
        let setup = EvalSetup::with_params(&g, 10, p, &mut rng);
        let avg = |m: Method| -> f64 {
            (0..5).map(|r| run_method(m, &setup, r).unwrap().spread).sum::<f64>() / 5.0
        };
        let np = avg(Method::NonPrivate);
        let egn = avg(Method::Egn { epsilon: 1.0 });
        assert!(
            np >= 0.95 * egn,
            "non-private {np} should not trail egn {egn}"
        );
        // EGN's uncontrolled occurrences force vastly more effective noise
        // than PrivIM* at the same ε — the deterministic part of the claim.
        let star = run_method(Method::PrivImStar { epsilon: 1.0 }, &setup, 0).unwrap();
        let egn_run = run_method(Method::Egn { epsilon: 1.0 }, &setup, 0).unwrap();
        let noise_egn = egn_run.sigma * egn_run.occurrence_bound as f64;
        let noise_star = star.sigma * star.occurrence_bound as f64;
        assert!(
            noise_egn > 3.0 * noise_star,
            "egn noise {noise_egn} vs star {noise_star}"
        );
    }

    #[test]
    fn replicates_differ_private_methods() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let (g, p) = small_setup(&mut rng);
        let setup = EvalSetup::with_params(&g, 10, p, &mut rng);
        let a = run_method(Method::PrivImStar { epsilon: 2.0 }, &setup, 1).unwrap();
        let b = run_method(Method::PrivImStar { epsilon: 2.0 }, &setup, 2).unwrap();
        // different noise draws -> (almost surely) different seed sets
        assert!(a.seeds != b.seeds || a.spread == b.spread);
    }

    #[test]
    fn serve_artifact_matches_run_method_exactly() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let (g, p) = small_setup(&mut rng);
        let setup = EvalSetup::with_params(&g, 10, p, &mut rng);
        let m = Method::PrivImStar { epsilon: 4.0 };
        let out = run_method(m, &setup, 1).unwrap();
        let art = export_serve_artifact(m, &setup, 1).unwrap();
        // Identical rep ⇒ identical RNG stream ⇒ bit-identical model: the
        // served model must score the graph to the same seed set.
        let scores = art.model.score_graph(&g);
        let seeds = heuristics::score_top_k(&scores, setup.k);
        assert_eq!(seeds, out.seeds);
        assert_eq!(art.sigma, out.sigma);
        assert_eq!(art.epsilon, Some(4.0));
        assert_eq!(art.delta, setup.params.delta);
        assert_eq!(art.steps, setup.params.iters);
    }

    #[test]
    fn serve_artifact_rejects_non_learning_methods() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let (g, p) = small_setup(&mut rng);
        let setup = EvalSetup::with_params(&g, 10, p, &mut rng);
        for m in [Method::Celf, Method::Degree, Method::Random] {
            let err = export_serve_artifact(m, &setup, 0).unwrap_err();
            assert!(
                matches!(err, privim_rt::PrivimError::InvalidInput(_)),
                "{m:?}: {err:?}"
            );
        }
    }

    #[test]
    fn method_names_and_epsilons() {
        assert_eq!(Method::PrivImStar { epsilon: 2.0 }.name(), "privim*");
        assert_eq!(
            Method::PrivImStarWith {
                epsilon: 2.0,
                kind: GnnKind::Gin
            }
            .name(),
            "privim*:gin"
        );
        assert_eq!(Method::NonPrivate.epsilon(), None);
        assert_eq!(Method::Hp { epsilon: 3.0 }.epsilon(), Some(3.0));
    }
}

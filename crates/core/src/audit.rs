//! Empirical privacy auditing via membership inference.
//!
//! DP guarantees are worst-case; an *audit* asks what an actual adversary
//! achieves. The classic per-sample attack adapted to PrivIM's unit of
//! privacy (a node): train a model on a graph containing a target node,
//! and one on the graph with that node removed, then test whether the
//! models' outputs let an attacker tell which world they are in. Under
//! `(ε, δ)`-DP the advantage of *any* attacker is bounded by
//! `(e^ε − 1 + 2δ) / (e^ε + 1)`; a sound implementation must stay under
//! it, and a useful one should show non-private training leaking more
//! than private training.
//!
//! The attack statistic is the standard loss/score threshold: the target
//! node's predicted seed probability responds to the node's own presence
//! during training (its subgraphs existed or not). We aggregate over many
//! target nodes and report the attack's advantage (TPR − FPR at the best
//! threshold).

use crate::loss::LossConfig;
use crate::trainer::{train_dpgnn, DpSgdConfig, NoiseKind, TrainItem};
use privim_gnn::{GnnConfig, GnnKind, GnnModel};
use privim_graph::{induced_subgraph, Graph, NodeId};
use privim_rt::ChaCha8Rng;
use privim_rt::{PrivimError, PrivimResult, Rng, SeedableRng};
use privim_sampling::{dual_stage_sampling, DualStageConfig, FreqConfig};

/// Configuration of one membership-inference audit.
#[derive(Clone, Copy, Debug)]
pub struct AuditConfig {
    /// Number of target nodes audited (one IN/OUT model pair each).
    pub targets: usize,
    /// Noise multiplier used for the private runs (0 = non-private).
    pub sigma: f64,
    /// Occurrence threshold `M` for the sampler / sensitivity.
    pub threshold: u32,
    /// Training iterations per model.
    pub iters: usize,
    /// DP-SGD batch size.
    pub batch: usize,
    /// RNG seed.
    pub seed: u64,
}

impl AuditConfig {
    /// A small-but-meaningful audit: 12 targets, the paper's M = 4.
    pub fn quick(sigma: f64, seed: u64) -> Self {
        AuditConfig {
            targets: 12,
            sigma,
            threshold: 4,
            iters: 30,
            batch: 8,
            seed,
        }
    }
}

/// Result of a membership-inference audit.
#[derive(Clone, Debug)]
pub struct AuditResult {
    /// Per-target attack statistic for the IN world (node present).
    pub in_scores: Vec<f64>,
    /// Per-target attack statistic for the OUT world (node removed).
    pub out_scores: Vec<f64>,
    /// Attack advantage = max over thresholds of (TPR − FPR) ∈ [0, 1].
    pub advantage: f64,
}

/// Theoretical cap on any attacker's advantage under `(ε, δ)`-DP.
pub fn dp_advantage_bound(epsilon: f64, delta: f64) -> f64 {
    if epsilon.is_infinite() {
        return 1.0;
    }
    ((epsilon.exp() - 1.0 + 2.0 * delta) / (epsilon.exp() + 1.0)).clamp(0.0, 1.0)
}

/// Train one audit-scale model on `g` with the config's DP-SGD settings:
/// dual-stage sampling into a container, then `cfg.iters` noisy steps.
/// Fully seeded — identical `(model_seed, train_seed)` give bit-identical
/// models. Returns the model together with the subgraph-container size the
/// run actually trained on (the `m` the accountant's subsampling ratio
/// divides by). Public because the attack harness (`privim-attack`) trains
/// its shadow and target models through exactly this path, so the audited
/// mechanism is the same one the accountant's ε covers.
pub fn train_probe_model(
    g: &Graph,
    cfg: &AuditConfig,
    model_seed: u64,
    train_seed: u64,
) -> PrivimResult<(GnnModel, usize)> {
    let mut rng = ChaCha8Rng::seed_from_u64(train_seed);
    let scfg = DualStageConfig {
        stage1: FreqConfig {
            subgraph_size: 10,
            return_prob: 0.3,
            decay: 1.0,
            sampling_rate: 1.0,
            walk_len: 80,
            threshold: cfg.threshold,
        },
        shrink: 2,
        enable_bes: true,
    };
    let out = dual_stage_sampling(g, &scfg, &mut rng)?;
    let mut container = out.container;
    if container.is_empty() {
        let all: Vec<NodeId> = g.nodes().collect();
        container = privim_sampling::SubgraphContainer::from_node_sets(g, &[all]);
    }
    let items = TrainItem::from_container(&container.subgraphs);
    let mut model = GnnModel::new(
        GnnConfig {
            kind: GnnKind::Grat,
            layers: 2,
            hidden: 8,
            in_dim: privim_gnn::FEATURE_DIM,
        },
        &mut ChaCha8Rng::seed_from_u64(model_seed),
    );
    let tcfg = DpSgdConfig {
        batch: cfg.batch,
        iters: cfg.iters,
        lr: 0.1,
        clip: 1.0,
        sigma: cfg.sigma,
        occurrence_bound: cfg.threshold as u64,
        loss: LossConfig::paper_default(),
        noise: NoiseKind::Gaussian,
        seed: train_seed,
        tail_average: true,
        weight_decay: 0.01,
        max_recoveries: 8,
        fault: None,
    };
    train_dpgnn(&mut model, &items, &tcfg)?;
    let container_size = container.subgraphs.len();
    Ok((model, container_size))
}

/// Run the audit on `g`. For each target node `v`, trains an IN model (on
/// `g`) and an OUT model (on `g` with `v` removed), scores `v`'s
/// neighbourhood with both, and uses the score gap as the attack
/// statistic. Returns the distributions and the attack advantage.
pub fn membership_inference_audit(g: &Graph, cfg: &AuditConfig) -> PrivimResult<AuditResult> {
    if cfg.targets < 2 {
        return Err(PrivimError::invalid("need at least two audit targets"));
    }
    if g.num_nodes() < 8 {
        return Err(PrivimError::empty("graph too small to audit (< 8 nodes)"));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut in_scores = Vec::with_capacity(cfg.targets);
    let mut out_scores = Vec::with_capacity(cfg.targets);

    for t in 0..cfg.targets {
        let target: NodeId = rng.gen_range(0..g.num_nodes()) as NodeId;
        // the attacker observes the model's score on the target's
        // (still-public) neighbourhood in the full graph
        let probe = |model: &GnnModel| -> f64 {
            let scores = model.score_graph(g);
            scores[target as usize]
        };

        let (in_model, _) =
            train_probe_model(g, cfg, cfg.seed + 1_000 + t as u64, cfg.seed + t as u64)?;
        in_scores.push(probe(&in_model));

        // OUT world: remove the node and all its edges (unbounded node DP)
        let keep: Vec<NodeId> = g.nodes().filter(|&v| v != target).collect();
        let without = induced_subgraph(g, &keep);
        let (out_model, _) = train_probe_model(
            &without.graph,
            cfg,
            cfg.seed + 1_000 + t as u64,
            cfg.seed + t as u64,
        )?;
        out_scores.push(probe(&out_model));
    }

    Ok(AuditResult {
        advantage: best_threshold_advantage(&in_scores, &out_scores),
        in_scores,
        out_scores,
    })
}

/// Max over thresholds of |TPR − FPR| for a one-dimensional statistic.
pub fn best_threshold_advantage(in_scores: &[f64], out_scores: &[f64]) -> f64 {
    let mut cuts: Vec<f64> = in_scores.iter().chain(out_scores).copied().collect();
    cuts.sort_by(|a, b| a.total_cmp(b));
    let mut best = 0.0f64;
    for &c in &cuts {
        let tpr = in_scores.iter().filter(|&&s| s >= c).count() as f64 / in_scores.len() as f64;
        let fpr = out_scores.iter().filter(|&&s| s >= c).count() as f64 / out_scores.len() as f64;
        best = best.max((tpr - fpr).abs());
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_formula() {
        assert!(dp_advantage_bound(0.0, 0.0).abs() < 1e-12);
        assert!((dp_advantage_bound(f64::INFINITY, 0.0) - 1.0).abs() < 1e-12);
        let b1 = dp_advantage_bound(1.0, 0.0);
        assert!((b1 - ((1f64.exp() - 1.0) / (1f64.exp() + 1.0))).abs() < 1e-12);
        assert!(dp_advantage_bound(1.0, 0.1) > b1);
    }

    #[test]
    fn threshold_advantage_separable_vs_identical() {
        let a = [1.0, 1.1, 1.2];
        let b = [0.0, 0.1, 0.2];
        assert_eq!(best_threshold_advantage(&a, &b), 1.0);
        assert_eq!(best_threshold_advantage(&a, &a), 0.0);
    }

    #[test]
    fn private_training_shrinks_attack_advantage() {
        // Small end-to-end audit: heavy noise must not leak more than the
        // (nearly) non-private run. This is a statistical statement; the
        // small sample keeps it directional rather than tight.
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let g =
            privim_graph::generators::barabasi_albert(120, 3, &mut rng).with_uniform_weights(1.0);
        let noisy = membership_inference_audit(&g, &AuditConfig::quick(4.0, 5)).unwrap();
        let clean = membership_inference_audit(&g, &AuditConfig::quick(0.0, 5)).unwrap();
        assert!(
            noisy.advantage <= clean.advantage + 0.35,
            "noisy {} vs clean {}",
            noisy.advantage,
            clean.advantage
        );
        assert_eq!(noisy.in_scores.len(), 12);
    }
}

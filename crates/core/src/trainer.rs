//! DP-SGD over subgraph mini-batches — Algorithm 2.
//!
//! Each subgraph is one "sample": its gradient is computed on a private
//! tape, clipped to a global `l2` bound `C`, summed across the batch,
//! perturbed with noise calibrated to the node-level sensitivity
//! `Δ_g = C·N_g` (Lemma 2), and applied as an averaged SGD step.

use crate::loss::{im_loss, LossConfig};
use privim_dp::mechanisms::{gaussian_noise_vec, sml_noise_vec};
use privim_dp::sensitivity::node_sensitivity;
use privim_gnn::{node_features, GnnModel, GraphTensors};
use privim_graph::Subgraph;
use privim_rt::ChaCha8Rng;
use privim_rt::{Rng, SeedableRng};
use privim_tensor::{GradClip, Matrix, Tape};

/// A subgraph prepared for training: message-passing operators + features.
pub struct TrainItem {
    /// Precomputed graph operators.
    pub gt: GraphTensors,
    /// Structural node features.
    pub x: Matrix,
}

impl TrainItem {
    /// Prepare a sampled subgraph.
    pub fn from_subgraph(s: &Subgraph) -> Self {
        TrainItem {
            gt: GraphTensors::new(&s.graph),
            x: node_features(&s.graph),
        }
    }

    /// Prepare a whole container in parallel.
    pub fn from_container(subs: &[Subgraph]) -> Vec<TrainItem> {
        privim_rt::par::map(subs, TrainItem::from_subgraph)
    }
}

/// Noise family added to the summed clipped gradients.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NoiseKind {
    /// Gaussian `N(0, σ²Δ_g²)` — Algorithm 2 (PrivIM, PrivIM*, EGN).
    Gaussian,
    /// Symmetric multivariate Laplace — the HP baseline's mechanism.
    Sml,
}

/// Algorithm 2 hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct DpSgdConfig {
    /// Batch size `B` (independent uniform draws per step, matching the
    /// Binomial subsampling model of Theorem 3).
    pub batch: usize,
    /// Iterations `T`.
    pub iters: usize,
    /// Learning rate `η` (paper: 0.005).
    pub lr: f64,
    /// Per-subgraph clip bound `C`.
    pub clip: f64,
    /// Noise multiplier `σ`; `0` disables noise *and* clipping (the
    /// Non-Private configuration).
    pub sigma: f64,
    /// Occurrence bound `N_g` (Lemma 1, or `M` for the dual-stage sampler).
    pub occurrence_bound: u64,
    /// Loss configuration (Eq. 5).
    pub loss: LossConfig,
    /// Noise family.
    pub noise: NoiseKind,
    /// RNG seed (batching + noise).
    pub seed: u64,
    /// Polyak tail averaging: return the average of the last half of the
    /// iterates instead of the final one. Pure post-processing of the
    /// privatised gradient stream (no effect on the privacy accounting),
    /// and substantially reduces the noise variance of the released model.
    pub tail_average: bool,
    /// Per-step multiplicative weight decay `W ← (1 − wd)·W` applied after
    /// the noisy update. Bounds the noise-driven random walk of the
    /// parameters (variance O(σ²/wd) instead of O(σ²T)), which is what
    /// keeps tight-budget training from diverging. Post-processing —
    /// no effect on the privacy accounting.
    pub weight_decay: f64,
}

impl DpSgdConfig {
    /// Paper training defaults (B=16, T=60, η=0.005, C=1) at a given noise
    /// multiplier and occurrence bound.
    pub fn paper_default(sigma: f64, occurrence_bound: u64) -> Self {
        DpSgdConfig {
            batch: 16,
            iters: 60,
            lr: 0.005,
            clip: 1.0,
            sigma,
            occurrence_bound,
            loss: LossConfig::paper_default(),
            noise: NoiseKind::Gaussian,
            seed: 0,
            tail_average: true,
            weight_decay: 0.002,
        }
    }
}

/// Diagnostics from a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Mean per-sample loss at each iteration (pre-update).
    pub loss_trace: Vec<f64>,
    /// Fraction of per-sample gradients that hit the clip bound.
    pub clipped_fraction: f64,
    /// Noise standard deviation that was injected per coordinate
    /// (`σ·C·N_g`; 0 for non-private runs).
    pub noise_std: f64,
}

/// Per-sample clipped gradient of one subgraph. Returns `(grads, loss,
/// clipped)`.
fn sample_gradient(
    model: &GnnModel,
    item: &TrainItem,
    cfg: &DpSgdConfig,
) -> (Vec<Matrix>, f64, bool) {
    let mut tape = Tape::new();
    let (probs, pvars) = model.forward(&mut tape, &item.gt, &item.x);
    let loss = im_loss(&mut tape, &item.gt, probs, &cfg.loss);
    let loss_val = tape.value(loss).get(0, 0);
    let mut grads = tape.backward(loss);
    let mut gvec: Vec<Matrix> = pvars.iter().map(|&v| grads.take(v)).collect();
    let mut clipped = false;
    if cfg.sigma > 0.0 {
        let pre = GradClip::clip(&mut gvec, cfg.clip);
        clipped = pre > cfg.clip;
    }
    (gvec, loss_val, clipped)
}

/// Run Algorithm 2: train `model` in place on `items`, returning
/// diagnostics. Deterministic given `cfg.seed`.
pub fn train_dpgnn(model: &mut GnnModel, items: &[TrainItem], cfg: &DpSgdConfig) -> TrainReport {
    assert!(!items.is_empty(), "empty subgraph container");
    assert!(cfg.batch >= 1 && cfg.iters >= 1);
    assert!(cfg.lr > 0.0 && cfg.clip > 0.0 && cfg.sigma >= 0.0);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let sensitivity = node_sensitivity(cfg.clip, cfg.occurrence_bound.max(1));
    let noise_std = cfg.sigma * sensitivity;

    let mut loss_trace = Vec::with_capacity(cfg.iters);
    let mut clipped = 0usize;
    let mut total_samples = 0usize;
    let tail_start = cfg.iters / 2;
    let mut tail_sum: Option<Vec<Matrix>> = None;
    let mut tail_count = 0usize;

    for iter in 0..cfg.iters {
        // Line 3: B independent uniform draws from the container.
        let batch_idx: Vec<usize> = (0..cfg.batch)
            .map(|_| rng.gen_range(0..items.len()))
            .collect();

        // Lines 4–7: per-sample gradients, clipped, summed.
        let results: Vec<(Vec<Matrix>, f64, bool)> =
            privim_rt::par::map(&batch_idx, |&i| sample_gradient(model, &items[i], cfg));

        let mut summed: Vec<Matrix> = model
            .params()
            .iter()
            .map(|p| Matrix::zeros(p.rows(), p.cols()))
            .collect();
        let mut batch_loss = 0.0;
        for (gvec, lv, was_clipped) in results {
            for (s, g) in summed.iter_mut().zip(&gvec) {
                s.add_assign(g);
            }
            batch_loss += lv;
            clipped += usize::from(was_clipped);
            total_samples += 1;
        }
        loss_trace.push(batch_loss / cfg.batch as f64);

        // Line 8: noise on the summed gradient.
        if cfg.sigma > 0.0 {
            for s in summed.iter_mut() {
                let noise = match cfg.noise {
                    NoiseKind::Gaussian => {
                        gaussian_noise_vec(s.data().len(), cfg.sigma, sensitivity, &mut rng)
                    }
                    NoiseKind::Sml => sml_noise_vec(s.data().len(), noise_std, &mut rng),
                };
                for (x, n) in s.data_mut().iter_mut().zip(noise) {
                    *x += n;
                }
            }
        }

        // Line 9: averaged update (+ optional decoupled weight decay).
        let scale = cfg.lr / cfg.batch as f64;
        let keep = 1.0 - cfg.weight_decay.clamp(0.0, 1.0);
        for (p, g) in model.params_mut().iter_mut().zip(&summed) {
            p.add_scaled_assign(g, -scale);
            if keep < 1.0 {
                for x in p.data_mut() {
                    *x *= keep;
                }
            }
        }

        // Tail averaging accumulator (post-processing).
        if cfg.tail_average && iter >= tail_start {
            match &mut tail_sum {
                None => tail_sum = Some(model.params().to_vec()),
                Some(acc) => {
                    for (a, p) in acc.iter_mut().zip(model.params()) {
                        a.add_assign(p);
                    }
                }
            }
            tail_count += 1;
        }
    }

    if let Some(acc) = tail_sum {
        let inv = 1.0 / tail_count as f64;
        for (p, a) in model.params_mut().iter_mut().zip(acc) {
            *p = a.scale(inv);
        }
    }

    TrainReport {
        loss_trace,
        clipped_fraction: if total_samples == 0 {
            0.0
        } else {
            clipped as f64 / total_samples as f64
        },
        noise_std: if cfg.sigma > 0.0 { noise_std } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_gnn::{GnnConfig, GnnKind};
    use privim_graph::{generators, induced_subgraph};
    use privim_sampling::{freq_sampling, FreqConfig};

    fn make_items(seed: u64, count_hint: usize) -> Vec<TrainItem> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::barabasi_albert(300, 4, &mut rng).with_uniform_weights(1.0);
        let mut freq = vec![0u32; g.num_nodes()];
        let cfg = FreqConfig {
            subgraph_size: 12,
            return_prob: 0.3,
            decay: 1.0,
            sampling_rate: 1.0,
            walk_len: 150,
            threshold: 8,
        };
        let sets = freq_sampling(&g, &mut freq, &cfg, &mut rng);
        let subs: Vec<_> = sets
            .iter()
            .take(count_hint)
            .map(|s| induced_subgraph(&g, s))
            .collect();
        TrainItem::from_container(&subs)
    }

    fn small_model(kind: GnnKind, seed: u64) -> GnnModel {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        GnnModel::new(
            GnnConfig {
                kind,
                layers: 2,
                hidden: 8,
                in_dim: privim_gnn::FEATURE_DIM,
            },
            &mut rng,
        )
    }

    #[test]
    fn non_private_training_reduces_loss() {
        let items = make_items(1, 40);
        let mut model = small_model(GnnKind::Grat, 2);
        let cfg = DpSgdConfig {
            batch: 8,
            iters: 40,
            lr: 0.05,
            clip: 1.0,
            sigma: 0.0,
            occurrence_bound: 8,
            loss: LossConfig::paper_default(),
            noise: NoiseKind::Gaussian,
            seed: 3,
            tail_average: false,
            weight_decay: 0.0,
        };
        let report = train_dpgnn(&mut model, &items, &cfg);
        let first: f64 = report.loss_trace[..5].iter().sum::<f64>() / 5.0;
        let last: f64 = report.loss_trace[report.loss_trace.len() - 5..]
            .iter()
            .sum::<f64>()
            / 5.0;
        assert!(last < first, "loss did not decrease: {first} -> {last}");
        assert_eq!(report.noise_std, 0.0);
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let items = make_items(4, 20);
        let cfg = DpSgdConfig {
            batch: 4,
            iters: 5,
            lr: 0.01,
            clip: 1.0,
            sigma: 0.5,
            occurrence_bound: 4,
            loss: LossConfig::paper_default(),
            noise: NoiseKind::Gaussian,
            seed: 9,
            tail_average: false,
            weight_decay: 0.0,
        };
        let mut m1 = small_model(GnnKind::Gcn, 5);
        let mut m2 = m1.clone();
        train_dpgnn(&mut m1, &items, &cfg);
        train_dpgnn(&mut m2, &items, &cfg);
        for (a, b) in m1.params().iter().zip(m2.params()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn noise_std_scales_with_occurrence_bound() {
        let items = make_items(6, 10);
        let base = DpSgdConfig {
            batch: 2,
            iters: 2,
            lr: 0.01,
            clip: 1.0,
            sigma: 1.0,
            occurrence_bound: 4,
            loss: LossConfig::paper_default(),
            noise: NoiseKind::Gaussian,
            seed: 10,
            tail_average: false,
            weight_decay: 0.0,
        };
        let mut m = small_model(GnnKind::Gcn, 7);
        let r_small = train_dpgnn(&mut m.clone(), &items, &base);
        let big = DpSgdConfig {
            occurrence_bound: 1111,
            ..base
        };
        let r_big = train_dpgnn(&mut m, &items, &big);
        assert!((r_small.noise_std - 4.0).abs() < 1e-12);
        assert!((r_big.noise_std - 1111.0).abs() < 1e-12);
    }

    #[test]
    fn heavy_noise_degrades_seed_quality() {
        // The paper's core utility claim, in miniature: at the same noise
        // multiplier, the N_g = 1111 pipeline produces far worse seed sets
        // than the N_g = 4 pipeline, because the injected noise std is
        // σ·C·N_g. Measured by the spread of the trained model's top-10
        // seeds on the training graph, averaged over seeds.
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let g = generators::barabasi_albert(300, 4, &mut rng).with_uniform_weights(1.0);
        let mut freq = vec![0u32; g.num_nodes()];
        let scfg = FreqConfig {
            subgraph_size: 12,
            return_prob: 0.3,
            decay: 1.0,
            sampling_rate: 1.0,
            walk_len: 150,
            threshold: 8,
        };
        let sets = freq_sampling(&g, &mut freq, &scfg, &mut rng);
        let subs: Vec<_> = sets.iter().map(|s| induced_subgraph(&g, s)).collect();
        let items = TrainItem::from_container(&subs);

        let spread_after = |n_g: u64, seed: u64| -> f64 {
            let mut model = small_model(GnnKind::Grat, 20 + seed);
            let cfg = DpSgdConfig {
                batch: 8,
                iters: 40,
                lr: 0.1,
                clip: 1.0,
                sigma: 0.5,
                occurrence_bound: n_g,
                loss: LossConfig::paper_default(),
                noise: NoiseKind::Gaussian,
                seed,
                tail_average: true,
                weight_decay: 0.0,
            };
            train_dpgnn(&mut model, &items, &cfg);
            let scores = model.score_graph(&g);
            let seeds = privim_im::heuristics::score_top_k(&scores, 10);
            privim_im::one_step_spread(&g, &seeds) as f64
        };
        let clean: f64 = (0..3).map(|s| spread_after(4, s)).sum::<f64>() / 3.0;
        let noisy: f64 = (0..3).map(|s| spread_after(1111, s)).sum::<f64>() / 3.0;
        assert!(
            clean > noisy,
            "low-sensitivity run should pick better seeds: {clean} vs {noisy}"
        );
    }

    #[test]
    fn clipping_reports_fraction() {
        let items = make_items(12, 10);
        let mut model = small_model(GnnKind::Gcn, 13);
        // microscopic clip bound: everything clips
        let cfg = DpSgdConfig {
            batch: 4,
            iters: 3,
            lr: 0.01,
            clip: 1e-6,
            sigma: 0.1,
            occurrence_bound: 2,
            loss: LossConfig::paper_default(),
            noise: NoiseKind::Gaussian,
            seed: 14,
            tail_average: false,
            weight_decay: 0.0,
        };
        let report = train_dpgnn(&mut model, &items, &cfg);
        assert!(report.clipped_fraction > 0.99);
    }

    #[test]
    #[should_panic(expected = "empty subgraph container")]
    fn empty_container_rejected() {
        let mut model = small_model(GnnKind::Gcn, 15);
        let cfg = DpSgdConfig::paper_default(1.0, 4);
        train_dpgnn(&mut model, &[], &cfg);
    }

    #[test]
    fn sml_noise_path_runs() {
        let items = make_items(16, 10);
        let mut model = small_model(GnnKind::Gcn, 17);
        let cfg = DpSgdConfig {
            batch: 4,
            iters: 3,
            lr: 0.01,
            clip: 1.0,
            sigma: 0.5,
            occurrence_bound: 2,
            loss: LossConfig::paper_default(),
            noise: NoiseKind::Sml,
            seed: 18,
            tail_average: false,
            weight_decay: 0.0,
        };
        let report = train_dpgnn(&mut model, &items, &cfg);
        assert_eq!(report.loss_trace.len(), 3);
        assert!(model.params().iter().all(|p| !p.has_non_finite()));
    }
}

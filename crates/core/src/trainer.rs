//! DP-SGD over subgraph mini-batches — Algorithm 2.
//!
//! Each subgraph is one "sample": its gradient is computed on a private
//! tape, clipped to a global `l2` bound `C`, summed across the batch,
//! perturbed with noise calibrated to the node-level sensitivity
//! `Δ_g = C·N_g` (Lemma 2), and applied as an averaged SGD step.
//!
//! ## Divergence sentinel
//!
//! Training under heavy calibrated noise (σ·C·N_g per coordinate) is
//! exactly the regime where DP-SGD can silently walk into NaN parameters.
//! [`train_dpgnn`] therefore checks loss, gradients, and parameters for
//! non-finite (or absurdly oversized) values at every step. On detection
//! it rolls the parameters back to the last healthy checkpoint, halves the
//! working learning rate, records a [`RecoveryEvent`], and moves on; after
//! [`DpSgdConfig::max_recoveries`] events it gives up with
//! [`PrivimError::Diverged`].
//!
//! **Recovery-vs-accounting invariant:** every *attempted* step is charged
//! to the privacy budget, whether or not its update was applied. A
//! recovered run therefore reports exactly the same ε spend as an
//! uninterrupted run of equal attempted-step count
//! ([`TrainReport::attempted_steps`] == `cfg.iters` whenever `Ok` is
//! returned) — recovery never under-reports privacy spend.

use crate::loss::{im_loss, LossConfig};
use privim_dp::mechanisms::{gaussian_noise_vec, sml_noise_vec};
use privim_dp::sensitivity::node_sensitivity;
use privim_gnn::{node_features, GnnModel, GraphTensors};
use privim_graph::Subgraph;
use privim_rt::fault::{self, FaultPlan, FaultPoint};
use privim_rt::ChaCha8Rng;
use privim_rt::{PrivimError, Rng, SeedableRng};
use privim_tensor::{GradClip, Matrix, Tape};

/// A subgraph prepared for training: message-passing operators + features.
pub struct TrainItem {
    /// Precomputed graph operators.
    pub gt: GraphTensors,
    /// Structural node features.
    pub x: Matrix,
}

impl TrainItem {
    /// Prepare a sampled subgraph.
    pub fn from_subgraph(s: &Subgraph) -> Self {
        TrainItem {
            gt: GraphTensors::new(&s.graph),
            x: node_features(&s.graph),
        }
    }

    /// Prepare a whole container in parallel. Honors the process-wide
    /// fault plan's `poisoned_subgraph` point (see
    /// [`Self::from_container_with_fault`]).
    pub fn from_container(subs: &[Subgraph]) -> Vec<TrainItem> {
        Self::from_container_with_fault(subs, fault::env_plan())
    }

    /// Prepare a container, poisoning items the fault plan selects (keyed
    /// by item index, so injection is identical at any thread count). A
    /// poisoned item carries a NaN feature — the realistic "corrupt input
    /// slips into the container" failure the sentinel must absorb.
    pub fn from_container_with_fault(
        subs: &[Subgraph],
        plan: Option<FaultPlan>,
    ) -> Vec<TrainItem> {
        let mut items = privim_rt::par::map(subs, TrainItem::from_subgraph);
        if let Some(plan) = plan {
            for (i, item) in items.iter_mut().enumerate() {
                if plan.fires(FaultPoint::PoisonedSubgraph, i as u64) && item.x.data().len() > 0 {
                    item.x.data_mut()[0] = f64::NAN;
                }
            }
        }
        items
    }
}

/// Noise family added to the summed clipped gradients.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NoiseKind {
    /// Gaussian `N(0, σ²Δ_g²)` — Algorithm 2 (PrivIM, PrivIM*, EGN).
    Gaussian,
    /// Symmetric multivariate Laplace — the HP baseline's mechanism.
    Sml,
}

/// Algorithm 2 hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct DpSgdConfig {
    /// Batch size `B` (independent uniform draws per step, matching the
    /// Binomial subsampling model of Theorem 3).
    pub batch: usize,
    /// Iterations `T`.
    pub iters: usize,
    /// Learning rate `η` (paper: 0.005).
    pub lr: f64,
    /// Per-subgraph clip bound `C`.
    pub clip: f64,
    /// Noise multiplier `σ`; `0` disables noise *and* clipping (the
    /// Non-Private configuration).
    pub sigma: f64,
    /// Occurrence bound `N_g` (Lemma 1, or `M` for the dual-stage sampler).
    pub occurrence_bound: u64,
    /// Loss configuration (Eq. 5).
    pub loss: LossConfig,
    /// Noise family.
    pub noise: NoiseKind,
    /// RNG seed (batching + noise).
    pub seed: u64,
    /// Polyak tail averaging: return the average of the last half of the
    /// iterates instead of the final one. Pure post-processing of the
    /// privatised gradient stream (no effect on the privacy accounting),
    /// and substantially reduces the noise variance of the released model.
    pub tail_average: bool,
    /// Per-step multiplicative weight decay `W ← (1 − wd)·W` applied after
    /// the noisy update. Bounds the noise-driven random walk of the
    /// parameters (variance O(σ²/wd) instead of O(σ²T)), which is what
    /// keeps tight-budget training from diverging. Post-processing —
    /// no effect on the privacy accounting.
    pub weight_decay: f64,
    /// Divergence-recovery budget: after this many [`RecoveryEvent`]s the
    /// run aborts with [`PrivimError::Diverged`].
    pub max_recoveries: u32,
    /// Explicit fault plan for this run; `None` falls back to the
    /// process-wide [`fault::env_plan`] (and to no faults if that is
    /// unset).
    pub fault: Option<FaultPlan>,
}

impl DpSgdConfig {
    /// Paper training defaults (B=16, T=60, η=0.005, C=1) at a given noise
    /// multiplier and occurrence bound.
    pub fn paper_default(sigma: f64, occurrence_bound: u64) -> Self {
        DpSgdConfig {
            batch: 16,
            iters: 60,
            lr: 0.005,
            clip: 1.0,
            sigma,
            occurrence_bound,
            loss: LossConfig::paper_default(),
            noise: NoiseKind::Gaussian,
            seed: 0,
            tail_average: true,
            weight_decay: 0.002,
            max_recoveries: 8,
            fault: None,
        }
    }
}

/// What the divergence sentinel observed when a step went bad.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DivergenceCause {
    /// The batch loss was NaN/∞ (pre-update).
    NonFiniteLoss,
    /// The summed per-step gradient contained a NaN/∞ coordinate.
    NonFiniteGradient,
    /// The summed gradient was finite but absurdly large (beyond any value
    /// clipping could produce).
    OversizedGradient,
    /// The post-update parameters contained a NaN/∞ coordinate.
    NonFiniteParams,
    /// The batch contained no samples (injected or degenerate).
    EmptyBatch,
}

impl DivergenceCause {
    /// Canonical snake_case name (for reports and logs).
    pub fn name(&self) -> &'static str {
        match self {
            DivergenceCause::NonFiniteLoss => "non_finite_loss",
            DivergenceCause::NonFiniteGradient => "non_finite_gradient",
            DivergenceCause::OversizedGradient => "oversized_gradient",
            DivergenceCause::NonFiniteParams => "non_finite_params",
            DivergenceCause::EmptyBatch => "empty_batch",
        }
    }
}

/// One sentinel intervention during training.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryEvent {
    /// Iteration (0-based) at which the fault was detected.
    pub step: u64,
    /// What the sentinel observed.
    pub cause: DivergenceCause,
    /// Working learning rate after the intervention.
    pub lr_after: f64,
}

/// Diagnostics from a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Mean per-sample loss at each iteration (pre-update; NaN for steps
    /// the sentinel discarded).
    pub loss_trace: Vec<f64>,
    /// Fraction of per-sample gradients that hit the clip bound.
    pub clipped_fraction: f64,
    /// Noise standard deviation that was injected per coordinate
    /// (`σ·C·N_g`; 0 for non-private runs).
    pub noise_std: f64,
    /// Steps attempted — **the number the privacy accountant must be
    /// charged for**. Always equals `cfg.iters` on `Ok`, recoveries or
    /// not.
    pub attempted_steps: u64,
    /// Steps whose update survived the sentinel and was applied.
    pub applied_steps: u64,
    /// Every sentinel intervention, in step order.
    pub recoveries: Vec<RecoveryEvent>,
    /// Working learning rate at the end of the run (halved once per
    /// divergence recovery).
    pub final_lr: f64,
}

/// Per-sample clipped gradient of one subgraph. Returns `(grads, loss,
/// clipped)`.
fn sample_gradient(
    model: &GnnModel,
    item: &TrainItem,
    cfg: &DpSgdConfig,
) -> (Vec<Matrix>, f64, bool) {
    // Scratch tape + pooled matrix buffers: after the first sample on each
    // pool worker the whole forward/backward runs allocation-free.
    Tape::with_scratch(|tape| {
        let (probs, pvars) = model.forward(tape, &item.gt, &item.x);
        let loss = im_loss(tape, &item.gt, probs, &cfg.loss);
        let loss_val = tape.value(loss).get(0, 0);
        let mut grads = tape.backward(loss);
        let mut gvec: Vec<Matrix> = pvars.iter().map(|&v| grads.take(v)).collect();
        let mut clipped = false;
        if cfg.sigma > 0.0 {
            let pre = GradClip::clip(&mut gvec, cfg.clip);
            clipped = pre > cfg.clip;
        }
        (gvec, loss_val, clipped)
    })
}

fn l2_norm(mats: &[Matrix]) -> f64 {
    mats.iter()
        .map(|m| privim_tensor::simd::sumsq(m.data()))
        .sum::<f64>()
        .sqrt()
}

fn validate(cfg: &DpSgdConfig, items: &[TrainItem]) -> Result<(), PrivimError> {
    if items.is_empty() {
        return Err(PrivimError::empty("empty subgraph container"));
    }
    if cfg.batch < 1 || cfg.iters < 1 {
        return Err(PrivimError::invalid("batch and iters must be >= 1"));
    }
    // `!(x > 0.0)` also rejects NaN hyperparameters.
    if !(cfg.lr > 0.0) || !(cfg.clip > 0.0) || !(cfg.sigma >= 0.0) {
        return Err(PrivimError::invalid(format!(
            "lr ({}), clip ({}) must be > 0 and sigma ({}) >= 0",
            cfg.lr, cfg.clip, cfg.sigma
        )));
    }
    Ok(())
}

/// Run Algorithm 2: train `model` in place on `items`, returning
/// diagnostics. Deterministic given `cfg.seed` (and `cfg.fault`, if any).
///
/// On `Err(Diverged)` the model is left at its last healthy checkpoint; the
/// privacy spend of every step attempted up to the abort has been incurred
/// and must still be accounted by the caller.
pub fn train_dpgnn(
    model: &mut GnnModel,
    items: &[TrainItem],
    cfg: &DpSgdConfig,
) -> Result<TrainReport, PrivimError> {
    validate(cfg, items)?;
    let plan = cfg.fault.or_else(fault::env_plan);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let sensitivity = node_sensitivity(cfg.clip, cfg.occurrence_bound.max(1));
    let noise_std = cfg.sigma * sensitivity;
    // Anything clipping could legitimately produce is ≤ B·C plus noise;
    // 1e6× that (or an absolute bound for unclipped runs) is divergence.
    let grad_limit = if cfg.sigma > 0.0 {
        1e6 * cfg.batch as f64 * cfg.clip.max(1.0)
    } else {
        1e12
    };

    let mut loss_trace = Vec::with_capacity(cfg.iters);
    let mut clipped = 0usize;
    let mut total_samples = 0usize;
    let tail_start = cfg.iters / 2;
    let mut tail_sum: Option<Vec<Matrix>> = None;
    let mut tail_count = 0usize;

    let mut lr = cfg.lr;
    let mut checkpoint: Vec<Matrix> = model.params().to_vec();
    let mut recoveries: Vec<RecoveryEvent> = Vec::new();
    let mut applied = 0u64;

    let fires = |point: FaultPoint, idx: u64| plan.is_some_and(|p| p.fires(point, idx));

    // Gradient accumulator, allocated once and zero-filled per step.
    let mut summed: Vec<Matrix> = model
        .params()
        .iter()
        .map(|p| Matrix::zeros(p.rows(), p.cols()))
        .collect();

    for iter in 0..cfg.iters {
        // A recovery intervention for step `iter`; returns Err once the
        // budget is exhausted. Closure-free so the borrow checker stays
        // happy: implemented inline at each detection site via macro.
        macro_rules! recover {
            ($cause:expr, $halve:expr) => {{
                if $halve {
                    for (p, c) in model.params_mut().iter_mut().zip(&checkpoint) {
                        *p = c.clone();
                    }
                    lr *= 0.5;
                }
                recoveries.push(RecoveryEvent {
                    step: iter as u64,
                    cause: $cause,
                    lr_after: lr,
                });
                if recoveries.len() as u32 > cfg.max_recoveries {
                    return Err(PrivimError::Diverged {
                        step: iter as u64,
                        recoveries: recoveries.len() as u32,
                        message: $cause.name().to_string(),
                    });
                }
            }};
        }

        // Injected fault: the whole batch vanishes (e.g. a sampler handed
        // back nothing). The step is still charged to the privacy budget —
        // conservative, and it keeps attempted-step accounting uniform.
        if fires(FaultPoint::EmptyBatch, iter as u64) {
            loss_trace.push(f64::NAN);
            recover!(DivergenceCause::EmptyBatch, false);
            continue;
        }

        // Line 3: B independent uniform draws from the container.
        let batch_idx: Vec<usize> = (0..cfg.batch)
            .map(|_| rng.gen_range(0..items.len()))
            .collect();

        // Lines 4–7: per-sample gradients, clipped, summed.
        let results: Vec<(Vec<Matrix>, f64, bool)> =
            privim_rt::par::map(&batch_idx, |&i| sample_gradient(model, &items[i], cfg));

        for s in summed.iter_mut() {
            s.data_mut().fill(0.0);
        }
        let mut batch_loss = 0.0;
        for (gvec, lv, was_clipped) in results {
            for (s, g) in summed.iter_mut().zip(&gvec) {
                s.add_assign(g);
            }
            batch_loss += lv;
            clipped += usize::from(was_clipped);
            total_samples += 1;
        }
        let batch_loss = batch_loss / cfg.batch as f64;
        loss_trace.push(batch_loss);

        // Injected faults on the summed gradient.
        if fires(FaultPoint::NanGradient, iter as u64) {
            if let Some(m) = summed.first_mut() {
                if !m.data().is_empty() {
                    m.data_mut()[0] = f64::NAN;
                }
            }
        }
        if fires(FaultPoint::OversizedGradient, iter as u64) {
            for m in summed.iter_mut() {
                for x in m.data_mut() {
                    *x *= 1e9;
                }
            }
        }

        // Sentinel, pre-noise: discard the step (charged, not applied) if
        // the loss or gradient already went bad.
        if !batch_loss.is_finite() {
            recover!(DivergenceCause::NonFiniteLoss, true);
            continue;
        }
        if summed.iter().any(|m| m.has_non_finite()) {
            recover!(DivergenceCause::NonFiniteGradient, true);
            continue;
        }
        if l2_norm(&summed) > grad_limit {
            recover!(DivergenceCause::OversizedGradient, true);
            continue;
        }

        // Line 8: noise on the summed gradient.
        if cfg.sigma > 0.0 {
            for s in summed.iter_mut() {
                let noise = match cfg.noise {
                    NoiseKind::Gaussian => {
                        // privim-lint: allow(unaccounted-noise, reason = "charged by the caller: the pipeline feeds TrainReport::attempted_steps to the Theorem 3 RDP accountant")
                        gaussian_noise_vec(s.data().len(), cfg.sigma, sensitivity, &mut rng)
                    }
                    // privim-lint: allow(unaccounted-noise, reason = "charged by the caller: the pipeline feeds TrainReport::attempted_steps to the Theorem 3 RDP accountant")
                    NoiseKind::Sml => sml_noise_vec(s.data().len(), noise_std, &mut rng),
                };
                privim_tensor::simd::add_assign(s.data_mut(), &noise);
            }
        }

        // Line 9: averaged update (+ optional decoupled weight decay).
        let scale = lr / cfg.batch as f64;
        let keep = 1.0 - cfg.weight_decay.clamp(0.0, 1.0);
        for (p, g) in model.params_mut().iter_mut().zip(&summed) {
            p.add_scaled_assign(g, -scale);
            if keep < 1.0 {
                privim_tensor::simd::scale(p.data_mut(), keep);
            }
        }

        // Sentinel, post-update: the applied step must leave finite
        // parameters, else roll back to the checkpoint.
        if model.params().iter().any(|p| p.has_non_finite()) {
            recover!(DivergenceCause::NonFiniteParams, true);
            continue;
        }

        // Healthy step: advance the checkpoint.
        applied += 1;
        for (c, p) in checkpoint.iter_mut().zip(model.params()) {
            *c = p.clone();
        }

        // Tail averaging accumulator (post-processing; healthy steps only).
        if cfg.tail_average && iter >= tail_start {
            match &mut tail_sum {
                None => tail_sum = Some(model.params().to_vec()),
                Some(acc) => {
                    for (a, p) in acc.iter_mut().zip(model.params()) {
                        a.add_assign(p);
                    }
                }
            }
            tail_count += 1;
        }
    }

    if let Some(acc) = tail_sum {
        if tail_count > 0 {
            let inv = 1.0 / tail_count as f64;
            for (p, a) in model.params_mut().iter_mut().zip(acc) {
                *p = a.scale(inv);
            }
        }
    }

    Ok(TrainReport {
        loss_trace,
        clipped_fraction: if total_samples == 0 {
            0.0
        } else {
            clipped as f64 / total_samples as f64
        },
        noise_std: if cfg.sigma > 0.0 { noise_std } else { 0.0 },
        attempted_steps: cfg.iters as u64,
        applied_steps: applied,
        recoveries,
        final_lr: lr,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_gnn::{GnnConfig, GnnKind};
    use privim_graph::{generators, induced_subgraph};
    use privim_sampling::{freq_sampling, FreqConfig};

    fn make_items(seed: u64, count_hint: usize) -> Vec<TrainItem> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::barabasi_albert(300, 4, &mut rng).with_uniform_weights(1.0);
        let mut freq = vec![0u32; g.num_nodes()];
        let cfg = FreqConfig {
            subgraph_size: 12,
            return_prob: 0.3,
            decay: 1.0,
            sampling_rate: 1.0,
            walk_len: 150,
            threshold: 8,
        };
        let sets = freq_sampling(&g, &mut freq, &cfg, &mut rng).unwrap();
        let subs: Vec<_> = sets
            .iter()
            .take(count_hint)
            .map(|s| induced_subgraph(&g, s))
            .collect();
        TrainItem::from_container(&subs)
    }

    fn small_model(kind: GnnKind, seed: u64) -> GnnModel {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        GnnModel::new(
            GnnConfig {
                kind,
                layers: 2,
                hidden: 8,
                in_dim: privim_gnn::FEATURE_DIM,
            },
            &mut rng,
        )
    }

    fn base_cfg(sigma: f64, occurrence_bound: u64) -> DpSgdConfig {
        DpSgdConfig {
            tail_average: false,
            weight_decay: 0.0,
            ..DpSgdConfig::paper_default(sigma, occurrence_bound)
        }
    }

    #[test]
    fn non_private_training_reduces_loss() {
        let items = make_items(1, 40);
        let mut model = small_model(GnnKind::Grat, 2);
        let cfg = DpSgdConfig {
            batch: 8,
            iters: 40,
            lr: 0.05,
            seed: 3,
            ..base_cfg(0.0, 8)
        };
        let report = train_dpgnn(&mut model, &items, &cfg).unwrap();
        let first: f64 = report.loss_trace[..5].iter().sum::<f64>() / 5.0;
        let last: f64 = report.loss_trace[report.loss_trace.len() - 5..]
            .iter()
            .sum::<f64>()
            / 5.0;
        assert!(last < first, "loss did not decrease: {first} -> {last}");
        assert_eq!(report.noise_std, 0.0);
        assert!(report.recoveries.is_empty());
        assert_eq!(report.attempted_steps, 40);
        assert_eq!(report.applied_steps, 40);
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let items = make_items(4, 20);
        let cfg = DpSgdConfig {
            batch: 4,
            iters: 5,
            lr: 0.01,
            sigma: 0.5,
            seed: 9,
            ..base_cfg(0.5, 4)
        };
        let mut m1 = small_model(GnnKind::Gcn, 5);
        let mut m2 = m1.clone();
        train_dpgnn(&mut m1, &items, &cfg).unwrap();
        train_dpgnn(&mut m2, &items, &cfg).unwrap();
        for (a, b) in m1.params().iter().zip(m2.params()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn noise_std_scales_with_occurrence_bound() {
        let items = make_items(6, 10);
        let base = DpSgdConfig {
            batch: 2,
            iters: 2,
            lr: 0.01,
            seed: 10,
            ..base_cfg(1.0, 4)
        };
        let mut m = small_model(GnnKind::Gcn, 7);
        let r_small = train_dpgnn(&mut m.clone(), &items, &base).unwrap();
        let big = DpSgdConfig {
            occurrence_bound: 1111,
            ..base
        };
        let r_big = train_dpgnn(&mut m, &items, &big).unwrap();
        assert!((r_small.noise_std - 4.0).abs() < 1e-12);
        assert!((r_big.noise_std - 1111.0).abs() < 1e-12);
    }

    #[test]
    fn heavy_noise_degrades_seed_quality() {
        // The paper's core utility claim, in miniature: at the same noise
        // multiplier, the N_g = 1111 pipeline produces far worse seed sets
        // than the N_g = 4 pipeline, because the injected noise std is
        // σ·C·N_g. Measured by the spread of the trained model's top-10
        // seeds on the training graph, averaged over seeds.
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let g = generators::barabasi_albert(300, 4, &mut rng).with_uniform_weights(1.0);
        let mut freq = vec![0u32; g.num_nodes()];
        let scfg = FreqConfig {
            subgraph_size: 12,
            return_prob: 0.3,
            decay: 1.0,
            sampling_rate: 1.0,
            walk_len: 150,
            threshold: 8,
        };
        let sets = freq_sampling(&g, &mut freq, &scfg, &mut rng).unwrap();
        let subs: Vec<_> = sets.iter().map(|s| induced_subgraph(&g, s)).collect();
        let items = TrainItem::from_container(&subs);

        let spread_after = |n_g: u64, seed: u64| -> f64 {
            let mut model = small_model(GnnKind::Grat, 20 + seed);
            let cfg = DpSgdConfig {
                batch: 8,
                iters: 40,
                lr: 0.1,
                seed,
                tail_average: true,
                ..base_cfg(0.5, n_g)
            };
            train_dpgnn(&mut model, &items, &cfg).unwrap();
            let scores = model.score_graph(&g);
            let seeds = privim_im::heuristics::score_top_k(&scores, 10);
            privim_im::one_step_spread(&g, &seeds) as f64
        };
        let clean: f64 = (0..3).map(|s| spread_after(4, s)).sum::<f64>() / 3.0;
        let noisy: f64 = (0..3).map(|s| spread_after(1111, s)).sum::<f64>() / 3.0;
        assert!(
            clean > noisy,
            "low-sensitivity run should pick better seeds: {clean} vs {noisy}"
        );
    }

    #[test]
    fn clipping_reports_fraction() {
        let items = make_items(12, 10);
        let mut model = small_model(GnnKind::Gcn, 13);
        // microscopic clip bound: everything clips
        let cfg = DpSgdConfig {
            batch: 4,
            iters: 3,
            lr: 0.01,
            clip: 1e-6,
            seed: 14,
            ..base_cfg(0.1, 2)
        };
        let report = train_dpgnn(&mut model, &items, &cfg).unwrap();
        assert!(report.clipped_fraction > 0.99);
    }

    #[test]
    fn empty_container_rejected() {
        let mut model = small_model(GnnKind::Gcn, 15);
        let cfg = DpSgdConfig::paper_default(1.0, 4);
        let err = train_dpgnn(&mut model, &[], &cfg).unwrap_err();
        assert!(matches!(err, PrivimError::EmptyInput(_)), "{err}");
    }

    #[test]
    fn invalid_hyperparameters_rejected() {
        let items = make_items(30, 4);
        let mut model = small_model(GnnKind::Gcn, 31);
        for bad in [
            DpSgdConfig {
                lr: 0.0,
                ..base_cfg(0.5, 4)
            },
            DpSgdConfig {
                lr: f64::NAN,
                ..base_cfg(0.5, 4)
            },
            DpSgdConfig {
                clip: -1.0,
                ..base_cfg(0.5, 4)
            },
            DpSgdConfig {
                batch: 0,
                ..base_cfg(0.5, 4)
            },
            DpSgdConfig {
                sigma: -0.5,
                ..base_cfg(0.5, 4)
            },
        ] {
            let err = train_dpgnn(&mut model, &items, &bad).unwrap_err();
            assert!(matches!(err, PrivimError::InvalidInput(_)), "{err}");
        }
    }

    #[test]
    fn sml_noise_path_runs() {
        let items = make_items(16, 10);
        let mut model = small_model(GnnKind::Gcn, 17);
        let cfg = DpSgdConfig {
            batch: 4,
            iters: 3,
            lr: 0.01,
            noise: NoiseKind::Sml,
            seed: 18,
            ..base_cfg(0.5, 2)
        };
        let report = train_dpgnn(&mut model, &items, &cfg).unwrap();
        assert_eq!(report.loss_trace.len(), 3);
        assert!(model.params().iter().all(|p| !p.has_non_finite()));
    }

    #[test]
    fn nan_gradient_fault_recovers_to_finite_params() {
        let items = make_items(40, 12);
        let mut model = small_model(GnnKind::Gcn, 41);
        let cfg = DpSgdConfig {
            batch: 4,
            iters: 12,
            lr: 0.05,
            seed: 42,
            fault: Some(FaultPlan::at_step(7, FaultPoint::NanGradient, 5)),
            ..base_cfg(0.5, 4)
        };
        let report = train_dpgnn(&mut model, &items, &cfg).unwrap();
        assert_eq!(report.recoveries.len(), 1);
        assert_eq!(report.recoveries[0].step, 5);
        assert_eq!(
            report.recoveries[0].cause,
            DivergenceCause::NonFiniteGradient
        );
        assert!((report.recoveries[0].lr_after - 0.025).abs() < 1e-15);
        assert_eq!(report.attempted_steps, 12);
        assert_eq!(report.applied_steps, 11);
        assert!(model.params().iter().all(|p| !p.has_non_finite()));
    }

    #[test]
    fn oversized_gradient_fault_is_caught() {
        let items = make_items(44, 12);
        let mut model = small_model(GnnKind::Gcn, 45);
        let cfg = DpSgdConfig {
            batch: 4,
            iters: 8,
            lr: 0.05,
            seed: 46,
            fault: Some(FaultPlan::at_step(3, FaultPoint::OversizedGradient, 2)),
            ..base_cfg(0.5, 4)
        };
        let report = train_dpgnn(&mut model, &items, &cfg).unwrap();
        assert_eq!(report.recoveries.len(), 1);
        assert_eq!(
            report.recoveries[0].cause,
            DivergenceCause::OversizedGradient
        );
        assert!(model.params().iter().all(|p| !p.has_non_finite()));
    }

    #[test]
    fn empty_batch_fault_charges_but_skips() {
        let items = make_items(48, 12);
        let mut model = small_model(GnnKind::Gcn, 49);
        let cfg = DpSgdConfig {
            batch: 4,
            iters: 6,
            lr: 0.05,
            seed: 50,
            fault: Some(FaultPlan::at_step(1, FaultPoint::EmptyBatch, 0)),
            ..base_cfg(0.5, 4)
        };
        let report = train_dpgnn(&mut model, &items, &cfg).unwrap();
        assert_eq!(report.attempted_steps, 6);
        assert_eq!(report.applied_steps, 5);
        assert_eq!(report.recoveries[0].cause, DivergenceCause::EmptyBatch);
        assert!(report.loss_trace[0].is_nan());
        // empty batch does not halve the learning rate
        assert_eq!(report.final_lr, cfg.lr);
    }

    #[test]
    fn recovery_budget_exhaustion_errors() {
        let items = make_items(52, 12);
        let mut model = small_model(GnnKind::Gcn, 53);
        let cfg = DpSgdConfig {
            batch: 4,
            iters: 10,
            lr: 0.05,
            seed: 54,
            max_recoveries: 2,
            // every step's gradient is NaN
            fault: Some(FaultPlan::new(55, &[FaultPoint::NanGradient], 1.0)),
            ..base_cfg(0.5, 4)
        };
        let err = train_dpgnn(&mut model, &items, &cfg).unwrap_err();
        assert!(matches!(err, PrivimError::Diverged { .. }), "{err}");
        // the model is left at its last healthy checkpoint
        assert!(model.params().iter().all(|p| !p.has_non_finite()));
    }

    #[test]
    fn poisoned_subgraph_is_absorbed() {
        let mut rng = ChaCha8Rng::seed_from_u64(60);
        let g = generators::barabasi_albert(200, 4, &mut rng).with_uniform_weights(1.0);
        let mut freq = vec![0u32; g.num_nodes()];
        let scfg = FreqConfig {
            subgraph_size: 10,
            return_prob: 0.3,
            decay: 1.0,
            sampling_rate: 1.0,
            walk_len: 150,
            threshold: 8,
        };
        let sets = freq_sampling(&g, &mut freq, &scfg, &mut rng).unwrap();
        let subs: Vec<_> = sets.iter().map(|s| induced_subgraph(&g, s)).collect();
        // poison every item so every batch deterministically contains one
        let plan = FaultPlan::new(61, &[FaultPoint::PoisonedSubgraph], 1.0);
        let items = TrainItem::from_container_with_fault(&subs, Some(plan));
        assert!(items[0].x.has_non_finite(), "item 0 should be poisoned");
        let mut model = small_model(GnnKind::Gcn, 62);
        let cfg = DpSgdConfig {
            batch: 6,
            iters: 10,
            lr: 0.05,
            seed: 63,
            max_recoveries: 32,
            ..base_cfg(0.5, 4)
        };
        let report = train_dpgnn(&mut model, &items, &cfg).unwrap();
        // the poisoned item was sampled at least once and absorbed
        assert!(!report.recoveries.is_empty());
        assert!(model.params().iter().all(|p| !p.has_non_finite()));
        assert_eq!(report.attempted_steps, 10);
    }
}

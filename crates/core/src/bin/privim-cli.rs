//! `privim-cli` — train a node-level differentially private IM model on an
//! edge-list file and print (or save) the selected seed set.
//!
//! ```text
//! privim-cli seeds --graph edges.txt --k 50 --eps 3
//! privim-cli seeds --graph edges.txt --directed --method non-private
//! privim-cli stats --graph edges.txt
//! privim-cli accounting --nodes 7600 --eps 1,2,4
//! ```
//!
//! Edge-list format: `src dst [weight]` per line, `#` comments ignored —
//! SNAP files work as-is.

use privim::pipeline::{run_method, EvalSetup, Method};
use privim_graph::{algo, io::read_edge_list};
use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:
  privim-cli seeds --graph <edge-list> [--directed] [--k 50] [--eps 3]
             [--method privim*|privim|privim+scs|non-private|celf|degree]
             [--seed 42] [--out seeds.txt]
  privim-cli stats --graph <edge-list> [--directed]
  privim-cli accounting --nodes <|V|> [--eps 1,2,4] [--threshold 4]"
    );
    exit(2)
}

struct Flags {
    graph: Option<PathBuf>,
    directed: bool,
    k: usize,
    eps: Vec<f64>,
    method: String,
    seed: u64,
    out: Option<PathBuf>,
    nodes: usize,
    threshold: u32,
}

fn parse_flags(args: &[String]) -> Flags {
    let mut f = Flags {
        graph: None,
        directed: false,
        k: 50,
        eps: vec![3.0],
        method: "privim*".into(),
        seed: 42,
        out: None,
        nodes: 0,
        threshold: 4,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    usage()
                })
                .clone()
        };
        match a.as_str() {
            "--graph" => f.graph = Some(PathBuf::from(val("--graph"))),
            "--directed" => f.directed = true,
            "--k" => f.k = val("--k").parse().unwrap_or_else(|_| usage()),
            "--eps" => {
                f.eps = val("--eps")
                    .split(',')
                    .map(|s| s.parse().unwrap_or_else(|_| usage()))
                    .collect()
            }
            "--method" => f.method = val("--method"),
            "--seed" => f.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--out" => f.out = Some(PathBuf::from(val("--out"))),
            "--nodes" => f.nodes = val("--nodes").parse().unwrap_or_else(|_| usage()),
            "--threshold" => f.threshold = val("--threshold").parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    f
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let flags = parse_flags(&args[1..]);
    match cmd.as_str() {
        "seeds" => cmd_seeds(flags),
        "stats" => cmd_stats(flags),
        "accounting" => cmd_accounting(flags),
        _ => usage(),
    }
}

fn load(flags: &Flags) -> (privim_graph::Graph, Vec<u64>) {
    let Some(path) = &flags.graph else {
        eprintln!("--graph is required");
        usage()
    };
    let loaded = read_edge_list(path, flags.directed).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", path.display());
        exit(1)
    });
    (loaded.graph, loaded.labels)
}

fn cmd_stats(flags: Flags) {
    let (g, _) = load(&flags);
    let s = algo::degree_stats(&g);
    let (_, comps) = algo::weakly_connected_components(&g);
    println!("nodes            {}", g.num_nodes());
    println!("edges            {}", g.num_edges());
    println!("directed         {}", g.is_directed());
    println!("avg degree       {:.2}", s.mean_total);
    println!("max in-degree    {}", s.max_in);
    println!("max out-degree   {}", s.max_out);
    println!("isolated nodes   {}", s.isolated);
    println!("weak components  {comps}");
}

fn cmd_seeds(flags: Flags) {
    use privim_rt::SeedableRng;
    let (g, labels) = load(&flags);
    let mut rng = privim_rt::ChaCha8Rng::seed_from_u64(flags.seed);
    let setup = EvalSetup::paper_defaults(&g, flags.k, &mut rng);
    let eps = flags.eps[0];
    let method = match flags.method.as_str() {
        "privim*" => Method::PrivImStar { epsilon: eps },
        "privim" => Method::PrivIm { epsilon: eps },
        "privim+scs" => Method::PrivImScs { epsilon: eps },
        "non-private" => Method::NonPrivate,
        "celf" => Method::Celf,
        "degree" => Method::Degree,
        other => {
            eprintln!("unknown method {other}");
            usage()
        }
    };
    let out = run_method(method, &setup, flags.seed).unwrap_or_else(|e| {
        eprintln!("method {} failed: {e}", flags.method);
        exit(1)
    });
    eprintln!(
        "method {} | spread {:.0} | {:.1}% of CELF | sigma {:.3} | {} subgraphs",
        out.method, out.spread, out.coverage_ratio, out.sigma, out.container_size
    );
    let lines: Vec<String> = out
        .seeds
        .iter()
        .map(|&v| labels[v as usize].to_string())
        .collect();
    match flags.out {
        Some(path) => {
            std::fs::write(&path, lines.join("\n") + "\n").unwrap_or_else(|e| {
                eprintln!("cannot write {}: {e}", path.display());
                exit(1)
            });
            eprintln!("wrote {} seeds to {}", lines.len(), path.display());
        }
        None => {
            for l in lines {
                println!("{l}");
            }
        }
    }
}

fn cmd_accounting(flags: Flags) {
    use privim_dp::accountant::{calibrate_sigma, PrivacyParams};
    if flags.nodes == 0 {
        eprintln!("--nodes is required for accounting");
        usage()
    }
    let train_nodes = flags.nodes / 2;
    let params = PrivacyParams {
        n_g: flags.threshold as u64,
        batch: 48,
        container: 300,
        steps: 80,
    };
    let delta = (0.5 / train_nodes.max(2) as f64).min(1e-3);
    println!(
        "|V| = {}, M = {}, δ = {delta:.2e}",
        flags.nodes, flags.threshold
    );
    println!("eps   | sigma  | noise std (C = 1)");
    for &eps in &flags.eps {
        let sigma = calibrate_sigma(eps, delta, &params);
        println!(
            "{eps:<5} | {sigma:<6.3} | {:.3}",
            sigma * flags.threshold as f64
        );
    }
}

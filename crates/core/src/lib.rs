#![warn(missing_docs)]
//! # privim
//!
//! The PrivIM framework (§III–§IV): node-level differentially private GNN
//! training for influence maximization, plus every competitor in the
//! paper's evaluation (§V-A).
//!
//! The framework is three modules glued into a pipeline (Fig. 2):
//!
//! 1. **Subgraph extraction** — Algorithm 1 (naive) or the dual-stage
//!    adaptive frequency sampling of Algorithm 3 (`privim-sampling`).
//! 2. **Privacy accounting** — the occurrence bound (Lemma 1 / threshold
//!    `M`), the sensitivity `Δ_g = C·N_g` (Lemma 2) and noise calibration
//!    via Theorem 3 (`privim-dp`).
//! 3. **DPGNN training** — per-subgraph gradient clipping + Gaussian noise
//!    (Algorithm 2) against the probabilistic penalty IM loss (Eq. 5),
//!    implemented in [`trainer`] and [`loss`].
//!
//! [`pipeline`] exposes one entry point per evaluated method:
//! `PrivIM`, `PrivIM+SCS`, `PrivIM*`, `Non-Private`, `EGN`, `HP`,
//! `HP-GRAT`, plus the `CELF` ground truth from `privim-im`.
//!
//! ## Quickstart
//!
//! ```no_run
//! use privim::pipeline::{run_method, EvalSetup, Method};
//! use privim_graph::datasets::Dataset;
//! use privim_rt::SeedableRng;
//!
//! let mut rng = privim_rt::ChaCha8Rng::seed_from_u64(7);
//! let g = Dataset::LastFm.generate_scaled(0.1, &mut rng);
//! let setup = EvalSetup::paper_defaults(&g, 50, &mut rng);
//! let out = run_method(Method::PrivImStar { epsilon: 4.0 }, &setup, 1).unwrap();
//! println!("spread {} (coverage {:.1}%)", out.spread, out.coverage_ratio);
//! ```

pub mod audit;
pub mod baselines;
pub mod loss;
pub mod maxcut;
pub mod pipeline;
pub mod results;
pub mod trainer;

pub use audit::{
    best_threshold_advantage, dp_advantage_bound, membership_inference_audit, train_probe_model,
    AuditConfig, AuditResult,
};
pub use loss::{im_loss, LossConfig, PhiKind};
pub use pipeline::{export_serve_artifact, run_method, EvalSetup, Method, ServeArtifact};
pub use results::{MethodOutput, PrivacyEvidence};
pub use trainer::{train_dpgnn, DpSgdConfig, TrainItem, TrainReport};

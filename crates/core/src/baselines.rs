//! Container builders for the non-PrivIM learning baselines (§V-A).
//!
//! - **EGN** (Karalias & Loukas): the foundational unsupervised GNN solver
//!   for combinatorial problems. Its training samples subgraphs *uniformly
//!   at random* with no occurrence control, so a single node can appear in
//!   every subgraph — under node-level DP its occurrence bound is the
//!   container size itself, which forces overwhelming noise (the paper's
//!   explanation for EGN's last-place utility).
//! - **HP** (Xiang et al., S&P'24): HeterPoisson — node-level samples
//!   (one ego neighbourhood per node over an in-degree-capped graph) drawn
//!   in Poisson batches, with Symmetric Multivariate Laplace noise.
//!   Designed for node-level tasks: each sample sees only a single node's
//!   capped neighbourhood, which is exactly the structural deficiency the
//!   paper exploits ("focus solely on single node for each subgraph").
//!   See DESIGN.md for the fidelity notes.

use privim_graph::{projection::theta_projection, Graph, NodeId};
use privim_rt::Rng;
use privim_sampling::SubgraphContainer;

/// EGN-style container: `count` subgraphs, each `size` uniform random
/// nodes (no locality, no occurrence control).
pub fn egn_container(
    g: &Graph,
    count: usize,
    size: usize,
    rng: &mut impl Rng,
) -> SubgraphContainer {
    assert!(size >= 2 && size <= g.num_nodes(), "bad subgraph size");
    let mut sets = Vec::with_capacity(count);
    for _ in 0..count {
        let mut set: Vec<NodeId> = Vec::with_capacity(size);
        while set.len() < size {
            let v = rng.gen_range(0..g.num_nodes()) as NodeId;
            if !set.contains(&v) {
                set.push(v);
            }
        }
        sets.push(set);
    }
    SubgraphContainer::from_node_sets(g, &sets)
}

/// HP-style container: per-node ego subgraphs over the θ-capped graph.
///
/// HeterPoisson is a node-level method: each "sample" is one node together
/// with its (degree-capped) in-neighbourhood, and each DP-SGD batch is a
/// Poisson draw of such samples. This is the paper's characterisation of
/// HP applied to IM: "focus solely on single node for each subgraph",
/// which is exactly why it loses multi-hop structure. The per-node
/// occurrence across ego sets is capped at `theta + 1` (own ego plus at
/// most θ neighbours' egos), enforced by construction — that cap is the
/// sensitivity unit the SML noise is calibrated to.
pub fn hp_container(g: &Graph, theta: usize, rng: &mut impl Rng) -> (Graph, SubgraphContainer) {
    assert!(g.num_nodes() >= 2);
    let capped = theta_projection(g, theta, rng);
    let cap = theta as u32 + 1;
    let mut occ = vec![0u32; g.num_nodes()];
    let mut sets: Vec<Vec<NodeId>> = Vec::with_capacity(g.num_nodes());
    for v in capped.nodes() {
        let mut set: Vec<NodeId> = Vec::with_capacity(theta + 1);
        if occ[v as usize] < cap {
            set.push(v);
        }
        for &u in capped.in_neighbors(v) {
            if occ[u as usize] < cap {
                set.push(u);
            }
        }
        if set.len() >= 2 {
            for &u in &set {
                occ[u as usize] += 1;
            }
            sets.push(set);
        }
    }
    let container = SubgraphContainer::from_node_sets(&capped, &sets);
    (capped, container)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_graph::generators;
    use privim_rt::ChaCha8Rng;
    use privim_rt::SeedableRng;

    #[test]
    fn egn_sets_have_exact_size_and_no_duplicates() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::barabasi_albert(200, 3, &mut rng);
        let c = egn_container(&g, 30, 15, &mut rng);
        assert_eq!(c.len(), 30);
        for s in &c.subgraphs {
            assert_eq!(s.len(), 15);
        }
    }

    #[test]
    fn egn_occurrences_are_uncontrolled() {
        // with many subgraphs over a small graph, some node must repeat far
        // beyond any small threshold — the failure mode the paper cites.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = generators::barabasi_albert(50, 3, &mut rng);
        let c = egn_container(&g, 100, 25, &mut rng);
        assert!(c.max_occurrence() > 20, "max {}", c.max_occurrence());
    }

    #[test]
    fn hp_egos_respect_occurrence_cap() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generators::barabasi_albert(300, 5, &mut rng);
        let theta = 6;
        let (capped, c) = hp_container(&g, theta, &mut rng);
        assert!(privim_graph::projection::is_theta_bounded(&capped, theta));
        assert!(!c.is_empty());
        assert!(
            c.max_occurrence() <= theta as u32 + 1,
            "max occurrence {}",
            c.max_occurrence()
        );
    }

    #[test]
    fn hp_egos_are_local_stars() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generators::barabasi_albert(200, 4, &mut rng);
        let theta = 5;
        let (_, c) = hp_container(&g, theta, &mut rng);
        for s in &c.subgraphs {
            assert!(s.len() <= theta + 1, "ego too big: {}", s.len());
            assert!(s.len() >= 2);
        }
    }
}

//! The probabilistic penalty IM loss of Eq. 5.
//!
//! Given the model's seed probabilities `p = σ(GNN(G)) ∈ [0,1]^n`, the
//! diffusion upper bound of Theorem 2 estimates the probability that node
//! `u` is influenced at step `i` as
//!
//! `p̂_i(u) = φ( Σ_{v ∈ N⁻(u) ∪ {u}} w_vu · H^{(i-1)}_v )`,  `H^{(0)} = p`,
//!
//! with `φ = clamp₀₁` (the self-term makes a seed count itself as
//! influenced, matching the evaluation's `|S ∪ N⁺(S)|` coverage). The loss
//! is then
//!
//! `L(G; W) = Σ_u Π_{i=1}^{j} (1 − p̂_i(u))  +  λ Σ_u p_u`,
//!
//! i.e. minimise the probability that nodes stay inactive, regularised by
//! the expected seed-set size (Erdős-goes-neural style cardinality
//! penalty).

use privim_gnn::GraphTensors;
use privim_tensor::{Tape, Var};

/// The probability map φ of Theorem 2. The theorem only requires φ to map
/// the aggregated mass into `[0, 1]`; two implementations are provided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhiKind {
    /// Hard `clamp₀₁` — the literal reading of Eq. 3. Exact at binary
    /// seed vectors but gradient-dead once the mass exceeds 1.
    Clamp,
    /// Smooth `1 − e^{−x}` — first-order identical to the exact
    /// `1 − Π(1 − w·p)` (both equal `x − O(x²)`), never saturates, so the
    /// hub-seeking gradient survives early training. Default.
    ExpSaturate,
}

/// Loss hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct LossConfig {
    /// Diffusion steps `j ≤ r` (the paper's evaluation uses `j = 1`).
    pub steps: usize,
    /// Cardinality-penalty weight `λ > 0`.
    pub lambda: f64,
    /// Probability map φ.
    pub phi: PhiKind,
}

impl LossConfig {
    /// Paper evaluation setting: one diffusion step, smooth φ. λ is chosen
    /// so the two terms have comparable magnitude at `k ≈ 50` seeds on
    /// subgraph-sized inputs.
    pub fn paper_default() -> Self {
        LossConfig {
            steps: 1,
            lambda: 0.5,
            phi: PhiKind::ExpSaturate,
        }
    }
}

/// Build the Eq. 5 loss on `tape` from the model's probability vector
/// `probs` (`n×1`, already sigmoided). Returns the scalar loss var.
pub fn im_loss(tape: &mut Tape, gt: &GraphTensors, probs: Var, cfg: &LossConfig) -> Var {
    assert!(cfg.steps >= 1, "need at least one diffusion step");
    assert!(cfg.lambda >= 0.0, "lambda must be non-negative");
    let adj = tape.sparse_const(gt.adj_loss.clone());

    // H^{(0)} = p; inactive_prod accumulates Π_i (1 - p̂_i).
    let mut h = probs;
    let mut inactive_prod: Option<Var> = None;
    for _ in 0..cfg.steps {
        let agg = tape.spmm(adj, h);
        let p_hat = match cfg.phi {
            PhiKind::Clamp => tape.clamp01(agg),
            PhiKind::ExpSaturate => {
                let neg = tape.scale(agg, -1.0);
                let e = tape.exp(neg);
                tape.one_minus(e)
            }
        };
        let inactive = tape.one_minus(p_hat);
        inactive_prod = Some(match inactive_prod {
            None => inactive,
            Some(acc) => tape.mul(acc, inactive),
        });
        h = p_hat;
    }
    // privim-lint: allow(panic, reason = "steps >= 1 asserted at fn entry, so the loop ran and inactive_prod is Some")
    let not_influenced = tape.sum(inactive_prod.expect("steps >= 1"));
    let seed_mass = tape.sum(probs);
    let penalty = tape.scale(seed_mass, cfg.lambda);
    tape.add(not_influenced, penalty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_gnn::GraphTensors;
    use privim_graph::GraphBuilder;
    use privim_tensor::{gradcheck, Matrix};

    /// star: 0 -> 1, 0 -> 2 (unit weights, the evaluation setting)
    fn star() -> GraphTensors {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 1.0);
        GraphTensors::new(&b.build())
    }

    fn loss_value(gt: &GraphTensors, p: &[f64], cfg: &LossConfig) -> f64 {
        let mut tape = Tape::new();
        let pv = tape.leaf(Matrix::col_vector(p));
        let l = im_loss(&mut tape, gt, pv, cfg);
        tape.value(l).get(0, 0)
    }

    #[test]
    fn perfect_seed_zeroes_first_term() {
        // p = e_0 covers all three nodes: Σ(1 - p̂) = 0, only λ·1 remains.
        let gt = star();
        let cfg = LossConfig {
            steps: 1,
            lambda: 0.5,
            phi: PhiKind::Clamp,
        };
        let l = loss_value(&gt, &[1.0, 0.0, 0.0], &cfg);
        assert!((l - 0.5).abs() < 1e-12, "loss {l}");
    }

    #[test]
    fn empty_seed_costs_full_inactivity() {
        let gt = star();
        let cfg = LossConfig {
            steps: 1,
            lambda: 0.5,
            phi: PhiKind::Clamp,
        };
        let l = loss_value(&gt, &[0.0, 0.0, 0.0], &cfg);
        assert!((l - 3.0).abs() < 1e-12, "loss {l}");
    }

    #[test]
    fn hub_seed_beats_leaf_seed() {
        // Seeding the hub (covers 3 nodes) must cost less than seeding a
        // leaf (covers 1) — the signal the GNN learns from.
        let gt = star();
        let cfg = LossConfig::paper_default();
        let hub = loss_value(&gt, &[0.9, 0.05, 0.05], &cfg);
        let leaf = loss_value(&gt, &[0.05, 0.9, 0.05], &cfg);
        assert!(hub < leaf, "hub {hub} vs leaf {leaf}");
    }

    #[test]
    fn lambda_trades_off_seed_mass() {
        let gt = star();
        let lo = LossConfig {
            steps: 1,
            lambda: 0.1,
            phi: PhiKind::Clamp,
        };
        let hi = LossConfig {
            steps: 1,
            lambda: 2.0,
            phi: PhiKind::Clamp,
        };
        let p = [0.8, 0.3, 0.3];
        assert!(loss_value(&gt, &p, &lo) < loss_value(&gt, &p, &hi));
    }

    #[test]
    fn multi_step_diffusion_reaches_further() {
        // chain 0 -> 1 -> 2: with one step, seeding 0 leaves node 2
        // uninfluenced; with two steps it is reached.
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        let gt = GraphTensors::new(&b.build());
        let one = LossConfig {
            steps: 1,
            lambda: 0.0,
            phi: PhiKind::Clamp,
        };
        let two = LossConfig {
            steps: 2,
            lambda: 0.0,
            phi: PhiKind::Clamp,
        };
        let p = [1.0, 0.0, 0.0];
        let l1 = loss_value(&gt, &p, &one);
        let l2 = loss_value(&gt, &p, &two);
        assert!((l1 - 1.0).abs() < 1e-12, "one step: node 2 inactive, {l1}");
        assert!(l2.abs() < 1e-12, "two steps reach node 2, {l2}");
    }

    #[test]
    fn loss_gradient_matches_finite_differences() {
        let gt = star();
        let cfg = LossConfig {
            steps: 2,
            lambda: 0.7,
            phi: PhiKind::Clamp,
        };
        // keep probs strictly inside (0,1) and p̂ away from the clamp kink
        let p = Matrix::col_vector(&[0.3, 0.2, 0.1]);
        gradcheck::assert_gradients_match(&[p], 1e-5, move |t, v| im_loss(t, &gt, v[0], &cfg));
    }

    #[test]
    fn loss_is_differentiable_through_sigmoid() {
        // end-to-end shape: logits -> sigmoid -> loss
        let gt = star();
        let cfg = LossConfig::paper_default();
        let logits = Matrix::col_vector(&[0.4, -0.8, 0.1]);
        gradcheck::assert_gradients_match(&[logits], 1e-5, move |t, v| {
            let p = t.sigmoid(v[0]);
            im_loss(t, &gt, p, &cfg)
        });
    }
}

//! Maximum Cut under node-level DP — the §VI generality claim, made
//! concrete.
//!
//! The paper argues PrivIM is "a general framework" because IM is just one
//! combinatorial problem: swapping the probabilistic penalty loss swaps the
//! problem. This module does exactly that for Max-Cut (the flagship task of
//! the EGN line of work): the GNN emits a per-node probability `p_v` of
//! being on side 1, and the differentiable expected cut
//!
//! `E[cut] = Σ_{(u,v) ∈ E} ( p_u (1 − p_v) + p_v (1 − p_u) )`
//!
//! is maximised (we minimise its negation). Sampling, accounting and
//! DP-SGD are reused verbatim — only the loss changes.

use crate::trainer::{DpSgdConfig, TrainItem};
use privim_gnn::{GnnModel, GraphTensors};
use privim_graph::Graph;
use privim_tensor::{Tape, Var};

/// Differentiable negative expected cut plus a mild balance penalty
/// `λ (Σp − n/2)²/n` that discourages the trivial all-one/all-zero
/// solutions early in training.
pub fn maxcut_loss(tape: &mut Tape, gt: &GraphTensors, probs: Var, lambda: f64) -> Var {
    // E[cut] = Σ_arcs p_u + p_v − 2 p_u p_v over undirected edges; with the
    // arc-level in-adjacency (each undirected edge = 2 arcs) the sum double
    // counts, which only rescales the objective.
    // Σ_{(v,u) arcs} p_v (1 − p_u) = pᵀ A_ic (1 − p) computed via spmm.
    let adj = tape.sparse_const(gt.adj_ic.clone());
    let one_minus_p = tape.one_minus(probs);
    let agg = tape.spmm(adj, one_minus_p); // row u: Σ_in w (1 - p_v) ... per-arc
    let cut_terms = tape.mul(probs, agg);
    let cut = tape.sum(cut_terms);
    let neg_cut = tape.scale(cut, -1.0);

    // balance penalty
    let total_p = tape.sum(probs);
    let half_n = gt.n as f64 / 2.0;
    let centered = tape.add_scalar(total_p, -half_n);
    let sq = tape.mul(centered, centered);
    let penalty = tape.scale(sq, lambda / gt.n.max(1) as f64);
    tape.add(neg_cut, penalty)
}

/// Deterministic cut value of a binary assignment.
pub fn cut_value(g: &Graph, side: &[bool]) -> usize {
    assert_eq!(side.len(), g.num_nodes());
    let raw = g
        .arcs()
        .filter(|&(u, v, _)| side[u as usize] != side[v as usize])
        .count();
    if g.is_directed() {
        raw
    } else {
        raw / 2
    }
}

/// Round model probabilities to a partition (threshold 0.5).
pub fn round_partition(scores: &[f64]) -> Vec<bool> {
    scores.iter().map(|&p| p >= 0.5).collect()
}

/// Round at the score *median*, guaranteeing a balanced partition. On
/// node-symmetric instances (e.g. Erdős–Rényi graphs) a GNN with purely
/// structural features cannot break symmetry and scores collapse to a
/// constant — the known limitation EGN works around with random node
/// features; median rounding at least recovers the random-balanced-cut
/// baseline there while preserving any structure the scores do carry.
pub fn round_partition_balanced(scores: &[f64]) -> Vec<bool> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut side = vec![false; scores.len()];
    for &i in idx.iter().skip(scores.len() / 2) {
        side[i] = true;
    }
    side
}

/// Greedy local-search baseline: flip any node that improves the cut until
/// a local optimum (classic 1/2-approximation behaviour in practice).
pub fn greedy_local_cut(g: &Graph, start: &[bool]) -> Vec<bool> {
    let mut side = start.to_vec();
    let mut improved = true;
    let mut guard = 0;
    while improved && guard < 50 {
        improved = false;
        guard += 1;
        for v in g.nodes() {
            let mut same = 0i64;
            let mut diff = 0i64;
            for &u in g.out_neighbors(v).iter().chain(g.in_neighbors(v)) {
                if side[u as usize] == side[v as usize] {
                    same += 1;
                } else {
                    diff += 1;
                }
            }
            if same > diff {
                side[v as usize] = !side[v as usize];
                improved = true;
            }
        }
    }
    side
}

/// Train a (optionally DP) GNN for Max-Cut on a subgraph container and
/// return the rounded partition of the full graph.
pub fn train_maxcut(
    model: &mut GnnModel,
    items: &[TrainItem],
    g: &Graph,
    cfg: &DpSgdConfig,
    lambda: f64,
) -> Vec<bool> {
    // Same DP-SGD loop as Algorithm 2 (crate::trainer), with the Max-Cut
    // objective in place of the IM loss.
    train_maxcut_loop(model, items, cfg, lambda);
    let scores = model.score_graph(g);
    round_partition_balanced(&scores)
}

fn train_maxcut_loop(model: &mut GnnModel, items: &[TrainItem], cfg: &DpSgdConfig, lambda: f64) {
    use privim_dp::mechanisms::gaussian_noise_vec;
    use privim_dp::sensitivity::node_sensitivity;
    use privim_rt::{Rng, SeedableRng};
    use privim_tensor::{GradClip, Matrix};
    let mut rng = privim_rt::ChaCha8Rng::seed_from_u64(cfg.seed);
    let sensitivity = node_sensitivity(cfg.clip, cfg.occurrence_bound.max(1));
    for _ in 0..cfg.iters {
        let mut summed: Vec<Matrix> = model
            .params()
            .iter()
            .map(|p| Matrix::zeros(p.rows(), p.cols()))
            .collect();
        for _ in 0..cfg.batch {
            let item = &items[rng.gen_range(0..items.len())];
            let mut tape = Tape::new();
            let (probs, pvars) = model.forward(&mut tape, &item.gt, &item.x);
            let loss = maxcut_loss(&mut tape, &item.gt, probs, lambda);
            let mut grads = tape.backward(loss);
            let mut gvec: Vec<Matrix> = pvars.iter().map(|&v| grads.take(v)).collect();
            if cfg.sigma > 0.0 {
                GradClip::clip(&mut gvec, cfg.clip);
            }
            for (s, gm) in summed.iter_mut().zip(&gvec) {
                s.add_assign(gm);
            }
        }
        if cfg.sigma > 0.0 {
            for s in summed.iter_mut() {
                // privim-lint: allow(unaccounted-noise, reason = "charged by the caller: the pipeline feeds every attempted step of this loop to the Theorem 3 RDP accountant")
                let noise = gaussian_noise_vec(s.data().len(), cfg.sigma, sensitivity, &mut rng);
                for (x, n) in s.data_mut().iter_mut().zip(noise) {
                    *x += n;
                }
            }
        }
        let scale = cfg.lr / cfg.batch as f64;
        for (p, gm) in model.params_mut().iter_mut().zip(&summed) {
            p.add_scaled_assign(gm, -scale);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::LossConfig;
    use crate::trainer::NoiseKind;
    use privim_gnn::{GnnConfig, GnnKind};
    use privim_graph::{generators, induced_subgraph, GraphBuilder};
    use privim_rt::ChaCha8Rng;
    use privim_rt::SeedableRng;
    use privim_sampling::{freq_sampling, FreqConfig};
    use privim_tensor::Matrix;

    #[test]
    fn cut_value_counts_crossing_edges() {
        let mut b = GraphBuilder::new_undirected(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(2, 3, 1.0);
        b.add_edge(3, 0, 1.0);
        let g = b.build();
        // alternate sides on the 4-cycle: perfect cut of 4
        assert_eq!(cut_value(&g, &[true, false, true, false]), 4);
        assert_eq!(cut_value(&g, &[true, true, false, false]), 2);
        assert_eq!(cut_value(&g, &[true, true, true, true]), 0);
    }

    #[test]
    fn maxcut_loss_prefers_balanced_cuts() {
        // 2-node graph: p = (1, 0) has cut 1; p = (1, 1) has cut 0.
        let mut b = GraphBuilder::new_undirected(2);
        b.add_edge(0, 1, 1.0);
        let gt = privim_gnn::GraphTensors::new(&b.build());
        let eval = |p: &[f64]| {
            let mut t = Tape::new();
            let pv = t.leaf(Matrix::col_vector(p));
            let l = maxcut_loss(&mut t, &gt, pv, 0.0);
            t.value(l).get(0, 0)
        };
        assert!(eval(&[1.0, 0.0]) < eval(&[1.0, 1.0]));
        assert!(eval(&[1.0, 0.0]) < eval(&[0.0, 0.0]));
    }

    #[test]
    fn maxcut_loss_gradcheck() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::barabasi_albert(8, 2, &mut rng);
        let gt = privim_gnn::GraphTensors::new(&g);
        let p = Matrix::col_vector(&[0.3, 0.6, 0.2, 0.8, 0.5, 0.4, 0.7, 0.1]);
        privim_tensor::gradcheck::assert_gradients_match(&[p], 1e-5, move |t, v| {
            maxcut_loss(t, &gt, v[0], 0.5)
        });
    }

    #[test]
    fn balanced_rounding_splits_in_half() {
        let side = round_partition_balanced(&[0.9, 0.1, 0.5, 0.2, 0.8, 0.3]);
        assert_eq!(side.iter().filter(|&&x| x).count(), 3);
        assert!(side[0] && side[4]); // highest scores on side 1
        assert!(!side[1] && !side[3]);
        // constant scores still give a balanced split
        let flat = round_partition_balanced(&[0.5; 10]);
        assert_eq!(flat.iter().filter(|&&x| x).count(), 5);
    }

    #[test]
    fn greedy_local_search_improves() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = generators::erdos_renyi(60, 200, false, &mut rng);
        let all_one = vec![true; 60];
        let improved = greedy_local_cut(&g, &all_one);
        assert!(cut_value(&g, &improved) > cut_value(&g, &all_one));
        // local optimum: at least half the edges cut (classic guarantee)
        assert!(cut_value(&g, &improved) * 2 >= g.num_edges());
    }

    #[test]
    fn dp_trained_gnn_beats_trivial_partition() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generators::erdos_renyi(150, 450, false, &mut rng);
        let mut freq = vec![0u32; g.num_nodes()];
        let scfg = FreqConfig {
            subgraph_size: 12,
            return_prob: 0.3,
            decay: 1.0,
            sampling_rate: 1.0,
            walk_len: 100,
            threshold: 6,
        };
        let sets = freq_sampling(&g, &mut freq, &scfg, &mut rng).unwrap();
        let subs: Vec<_> = sets.iter().map(|s| induced_subgraph(&g, s)).collect();
        let items = TrainItem::from_container(&subs);
        let mut model = GnnModel::new(
            GnnConfig {
                kind: GnnKind::Gcn,
                layers: 2,
                hidden: 8,
                in_dim: privim_gnn::FEATURE_DIM,
            },
            &mut rng,
        );
        let cfg = DpSgdConfig {
            batch: 8,
            iters: 40,
            lr: 0.1,
            clip: 1.0,
            sigma: 0.3,
            occurrence_bound: 6,
            loss: LossConfig::paper_default(), // unused by the maxcut loop
            noise: NoiseKind::Gaussian,
            seed: 4,
            tail_average: false,
            weight_decay: 0.0,
            max_recoveries: 8,
            fault: None,
        };
        let side = train_maxcut(&mut model, &items, &g, &cfg, 0.5);
        let trained_cut = cut_value(&g, &side);
        let trivial_cut = cut_value(&g, &vec![true; g.num_nodes()]);
        assert!(
            trained_cut > trivial_cut,
            "trained {trained_cut} vs trivial {trivial_cut}"
        );
    }
}

//! Structured experiment outputs consumed by the bench harness and
//! EXPERIMENTS.md tooling, plus the crash-safe result writer every
//! experiment binary goes through.

use privim_graph::NodeId;
use privim_rt::fault::{self, FaultPoint};
use privim_rt::{PrivimError, PrivimResult};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counter of atomic writes in this process — the logical index
/// the `io_write_fail` fault point keys on.
static WRITE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Write `contents` to `path` atomically: the bytes go to `<path>.tmp`
/// first and only a successful write is renamed over the destination, so a
/// crash (or an injected I/O fault) mid-write can never leave a truncated
/// or half-old result file behind.
pub fn write_atomic(path: impl AsRef<Path>, contents: &str) -> PrivimResult<()> {
    let path = path.as_ref();
    let idx = WRITE_COUNTER.fetch_add(1, Ordering::Relaxed);
    if fault::env_plan().is_some_and(|p| p.fires(FaultPoint::IoWriteFail, idx)) {
        return Err(PrivimError::InjectedFault {
            point: FaultPoint::IoWriteFail.name().to_string(),
        });
    }
    let tmp = path.with_extension(match path.extension().and_then(|e| e.to_str()) {
        Some(ext) => format!("{ext}.tmp"),
        None => "tmp".to_string(),
    });
    let ctx = |what: &str| format!("{what} {}", tmp.display());
    std::fs::write(&tmp, contents).map_err(|e| PrivimError::io(ctx("writing"), e))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| PrivimError::io(format!("renaming {} -> {}", tmp.display(), path.display()), e))
}

/// [`write_atomic`] for a JSON value, pretty-printed (the format every
/// `exp_*` binary emits).
pub fn write_json_atomic(
    path: impl AsRef<Path>,
    value: &privim_rt::json::Value,
) -> PrivimResult<()> {
    write_atomic(path, &value.to_json_string_pretty())
}

/// Everything one method run produces: utility, privacy, and cost — the
/// union of what Figure 5, Table II and Table III report.
#[derive(Clone, Debug)]
pub struct MethodOutput {
    /// Method name (`privim*`, `privim+scs`, `privim`, `non-private`,
    /// `egn`, `hp`, `hp-grat`, `celf`, ...).
    pub method: String,
    /// Influence spread of the selected seed set (evaluation setting:
    /// exact one-step coverage).
    pub spread: f64,
    /// Coverage ratio vs CELF, percent.
    pub coverage_ratio: f64,
    /// Privacy budget the run was calibrated to (`None` for non-private
    /// methods and CELF).
    pub epsilon: Option<f64>,
    /// Calibrated noise multiplier (0 when non-private).
    pub sigma: f64,
    /// Subgraph container size `m` (0 for non-learning methods).
    pub container_size: usize,
    /// Empirical max node occurrence across subgraphs.
    pub max_occurrence: u32,
    /// Theoretical occurrence bound fed to the accountant.
    pub occurrence_bound: u64,
    /// Preprocessing wall time (projection + sampling + tensor prep).
    pub preprocess_secs: f64,
    /// Total training wall time.
    pub train_secs: f64,
    /// Per-epoch training time, where one epoch is one pass over the
    /// container (`m / B` iterations) — Table III's unit.
    pub per_epoch_secs: f64,
    /// DP-SGD iterations run.
    pub train_iters: usize,
    /// The selected seed set.
    pub seeds: Vec<NodeId>,
    /// Final training loss (mean over the last batch; 0 for non-learning
    /// methods).
    pub final_loss: f64,
}

impl privim_rt::json::ToJson for MethodOutput {
    fn to_json(&self) -> privim_rt::json::Value {
        use privim_rt::json::Value;
        Value::obj(vec![
            ("method", self.method.to_json()),
            ("spread", self.spread.to_json()),
            ("coverage_ratio", self.coverage_ratio.to_json()),
            ("epsilon", self.epsilon.to_json()),
            ("sigma", self.sigma.to_json()),
            ("container_size", self.container_size.to_json()),
            ("max_occurrence", self.max_occurrence.to_json()),
            ("occurrence_bound", self.occurrence_bound.to_json()),
            ("preprocess_secs", self.preprocess_secs.to_json()),
            ("train_secs", self.train_secs.to_json()),
            ("per_epoch_secs", self.per_epoch_secs.to_json()),
            ("train_iters", self.train_iters.to_json()),
            ("seeds", self.seeds.to_json()),
            ("final_loss", self.final_loss.to_json()),
        ])
    }
}

impl MethodOutput {
    /// Parse the [`privim_rt::json::ToJson`] form back.
    pub fn from_json(v: &privim_rt::json::Value) -> Result<MethodOutput, String> {
        let f = |name: &str| {
            v.get(name)
                .and_then(|x| x.as_f64())
                .ok_or_else(|| format!("MethodOutput: missing {name}"))
        };
        Ok(MethodOutput {
            method: v
                .get("method")
                .and_then(|x| x.as_str())
                .ok_or("MethodOutput: missing method")?
                .to_string(),
            spread: f("spread")?,
            coverage_ratio: f("coverage_ratio")?,
            epsilon: match v.get("epsilon") {
                None | Some(privim_rt::json::Value::Null) => None,
                Some(x) => Some(x.as_f64().ok_or("MethodOutput: bad epsilon")?),
            },
            sigma: f("sigma")?,
            container_size: f("container_size")? as usize,
            max_occurrence: f("max_occurrence")? as u32,
            occurrence_bound: f("occurrence_bound")? as u64,
            preprocess_secs: f("preprocess_secs")?,
            train_secs: f("train_secs")?,
            per_epoch_secs: f("per_epoch_secs")?,
            train_iters: f("train_iters")? as usize,
            seeds: v
                .get("seeds")
                .and_then(|x| x.as_array())
                .ok_or("MethodOutput: missing seeds")?
                .iter()
                .map(|x| x.as_u64().map(|s| s as NodeId))
                .collect::<Option<_>>()
                .ok_or("MethodOutput: bad seed entry")?,
            final_loss: f("final_loss")?,
        })
    }

    /// A non-learning output (CELF / heuristics) with zeroed training
    /// fields.
    pub fn non_learning(
        method: &str,
        spread: f64,
        coverage_ratio: f64,
        seeds: Vec<NodeId>,
    ) -> Self {
        MethodOutput {
            method: method.to_string(),
            spread,
            coverage_ratio,
            epsilon: None,
            sigma: 0.0,
            container_size: 0,
            max_occurrence: 0,
            occurrence_bound: 0,
            preprocess_secs: 0.0,
            train_secs: 0.0,
            per_epoch_secs: 0.0,
            train_iters: 0,
            seeds,
            final_loss: 0.0,
        }
    }
}

/// The two sides of a privacy claim for one trained model: the RDP
/// accountant's analytical upper bound and the attack harness's empirical
/// lower bound. A sound DP implementation must keep
/// `empirical_epsilon_lb ≤ accounted_epsilon` — the CI attack canary fails
/// the build when this table reports otherwise.
#[derive(Clone, Debug)]
pub struct PrivacyEvidence {
    /// Accountant's `ε` upper bound (Theorem 3 + Theorem 1 composition).
    pub accounted_epsilon: f64,
    /// The `δ` both bounds are stated at.
    pub delta: f64,
    /// Empirical `ε` lower bound from the membership-inference attack
    /// (max over thresholds of the TPR/FPR likelihood-ratio bound).
    pub empirical_epsilon_lb: f64,
    /// Best membership-attack advantage `TPR − FPR` over all thresholds.
    pub membership_advantage: f64,
    /// Membership-attack AUC (0.5 = blind guessing).
    pub membership_auc: f64,
    /// Topology-inference (edge reconstruction) AUC.
    pub topology_auc: f64,
    /// Topology-attack advantage at the evaluation FPR.
    pub topology_advantage: f64,
    /// Shadow models trained for calibration.
    pub shadow_models: usize,
    /// Target models attacked (IN/OUT pairs).
    pub attack_targets: usize,
    /// Seed of the deterministic attack loop.
    pub attack_seed: u64,
}

impl PrivacyEvidence {
    /// Does the empirical evidence stay below the analytical bound?
    /// This is the invariant the CI canary enforces.
    pub fn consistent(&self) -> bool {
        self.empirical_epsilon_lb.is_finite()
            && self.empirical_epsilon_lb <= self.accounted_epsilon
    }

    /// Slack between the bounds (`accounted − empirical`); negative means
    /// the implementation leaks more than it accounts for.
    pub fn slack(&self) -> f64 {
        self.accounted_epsilon - self.empirical_epsilon_lb
    }

    /// Parse the [`privim_rt::json::ToJson`] form back.
    pub fn from_json(v: &privim_rt::json::Value) -> Result<PrivacyEvidence, String> {
        let f = |name: &str| {
            v.get(name)
                .and_then(|x| x.as_f64())
                .ok_or_else(|| format!("PrivacyEvidence: missing {name}"))
        };
        Ok(PrivacyEvidence {
            accounted_epsilon: f("accounted_epsilon")?,
            delta: f("delta")?,
            empirical_epsilon_lb: f("empirical_epsilon_lb")?,
            membership_advantage: f("membership_advantage")?,
            membership_auc: f("membership_auc")?,
            topology_auc: f("topology_auc")?,
            topology_advantage: f("topology_advantage")?,
            shadow_models: f("shadow_models")? as usize,
            attack_targets: f("attack_targets")? as usize,
            attack_seed: f("attack_seed")? as u64,
        })
    }

    /// One row of the EXPERIMENTS.md evidence table:
    /// `| ε (accounted) | ε̂ (empirical LB) | slack | mem AUC | topo AUC |`.
    pub fn markdown_row(&self, label: &str) -> String {
        format!(
            "| {label} | {:.4} | {:.4} | {:.4} | {:.3} | {:.3} |",
            self.accounted_epsilon,
            self.empirical_epsilon_lb,
            self.slack(),
            self.membership_auc,
            self.topology_auc,
        )
    }
}

impl privim_rt::json::ToJson for PrivacyEvidence {
    fn to_json(&self) -> privim_rt::json::Value {
        use privim_rt::json::Value;
        Value::obj(vec![
            ("accounted_epsilon", self.accounted_epsilon.to_json()),
            ("delta", self.delta.to_json()),
            ("empirical_epsilon_lb", self.empirical_epsilon_lb.to_json()),
            ("membership_advantage", self.membership_advantage.to_json()),
            ("membership_auc", self.membership_auc.to_json()),
            ("topology_auc", self.topology_auc.to_json()),
            ("topology_advantage", self.topology_advantage.to_json()),
            ("shadow_models", self.shadow_models.to_json()),
            ("attack_targets", self.attack_targets.to_json()),
            ("attack_seed", self.attack_seed.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        use privim_rt::json::{ToJson, Value};
        let out = MethodOutput::non_learning("celf", 123.0, 100.0, vec![1, 2, 3]);
        let json = out.to_json().to_json_string();
        let back = MethodOutput::from_json(&Value::parse(&json).unwrap()).unwrap();
        assert_eq!(back.method, "celf");
        assert_eq!(back.seeds, vec![1, 2, 3]);
        assert_eq!(back.spread, 123.0);
        assert_eq!(back.epsilon, None);
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join("privim_results_test_aw");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        write_atomic(&path, "{\"v\": 1}").unwrap();
        write_atomic(&path, "{\"v\": 2}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\": 2}");
        assert!(!dir.join("out.json.tmp").exists(), "tmp file left behind");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_to_bad_path_is_typed_io_error() {
        let err = write_atomic("/nonexistent-dir-privim/out.json", "x").unwrap_err();
        assert!(matches!(err, privim_rt::PrivimError::Io { .. }), "{err}");
    }

    #[test]
    fn privacy_evidence_roundtrip_and_consistency() {
        use privim_rt::json::{ToJson, Value};
        let ev = PrivacyEvidence {
            accounted_epsilon: 2.0,
            delta: 1e-5,
            empirical_epsilon_lb: 0.4,
            membership_advantage: 0.1,
            membership_auc: 0.55,
            topology_auc: 0.6,
            topology_advantage: 0.15,
            shadow_models: 4,
            attack_targets: 8,
            attack_seed: 77,
        };
        assert!(ev.consistent());
        assert!((ev.slack() - 1.6).abs() < 1e-12);
        let back =
            PrivacyEvidence::from_json(&Value::parse(&ev.to_json().to_json_string()).unwrap())
                .unwrap();
        assert_eq!(back.accounted_epsilon, 2.0);
        assert_eq!(back.empirical_epsilon_lb, 0.4);
        assert_eq!(back.shadow_models, 4);
        assert_eq!(back.attack_seed, 77);
        let leaky = PrivacyEvidence {
            empirical_epsilon_lb: 2.5,
            ..ev.clone()
        };
        assert!(!leaky.consistent(), "leak must flip the invariant");
        let row = ev.markdown_row("grat");
        assert!(row.starts_with("| grat |") && row.contains("2.0000"), "{row}");
    }

    #[test]
    fn json_roundtrip_with_epsilon() {
        use privim_rt::json::{ToJson, Value};
        let mut out = MethodOutput::non_learning("privim*", 10.0, 80.0, vec![7]);
        out.epsilon = Some(2.0);
        out.sigma = 1.5;
        let back = MethodOutput::from_json(&Value::parse(&out.to_json().to_json_string()).unwrap())
            .unwrap();
        assert_eq!(back.epsilon, Some(2.0));
        assert_eq!(back.sigma, 1.5);
    }
}

//! Structured experiment outputs consumed by the bench harness and
//! EXPERIMENTS.md tooling.

use privim_graph::NodeId;
use serde::{Deserialize, Serialize};

/// Everything one method run produces: utility, privacy, and cost — the
/// union of what Figure 5, Table II and Table III report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MethodOutput {
    /// Method name (`privim*`, `privim+scs`, `privim`, `non-private`,
    /// `egn`, `hp`, `hp-grat`, `celf`, ...).
    pub method: String,
    /// Influence spread of the selected seed set (evaluation setting:
    /// exact one-step coverage).
    pub spread: f64,
    /// Coverage ratio vs CELF, percent.
    pub coverage_ratio: f64,
    /// Privacy budget the run was calibrated to (`None` for non-private
    /// methods and CELF).
    pub epsilon: Option<f64>,
    /// Calibrated noise multiplier (0 when non-private).
    pub sigma: f64,
    /// Subgraph container size `m` (0 for non-learning methods).
    pub container_size: usize,
    /// Empirical max node occurrence across subgraphs.
    pub max_occurrence: u32,
    /// Theoretical occurrence bound fed to the accountant.
    pub occurrence_bound: u64,
    /// Preprocessing wall time (projection + sampling + tensor prep).
    pub preprocess_secs: f64,
    /// Total training wall time.
    pub train_secs: f64,
    /// Per-epoch training time, where one epoch is one pass over the
    /// container (`m / B` iterations) — Table III's unit.
    pub per_epoch_secs: f64,
    /// DP-SGD iterations run.
    pub train_iters: usize,
    /// The selected seed set.
    pub seeds: Vec<NodeId>,
    /// Final training loss (mean over the last batch; 0 for non-learning
    /// methods).
    pub final_loss: f64,
}

impl MethodOutput {
    /// A non-learning output (CELF / heuristics) with zeroed training
    /// fields.
    pub fn non_learning(method: &str, spread: f64, coverage_ratio: f64, seeds: Vec<NodeId>) -> Self {
        MethodOutput {
            method: method.to_string(),
            spread,
            coverage_ratio,
            epsilon: None,
            sigma: 0.0,
            container_size: 0,
            max_occurrence: 0,
            occurrence_bound: 0,
            preprocess_secs: 0.0,
            train_secs: 0.0,
            per_epoch_secs: 0.0,
            train_iters: 0,
            seeds,
            final_loss: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serde_roundtrip() {
        let out = MethodOutput::non_learning("celf", 123.0, 100.0, vec![1, 2, 3]);
        let json = serde_json::to_string(&out).unwrap();
        let back: MethodOutput = serde_json::from_str(&json).unwrap();
        assert_eq!(back.method, "celf");
        assert_eq!(back.seeds, vec![1, 2, 3]);
        assert_eq!(back.spread, 123.0);
    }
}

#![warn(missing_docs)]
//! # privim-attack
//!
//! Empirical privacy attack harness for PrivIM: measures what an actual
//! adversary extracts from trained models and served outputs, and reports
//! an empirical ε *lower* bound next to the RDP accountant's analytical
//! *upper* bound. A sound DP implementation keeps the empirical bound
//! below the accounted one — `scripts/ci.sh`'s attack canary fails the
//! build otherwise.
//!
//! Two attacks:
//!
//! - **Membership inference** ([`membership`]): IN/OUT worlds per target
//!   node, shadow-model calibration (LiRA-style z-scores), ROC inversion
//!   of the DP constraint `TPR ≤ e^ε·FPR + δ` with Hoeffding
//!   finite-sample correction.
//! - **Topology inference** ([`topology`]): edge reconstruction from
//!   embedding cosine similarity or served score similarity — structural
//!   leakage evidence reported alongside the ε comparison.
//!
//! Everything is seeded through `privim_rt`: the same config produces
//! bit-identical reports, so the CI canary is reproducible.

pub mod bound;
pub mod membership;
pub mod probe;
pub mod shadow;
pub mod topology;

pub use bound::{advantage_epsilon_lb, auc, empirical_epsilon_lb, BoundConfig};
pub use membership::{membership_attack, MembershipAttackConfig, MembershipReport};
pub use probe::{dense_scores, scores_from_embed_json};
pub use shadow::{calibrate, ShadowCalibration};
pub use topology::{
    topology_attack_embeddings, topology_attack_scores, TopologyAttackConfig, TopologyReport,
};

use privim::{PrivacyEvidence, audit::AuditConfig};
use privim_dp::{best_epsilon, PrivacyParams};
use privim_graph::Graph;
use privim_rt::{ChaCha8Rng, PrivimResult, SeedableRng};

/// Run the full harness — membership attack, topology attack on a trained
/// model's embeddings, and the accountant read-out — and assemble the
/// [`PrivacyEvidence`] table the canary asserts on.
///
/// The accounted ε uses the *worst case* over everything the attack
/// actually trained: the smallest subgraph container observed (largest
/// subsampling ratio). The empirical side is the membership attack's
/// confidence-adjusted lower bound; topology AUC/advantage ride along as
/// structural-leakage evidence.
// privim-lint: allow(dp-taint, reason = "adversary-side auditor: consumes raw embeddings by design to measure leakage; returns only aggregate attack statistics (AUC, epsilon lower bound), never the embeddings")
pub fn privacy_evidence(
    g: &Graph,
    cfg: &MembershipAttackConfig,
    topo: &TopologyAttackConfig,
) -> PrivimResult<PrivacyEvidence> {
    let mem = membership_attack(g, cfg)?;

    // Topology attack against a model trained on the full graph with the
    // same DP settings (a fresh seed disjoint from the attack's strides).
    let (model, topo_container) = privim::train_probe_model(
        g,
        &cfg.train,
        cfg.train.seed + 90_000,
        cfg.train.seed + 90_001,
    )?;
    let emb = model.embed_graph(g);
    let topo_rep = topology_attack_embeddings(g, &emb, topo)?;

    let accounted = accounted_epsilon(&cfg.train, mem.min_container.min(topo_container))?;
    Ok(PrivacyEvidence {
        accounted_epsilon: accounted,
        delta: cfg.bound.delta,
        empirical_epsilon_lb: mem.epsilon_lb,
        membership_advantage: mem.advantage,
        membership_auc: mem.auc,
        topology_auc: topo_rep.auc,
        topology_advantage: topo_rep.advantage,
        shadow_models: cfg.shadows,
        attack_targets: cfg.train.targets,
        attack_seed: cfg.train.seed,
    })
}

/// The accountant's ε upper bound for the attack's training configuration,
/// at the worst-case (smallest) container size the harness observed.
/// `σ = 0` (non-private training) maps to ε = ∞.
pub fn accounted_epsilon(train: &AuditConfig, min_container: usize) -> PrivimResult<f64> {
    if train.sigma <= 0.0 {
        return Ok(f64::INFINITY);
    }
    let params = PrivacyParams {
        n_g: train.threshold as u64,
        batch: train.batch as u64,
        container: (min_container.max(1)) as u64,
        steps: train.iters as u64,
    };
    Ok(best_epsilon(train.sigma, 1e-5, &params))
}

/// Convenience wrapper for the CI canary: build a BA graph of `nodes`,
/// run canary-scale attacks, and return the evidence.
pub fn canary_evidence(nodes: usize, sigma: f64, seed: u64) -> PrivimResult<PrivacyEvidence> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = privim_graph::generators::barabasi_albert(nodes, 3, &mut rng).with_uniform_weights(1.0);
    privacy_evidence(
        &g,
        &MembershipAttackConfig::canary(sigma, seed),
        &TopologyAttackConfig::canary(seed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evidence_is_consistent_and_deterministic_on_a_trained_model() {
        // The acceptance criterion in miniature: empirical lower bound
        // must not exceed the accounted upper bound, and the whole
        // harness must be bit-reproducible.
        let mut rng = ChaCha8Rng::seed_from_u64(71);
        let g = privim_graph::generators::barabasi_albert(60, 3, &mut rng)
            .with_uniform_weights(1.0);
        let cfg = MembershipAttackConfig {
            train: AuditConfig {
                targets: 2,
                sigma: 1.5,
                threshold: 4,
                iters: 4,
                batch: 4,
                seed: 13,
            },
            shadows: 1,
            bound: BoundConfig::at_delta(1e-5),
        };
        let topo = TopologyAttackConfig { pairs: 24, seed: 13 };
        let a = privacy_evidence(&g, &cfg, &topo).unwrap();
        let b = privacy_evidence(&g, &cfg, &topo).unwrap();
        assert!(a.consistent(), "empirical {} vs accounted {}", a.empirical_epsilon_lb, a.accounted_epsilon);
        assert_eq!(a.empirical_epsilon_lb.to_bits(), b.empirical_epsilon_lb.to_bits());
        assert_eq!(a.accounted_epsilon.to_bits(), b.accounted_epsilon.to_bits());
        assert_eq!(a.topology_auc.to_bits(), b.topology_auc.to_bits());
        assert!(a.accounted_epsilon.is_finite());
    }

    #[test]
    fn non_private_training_accounts_to_infinity() {
        let cfg = AuditConfig {
            targets: 2,
            sigma: 0.0,
            threshold: 4,
            iters: 4,
            batch: 4,
            seed: 1,
        };
        assert!(accounted_epsilon(&cfg, 30).unwrap().is_infinite());
    }
}

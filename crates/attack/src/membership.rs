//! Node membership-inference attack with shadow calibration.
//!
//! For each target node `v` the harness trains an IN model (on the full
//! graph) and an OUT model (on the graph with `v` removed), both through
//! the same DP-SGD path the accountant covers, and asks whether the
//! calibrated score at `v` separates the two worlds. The per-target
//! z-scores feed the ROC machinery in [`crate::bound`] to produce an
//! empirical ε lower bound next to the accountant's upper bound.

use crate::bound::{advantage_epsilon_lb, auc, empirical_epsilon_lb, BoundConfig};
use crate::shadow::calibrate;
use privim::audit::{train_probe_model, AuditConfig};
use privim::best_threshold_advantage;
use privim_gnn::GnnModel;
use privim_graph::{induced_subgraph, Graph, NodeId};
use privim_rt::{ChaCha8Rng, PrivimError, PrivimResult, Rng, SeedableRng};

/// Configuration of one calibrated membership-inference attack.
#[derive(Clone, Copy, Debug)]
pub struct MembershipAttackConfig {
    /// Training/DP settings shared by target and shadow models.
    pub train: AuditConfig,
    /// OUT-world shadow models per target (calibration references).
    pub shadows: usize,
    /// Statistical settings of the reported ε lower bound.
    pub bound: BoundConfig,
}

impl MembershipAttackConfig {
    /// Canary-scale attack: few targets, two shadows, short training.
    pub fn canary(sigma: f64, seed: u64) -> Self {
        MembershipAttackConfig {
            train: AuditConfig {
                targets: 4,
                sigma,
                threshold: 4,
                iters: 12,
                batch: 6,
                seed,
            },
            shadows: 2,
            bound: BoundConfig::at_delta(1e-5),
        }
    }
}

/// Outcome of a membership-inference attack.
#[derive(Clone, Debug)]
pub struct MembershipReport {
    /// Calibrated per-target statistics, IN world.
    pub in_stats: Vec<f64>,
    /// Calibrated per-target statistics, OUT world.
    pub out_stats: Vec<f64>,
    /// Attack AUC (0.5 = blind).
    pub auc: f64,
    /// Best-threshold advantage `max |TPR − FPR|`.
    pub advantage: f64,
    /// Confidence-adjusted empirical ε lower bound (max of the ROC
    /// inversion and the advantage inversion).
    pub epsilon_lb: f64,
    /// Smallest subgraph-container size observed across all trainings —
    /// the worst case for the accountant's subsampling ratio.
    pub min_container: usize,
    /// Total models trained (targets × (2 + shadows)).
    pub models_trained: usize,
}

/// Run the calibrated attack against graphs drawn from `g`. Fully
/// deterministic: all randomness flows from `cfg.train.seed` through
/// `privim_rt` RNGs.
// privim-lint: allow(dp-taint, reason = "the attack is the point: probes trained models' raw outputs to empirically lower-bound epsilon; the report holds aggregate rates and bounds only")
pub fn membership_attack(g: &Graph, cfg: &MembershipAttackConfig) -> PrivimResult<MembershipReport> {
    let t_cfg = &cfg.train;
    if t_cfg.targets < 2 {
        return Err(PrivimError::invalid("need at least two attack targets"));
    }
    if g.num_nodes() < 8 {
        return Err(PrivimError::empty("graph too small to attack (< 8 nodes)"));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(t_cfg.seed);
    let mut in_stats = Vec::with_capacity(t_cfg.targets);
    let mut out_stats = Vec::with_capacity(t_cfg.targets);
    let mut min_container = usize::MAX;
    let mut models_trained = 0usize;

    for t in 0..t_cfg.targets as u64 {
        let target: NodeId = rng.gen_range(0..g.num_nodes()) as NodeId;
        let probe = |model: &GnnModel| -> f64 { model.score_graph(g)[target as usize] };

        // OUT world: unbounded node DP — remove the node and its edges.
        let keep: Vec<NodeId> = g.nodes().filter(|&v| v != target).collect();
        let without = induced_subgraph(g, &keep);

        // Shadow calibration on the OUT world. Seed strides keep shadow,
        // IN-target and OUT-target model seeds disjoint.
        let shadow_base = t_cfg.seed + 10_000 + t * 100;
        let (cal, shadow_container) =
            calibrate(&without.graph, t_cfg, cfg.shadows, shadow_base, probe)?;
        min_container = min_container.min(shadow_container);
        models_trained += cal.count;

        let (in_model, c_in) =
            train_probe_model(g, t_cfg, t_cfg.seed + 1_000 + t, t_cfg.seed + t)?;
        let (out_model, c_out) = train_probe_model(
            &without.graph,
            t_cfg,
            t_cfg.seed + 5_000 + t,
            t_cfg.seed + 7_000 + t,
        )?;
        min_container = min_container.min(c_in.min(c_out));
        models_trained += 2;

        in_stats.push(cal.z_score(probe(&in_model)));
        out_stats.push(cal.z_score(probe(&out_model)));
    }

    let advantage = best_threshold_advantage(&in_stats, &out_stats);
    let slack = {
        // Same Hoeffding adjustment the ROC bound applies, on the pooled
        // sample size, before inverting the advantage cap.
        let n = in_stats.len().min(out_stats.len());
        let beta = (1.0 - cfg.bound.confidence).max(1e-12);
        ((2.0 / beta).ln() / (2.0 * n as f64)).sqrt()
    };
    let adv_lb = advantage_epsilon_lb((advantage - 2.0 * slack).max(0.0), cfg.bound.delta);
    let roc_lb = empirical_epsilon_lb(&in_stats, &out_stats, &cfg.bound)?;
    Ok(MembershipReport {
        auc: auc(&in_stats, &out_stats),
        advantage,
        epsilon_lb: roc_lb.max(adv_lb),
        min_container,
        models_trained,
        in_stats,
        out_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_graph(seed: u64) -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        privim_graph::generators::barabasi_albert(60, 3, &mut rng).with_uniform_weights(1.0)
    }

    fn tiny_cfg(seed: u64) -> MembershipAttackConfig {
        MembershipAttackConfig {
            train: AuditConfig {
                targets: 3,
                sigma: 1.5,
                threshold: 4,
                iters: 5,
                batch: 4,
                seed,
            },
            shadows: 1,
            bound: BoundConfig::at_delta(1e-5),
        }
    }

    #[test]
    fn attack_is_bit_deterministic() {
        let g = tiny_graph(41);
        let cfg = tiny_cfg(17);
        let a = membership_attack(&g, &cfg).unwrap();
        let b = membership_attack(&g, &cfg).unwrap();
        assert_eq!(a.in_stats, b.in_stats);
        assert_eq!(a.out_stats, b.out_stats);
        assert_eq!(a.epsilon_lb.to_bits(), b.epsilon_lb.to_bits());
        assert_eq!(a.auc.to_bits(), b.auc.to_bits());
        assert_eq!(a.models_trained, 3 * 3);
    }

    #[test]
    fn report_shape_and_ranges() {
        let g = tiny_graph(42);
        let r = membership_attack(&g, &tiny_cfg(23)).unwrap();
        assert_eq!(r.in_stats.len(), 3);
        assert_eq!(r.out_stats.len(), 3);
        assert!((0.0..=1.0).contains(&r.auc));
        assert!((0.0..=1.0).contains(&r.advantage));
        assert!(r.epsilon_lb >= 0.0 && r.epsilon_lb.is_finite());
        assert!(r.min_container >= 1);
    }

    #[test]
    fn degenerate_configs_are_typed_errors() {
        let g = tiny_graph(43);
        let mut cfg = tiny_cfg(1);
        cfg.train.targets = 1;
        assert!(membership_attack(&g, &cfg).is_err());
        let small = privim_graph::Graph::empty(4, false);
        assert!(membership_attack(&small, &tiny_cfg(1)).is_err());
    }
}

//! CI attack canary: run the canary-scale privacy attack harness on a
//! tiny synthetic graph and fail the build if the *empirical* ε lower
//! bound ever exceeds the accountant's *analytical* upper bound — the one
//! ordering a correct DP implementation can never violate.
//!
//! ```text
//! attack-canary [--nodes 60] [--sigma 1.5] [--seed 2024]
//! ```
//!
//! Exit status: 0 when the evidence is consistent, 1 when the empirical
//! bound exceeds the accounted one (a privacy regression), 2 on usage or
//! harness errors.

use privim_attack::canary_evidence;
use std::process::exit;

fn usage() -> ! {
    eprintln!("usage: attack-canary [--nodes 60] [--sigma 1.5] [--seed 2024]");
    exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut nodes = 60usize;
    let mut sigma = 1.5f64;
    let mut seed = 2024u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().cloned().unwrap_or_else(|| usage());
        match a.as_str() {
            "--nodes" => nodes = val().parse().unwrap_or_else(|_| usage()),
            "--sigma" => sigma = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }

    let evidence = match canary_evidence(nodes, sigma, seed) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("attack-canary: harness error: {e}");
            exit(2)
        }
    };

    println!("| run | ε (accounted) | ε̂ (empirical LB) | slack | mem AUC | topo AUC |");
    println!("|---|---|---|---|---|---|");
    println!(
        "{}",
        evidence.markdown_row(&format!("canary(n={nodes}, σ={sigma}, seed={seed})"))
    );
    println!(
        "targets={} shadows={} δ={} membership_advantage={:.3} topology_advantage={:.3}",
        evidence.attack_targets,
        evidence.shadow_models,
        evidence.delta,
        evidence.membership_advantage,
        evidence.topology_advantage,
    );

    if !evidence.consistent() {
        eprintln!(
            "attack-canary: FAIL — empirical ε lower bound {:.4} exceeds accounted ε {:.4} \
             (the attack extracts more than the accountant admits; this is a privacy regression)",
            evidence.empirical_epsilon_lb, evidence.accounted_epsilon
        );
        exit(1)
    }
    println!(
        "attack-canary: OK — empirical {:.4} ≤ accounted {:.4} (slack {:.4})",
        evidence.empirical_epsilon_lb,
        evidence.accounted_epsilon,
        evidence.slack()
    );
}

//! Shadow-model calibration (LiRA-style, single-sided).
//!
//! A raw score threshold conflates "this node is influential" with "this
//! node was trained on": hubs get high seed probabilities in *both*
//! worlds. Calibration fixes this by training `k` shadow models on the
//! OUT world (target removed) and normalising the observed score into a
//! z-score against the shadow distribution — the attack statistic becomes
//! "how surprising is this score if the node was NOT in training", which
//! is exactly the likelihood-ratio test LiRA approximates.

use privim::audit::{train_probe_model, AuditConfig};
use privim_gnn::GnnModel;
use privim_graph::Graph;
use privim_rt::PrivimResult;

/// The OUT-world reference distribution for one target node.
#[derive(Clone, Copy, Debug)]
pub struct ShadowCalibration {
    /// Mean shadow score.
    pub mean: f64,
    /// Shadow score standard deviation (floored to stay usable when all
    /// shadows agree).
    pub std: f64,
    /// Shadow models trained.
    pub count: usize,
}

impl ShadowCalibration {
    /// Normalise an observed score against the shadow distribution.
    pub fn z_score(&self, observed: f64) -> f64 {
        (observed - self.mean) / self.std
    }
}

/// Train `shadows` OUT-world models on `g_out` (the graph with the target
/// already removed) and summarise the probe statistic's distribution.
/// Seeds are derived from `base_seed` per shadow index, disjoint from the
/// target-model seed space by construction (callers pass distinct strides).
/// Also returns the smallest subgraph-container size seen, for worst-case
/// accounting. `probe` maps a trained model to the attack statistic.
// privim-lint: allow(dp-taint, reason = "shadow-model calibration evaluates probes on raw model outputs to build the attacker's null distribution; only summary statistics leave this fn")
pub fn calibrate(
    g_out: &Graph,
    cfg: &AuditConfig,
    shadows: usize,
    base_seed: u64,
    probe: impl Fn(&GnnModel) -> f64,
) -> PrivimResult<(ShadowCalibration, usize)> {
    let mut scores = Vec::with_capacity(shadows.max(1));
    let mut min_container = usize::MAX;
    for s in 0..shadows.max(1) as u64 {
        let (model, container) =
            train_probe_model(g_out, cfg, base_seed + 2 * s, base_seed + 2 * s + 1)?;
        min_container = min_container.min(container);
        scores.push(probe(&model));
    }
    let n = scores.len() as f64;
    let mean = scores.iter().sum::<f64>() / n;
    let var = scores.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    // Floor the spread: with one shadow (or degenerate agreement) the
    // z-score degrades to a plain centred difference instead of dividing
    // by zero.
    let std = var.sqrt().max(1e-6);
    Ok((
        ShadowCalibration {
            mean,
            std,
            count: scores.len(),
        },
        min_container,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_score_centres_and_scales() {
        let cal = ShadowCalibration {
            mean: 0.4,
            std: 0.1,
            count: 4,
        };
        assert!((cal.z_score(0.6) - 2.0).abs() < 1e-12);
        assert!((cal.z_score(0.4)).abs() < 1e-12);
        assert!((cal.z_score(0.3) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn calibration_is_deterministic_and_reports_container() {
        let mut rng = privim_rt::ChaCha8Rng::seed_from_u64(11);
        use privim_rt::SeedableRng as _;
        let g = privim_graph::generators::barabasi_albert(60, 3, &mut rng)
            .with_uniform_weights(1.0);
        let cfg = AuditConfig {
            targets: 2,
            sigma: 1.0,
            threshold: 4,
            iters: 4,
            batch: 4,
            seed: 9,
        };
        let probe = |m: &GnnModel| m.score_graph(&g)[3];
        let (a, ca) = calibrate(&g, &cfg, 2, 500, probe).unwrap();
        let (b, cb) = calibrate(&g, &cfg, 2, 500, probe).unwrap();
        assert_eq!(a.mean.to_bits(), b.mean.to_bits());
        assert_eq!(a.std.to_bits(), b.std.to_bits());
        assert_eq!(ca, cb);
        assert_eq!(a.count, 2);
        assert!(ca >= 1 && ca < usize::MAX);
    }
}

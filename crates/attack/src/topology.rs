//! Topology-inference attack: edge reconstruction from model outputs.
//!
//! A released GNN's node embeddings (or even its scalar seed scores) carry
//! graph structure: message passing makes adjacent nodes' hidden states
//! similar. The attacker scores node pairs by embedding cosine similarity
//! (or negative score distance when only `/v1/embed` scalar outputs are
//! visible) and tries to separate true edges from non-edges. The reported
//! AUC/advantage quantify structural leakage; note this attack targets
//! *edge* privacy, which node-level DP upper-bounds only indirectly, so it
//! is reported as evidence alongside — not inside — the ε comparison.

use privim_graph::Graph;
use privim_rt::{ChaCha8Rng, PrivimError, PrivimResult, Rng, SeedableRng};
use privim_tensor::Matrix;

use crate::bound::auc;
use privim::best_threshold_advantage;

/// Configuration of one edge-reconstruction attack.
#[derive(Clone, Copy, Debug)]
pub struct TopologyAttackConfig {
    /// Edge / non-edge pairs sampled (each side).
    pub pairs: usize,
    /// RNG seed for pair sampling.
    pub seed: u64,
}

impl TopologyAttackConfig {
    /// Canary-scale attack.
    pub fn canary(seed: u64) -> Self {
        TopologyAttackConfig { pairs: 64, seed }
    }
}

/// Outcome of an edge-reconstruction attack.
#[derive(Clone, Debug)]
pub struct TopologyReport {
    /// Similarity statistics on true edges.
    pub edge_sims: Vec<f64>,
    /// Similarity statistics on sampled non-edges.
    pub non_edge_sims: Vec<f64>,
    /// Attack AUC (0.5 = structure not recoverable).
    pub auc: f64,
    /// Best-threshold advantage.
    pub advantage: f64,
}

fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let (mut dot, mut na, mut nb) = (0.0f64, 0.0f64, 0.0f64);
    for (x, y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    let denom = (na.sqrt() * nb.sqrt()).max(1e-12);
    dot / denom
}

/// Sample `pairs` true arcs and `pairs` non-adjacent pairs, seeded.
fn sample_pairs(g: &Graph, cfg: &TopologyAttackConfig) -> PrivimResult<(Vec<(u32, u32)>, Vec<(u32, u32)>)> {
    let n = g.num_nodes();
    if n < 4 || g.num_arcs() == 0 {
        return Err(PrivimError::empty("graph too small for topology attack"));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let arcs: Vec<(u32, u32)> = g.arcs().map(|(u, v, _)| (u, v)).collect();
    let mut edges = Vec::with_capacity(cfg.pairs);
    for _ in 0..cfg.pairs {
        edges.push(arcs[rng.gen_range(0..arcs.len())]);
    }
    let mut non_edges = Vec::with_capacity(cfg.pairs);
    let mut guard = 0usize;
    while non_edges.len() < cfg.pairs {
        guard += 1;
        if guard > cfg.pairs * 200 {
            return Err(PrivimError::invalid(
                "graph too dense to sample non-edges",
            ));
        }
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u != v && !g.has_arc(u, v) && !g.has_arc(v, u) {
            non_edges.push((u, v));
        }
    }
    Ok((edges, non_edges))
}

/// Edge reconstruction from an `n × d` embedding matrix (the model's
/// penultimate activations, `GnnModel::embed`). Pair statistic: cosine
/// similarity of the two rows.
pub fn topology_attack_embeddings(
    g: &Graph,
    embeddings: &Matrix,
    cfg: &TopologyAttackConfig,
) -> PrivimResult<TopologyReport> {
    if embeddings.rows() != g.num_nodes() {
        return Err(PrivimError::invalid(format!(
            "embedding rows {} != graph nodes {}",
            embeddings.rows(),
            g.num_nodes()
        )));
    }
    let (edges, non_edges) = sample_pairs(g, cfg)?;
    let sim = |(u, v): &(u32, u32)| cosine(embeddings.row(*u as usize), embeddings.row(*v as usize));
    let edge_sims: Vec<f64> = edges.iter().map(sim).collect();
    let non_edge_sims: Vec<f64> = non_edges.iter().map(sim).collect();
    Ok(TopologyReport {
        auc: auc(&edge_sims, &non_edge_sims),
        advantage: best_threshold_advantage(&edge_sims, &non_edge_sims),
        edge_sims,
        non_edge_sims,
    })
}

/// Edge reconstruction when the attacker only sees scalar per-node scores
/// (the `/v1/embed` serving surface). Pair statistic: negative absolute
/// score distance — adjacent nodes receive correlated scores.
pub fn topology_attack_scores(
    g: &Graph,
    scores: &[f64],
    cfg: &TopologyAttackConfig,
) -> PrivimResult<TopologyReport> {
    if scores.len() != g.num_nodes() {
        return Err(PrivimError::invalid(format!(
            "score count {} != graph nodes {}",
            scores.len(),
            g.num_nodes()
        )));
    }
    let (edges, non_edges) = sample_pairs(g, cfg)?;
    let sim = |(u, v): &(u32, u32)| -(scores[*u as usize] - scores[*v as usize]).abs();
    let edge_sims: Vec<f64> = edges.iter().map(sim).collect();
    let non_edge_sims: Vec<f64> = non_edges.iter().map(sim).collect();
    Ok(TopologyReport {
        auc: auc(&edge_sims, &non_edge_sims),
        advantage: best_threshold_advantage(&edge_sims, &non_edge_sims),
        edge_sims,
        non_edge_sims,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_gnn::{GnnConfig, GnnModel};

    fn graph(seed: u64) -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        privim_graph::generators::barabasi_albert(80, 3, &mut rng).with_uniform_weights(1.0)
    }

    #[test]
    fn attack_on_model_embeddings_is_deterministic() {
        let g = graph(3);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let model = GnnModel::new(GnnConfig::paper_default(), &mut rng);
        let emb = model.embed_graph(&g);
        let cfg = TopologyAttackConfig { pairs: 32, seed: 9 };
        let a = topology_attack_embeddings(&g, &emb, &cfg).unwrap();
        let b = topology_attack_embeddings(&g, &emb, &cfg).unwrap();
        assert_eq!(a.edge_sims, b.edge_sims);
        assert_eq!(a.auc.to_bits(), b.auc.to_bits());
        assert_eq!(a.edge_sims.len(), 32);
        assert_eq!(a.non_edge_sims.len(), 32);
        assert!((0.0..=1.0).contains(&a.auc));
    }

    #[test]
    fn planted_structure_is_recovered() {
        // Hand-built embeddings where adjacent nodes share a direction:
        // the attack must separate edges from non-edges almost perfectly.
        let g = graph(7);
        let n = g.num_nodes();
        // Community embedding: node i -> (cos θ_c, sin θ_c) of its cluster;
        // use neighbour-averaged one-hot-ish features instead: embed node u
        // as its own indicator smoothed over neighbours.
        let mut data = vec![0.0f64; n * n];
        for u in 0..n as u32 {
            data[u as usize * n + u as usize] = 1.0;
            for &v in g.out_neighbors(u) {
                data[u as usize * n + v as usize] = 1.0;
            }
        }
        let emb = Matrix::from_vec(n, n, data);
        let cfg = TopologyAttackConfig { pairs: 60, seed: 1 };
        let rep = topology_attack_embeddings(&g, &emb, &cfg).unwrap();
        assert!(rep.auc > 0.9, "planted structure must be recoverable: {}", rep.auc);
        assert!(rep.advantage > 0.5);
    }

    #[test]
    fn score_variant_and_error_paths() {
        let g = graph(11);
        let scores = vec![0.5; g.num_nodes()];
        let cfg = TopologyAttackConfig::canary(2);
        // constant scores: zero signal, AUC exactly 0.5 (all ties)
        let rep = topology_attack_scores(&g, &scores, &cfg).unwrap();
        assert!((rep.auc - 0.5).abs() < 1e-12);
        assert_eq!(rep.advantage, 0.0);
        // shape mismatches are typed errors
        assert!(topology_attack_scores(&g, &scores[1..], &cfg).is_err());
        let emb = Matrix::zeros(3, 2);
        assert!(topology_attack_embeddings(&g, &emb, &cfg).is_err());
    }
}

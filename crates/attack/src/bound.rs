//! Empirical epsilon lower bounds from attack score distributions.
//!
//! An `(ε, δ)`-DP mechanism constrains every adversary's ROC curve:
//! `TPR ≤ e^ε · FPR + δ` and, symmetrically, `(1 − FPR) ≤ e^ε (1 − TPR) + δ`.
//! Inverting at an observed operating point yields a *lower bound* on the
//! true ε of the mechanism:
//!
//! `ε ≥ ln((TPR − δ) / FPR)`   and   `ε ≥ ln((1 − FPR − δ) / (1 − TPR))`.
//!
//! Empirical TPR/FPR estimates at small sample sizes overstate the bound,
//! so we first shrink the operating point with a two-sided Hoeffding
//! confidence interval (the standard practice in DP auditing): with `n`
//! samples, the true rate lies within `sqrt(ln(2/β)/(2n))` of the
//! empirical one with probability `1 − β`. The reported bound therefore
//! holds with the configured confidence, and degrades gracefully to 0 when
//! there is not enough data to certify anything.

use privim_rt::{PrivimError, PrivimResult};

/// Configuration for the empirical-epsilon estimator.
#[derive(Clone, Copy, Debug)]
pub struct BoundConfig {
    /// The `δ` the audited guarantee is stated at.
    pub delta: f64,
    /// Confidence of the reported lower bound (e.g. 0.95). The Hoeffding
    /// slack `sqrt(ln(2/β)/(2n))` with `β = 1 − confidence` is applied to
    /// both TPR (down) and FPR (up) before inverting the DP constraint.
    pub confidence: f64,
}

impl BoundConfig {
    /// 95%-confidence bound at the given δ.
    pub fn at_delta(delta: f64) -> Self {
        BoundConfig {
            delta,
            confidence: 0.95,
        }
    }
}

/// Hoeffding deviation for `n` Bernoulli samples at confidence `1 − β`.
fn hoeffding_slack(n: usize, confidence: f64) -> f64 {
    let beta = (1.0 - confidence).max(1e-12);
    ((2.0 / beta).ln() / (2.0 * n as f64)).sqrt()
}

/// Empirical ROC of a one-dimensional attack statistic: for every
/// threshold (each observed score), `(TPR, FPR)` of the rule
/// `score ≥ threshold` predicting "IN". Returned points are raw empirical
/// rates, unadjusted.
pub fn roc_points(in_scores: &[f64], out_scores: &[f64]) -> Vec<(f64, f64)> {
    let mut cuts: Vec<f64> = in_scores.iter().chain(out_scores).copied().collect();
    cuts.sort_by(|a, b| a.total_cmp(b));
    cuts.dedup();
    cuts.iter()
        .map(|&c| {
            let tpr =
                in_scores.iter().filter(|&&s| s >= c).count() as f64 / in_scores.len() as f64;
            let fpr =
                out_scores.iter().filter(|&&s| s >= c).count() as f64 / out_scores.len() as f64;
            (tpr, fpr)
        })
        .collect()
}

/// Area under the ROC curve via the rank statistic
/// `P(in > out) + ½ P(in = out)` — 0.5 means the attack is blind.
pub fn auc(in_scores: &[f64], out_scores: &[f64]) -> f64 {
    if in_scores.is_empty() || out_scores.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0f64;
    for &a in in_scores {
        for &b in out_scores {
            if a > b {
                wins += 1.0;
            } else if a == b {
                wins += 0.5;
            }
        }
    }
    wins / (in_scores.len() as f64 * out_scores.len() as f64)
}

/// Confidence-adjusted empirical ε lower bound over all thresholds, in
/// both attack directions. Returns 0 when nothing can be certified (tiny
/// samples, blind attack). Errors on empty score sets.
pub fn empirical_epsilon_lb(
    in_scores: &[f64],
    out_scores: &[f64],
    cfg: &BoundConfig,
) -> PrivimResult<f64> {
    if in_scores.is_empty() || out_scores.is_empty() {
        return Err(PrivimError::empty("empirical_epsilon_lb needs scores"));
    }
    let slack_in = hoeffding_slack(in_scores.len(), cfg.confidence);
    let slack_out = hoeffding_slack(out_scores.len(), cfg.confidence);
    let mut best = 0.0f64;
    for (tpr, fpr) in roc_points(in_scores, out_scores) {
        // Conservative operating point: TPR shrunk, FPR grown.
        let tpr_lo = (tpr - slack_in).max(0.0);
        let fpr_hi = (fpr + slack_out).min(1.0);
        if fpr_hi > 0.0 && tpr_lo - cfg.delta > 0.0 {
            best = best.max(((tpr_lo - cfg.delta) / fpr_hi).ln());
        }
        // Mirror direction: the rule "score < threshold" predicting OUT.
        let tnr_lo = (1.0 - fpr - slack_out).max(0.0);
        let fnr_hi = (1.0 - tpr + slack_in).min(1.0);
        if fnr_hi > 0.0 && tnr_lo - cfg.delta > 0.0 {
            best = best.max(((tnr_lo - cfg.delta) / fnr_hi).ln());
        }
    }
    Ok(best)
}

/// ε lower bound implied by an attack advantage `adv = TPR − FPR` (already
/// confidence-adjusted by the caller): inverting the DP advantage cap
/// `adv ≤ (e^ε − 1 + 2δ)/(e^ε + 1)` gives
/// `ε ≥ ln((1 + adv − 2δ)/(1 − adv))`. Returns 0 for non-positive
/// advantage and ∞ as `adv → 1`.
pub fn advantage_epsilon_lb(advantage: f64, delta: f64) -> f64 {
    let adv = advantage.clamp(0.0, 1.0);
    if adv >= 1.0 {
        return f64::INFINITY;
    }
    let num = 1.0 + adv - 2.0 * delta;
    if num <= 1.0 - adv {
        return 0.0;
    }
    (num / (1.0 - adv)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BoundConfig {
        BoundConfig::at_delta(1e-5)
    }

    #[test]
    fn blind_attack_certifies_nothing() {
        let s: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let lb = empirical_epsilon_lb(&s, &s, &cfg()).unwrap();
        assert_eq!(lb, 0.0, "identical distributions must bound ε ≥ 0 only");
        assert!((auc(&s, &s) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perfect_separation_certifies_large_epsilon() {
        let inn: Vec<f64> = (0..400).map(|i| 10.0 + i as f64).collect();
        let out: Vec<f64> = (0..400).map(|i| -10.0 - i as f64).collect();
        let lb = empirical_epsilon_lb(&inn, &out, &cfg()).unwrap();
        // TPR_lo ≈ 1 − 0.068, FPR has no observed positives so the bound
        // comes from the Hoeffding-grown FPR ≈ 0.068: ln(0.93/0.068) ≈ 2.6.
        assert!(lb > 2.0, "separable at n=400 must certify ε > 2, got {lb}");
        assert!((auc(&inn, &out) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_samples_degrade_to_zero_not_overclaim() {
        // 4 + 4 perfectly separated scores: raw inversion would claim
        // ln(1/ε̂)-ish huge bounds; the confidence adjustment must refuse.
        let inn = [1.0, 1.1, 1.2, 1.3];
        let out = [0.0, 0.1, 0.2, 0.3];
        let lb = empirical_epsilon_lb(&inn, &out, &cfg()).unwrap();
        assert!(
            lb < 0.6,
            "n=4 cannot certify a large ε at 95% confidence, got {lb}"
        );
    }

    #[test]
    fn bound_grows_with_sample_size_at_fixed_separation() {
        let make = |n: usize| -> (Vec<f64>, Vec<f64>) {
            (
                (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.01).collect(),
                (0..n).map(|i| (i % 7) as f64 * 0.01).collect(),
            )
        };
        let (i1, o1) = make(20);
        let (i2, o2) = make(2000);
        let lb1 = empirical_epsilon_lb(&i1, &o1, &cfg()).unwrap();
        let lb2 = empirical_epsilon_lb(&i2, &o2, &cfg()).unwrap();
        assert!(lb2 > lb1, "more data must certify more: {lb1} vs {lb2}");
    }

    #[test]
    fn advantage_bound_inverts_the_advantage_cap() {
        assert_eq!(advantage_epsilon_lb(0.0, 0.0), 0.0);
        assert_eq!(advantage_epsilon_lb(-0.5, 0.0), 0.0);
        assert!(advantage_epsilon_lb(1.0, 0.0).is_infinite());
        // Round-trip through the forward cap used by core::audit.
        for eps in [0.25, 1.0, 3.0] {
            let adv = privim::dp_advantage_bound(eps, 0.0);
            let back = advantage_epsilon_lb(adv, 0.0);
            assert!((back - eps).abs() < 1e-9, "ε {eps} -> adv {adv} -> {back}");
        }
    }

    #[test]
    fn empty_scores_are_a_typed_error() {
        assert!(empirical_epsilon_lb(&[], &[1.0], &cfg()).is_err());
        assert!(empirical_epsilon_lb(&[1.0], &[], &cfg()).is_err());
    }

    #[test]
    fn roc_is_monotone_and_anchored() {
        let inn = [0.9, 0.8, 0.7, 0.2];
        let out = [0.1, 0.3, 0.4, 0.6];
        let pts = roc_points(&inn, &out);
        // thresholds ascend, so both rates must be non-increasing
        for w in pts.windows(2) {
            assert!(w[1].0 <= w[0].0 + 1e-12);
            assert!(w[1].1 <= w[0].1 + 1e-12);
        }
        // lowest threshold accepts everything
        assert_eq!(pts[0], (1.0, 1.0));
    }
}

//! Adapters from attack surfaces to score vectors.
//!
//! The harness attacks two surfaces: a [`privim_gnn::GnnModel`] held in
//! memory, and the JSON bodies privim-serve's `/v1/embed` endpoint
//! returns. This module parses the latter so the same topology attack runs
//! against live server output without the attack crate depending on the
//! server crate.

use privim_rt::json::Value;
use privim_rt::{PrivimError, PrivimResult};

/// Parse a `/v1/embed` response body (`{"scores": [[node, score], ...]}`)
/// into `(node, score)` pairs, in response order.
pub fn scores_from_embed_json(body: &str) -> PrivimResult<Vec<(u32, f64)>> {
    let v = Value::parse(body).map_err(|e| PrivimError::Parse(format!("embed body: {e}")))?;
    let rows = v
        .get("scores")
        .and_then(|s| s.as_array())
        .ok_or_else(|| PrivimError::Parse("embed body missing scores array".into()))?;
    rows.iter()
        .map(|row| {
            let pair = row
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| PrivimError::Parse("embed row is not a [node, score] pair".into()))?;
            let node = pair[0]
                .as_u64()
                .ok_or_else(|| PrivimError::Parse("embed row node is not an integer".into()))?;
            let score = pair[1]
                .as_f64()
                .ok_or_else(|| PrivimError::Parse("embed row score is not a number".into()))?;
            Ok((node as u32, score))
        })
        .collect()
}

/// Assemble a dense per-node score vector from `/v1/embed` pairs. Nodes
/// the server was not asked about get `fill` (attacks that need full
/// coverage should query every node). Errors when a node id is out of
/// range.
pub fn dense_scores(pairs: &[(u32, f64)], num_nodes: usize, fill: f64) -> PrivimResult<Vec<f64>> {
    let mut out = vec![fill; num_nodes];
    for &(node, score) in pairs {
        let slot = out.get_mut(node as usize).ok_or_else(|| {
            PrivimError::invalid(format!("embed node {node} out of range (n = {num_nodes})"))
        })?;
        *slot = score;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_server_shape() {
        let body = "{\"scores\": [[0, 0.25], [7, 0.5], [2, 0.125]]}";
        let pairs = scores_from_embed_json(body).unwrap();
        assert_eq!(pairs, vec![(0, 0.25), (7, 0.5), (2, 0.125)]);
        let dense = dense_scores(&pairs, 8, 0.0).unwrap();
        assert_eq!(dense[7], 0.5);
        assert_eq!(dense[1], 0.0);
    }

    #[test]
    fn malformed_bodies_are_typed_errors() {
        for bad in [
            "not json",
            "{}",
            "{\"scores\": 3}",
            "{\"scores\": [[1]]}",
            "{\"scores\": [[1, 2, 3]]}",
            "{\"scores\": [[\"x\", 1.0]]}",
        ] {
            assert!(scores_from_embed_json(bad).is_err(), "{bad}");
        }
        assert!(dense_scores(&[(9, 1.0)], 4, 0.0).is_err());
    }
}

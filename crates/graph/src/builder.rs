//! Mutable edge-list builder that produces an immutable CSR [`Graph`].

use crate::csr::{Graph, NodeId};

/// Accumulates edges and finalises them into CSR form.
///
/// Duplicate arcs are collapsed (keeping the first weight seen) and
/// self-loops are dropped — the IC model has no use for either, and the
/// sampler proofs (Lemma 1) assume simple graphs.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    directed: bool,
    edges: Vec<(NodeId, NodeId, f64)>,
}

impl GraphBuilder {
    /// Builder for a directed graph on `n` nodes.
    pub fn new_directed(n: usize) -> Self {
        Self::new(n, true)
    }

    /// Builder for an undirected graph on `n` nodes. Each added edge is
    /// materialised as two arcs at build time.
    pub fn new_undirected(n: usize) -> Self {
        Self::new(n, false)
    }

    fn new(n: usize, directed: bool) -> Self {
        assert!(n <= NodeId::MAX as usize, "too many nodes for u32 ids");
        GraphBuilder {
            n,
            directed,
            edges: Vec::new(),
        }
    }

    /// Number of nodes the builder was created with.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges added so far (before dedup).
    pub fn num_pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add an edge `u -> v` (or `u — v` for undirected builders) with IC
    /// weight `w`. Panics on out-of-range endpoints or weights.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: f64) {
        assert!((u as usize) < self.n, "source {u} out of range");
        assert!((v as usize) < self.n, "target {v} out of range");
        assert!((0.0..=1.0).contains(&w), "IC weight must lie in [0, 1]");
        self.edges.push((u, v, w));
    }

    /// Add an edge with the default weight 1.0 (the paper's evaluation
    /// setting).
    pub fn add_edge_unit(&mut self, u: NodeId, v: NodeId) {
        self.add_edge(u, v, 1.0);
    }

    /// True if `u -> v` was already added (linear scan; only for small
    /// builders / tests — generators use their own bookkeeping).
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edges
            .iter()
            .any(|&(a, b, _)| (a, b) == (u, v) || (!self.directed && (b, a) == (u, v)))
    }

    /// Finalise into an immutable CSR graph. `O(|E| log |E|)`.
    pub fn build(self) -> Graph {
        let GraphBuilder { n, directed, edges } = self;

        // Materialise arcs: undirected edges become two arcs.
        let mut arcs: Vec<(NodeId, NodeId, f64)> = if directed {
            edges
        } else {
            let mut a = Vec::with_capacity(edges.len() * 2);
            for (u, v, w) in edges {
                a.push((u, v, w));
                a.push((v, u, w));
            }
            a
        };

        // Drop self-loops, sort, dedup by (src, dst) keeping first weight.
        arcs.retain(|&(u, v, _)| u != v);
        arcs.sort_unstable_by_key(|&(u, v, _)| (u, v));
        arcs.dedup_by_key(|&mut (u, v, _)| (u, v));

        // Out-CSR.
        let mut out_offsets = vec![0usize; n + 1];
        for &(u, _, _) in &arcs {
            out_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let out_targets: Vec<NodeId> = arcs.iter().map(|&(_, v, _)| v).collect();
        let out_weights: Vec<f64> = arcs.iter().map(|&(_, _, w)| w).collect();

        // In-CSR via counting sort on destination.
        let mut in_offsets = vec![0usize; n + 1];
        for &(_, v, _) in &arcs {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets[..n].to_vec();
        let mut in_sources = vec![0 as NodeId; arcs.len()];
        let mut in_weights = vec![0f64; arcs.len()];
        for &(u, v, w) in &arcs {
            let slot = cursor[v as usize];
            in_sources[slot] = u;
            in_weights[slot] = w;
            cursor[v as usize] += 1;
        }

        Graph::from_csr(
            n,
            directed,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_arcs_are_collapsed() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1, 0.9);
        b.add_edge(0, 1, 0.1);
        b.add_edge(0, 2, 0.5);
        let g = b.build();
        assert_eq!(g.num_arcs(), 2);
        assert_eq!(g.arc_weight(0, 1), Some(0.9), "first weight wins");
    }

    #[test]
    fn self_loops_are_dropped() {
        let mut b = GraphBuilder::new_directed(2);
        b.add_edge(0, 0, 1.0);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        assert_eq!(g.num_arcs(), 1);
        assert!(!g.has_arc(0, 0));
    }

    #[test]
    fn neighbor_lists_are_sorted() {
        let mut b = GraphBuilder::new_directed(5);
        for v in [4u32, 1, 3, 2] {
            b.add_edge(0, v, 1.0);
        }
        let g = b.build();
        assert_eq!(g.out_neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn undirected_duplicate_including_reverse_is_single_edge() {
        let mut b = GraphBuilder::new_undirected(2);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 0, 1.0);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.num_arcs(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_endpoint_panics() {
        let mut b = GraphBuilder::new_directed(2);
        b.add_edge(0, 2, 1.0);
    }

    #[test]
    fn build_empty() {
        let g = GraphBuilder::new_undirected(10).build();
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.num_edges(), 0);
    }
}

//! θ-bounded in-degree projection (§III-B).
//!
//! The naive PrivIM pipeline first projects the original graph `G` into a
//! θ-bounded graph `G^θ` by *randomly removing* in-arcs from nodes whose
//! in-degree exceeds θ. This bounds the influence of any single node on its
//! neighbours' embeddings, which Lemma 1 turns into the occurrence bound
//! `N_g = Σ_{i=0}^{r} θ^i`.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use privim_rt::Rng;
use privim_rt::SliceRandom;

/// Project `g` into a θ-bounded graph: every node keeps at most `theta`
/// in-arcs, chosen uniformly at random among its in-arcs.
///
/// For undirected graphs the projection is applied to the arc representation,
/// which matches how message passing consumes the graph (each direction is an
/// independent influence channel); the result is returned as a *directed*
/// graph because symmetry is generally destroyed by the removal.
pub fn theta_projection(g: &Graph, theta: usize, rng: &mut impl Rng) -> Graph {
    assert!(theta >= 1, "theta must be at least 1");
    let mut b = GraphBuilder::new_directed(g.num_nodes());
    let mut keep: Vec<usize> = Vec::new();
    for u in g.nodes() {
        let srcs = g.in_neighbors(u);
        let ws = g.in_weights(u);
        if srcs.len() <= theta {
            for (i, &s) in srcs.iter().enumerate() {
                b.add_edge(s, u, ws[i]);
            }
        } else {
            keep.clear();
            keep.extend(0..srcs.len());
            keep.shuffle(rng);
            for &i in keep.iter().take(theta) {
                b.add_edge(srcs[i], u, ws[i]);
            }
        }
    }
    b.build()
}

/// Check the θ-bound invariant. Useful for tests and debug assertions.
pub fn is_theta_bounded(g: &Graph, theta: usize) -> bool {
    g.nodes().all(|v| g.in_degree(v) <= theta)
}

/// Number of arcs removed if `g` were projected to `theta` (deterministic,
/// no RNG needed — only counts, not identities, matter).
pub fn projection_removal_count(g: &Graph, theta: usize) -> usize {
    g.nodes()
        .map(|v| g.in_degree(v).saturating_sub(theta))
        .sum()
}

/// Degree-preserving check helper: nodes whose in-degree already satisfies
/// the bound must keep *all* their in-arcs.
pub fn projection_preserves_small_nodes(orig: &Graph, proj: &Graph, theta: usize) -> bool {
    orig.nodes().all(|v| {
        if orig.in_degree(v) <= theta {
            orig.in_neighbors(v) == proj.in_neighbors(v)
        } else {
            proj.in_degree(v) == theta
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use privim_rt::ChaCha8Rng;
    use privim_rt::SeedableRng;

    #[test]
    fn projection_bounds_in_degree() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::barabasi_albert(500, 5, &mut rng);
        for theta in [1usize, 3, 10] {
            let p = theta_projection(&g, theta, &mut rng);
            assert!(is_theta_bounded(&p, theta), "theta={theta}");
        }
    }

    #[test]
    fn projection_keeps_all_arcs_of_small_nodes() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = generators::barabasi_albert(300, 4, &mut rng);
        let p = theta_projection(&g, 10, &mut rng);
        assert!(projection_preserves_small_nodes(&g, &p, 10));
    }

    #[test]
    fn removal_count_matches_actual() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generators::barabasi_albert(400, 6, &mut rng);
        let theta = 8;
        let expected_removed = projection_removal_count(&g, theta);
        let p = theta_projection(&g, theta, &mut rng);
        assert_eq!(g.num_arcs() - p.num_arcs(), expected_removed);
    }

    #[test]
    fn projection_with_huge_theta_is_identity_on_arcs() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generators::barabasi_albert(200, 3, &mut rng);
        let p = theta_projection(&g, 10_000, &mut rng);
        assert_eq!(p.num_arcs(), g.num_arcs());
    }

    #[test]
    fn kept_arcs_retain_weights() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::barabasi_albert(100, 3, &mut rng).with_weighted_cascade();
        let p = theta_projection(&g, 2, &mut rng);
        for (u, v, w) in p.arcs() {
            assert_eq!(g.arc_weight(u, v), Some(w), "arc {u}->{v}");
        }
    }
}

//! Edge-list IO so real SNAP datasets drop in when available.
//!
//! Format: one `src dst [weight]` triple per line, `#`-prefixed comments
//! ignored, whitespace-separated — the format SNAP ships. Node ids may be
//! sparse; they are compacted to `0..n` and the mapping returned.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};
use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};
use std::path::Path;

/// Result of loading an edge list: the graph plus the original node labels
/// (`labels[i]` is the raw id that became node `i`).
pub struct LoadedGraph {
    /// The compacted graph.
    pub graph: Graph,
    /// Original (raw) node label per compacted id.
    pub labels: Vec<u64>,
}

/// Parse an edge list from a reader. `directed` controls arc semantics;
/// missing weights default to 1.0.
pub fn parse_edge_list<R: BufRead>(reader: R, directed: bool) -> io::Result<LoadedGraph> {
    let mut raw_edges: Vec<(u64, u64, f64)> = Vec::new();
    // Ordered map: `labels` is filled in first-seen order either way, but
    // an ordered map keeps any future iteration over it deterministic
    // (nondeterministic-collection rule).
    let mut ids: BTreeMap<u64, NodeId> = BTreeMap::new();
    let mut labels: Vec<u64> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |s: Option<&str>, what: &str| -> io::Result<u64> {
            s.and_then(|x| x.parse().ok()).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad {what}", lineno + 1),
                )
            })
        };
        let u = parse(it.next(), "source id")?;
        let v = parse(it.next(), "target id")?;
        let w: f64 = match it.next() {
            Some(ws) => ws.parse().map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad weight", lineno + 1),
                )
            })?,
            None => 1.0,
        };
        raw_edges.push((u, v, w));
        for raw in [u, v] {
            ids.entry(raw).or_insert_with(|| {
                labels.push(raw);
                (labels.len() - 1) as NodeId
            });
        }
    }
    let mut b = if directed {
        GraphBuilder::new_directed(labels.len())
    } else {
        GraphBuilder::new_undirected(labels.len())
    };
    for (u, v, w) in raw_edges {
        b.add_edge(ids[&u], ids[&v], w.clamp(0.0, 1.0));
    }
    Ok(LoadedGraph {
        graph: b.build(),
        labels,
    })
}

/// Read an edge list file (see [`parse_edge_list`]).
pub fn read_edge_list(path: &Path, directed: bool) -> io::Result<LoadedGraph> {
    let f = std::fs::File::open(path)?;
    parse_edge_list(io::BufReader::new(f), directed)
}

/// Write a graph as an edge list (arcs once; undirected pairs once with
/// `u < v`).
pub fn write_edge_list<W: Write>(g: &Graph, mut w: W) -> io::Result<()> {
    writeln!(w, "# nodes {} edges {}", g.num_nodes(), g.num_edges())?;
    for (u, v, weight) in g.arcs() {
        if !g.is_directed() && u > v {
            continue;
        }
        writeln!(w, "{u} {v} {weight}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_comments_and_defaults() {
        let data = "# comment\n% also comment\n10 20\n20 30 0.5\n\n";
        let loaded = parse_edge_list(Cursor::new(data), true).unwrap();
        assert_eq!(loaded.graph.num_nodes(), 3);
        assert_eq!(loaded.graph.num_arcs(), 2);
        assert_eq!(loaded.labels, vec![10, 20, 30]);
        let l10 = 0;
        let l20 = 1;
        assert_eq!(loaded.graph.arc_weight(l10, l20), Some(1.0));
    }

    #[test]
    fn rejects_garbage() {
        let data = "1 x\n";
        assert!(parse_edge_list(Cursor::new(data), true).is_err());
    }

    #[test]
    fn roundtrip_directed() {
        let mut b = GraphBuilder::new_directed(4);
        b.add_edge(0, 1, 0.25);
        b.add_edge(2, 3, 1.0);
        let g = b.build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let loaded = parse_edge_list(Cursor::new(buf), true).unwrap();
        assert_eq!(loaded.graph.num_arcs(), 2);
        // labels preserve raw ids
        assert!(loaded.labels.contains(&0));
        assert!(loaded.labels.contains(&3));
    }

    #[test]
    fn roundtrip_undirected_halves() {
        let mut b = GraphBuilder::new_undirected(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        let g = b.build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        // each undirected edge appears once
        assert_eq!(text.lines().filter(|l| !l.starts_with('#')).count(), 2);
        let loaded = parse_edge_list(Cursor::new(buf), false).unwrap();
        assert_eq!(loaded.graph.num_edges(), 2);
    }

    #[test]
    fn weights_out_of_range_are_clamped() {
        let data = "0 1 3.5\n";
        let loaded = parse_edge_list(Cursor::new(data), true).unwrap();
        assert_eq!(loaded.graph.arcs().next().unwrap().2, 1.0);
    }
}

//! Compressed-sparse-row graph representation.
//!
//! The paper (§II-A) works on directed graphs; undirected graphs are stored
//! as two directed arcs per edge but remember their undirectedness so that
//! statistics such as Table I's `|E|` and average degree are reported the way
//! the paper reports them.

/// Node identifier. Graphs in the evaluation reach a few hundred thousand
/// nodes, so `u32` keeps adjacency arrays half the size of `usize`.
pub type NodeId = u32;

/// Immutable weighted graph in CSR form, with both out- and in-adjacency.
///
/// Edge weights are the IC-model influence probabilities `w_uv ∈ [0, 1]`
/// (Definition 6). The in-adjacency mirror is required by the message-passing
/// formulation (Eq. 2): node `u` aggregates over its *in*-neighbours with
/// weights `w_vu`.
#[derive(Clone, Debug)]
pub struct Graph {
    n: usize,
    directed: bool,
    out_offsets: Vec<usize>,
    out_targets: Vec<NodeId>,
    out_weights: Vec<f64>,
    in_offsets: Vec<usize>,
    in_sources: Vec<NodeId>,
    in_weights: Vec<f64>,
}

impl Graph {
    /// Build a graph from parallel CSR arrays. Intended for use by
    /// [`crate::builder::GraphBuilder`]; panics if the arrays are inconsistent.
    pub(crate) fn from_csr(
        n: usize,
        directed: bool,
        out_offsets: Vec<usize>,
        out_targets: Vec<NodeId>,
        out_weights: Vec<f64>,
        in_offsets: Vec<usize>,
        in_sources: Vec<NodeId>,
        in_weights: Vec<f64>,
    ) -> Self {
        assert_eq!(out_offsets.len(), n + 1, "out_offsets length");
        assert_eq!(in_offsets.len(), n + 1, "in_offsets length");
        // Indexing is in-bounds by the length asserts directly above.
        assert_eq!(out_targets.len(), out_offsets[n]);
        assert_eq!(in_sources.len(), in_offsets[n]);
        assert_eq!(out_targets.len(), out_weights.len());
        assert_eq!(in_sources.len(), in_weights.len());
        Graph {
            n,
            directed,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
        }
    }

    /// An empty graph with `n` isolated nodes.
    pub fn empty(n: usize, directed: bool) -> Self {
        Graph {
            n,
            directed,
            out_offsets: vec![0; n + 1],
            out_targets: Vec::new(),
            out_weights: Vec::new(),
            in_offsets: vec![0; n + 1],
            in_sources: Vec::new(),
            in_weights: Vec::new(),
        }
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of stored directed arcs. For an undirected graph this is
    /// `2 * |E|`.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.out_targets.len()
    }

    /// Number of edges as the paper counts them in Table I: arcs for a
    /// directed graph, unordered pairs for an undirected graph.
    #[inline]
    pub fn num_edges(&self) -> usize {
        if self.directed {
            self.num_arcs()
        } else {
            self.num_arcs() / 2
        }
    }

    /// Whether this graph was constructed as directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Out-neighbours of `v` (targets of arcs leaving `v`).
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.out_targets[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// Weights parallel to [`Self::out_neighbors`].
    #[inline]
    pub fn out_weights(&self, v: NodeId) -> &[f64] {
        let v = v as usize;
        &self.out_weights[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// In-neighbours of `v` (sources of arcs entering `v`).
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.in_sources[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Weights parallel to [`Self::in_neighbors`]: `w_vu` for each
    /// in-neighbour `v` of `u`.
    #[inline]
    pub fn in_weights(&self, v: NodeId) -> &[f64] {
        let v = v as usize;
        &self.in_weights[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.out_offsets[v + 1] - self.out_offsets[v]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.in_offsets[v + 1] - self.in_offsets[v]
    }

    /// Total degree as used in Table I statistics: `in + out` arcs touching
    /// `v` for directed graphs, number of incident undirected edges otherwise.
    #[inline]
    pub fn total_degree(&self, v: NodeId) -> usize {
        if self.directed {
            self.in_degree(v) + self.out_degree(v)
        } else {
            self.out_degree(v)
        }
    }

    /// Iterate over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.n as NodeId
    }

    /// Iterate over all stored arcs as `(src, dst, weight)` triples.
    pub fn arcs(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        (0..self.n).flat_map(move |u| {
            let s = self.out_offsets[u];
            let e = self.out_offsets[u + 1];
            (s..e).map(move |i| (u as NodeId, self.out_targets[i], self.out_weights[i]))
        })
    }

    /// True if the arc `u -> v` exists. `O(out_degree(u))`; neighbour lists
    /// are sorted so a binary search is used.
    pub fn has_arc(&self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Weight of the arc `u -> v` if present.
    pub fn arc_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let idx = self.out_neighbors(u).binary_search(&v).ok()?;
        Some(self.out_weights(u)[idx])
    }

    /// Replace every arc weight with `w`. The paper's evaluation fixes
    /// `w_vu = 1` (§V-A); this makes that configuration a one-liner.
    pub fn with_uniform_weights(mut self, w: f64) -> Self {
        assert!((0.0..=1.0).contains(&w), "IC weight must lie in [0, 1]");
        self.out_weights.iter_mut().for_each(|x| *x = w);
        self.in_weights.iter_mut().for_each(|x| *x = w);
        self
    }

    /// Replace every arc weight `w_vu` with `1 / in_degree(u)` — the
    /// "weighted cascade" convention common in the IM literature.
    pub fn with_weighted_cascade(mut self) -> Self {
        // In-adjacency: each arc into u gets 1/in_degree(u).
        for u in 0..self.n {
            let s = self.in_offsets[u];
            let e = self.in_offsets[u + 1];
            let d = (e - s).max(1) as f64;
            for i in s..e {
                self.in_weights[i] = 1.0 / d;
            }
        }
        // Mirror into the out-adjacency.
        let in_deg: Vec<f64> = (0..self.n)
            .map(|u| (self.in_offsets[u + 1] - self.in_offsets[u]).max(1) as f64)
            .collect();
        for i in 0..self.out_targets.len() {
            let dst = self.out_targets[i] as usize;
            self.out_weights[i] = 1.0 / in_deg[dst];
        }
        self
    }

    /// Memory footprint of the adjacency arrays in bytes (diagnostics).
    pub fn heap_bytes(&self) -> usize {
        self.out_offsets.len() * std::mem::size_of::<usize>() * 2
            + self.out_targets.len() * std::mem::size_of::<NodeId>() * 2
            + self.out_weights.len() * std::mem::size_of::<f64>() * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new_undirected(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 0.5);
        b.add_edge(2, 0, 0.25);
        b.build()
    }

    #[test]
    fn empty_graph_has_no_arcs() {
        let g = Graph::empty(5, true);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_arcs(), 0);
        assert_eq!(g.num_edges(), 0);
        for v in g.nodes() {
            assert!(g.out_neighbors(v).is_empty());
            assert!(g.in_neighbors(v).is_empty());
        }
    }

    #[test]
    fn undirected_edge_counts_halve_arcs() {
        let g = triangle();
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.num_edges(), 3);
        assert!(!g.is_directed());
    }

    #[test]
    fn adjacency_is_symmetric_for_undirected() {
        let g = triangle();
        for (u, v, w) in g.arcs().collect::<Vec<_>>() {
            assert!(g.has_arc(v, u), "missing reverse arc {v}->{u}");
            assert_eq!(g.arc_weight(v, u), Some(w));
        }
    }

    #[test]
    fn in_out_mirror_consistent() {
        let mut b = GraphBuilder::new_directed(4);
        b.add_edge(0, 1, 0.9);
        b.add_edge(0, 2, 0.8);
        b.add_edge(3, 1, 0.7);
        let g = b.build();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(1), 2);
        assert_eq!(g.in_neighbors(1), &[0, 3]);
        assert_eq!(g.in_weights(1), &[0.9, 0.7]);
        assert_eq!(g.arc_weight(0, 2), Some(0.8));
        assert_eq!(g.arc_weight(2, 0), None);
    }

    #[test]
    fn uniform_weights_overwrite_all_arcs() {
        let g = triangle().with_uniform_weights(1.0);
        for (_, _, w) in g.arcs() {
            assert_eq!(w, 1.0);
        }
        for v in g.nodes() {
            for w in g.in_weights(v) {
                assert_eq!(*w, 1.0);
            }
        }
    }

    #[test]
    fn weighted_cascade_rows_sum_to_one() {
        let g = triangle().with_weighted_cascade();
        for v in g.nodes() {
            let s: f64 = g.in_weights(v).iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "in-weights of {v} sum to {s}");
        }
        // out mirror agrees with in mirror
        for (u, v, w) in g.arcs().collect::<Vec<_>>() {
            let idx = g.in_neighbors(v).iter().position(|&x| x == u).unwrap();
            assert!((g.in_weights(v)[idx] - w).abs() < 1e-12);
        }
    }

    #[test]
    fn total_degree_directed_vs_undirected() {
        let und = triangle();
        assert_eq!(und.total_degree(0), 2);
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(2, 0, 1.0);
        let dir = b.build();
        assert_eq!(dir.total_degree(0), 2); // one in, one out
    }

    #[test]
    #[should_panic(expected = "IC weight")]
    fn uniform_weight_out_of_range_panics() {
        let _ = triangle().with_uniform_weights(1.5);
    }
}

/// Return a copy of `g` with node ids relabelled by the permutation
/// `perm` (`perm[old] = new`). Used by the dataset builders to destroy the
/// id ↔ age correlation of growth-model generators (in Barabási–Albert
/// graphs low ids are hubs, which would let index-based tie-breaking pick
/// good seeds by accident).
pub fn relabel(g: &Graph, perm: &[NodeId]) -> Graph {
    assert_eq!(perm.len(), g.num_nodes(), "permutation length mismatch");
    let mut b = if g.is_directed() {
        crate::builder::GraphBuilder::new_directed(g.num_nodes())
    } else {
        // arcs are already symmetric; adding each once as directed keeps
        // the arc set identical, but we must preserve the undirected flag
        // for |E| statistics — use the undirected builder with one arc per
        // unordered pair.
        crate::builder::GraphBuilder::new_undirected(g.num_nodes())
    };
    for (u, v, w) in g.arcs() {
        if !g.is_directed() && u > v {
            continue;
        }
        b.add_edge(perm[u as usize], perm[v as usize], w);
    }
    b.build()
}

/// Relabel with a uniformly random permutation.
pub fn relabel_shuffled(g: &Graph, rng: &mut impl privim_rt::Rng) -> Graph {
    use privim_rt::SliceRandom;
    let mut perm: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
    perm.shuffle(rng);
    relabel(g, &perm)
}

#[cfg(test)]
mod relabel_tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use privim_rt::SeedableRng;

    #[test]
    fn relabel_preserves_structure() {
        let mut b = GraphBuilder::new_directed(4);
        b.add_edge(0, 1, 0.5);
        b.add_edge(1, 2, 0.25);
        b.add_edge(3, 0, 1.0);
        let g = b.build();
        let perm = vec![2u32, 0, 3, 1];
        let r = relabel(&g, &perm);
        assert_eq!(r.num_arcs(), 3);
        assert_eq!(r.arc_weight(2, 0), Some(0.5));
        assert_eq!(r.arc_weight(0, 3), Some(0.25));
        assert_eq!(r.arc_weight(1, 2), Some(1.0));
    }

    #[test]
    fn shuffle_preserves_degree_multiset() {
        let mut rng = privim_rt::ChaCha8Rng::seed_from_u64(5);
        let g = crate::generators::barabasi_albert(200, 3, &mut rng);
        let r = relabel_shuffled(&g, &mut rng);
        let mut d1: Vec<usize> = g.nodes().map(|v| g.out_degree(v)).collect();
        let mut d2: Vec<usize> = r.nodes().map(|v| r.out_degree(v)).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
        assert_eq!(g.num_edges(), r.num_edges());
        assert_eq!(g.is_directed(), r.is_directed());
    }

    #[test]
    fn shuffle_breaks_id_degree_correlation() {
        // In raw BA graphs the oldest (lowest-id) nodes are hubs; after a
        // shuffle the first 10% of ids must no longer dominate.
        let mut rng = privim_rt::ChaCha8Rng::seed_from_u64(6);
        let g = crate::generators::barabasi_albert(1000, 4, &mut rng);
        let r = relabel_shuffled(&g, &mut rng);
        let head_degree = |gr: &Graph| -> usize { (0..100u32).map(|v| gr.out_degree(v)).sum() };
        assert!(
            head_degree(&r) < head_degree(&g) / 2,
            "shuffle left hubs at low ids: {} vs {}",
            head_degree(&r),
            head_degree(&g)
        );
    }
}

//! Graph partitioning for the Friendster-scale experiment.
//!
//! §V-A: "Due to the hardware memory limitations, we partition Friendster
//! into multiple graphs during both training and evaluation phases." This
//! module implements that strategy: a BFS-grown balanced partitioner that
//! splits a graph into `k` parts of roughly equal size, returning each part
//! as an induced [`Subgraph`] so training/evaluation can stream over parts.

use crate::csr::{Graph, NodeId};
use crate::subgraph::{induced_subgraph, Subgraph};
use std::collections::VecDeque;

/// A partition of a graph into disjoint node sets.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Part id per node.
    pub part_of: Vec<usize>,
    /// Number of parts.
    pub num_parts: usize,
}

impl Partition {
    /// Node lists per part.
    pub fn part_nodes(&self) -> Vec<Vec<NodeId>> {
        let mut parts = vec![Vec::new(); self.num_parts];
        for (v, &p) in self.part_of.iter().enumerate() {
            parts[p].push(v as NodeId);
        }
        parts
    }

    /// Fraction of arcs cut by the partition (quality diagnostic: lower is
    /// better for preserving influence structure inside parts).
    pub fn cut_fraction(&self, g: &Graph) -> f64 {
        if g.num_arcs() == 0 {
            return 0.0;
        }
        let cut = g
            .arcs()
            .filter(|&(u, v, _)| self.part_of[u as usize] != self.part_of[v as usize])
            .count();
        cut as f64 / g.num_arcs() as f64
    }
}

/// BFS-grown balanced partitioning: parts are grown one at a time from
/// unassigned seed nodes until they reach `ceil(n / k)` nodes, which keeps
/// each part locally connected (low cut) and balanced (±1 rounding).
pub fn bfs_partition(g: &Graph, k: usize) -> Partition {
    assert!(k >= 1, "need at least one part");
    let n = g.num_nodes();
    let cap = n.div_ceil(k);
    let mut part_of = vec![usize::MAX; n];
    let mut current = 0usize;
    let mut count = 0usize;
    let mut q = VecDeque::new();
    let mut next_seed = 0usize;

    let assign = |v: usize, part_of: &mut Vec<usize>, current: &mut usize, count: &mut usize| {
        part_of[v] = *current;
        *count += 1;
        if *count == cap && *current + 1 < k {
            *current += 1;
            *count = 0;
        }
    };

    loop {
        // find next unassigned seed
        while next_seed < n && part_of[next_seed] != usize::MAX {
            next_seed += 1;
        }
        if next_seed == n {
            break;
        }
        q.clear();
        q.push_back(next_seed as NodeId);
        assign(next_seed, &mut part_of, &mut current, &mut count);
        while let Some(u) = q.pop_front() {
            for &v in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
                if part_of[v as usize] == usize::MAX {
                    assign(v as usize, &mut part_of, &mut current, &mut count);
                    q.push_back(v);
                }
            }
        }
    }
    Partition {
        part_of,
        num_parts: k,
    }
}

/// Materialise each part as an induced subgraph (the unit the Friendster
/// experiment trains and evaluates on).
pub fn partition_subgraphs(g: &Graph, partition: &Partition) -> Vec<Subgraph> {
    partition
        .part_nodes()
        .into_iter()
        .map(|nodes| induced_subgraph(g, &nodes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use privim_rt::ChaCha8Rng;
    use privim_rt::{Rng, SeedableRng};

    #[test]
    fn partition_is_balanced_and_total() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::barabasi_albert(1000, 4, &mut rng);
        let p = bfs_partition(&g, 4);
        let sizes: Vec<usize> = p.part_nodes().iter().map(|v| v.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        for s in &sizes {
            assert!(*s <= 250, "part size {s}");
        }
        assert!(p.part_of.iter().all(|&x| x < 4));
    }

    #[test]
    fn single_part_has_zero_cut() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = generators::barabasi_albert(200, 3, &mut rng);
        let p = bfs_partition(&g, 1);
        assert_eq!(p.cut_fraction(&g), 0.0);
    }

    #[test]
    fn bfs_partition_cuts_less_than_random() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generators::barabasi_albert(2000, 4, &mut rng);
        let bfs = bfs_partition(&g, 8);
        // random partition baseline
        let rand_part = Partition {
            part_of: (0..2000).map(|_| rng.gen_range(0..8usize)).collect(),
            num_parts: 8,
        };
        assert!(
            bfs.cut_fraction(&g) < rand_part.cut_fraction(&g),
            "bfs {} vs random {}",
            bfs.cut_fraction(&g),
            rand_part.cut_fraction(&g)
        );
    }

    #[test]
    fn subgraphs_cover_all_nodes_disjointly() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generators::barabasi_albert(500, 3, &mut rng);
        let p = bfs_partition(&g, 5);
        let subs = partition_subgraphs(&g, &p);
        let mut seen = vec![false; 500];
        for s in &subs {
            for &o in &s.original {
                assert!(!seen[o as usize], "node {o} in two parts");
                seen[o as usize] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn disconnected_graph_partitions_fully() {
        let g = Graph::empty(10, false);
        let p = bfs_partition(&g, 3);
        assert!(p.part_of.iter().all(|&x| x != usize::MAX));
        let sizes: Vec<usize> = p.part_nodes().iter().map(|v| v.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
    }
}

//! Evaluation datasets calibrated to Table I of the paper.
//!
//! The paper evaluates on seven public networks. Those files are not
//! available offline, so each dataset is synthesised by a generator chosen
//! to match the network's *family* (institutional email, trust network,
//! social friendship, co-authorship, check-in, mega-scale friendship) and
//! calibrated to Table I's `|V|`, `|E|`, directedness and average degree.
//! Real SNAP edge lists can be substituted via [`crate::io::read_edge_list`]
//! without touching any downstream code.
//!
//! | Dataset    | \|V\|  | \|E\|   | Type       | Avg. degree | Generator |
//! |------------|--------|---------|------------|-------------|-----------|
//! | Email      | 1K     | 25.6K   | Directed   | 25.44       | directed SBM (4 depts) |
//! | Bitcoin    | 5.9K   | 35.6K   | Directed   | 6.05        | directed preferential |
//! | LastFM     | 7.6K   | 27.8K   | Undirected | 7.29        | Barabási–Albert |
//! | HepPh      | 12K    | 118.5K  | Undirected | 19.74       | Holme–Kim |
//! | Facebook   | 22.5K  | 171K    | Undirected | 15.22       | Holme–Kim |
//! | Gowalla    | 196K   | 950.3K  | Undirected | 9.67        | Barabási–Albert |
//! | Friendster | 65.6M  | 1.8B    | Undirected | 55.06       | Holme–Kim (scaled) |

use crate::csr::Graph;
use crate::generators;
use privim_rt::Rng;

/// The seven evaluation datasets of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// European research-institution email network (directed, dense).
    Email,
    /// Bitcoin-OTC trust network (directed, heavy-tailed in-degree).
    Bitcoin,
    /// LastFM user friendships (undirected, scale-free).
    LastFm,
    /// High-energy-physics co-authorship (undirected, highly clustered).
    HepPh,
    /// Facebook page–page mutual likes (undirected, clustered).
    Facebook,
    /// Gowalla check-in friendships (undirected, scale-free, large).
    Gowalla,
    /// Friendster friendships (undirected, mega-scale; always scaled).
    Friendster,
}

/// Static statistics of a dataset as reported in Table I.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// Canonical lowercase name used on the CLI and in JSON output.
    pub name: &'static str,
    /// Paper-reported node count.
    pub nodes: usize,
    /// Paper-reported edge count (directed arcs or undirected pairs).
    pub edges: usize,
    /// Whether the network is directed.
    pub directed: bool,
    /// Paper-reported average degree.
    pub avg_degree: f64,
}

impl Dataset {
    /// All seven datasets in Table I order.
    pub const ALL: [Dataset; 7] = [
        Dataset::Email,
        Dataset::Bitcoin,
        Dataset::LastFm,
        Dataset::HepPh,
        Dataset::Facebook,
        Dataset::Gowalla,
        Dataset::Friendster,
    ];

    /// The six "main" datasets used for Figure 5 / Table II (everything but
    /// Friendster).
    pub const MAIN_SIX: [Dataset; 6] = [
        Dataset::Email,
        Dataset::Bitcoin,
        Dataset::LastFm,
        Dataset::HepPh,
        Dataset::Facebook,
        Dataset::Gowalla,
    ];

    /// Table I statistics.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::Email => DatasetSpec {
                name: "email",
                nodes: 1_005,
                edges: 25_600,
                directed: true,
                avg_degree: 25.44,
            },
            Dataset::Bitcoin => DatasetSpec {
                name: "bitcoin",
                nodes: 5_900,
                edges: 35_600,
                directed: true,
                avg_degree: 6.05,
            },
            Dataset::LastFm => DatasetSpec {
                name: "lastfm",
                nodes: 7_600,
                edges: 27_800,
                directed: false,
                avg_degree: 7.29,
            },
            Dataset::HepPh => DatasetSpec {
                name: "hepph",
                nodes: 12_000,
                edges: 118_500,
                directed: false,
                avg_degree: 19.74,
            },
            Dataset::Facebook => DatasetSpec {
                name: "facebook",
                nodes: 22_500,
                edges: 171_000,
                directed: false,
                avg_degree: 15.22,
            },
            Dataset::Gowalla => DatasetSpec {
                name: "gowalla",
                nodes: 196_000,
                edges: 950_300,
                directed: false,
                avg_degree: 9.67,
            },
            Dataset::Friendster => DatasetSpec {
                name: "friendster",
                nodes: 65_600_000,
                edges: 1_800_000_000,
                directed: false,
                avg_degree: 55.06,
            },
        }
    }

    /// Parse a CLI name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Dataset> {
        let lower = name.to_ascii_lowercase();
        Dataset::ALL.into_iter().find(|d| d.spec().name == lower)
    }

    /// Generate the dataset at full Table I size. Friendster at 65.6M nodes
    /// is deliberately *not* generated here — use [`Self::generate_scaled`]
    /// (its experiment partitions a scaled instance; see DESIGN.md).
    pub fn generate(self, rng: &mut impl Rng) -> Graph {
        assert!(
            self != Dataset::Friendster,
            "Friendster must be generated via generate_scaled (65.6M nodes)"
        );
        self.generate_scaled(1.0, rng)
    }

    /// Generate the dataset with node count `scale * |V|` (minimum 64),
    /// preserving the average degree and generator family. Edge weights are
    /// the paper's evaluation setting `w = 1`.
    pub fn generate_scaled(self, scale: f64, rng: &mut impl Rng) -> Graph {
        assert!(scale > 0.0, "scale must be positive");
        let spec = self.spec();
        let n = ((spec.nodes as f64 * scale).round() as usize).max(64);
        let generated = match self {
            Dataset::Email => {
                // Dense directed network with heavy-tailed sender activity
                // (a handful of accounts send most mail). Calibrated so
                // arcs/node matches Table I's 25.44 (= |E|/|V|, directed).
                generators::directed_preferential(n, spec.avg_degree, rng)
            }
            Dataset::Bitcoin => {
                let m_out = spec.edges as f64 / spec.nodes as f64; // ≈ 6.03
                generators::directed_preferential(n, m_out, rng)
            }
            Dataset::LastFm => {
                let m = spec.edges as f64 / spec.nodes as f64; // ≈ 3.66
                generators::barabasi_albert_fractional(n, m, rng)
            }
            Dataset::HepPh => {
                let m = spec.edges as f64 / spec.nodes as f64; // ≈ 9.87
                generators::holme_kim(n, m, 0.7, rng)
            }
            Dataset::Facebook => {
                let m = spec.edges as f64 / spec.nodes as f64; // ≈ 7.6
                generators::holme_kim(n, m, 0.5, rng)
            }
            Dataset::Gowalla => {
                let m = spec.edges as f64 / spec.nodes as f64; // ≈ 4.85
                generators::barabasi_albert_fractional(n, m, rng)
            }
            Dataset::Friendster => {
                let m = spec.edges as f64 / spec.nodes as f64; // ≈ 27.5
                generators::holme_kim(n, m, 0.4, rng)
            }
        };
        // Growth models correlate node id with age (and therefore degree);
        // shuffle the labels so no downstream index-based tie-break can
        // accidentally favour hubs.
        crate::csr::relabel_shuffled(&generated, rng)
    }

    /// Default experiment scale: full size for the six main datasets, a
    /// ~0.15% sample (≈100K nodes) for Friendster.
    pub fn default_scale(self) -> f64 {
        match self {
            Dataset::Friendster => 100_000.0 / 65_600_000.0,
            _ => 1.0,
        }
    }

    /// Small scale for unit/integration tests: sub-second generation while
    /// keeping the structural family intact.
    pub fn test_scale(self) -> f64 {
        match self {
            Dataset::Email => 0.5,
            Dataset::Bitcoin => 0.1,
            Dataset::LastFm => 0.1,
            Dataset::HepPh => 0.05,
            Dataset::Facebook => 0.03,
            Dataset::Gowalla => 0.005,
            Dataset::Friendster => 2_000.0 / 65_600_000.0,
        }
    }
}

/// Measured statistics of a generated graph, for Table I reproduction.
#[derive(Clone, Debug)]
pub struct MeasuredStats {
    /// Dataset name.
    pub name: String,
    /// Generated node count.
    pub nodes: usize,
    /// Generated edge count (paper convention).
    pub edges: usize,
    /// Directedness.
    pub directed: bool,
    /// Measured average degree (paper convention).
    pub avg_degree: f64,
}

/// Measure a graph with the Table I reporting convention.
pub fn measure(name: &str, g: &Graph) -> MeasuredStats {
    let stats = crate::algo::degree_stats(g);
    MeasuredStats {
        name: name.to_string(),
        nodes: g.num_nodes(),
        edges: g.num_edges(),
        directed: g.is_directed(),
        avg_degree: stats.mean_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_rt::ChaCha8Rng;
    use privim_rt::SeedableRng;

    #[test]
    fn names_roundtrip() {
        for d in Dataset::ALL {
            assert_eq!(Dataset::from_name(d.spec().name), Some(d));
        }
        assert_eq!(Dataset::from_name("LASTFM"), Some(Dataset::LastFm));
        assert_eq!(Dataset::from_name("nope"), None);
    }

    #[test]
    fn scaled_generation_matches_avg_degree() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for d in [Dataset::Bitcoin, Dataset::LastFm, Dataset::Facebook] {
            let g = d.generate_scaled(d.test_scale(), &mut rng);
            let m = measure(d.spec().name, &g);
            let rel = (m.avg_degree - d.spec().avg_degree).abs() / d.spec().avg_degree;
            assert!(
                rel < 0.25,
                "{}: avg degree {} vs paper {}",
                m.name,
                m.avg_degree,
                d.spec().avg_degree
            );
            assert_eq!(m.directed, d.spec().directed);
        }
    }

    #[test]
    fn email_is_directed_and_dense() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let g = Dataset::Email.generate_scaled(0.5, &mut rng);
        assert!(g.is_directed());
        let m = measure("email", &g);
        assert!(
            (m.avg_degree - 25.44).abs() < 5.0,
            "email avg degree {}",
            m.avg_degree
        );
    }

    #[test]
    fn friendster_full_generation_is_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Dataset::Friendster.generate(&mut rng)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn scale_floor_is_64_nodes() {
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let g = Dataset::LastFm.generate_scaled(1e-9, &mut rng);
        assert_eq!(g.num_nodes(), 64);
    }

    #[test]
    fn hepph_clusters_more_than_gowalla_family() {
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        let hep = Dataset::HepPh.generate_scaled(0.05, &mut rng);
        let gow = Dataset::Gowalla.generate_scaled(0.005, &mut rng);
        let c_hep = crate::algo::avg_clustering_sampled(&hep, 200, &mut rng);
        let c_gow = crate::algo::avg_clustering_sampled(&gow, 200, &mut rng);
        assert!(c_hep > c_gow, "hepph {c_hep} vs gowalla {c_gow}");
    }

    #[test]
    fn weights_default_to_one() {
        let mut rng = ChaCha8Rng::seed_from_u64(16);
        let g = Dataset::Bitcoin.generate_scaled(0.05, &mut rng);
        assert!(g.arcs().all(|(_, _, w)| w == 1.0));
    }
}

//! Random graph generators used to synthesise the paper's evaluation
//! datasets (see `datasets.rs` for the calibration to Table I).
//!
//! Each generator documents which structural property it contributes:
//! degree distribution (heavy-tailed vs homogeneous), clustering, and
//! small-world diameter — the properties that drive both IM utility and the
//! DP noise scale.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};
use privim_rt::Rng;

/// G(n, m) Erdős–Rényi: exactly `m` distinct edges chosen uniformly.
/// Homogeneous (Poisson) degrees, vanishing clustering.
pub fn erdos_renyi(n: usize, m: usize, directed: bool, rng: &mut impl Rng) -> Graph {
    assert!(n >= 2, "need at least two nodes");
    let max_edges = if directed {
        n * (n - 1)
    } else {
        n * (n - 1) / 2
    };
    assert!(m <= max_edges, "too many edges requested");
    let mut b = if directed {
        GraphBuilder::new_directed(n)
    } else {
        GraphBuilder::new_undirected(n)
    };
    // Ordered set: membership-only today, but hash iteration order must
    // never be able to reach edge order (nondeterministic-collection rule).
    let mut seen = std::collections::BTreeSet::new();
    let mut added = 0usize;
    while added < m {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u == v {
            continue;
        }
        let key = if directed || u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            b.add_edge_unit(u, v);
            added += 1;
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: each new node attaches `m`
/// edges to existing nodes with probability proportional to degree.
/// Power-law degrees, low clustering. Undirected.
pub fn barabasi_albert(n: usize, m: usize, rng: &mut impl Rng) -> Graph {
    barabasi_albert_fractional(n, m as f64, rng)
}

/// BA variant with a *fractional* mean attachment count: each arriving node
/// attaches `floor(m)` or `ceil(m)` edges with the matching probability so
/// the expected edge count is `(n - m0) * m`. Needed to hit Table I's
/// fractional average degrees (e.g. LastFM's 3.66 edges per node).
pub fn barabasi_albert_fractional(n: usize, m: f64, rng: &mut impl Rng) -> Graph {
    assert!(m >= 1.0, "attachment count must be >= 1");
    let m0 = (m.ceil() as usize + 1).min(n);
    let mut b = GraphBuilder::new_undirected(n);
    // `targets` holds one entry per edge endpoint: sampling uniformly from it
    // is sampling proportional to degree.
    let mut targets: Vec<NodeId> = Vec::with_capacity((n as f64 * m * 2.0) as usize);
    // Seed clique on the first m0 nodes.
    for i in 0..m0 as NodeId {
        for j in (i + 1)..m0 as NodeId {
            b.add_edge_unit(i, j);
            targets.push(i);
            targets.push(j);
        }
    }
    let frac = m.fract();
    for v in m0..n {
        let mi = if rng.gen_bool(frac.clamp(0.0, 1.0)) {
            m.ceil() as usize
        } else {
            m.floor() as usize
        };
        let mi = mi.min(v);
        let mut chosen: Vec<NodeId> = Vec::with_capacity(mi);
        let mut guard = 0;
        while chosen.len() < mi && guard < 50 * mi {
            guard += 1;
            let t = targets[rng.gen_range(0..targets.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.add_edge_unit(v as NodeId, t);
            targets.push(v as NodeId);
            targets.push(t);
        }
    }
    b.build()
}

/// Holme–Kim "powerlaw cluster" model: BA attachment where each subsequent
/// link closes a triangle with probability `p_triad`. Power-law degrees
/// *and* high clustering — the signature of collaboration/social networks
/// (HepPh, Facebook, Friendster).
pub fn holme_kim(n: usize, m: f64, p_triad: f64, rng: &mut impl Rng) -> Graph {
    assert!(m >= 1.0);
    assert!((0.0..=1.0).contains(&p_triad));
    let m0 = (m.ceil() as usize + 1).min(n);
    let mut b = GraphBuilder::new_undirected(n);
    let mut targets: Vec<NodeId> = Vec::new();
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let connect = |b: &mut GraphBuilder,
                   targets: &mut Vec<NodeId>,
                   adj: &mut Vec<Vec<NodeId>>,
                   u: NodeId,
                   v: NodeId| {
        b.add_edge_unit(u, v);
        targets.push(u);
        targets.push(v);
        adj[u as usize].push(v);
        adj[v as usize].push(u);
    };
    for i in 0..m0 as NodeId {
        for j in (i + 1)..m0 as NodeId {
            connect(&mut b, &mut targets, &mut adj, i, j);
        }
    }
    let frac = m.fract();
    for v in m0..n {
        let mi = if rng.gen_bool(frac.clamp(0.0, 1.0)) {
            m.ceil() as usize
        } else {
            m.floor() as usize
        }
        .min(v);
        let mut chosen: Vec<NodeId> = Vec::with_capacity(mi);
        let mut last: Option<NodeId> = None;
        let mut guard = 0;
        while chosen.len() < mi && guard < 50 * mi.max(1) {
            guard += 1;
            // Triad step: link a random neighbour of the previous target.
            let cand = if let Some(prev) = last.filter(|_| rng.gen_bool(p_triad)) {
                let nb = &adj[prev as usize];
                if nb.is_empty() {
                    targets[rng.gen_range(0..targets.len())]
                } else {
                    nb[rng.gen_range(0..nb.len())]
                }
            } else {
                targets[rng.gen_range(0..targets.len())]
            };
            if cand as usize != v && !chosen.contains(&cand) {
                chosen.push(cand);
                last = Some(cand);
            }
        }
        for &t in &chosen {
            connect(&mut b, &mut targets, &mut adj, v as NodeId, t);
        }
    }
    b.build()
}

/// Watts–Strogatz small world: ring lattice with `k` neighbours per node
/// (must be even), each edge rewired with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, rng: &mut impl Rng) -> Graph {
    assert!(k % 2 == 0 && k < n, "k must be even and < n");
    assert!((0.0..=1.0).contains(&beta));
    let mut b = GraphBuilder::new_undirected(n);
    let mut exists = std::collections::BTreeSet::new();
    let add = |b: &mut GraphBuilder,
               exists: &mut std::collections::BTreeSet<(NodeId, NodeId)>,
               u: NodeId,
               v: NodeId|
     -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        if u != v && exists.insert(key) {
            b.add_edge_unit(u, v);
            true
        } else {
            false
        }
    };
    for u in 0..n {
        for j in 1..=(k / 2) {
            let u_id = u as NodeId;
            let mut v_id = ((u + j) % n) as NodeId;
            if rng.gen_bool(beta) {
                // Rewire the far endpoint to a uniform non-duplicate target.
                for _ in 0..100 {
                    let w = rng.gen_range(0..n) as NodeId;
                    let key = if u_id < w { (u_id, w) } else { (w, u_id) };
                    if w != u_id && !exists.contains(&key) {
                        v_id = w;
                        break;
                    }
                }
            }
            let _ = add(&mut b, &mut exists, u_id, v_id);
        }
    }
    b.build()
}

/// Stochastic block model: nodes split into `blocks.len()` communities with
/// within-community edge probability `p_in` and cross-community `p_out`.
/// Used (directed) for the Email dataset, which is a dense institutional
/// network with departmental structure.
pub fn stochastic_block_model(
    blocks: &[usize],
    p_in: f64,
    p_out: f64,
    directed: bool,
    rng: &mut impl Rng,
) -> Graph {
    let n: usize = blocks.iter().sum();
    let mut block_of = Vec::with_capacity(n);
    for (bi, &sz) in blocks.iter().enumerate() {
        block_of.extend(std::iter::repeat(bi).take(sz));
    }
    let mut b = if directed {
        GraphBuilder::new_directed(n)
    } else {
        GraphBuilder::new_undirected(n)
    };
    // Dense-ish sampling via geometric skipping over the pair space would be
    // ideal; the Email graph is only ~1K nodes, so the O(n^2) loop is fine.
    for u in 0..n {
        let lo = if directed { 0 } else { u + 1 };
        for v in lo..n {
            if u == v {
                continue;
            }
            let p = if block_of[u] == block_of[v] {
                p_in
            } else {
                p_out
            };
            if rng.gen_bool(p) {
                b.add_edge_unit(u as NodeId, v as NodeId);
            }
        }
    }
    b.build()
}

/// Directed preferential attachment (Bollobás-style, simplified): each new
/// node emits a *lognormally distributed* number of arcs (mean `m_out`,
/// dispersion σ = 1.2 — real trust and email networks have a heavy tail of
/// very active raters/senders, e.g. Bitcoin-OTC's most active rater issued
/// hundreds of ratings) whose targets are chosen proportional to
/// (in-degree + 1), giving power-law in-degrees as well.
pub fn directed_preferential(n: usize, m_out: f64, rng: &mut impl Rng) -> Graph {
    assert!(m_out >= 1.0);
    let m0 = (m_out.ceil() as usize + 1).min(n);
    let mut b = GraphBuilder::new_directed(n);
    let mut targets: Vec<NodeId> = (0..m0 as NodeId).collect(); // +1 smoothing
    for i in 0..m0 as NodeId {
        let j = (i + 1) % m0 as NodeId;
        if i != j {
            b.add_edge_unit(i, j);
            targets.push(j);
        }
    }
    // lognormal out-degree: exp(N(μ, σ²)) with σ = 1.2 and μ chosen so the
    // mean equals m_out; capped to keep pathological draws bounded.
    let sigma_ln = 1.2f64;
    let mu_ln = m_out.ln() - 0.5 * sigma_ln * sigma_ln;
    let cap = ((m_out * 60.0) as usize).max(4);
    let normal =
        |rng: &mut dyn privim_rt::RngCore| -> f64 { privim_rt::dist::standard_normal(rng) };
    for v in m0..n {
        let draw = (mu_ln + sigma_ln * normal(rng)).exp();
        let mi = (draw.round() as usize).clamp(1, cap).min(v);
        let mut chosen: Vec<NodeId> = Vec::with_capacity(mi);
        let mut guard = 0;
        while chosen.len() < mi && guard < 50 * mi.max(1) {
            guard += 1;
            let t = targets[rng.gen_range(0..targets.len())];
            if t as usize != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        targets.push(v as NodeId); // smoothing entry for the new node
        for &t in &chosen {
            b.add_edge_unit(v as NodeId, t);
            targets.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use privim_rt::ChaCha8Rng;
    use privim_rt::SeedableRng;

    #[test]
    fn er_has_exact_edge_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = erdos_renyi(100, 500, false, &mut rng);
        assert_eq!(g.num_edges(), 500);
        let d = erdos_renyi(100, 500, true, &mut rng);
        assert_eq!(d.num_edges(), 500);
        assert!(d.is_directed());
    }

    #[test]
    fn ba_mean_degree_matches_m() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = barabasi_albert(2000, 5, &mut rng);
        let stats = algo::degree_stats(&g);
        // mean total degree ~ 2m
        assert!(
            (stats.mean_total - 10.0).abs() < 1.0,
            "mean degree {}",
            stats.mean_total
        );
    }

    #[test]
    fn ba_fractional_interpolates() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = barabasi_albert_fractional(3000, 3.66, &mut rng);
        let mean = algo::degree_stats(&g).mean_total;
        assert!((mean - 7.32).abs() < 0.7, "mean degree {mean}");
    }

    #[test]
    fn ba_degrees_are_heavy_tailed() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = barabasi_albert(3000, 4, &mut rng);
        let stats = algo::degree_stats(&g);
        // hubs should far exceed the mean
        assert!(stats.max_out as f64 > 5.0 * stats.mean_total);
    }

    #[test]
    fn holme_kim_clusters_more_than_ba() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let ba = barabasi_albert(1500, 5, &mut rng);
        let hk = holme_kim(1500, 5.0, 0.8, &mut rng);
        let c_ba = algo::avg_clustering_sampled(&ba, 300, &mut rng);
        let c_hk = algo::avg_clustering_sampled(&hk, 300, &mut rng);
        assert!(
            c_hk > 1.5 * c_ba,
            "holme-kim clustering {c_hk} vs BA {c_ba}"
        );
    }

    #[test]
    fn watts_strogatz_zero_beta_is_ring_lattice() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let g = watts_strogatz(50, 4, 0.0, &mut rng);
        assert_eq!(g.num_edges(), 50 * 2);
        for v in g.nodes() {
            assert_eq!(g.total_degree(v), 4);
        }
    }

    #[test]
    fn watts_strogatz_rewiring_preserves_edge_count_roughly() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = watts_strogatz(200, 6, 0.3, &mut rng);
        // rewiring can occasionally drop an edge on collision; tolerate 5%
        assert!(g.num_edges() as f64 > 0.95 * 600.0);
    }

    #[test]
    fn sbm_prefers_within_block_edges() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let g = stochastic_block_model(&[100, 100], 0.1, 0.005, false, &mut rng);
        let mut within = 0;
        let mut across = 0;
        for (u, v, _) in g.arcs() {
            if (u < 100) == (v < 100) {
                within += 1;
            } else {
                across += 1;
            }
        }
        assert!(within > 5 * across, "within={within} across={across}");
    }

    #[test]
    fn directed_preferential_mean_out_degree() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = directed_preferential(3000, 6.0, &mut rng);
        let mean_out = g.num_arcs() as f64 / g.num_nodes() as f64;
        assert!((mean_out - 6.0).abs() < 0.7, "mean out-degree {mean_out}");
        assert!(g.is_directed());
        // in-degree should be heavy tailed
        let stats = algo::degree_stats(&g);
        assert!(stats.max_in > 50, "max in-degree {}", stats.max_in);
    }

    #[test]
    fn generators_are_deterministic_given_seed() {
        let g1 = barabasi_albert(500, 3, &mut ChaCha8Rng::seed_from_u64(42));
        let g2 = barabasi_albert(500, 3, &mut ChaCha8Rng::seed_from_u64(42));
        assert_eq!(g1.num_arcs(), g2.num_arcs());
        assert!(g1.arcs().eq(g2.arcs()));
    }
}

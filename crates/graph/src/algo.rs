//! Classic graph algorithms used throughout the pipeline: BFS, r-hop
//! neighbourhoods (the `N_r(v0)` constraint of Algorithm 1), connected
//! components, clustering coefficients and degree statistics.

use crate::csr::{Graph, NodeId};
use std::collections::VecDeque;

/// Breadth-first search from `src` following out-arcs; returns the hop
/// distance to every reachable node (`usize::MAX` for unreachable).
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.num_nodes()];
    let mut q = VecDeque::new();
    dist[src as usize] = 0;
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        let du = dist[u as usize];
        for &v in g.out_neighbors(u) {
            if dist[v as usize] == usize::MAX {
                dist[v as usize] = du + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// The set `N_r(v0)` of Algorithm 1: every node within `r` hops of `v0`
/// (following out-arcs), *including* `v0` itself. Returned as a sorted list.
///
/// The random walk of Algorithm 1 is constrained to
/// `N(v_cur) ∩ N_r(v0)`, which keeps each subgraph local and bounds
/// inter-node dependencies.
pub fn r_hop_neighborhood(g: &Graph, v0: NodeId, r: usize) -> Vec<NodeId> {
    let mut dist = vec![usize::MAX; g.num_nodes()];
    let mut q = VecDeque::new();
    let mut out = vec![v0];
    dist[v0 as usize] = 0;
    q.push_back(v0);
    while let Some(u) = q.pop_front() {
        let du = dist[u as usize];
        if du == r {
            continue;
        }
        for &v in g.out_neighbors(u) {
            if dist[v as usize] == usize::MAX {
                dist[v as usize] = du + 1;
                out.push(v);
                q.push_back(v);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Membership bitmap variant of [`r_hop_neighborhood`] for `O(1)` lookups
/// during the random walk.
pub fn r_hop_bitmap(g: &Graph, v0: NodeId, r: usize) -> Vec<bool> {
    let mut in_set = vec![false; g.num_nodes()];
    for v in r_hop_neighborhood(g, v0, r) {
        in_set[v as usize] = true;
    }
    in_set
}

/// Weakly connected components (direction ignored). Returns a component id
/// per node and the number of components.
pub fn weakly_connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.num_nodes();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut stack = Vec::new();
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        comp[s] = next;
        stack.push(s as NodeId);
        while let Some(u) = stack.pop() {
            for &v in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
                if comp[v as usize] == usize::MAX {
                    comp[v as usize] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    (comp, next)
}

/// Local clustering coefficient of `v`, treating the graph as undirected.
/// Used by the generator-calibration tests: collaboration networks (HepPh)
/// should cluster far more than preferential-attachment networks.
pub fn local_clustering(g: &Graph, v: NodeId) -> f64 {
    // Undirected neighbourhood = union of in and out neighbours.
    let mut nbrs: Vec<NodeId> = g
        .out_neighbors(v)
        .iter()
        .chain(g.in_neighbors(v))
        .copied()
        .collect();
    nbrs.sort_unstable();
    nbrs.dedup();
    let k = nbrs.len();
    if k < 2 {
        return 0.0;
    }
    let mut links = 0usize;
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if g.has_arc(a, b) || g.has_arc(b, a) {
                links += 1;
            }
        }
    }
    2.0 * links as f64 / (k * (k - 1)) as f64
}

/// Average local clustering coefficient over a uniform sample of
/// `sample_size` nodes (exact when `sample_size >= |V|`).
pub fn avg_clustering_sampled(g: &Graph, sample_size: usize, rng: &mut impl privim_rt::Rng) -> f64 {
    let n = g.num_nodes();
    if n == 0 {
        return 0.0;
    }
    if sample_size >= n {
        let s: f64 = (0..n as NodeId).map(|v| local_clustering(g, v)).sum();
        return s / n as f64;
    }
    let mut s = 0.0;
    for _ in 0..sample_size {
        let v = rng.gen_range(0..n) as NodeId;
        s += local_clustering(g, v);
    }
    s / sample_size as f64
}

/// Degree statistics matching the reporting convention of Table I.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Mean degree as Table I reports it: `|E|/|V|` for directed graphs and
    /// `2|E|/|V|` for undirected graphs — in both cases `arcs / |V|`.
    pub mean_total: f64,
    /// Maximum in-degree — the quantity the θ-projection bounds.
    pub max_in: usize,
    /// Maximum out-degree.
    pub max_out: usize,
    /// Number of isolated nodes (total degree zero).
    pub isolated: usize,
}

/// Compute [`DegreeStats`] for `g`.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let n = g.num_nodes();
    let mut max_in = 0;
    let mut max_out = 0;
    let mut isolated = 0;
    for v in g.nodes() {
        let di = g.in_degree(v);
        let do_ = g.out_degree(v);
        max_in = max_in.max(di);
        max_out = max_out.max(do_);
        if di + do_ == 0 {
            isolated += 1;
        }
    }
    DegreeStats {
        mean_total: if n == 0 {
            0.0
        } else {
            g.num_arcs() as f64 / n as f64
        },
        max_in,
        max_out,
        isolated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// 0 -> 1 -> 2 -> 3, plus 0 -> 2 shortcut.
    fn path_with_shortcut() -> Graph {
        let mut b = GraphBuilder::new_directed(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(2, 3, 1.0);
        b.add_edge(0, 2, 1.0);
        b.build()
    }

    #[test]
    fn bfs_distances_respect_shortcuts() {
        let g = path_with_shortcut();
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 1, 2]);
        assert_eq!(
            bfs_distances(&g, 3),
            vec![usize::MAX, usize::MAX, usize::MAX, 0]
        );
    }

    #[test]
    fn r_hop_includes_origin_and_respects_radius() {
        let g = path_with_shortcut();
        assert_eq!(r_hop_neighborhood(&g, 0, 0), vec![0]);
        assert_eq!(r_hop_neighborhood(&g, 0, 1), vec![0, 1, 2]);
        assert_eq!(r_hop_neighborhood(&g, 0, 2), vec![0, 1, 2, 3]);
        let bm = r_hop_bitmap(&g, 0, 1);
        assert_eq!(bm, vec![true, true, true, false]);
    }

    #[test]
    fn components_ignore_direction() {
        let mut b = GraphBuilder::new_directed(5);
        b.add_edge(0, 1, 1.0);
        b.add_edge(2, 1, 1.0); // 0,1,2 weakly connected
        b.add_edge(3, 4, 1.0); // separate pair
        let g = b.build();
        let (comp, k) = weakly_connected_components(&g);
        assert_eq!(k, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
    }

    #[test]
    fn triangle_clusters_fully() {
        let mut b = GraphBuilder::new_undirected(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(2, 0, 1.0);
        let g = b.build();
        for v in g.nodes() {
            assert!((local_clustering(&g, v) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn star_has_zero_clustering() {
        let mut b = GraphBuilder::new_undirected(5);
        for v in 1..5 {
            b.add_edge(0, v, 1.0);
        }
        let g = b.build();
        assert_eq!(local_clustering(&g, 0), 0.0);
        assert_eq!(local_clustering(&g, 1), 0.0); // degree 1
    }

    #[test]
    fn degree_stats_table1_convention() {
        let g = path_with_shortcut();
        let s = degree_stats(&g);
        // 4 arcs, directed: Table I convention |E|/|V| = 4/4.
        assert!((s.mean_total - 1.0).abs() < 1e-12);
        assert_eq!(s.max_in, 2); // node 2
        assert_eq!(s.max_out, 2); // node 0
        assert_eq!(s.isolated, 0);
    }

    #[test]
    fn isolated_nodes_counted() {
        let g = Graph::empty(3, false);
        assert_eq!(degree_stats(&g).isolated, 3);
    }
}

/// PageRank with damping `d` (teleport `1-d`), `iters` power iterations.
/// Dangling mass is redistributed uniformly. Useful both as a seed
/// heuristic baseline and for dataset diagnostics.
pub fn pagerank(g: &Graph, damping: f64, iters: usize) -> Vec<f64> {
    assert!((0.0..1.0).contains(&damping), "damping must be in [0, 1)");
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iters {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling = 0.0;
        for u in 0..n {
            let out = g.out_neighbors(u as NodeId);
            if out.is_empty() {
                dangling += rank[u];
            } else {
                let share = rank[u] / out.len() as f64;
                for &v in out {
                    next[v as usize] += share;
                }
            }
        }
        let dangling_share = dangling / n as f64;
        for x in next.iter_mut() {
            *x = (1.0 - damping) * uniform + damping * (*x + dangling_share);
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// K-core decomposition (undirected view): `core[v]` is the largest `k`
/// such that `v` belongs to a subgraph where every node has degree ≥ `k`.
/// Peeling algorithm, `O(|E| + |V|)` with bucket queues.
pub fn k_core(g: &Graph) -> Vec<usize> {
    let n = g.num_nodes();
    // undirected degree = number of distinct neighbours in either direction
    let mut neighbors: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for v in 0..n as NodeId {
        let mut nb: Vec<NodeId> = g
            .out_neighbors(v)
            .iter()
            .chain(g.in_neighbors(v))
            .copied()
            .collect();
        nb.sort_unstable();
        nb.dedup();
        neighbors[v as usize] = nb;
    }
    let mut degree: Vec<usize> = neighbors.iter().map(|nb| nb.len()).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[degree[v]].push(v as NodeId);
    }
    let mut core = vec![0usize; n];
    let mut removed = vec![false; n];
    let mut k = 0usize;
    for d in 0..=max_deg {
        k = k.max(d);
        let mut level = d;
        while level <= k {
            while let Some(v) = buckets[level].pop() {
                let vu = v as usize;
                if removed[vu] || degree[vu] != level {
                    continue;
                }
                removed[vu] = true;
                core[vu] = k;
                for &u in &neighbors[vu] {
                    let uu = u as usize;
                    if !removed[uu] && degree[uu] > level {
                        degree[uu] -= 1;
                        buckets[degree[uu]].push(u);
                    }
                }
            }
            level += 1;
            if level > k {
                break;
            }
        }
    }
    core
}

#[cfg(test)]
mod extra_algo_tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators;
    use privim_rt::ChaCha8Rng;
    use privim_rt::SeedableRng;

    #[test]
    fn pagerank_sums_to_one_and_favours_hubs() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::barabasi_albert(300, 3, &mut rng);
        let pr = pagerank(&g, 0.85, 50);
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass {total}");
        // the max-in-degree node should be in the top decile of rank
        let hub = g.nodes().max_by_key(|&v| g.in_degree(v)).unwrap();
        let mut sorted: Vec<f64> = pr.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert!(pr[hub as usize] >= sorted[30], "hub not highly ranked");
    }

    #[test]
    fn pagerank_uniform_on_cycle() {
        let mut b = GraphBuilder::new_directed(5);
        for i in 0..5u32 {
            b.add_edge(i, (i + 1) % 5, 1.0);
        }
        let g = b.build();
        let pr = pagerank(&g, 0.85, 100);
        for &x in &pr {
            assert!((x - 0.2).abs() < 1e-9);
        }
    }

    #[test]
    fn k_core_of_clique_plus_tail() {
        // 4-clique (core 3) with a pendant path (core 1)
        let mut b = GraphBuilder::new_undirected(6);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.add_edge(i, j, 1.0);
            }
        }
        b.add_edge(3, 4, 1.0);
        b.add_edge(4, 5, 1.0);
        let g = b.build();
        let core = k_core(&g);
        assert_eq!(&core[..4], &[3, 3, 3, 3]);
        assert_eq!(core[4], 1);
        assert_eq!(core[5], 1);
    }

    #[test]
    fn k_core_empty_and_isolated() {
        let g = Graph::empty(3, false);
        assert_eq!(k_core(&g), vec![0, 0, 0]);
    }
}

#![warn(missing_docs)]
//! # privim-graph
//!
//! Graph substrate for the PrivIM reproduction: a compact CSR graph type,
//! the θ-bounded in-degree projection from §III-B of the paper, induced
//! subgraph extraction, classic graph algorithms (BFS, r-hop neighbourhoods,
//! clustering coefficients, connected components), synthetic generators
//! (Erdős–Rényi, Barabási–Albert, Holme–Kim, Watts–Strogatz, stochastic
//! block model, directed preferential attachment) and dataset builders
//! calibrated to Table I of the paper.
//!
//! All randomised routines take an explicit [`privim_rt::Rng`] so experiments are
//! reproducible from a seed.
//!
//! ## Quick example
//!
//! ```
//! use privim_graph::{datasets::Dataset, algo};
//! use privim_rt::SeedableRng;
//!
//! let mut rng = privim_rt::ChaCha8Rng::seed_from_u64(7);
//! let g = Dataset::LastFm.generate_scaled(0.05, &mut rng);
//! assert!(g.num_nodes() > 300);
//! let stats = algo::degree_stats(&g);
//! assert!(stats.mean_total > 1.0);
//! ```

pub mod algo;
pub mod builder;
pub mod csr;
pub mod datasets;
pub mod generators;
pub mod io;
pub mod partition;
pub mod projection;
pub mod subgraph;

pub use builder::GraphBuilder;
pub use csr::{Graph, NodeId};
pub use subgraph::{induced_subgraph, Subgraph};

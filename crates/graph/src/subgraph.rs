//! Induced subgraph extraction with node-id mapping.
//!
//! Both samplers (Algorithms 1 and 3) collect a node set `V_sub` and then
//! "extract `G_sub` from `G` with nodes in `V_sub`" — i.e. the induced
//! subgraph. Training needs to map model outputs back to original node ids,
//! so the mapping is kept alongside the graph.

use crate::csr::{Graph, NodeId};
use crate::GraphBuilder;

/// An induced subgraph plus the mapping back to the parent graph.
#[derive(Clone, Debug)]
pub struct Subgraph {
    /// The induced graph, with nodes relabelled `0..k`.
    pub graph: Graph,
    /// `original[i]` is the parent-graph id of local node `i`. Sorted
    /// ascending, which makes `local id -> original id` a binary search.
    pub original: Vec<NodeId>,
}

impl Subgraph {
    /// Number of nodes in the subgraph.
    pub fn len(&self) -> usize {
        self.original.len()
    }

    /// True if the subgraph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.original.is_empty()
    }

    /// Local id of an original node, if present.
    pub fn local_id(&self, original: NodeId) -> Option<NodeId> {
        self.original
            .binary_search(&original)
            .ok()
            .map(|i| i as NodeId)
    }

    /// Original id of a local node.
    pub fn original_id(&self, local: NodeId) -> NodeId {
        self.original[local as usize]
    }
}

/// Extract the subgraph of `g` induced by `nodes` (duplicates tolerated,
/// order irrelevant). `O(Σ deg(v) log k)` where `k = |nodes|`.
pub fn induced_subgraph(g: &Graph, nodes: &[NodeId]) -> Subgraph {
    let mut original: Vec<NodeId> = nodes.to_vec();
    original.sort_unstable();
    original.dedup();

    // Inherit the parent's directedness: for undirected parents every
    // internal edge is seen twice (once per arc) and the builder dedups,
    // so |E| statistics stay comparable with the parent.
    let mut b = if g.is_directed() {
        GraphBuilder::new_directed(original.len())
    } else {
        GraphBuilder::new_undirected(original.len())
    };
    for (li, &u) in original.iter().enumerate() {
        let ws = g.out_weights(u);
        for (ei, &v) in g.out_neighbors(u).iter().enumerate() {
            if let Ok(lv) = original.binary_search(&v) {
                b.add_edge(li as NodeId, lv as NodeId, ws[ei]);
            }
        }
    }
    Subgraph {
        graph: b.build(),
        original,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample_graph() -> Graph {
        // 0 -> 1 -> 2 -> 3 -> 4, 0 -> 3
        let mut b = GraphBuilder::new_directed(5);
        b.add_edge(0, 1, 0.1);
        b.add_edge(1, 2, 0.2);
        b.add_edge(2, 3, 0.3);
        b.add_edge(3, 4, 0.4);
        b.add_edge(0, 3, 0.5);
        b.build()
    }

    #[test]
    fn induced_keeps_only_internal_arcs() {
        let g = sample_graph();
        let s = induced_subgraph(&g, &[0, 1, 3]);
        assert_eq!(s.len(), 3);
        // arcs inside {0,1,3}: 0->1 and 0->3
        assert_eq!(s.graph.num_arcs(), 2);
        let l0 = s.local_id(0).unwrap();
        let l1 = s.local_id(1).unwrap();
        let l3 = s.local_id(3).unwrap();
        assert!(s.graph.has_arc(l0, l1));
        assert!(s.graph.has_arc(l0, l3));
        assert_eq!(s.graph.arc_weight(l0, l3), Some(0.5));
    }

    #[test]
    fn duplicates_and_order_are_normalised() {
        let g = sample_graph();
        let s = induced_subgraph(&g, &[3, 1, 3, 0, 1]);
        assert_eq!(s.original, vec![0, 1, 3]);
    }

    #[test]
    fn mapping_roundtrips() {
        let g = sample_graph();
        let s = induced_subgraph(&g, &[2, 4]);
        for local in 0..s.len() as NodeId {
            let orig = s.original_id(local);
            assert_eq!(s.local_id(orig), Some(local));
        }
        assert_eq!(s.local_id(0), None);
    }

    #[test]
    fn full_node_set_reproduces_graph() {
        let g = sample_graph();
        let all: Vec<NodeId> = g.nodes().collect();
        let s = induced_subgraph(&g, &all);
        assert_eq!(s.graph.num_arcs(), g.num_arcs());
        for (u, v, w) in g.arcs() {
            assert_eq!(s.graph.arc_weight(u, v), Some(w));
        }
    }

    #[test]
    fn undirected_parent_gives_undirected_subgraph() {
        let mut b = GraphBuilder::new_undirected(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        let g = b.build();
        let s = induced_subgraph(&g, &[0, 1, 2]);
        assert!(!s.graph.is_directed());
        assert_eq!(s.graph.num_edges(), 2);
        assert_eq!(s.graph.num_arcs(), 4);
    }

    #[test]
    fn empty_selection_gives_empty_subgraph() {
        let g = sample_graph();
        let s = induced_subgraph(&g, &[]);
        assert!(s.is_empty());
        assert_eq!(s.graph.num_nodes(), 0);
    }
}

//! Rényi-DP accountant implementing Theorem 3 of the paper.
//!
//! Per iteration, Algorithm 2's subsampled Gaussian mechanism satisfies
//! `(α, γ)`-RDP with
//!
//! `γ(α) = 1/(α−1) · log Σ_{i=0}^{N_g} ρ_i · exp( α(α−1) i² / (2 N_g² σ²) )`
//!
//! where `ρ_i = C(B, i) (N_g/m)^i (1 − N_g/m)^{B−i}` is the probability
//! that `i` of the batch's `B` subgraphs contain the differing node
//! (Eq. 24/25). Composition over `T` steps is linear in γ (Definition 5),
//! and Theorem 1 converts `(α, γT)`-RDP to `(ε, δ)`-DP:
//!
//! `ε = γT + log((α−1)/α) − (log δ + log α)/(α−1)`.
//!
//! Everything is computed in log-space so that `N_g = 1111`, `B` in the
//! hundreds, and `m` in the tens of thousands stay numerically exact.

use crate::math::{ln_binomial, log_sum_exp};

/// Inputs to the Theorem 3 accountant.
#[derive(Clone, Copy, Debug)]
pub struct PrivacyParams {
    /// Upper bound on any node's occurrences across subgraphs (`N_g` from
    /// Lemma 1 for the naive sampler, or the threshold `M` for PrivIM*).
    pub n_g: u64,
    /// Batch size `B` (subgraphs per DP-SGD step).
    pub batch: u64,
    /// Subgraph-container size `m = |G_sub|`.
    pub container: u64,
    /// Number of DP-SGD iterations `T`.
    pub steps: u64,
}

/// Default α grid for optimising the RDP→DP conversion. Matches the common
/// Opacus-style grid: dense at small orders, logarithmic thereafter.
pub fn default_alpha_grid() -> Vec<f64> {
    let mut grid: Vec<f64> = vec![1.25, 1.5, 1.75];
    grid.extend((2..=64).map(|x| x as f64));
    grid.extend([80.0, 96.0, 128.0, 192.0, 256.0, 512.0]);
    grid
}

/// Per-step Rényi divergence bound `γ(α)` of Theorem 3.
///
/// `sigma` is the noise *multiplier* (Algorithm 2 adds `N(0, σ²Δ_g²)` where
/// `Δ_g = C·N_g`). When `n_g ≥ container` the subsampling gives no
/// amplification and the bound degenerates to the plain Gaussian-mechanism
/// RDP `α B² / (2 N_g² σ²)`-ish tail dominated by `i = B`.
pub fn rdp_gamma_per_step(alpha: f64, sigma: f64, params: &PrivacyParams) -> f64 {
    assert!(alpha > 1.0, "RDP order must exceed 1");
    assert!(sigma > 0.0, "noise multiplier must be positive");
    let PrivacyParams {
        n_g,
        batch,
        container,
        ..
    } = *params;
    assert!(n_g >= 1 && batch >= 1 && container >= 1);

    // Sampling probability of hitting an affected subgraph: q = N_g / m,
    // clamped to 1 when the container is smaller than the occurrence bound.
    let q = (n_g as f64 / container as f64).min(1.0);
    let i_max = n_g.min(batch);
    let ln_q = q.ln();
    let ln_1mq = (1.0 - q).max(f64::MIN_POSITIVE).ln();
    let denom = 2.0 * (n_g as f64) * (n_g as f64) * sigma * sigma;

    let mut terms = Vec::with_capacity(i_max as usize + 1);
    for i in 0..=i_max {
        let ln_rho = if q >= 1.0 {
            // degenerate: all mass at i = batch
            if i == batch {
                0.0
            } else {
                f64::NEG_INFINITY
            }
        } else {
            ln_binomial(batch, i) + i as f64 * ln_q + (batch - i) as f64 * ln_1mq
        };
        let exponent = alpha * (alpha - 1.0) * (i as f64) * (i as f64) / denom;
        terms.push(ln_rho + exponent);
    }
    // If q == 1 and batch > i_max the mass-at-batch term was skipped; add it.
    if q >= 1.0 && batch > i_max {
        let exponent = alpha * (alpha - 1.0) * (batch as f64) * (batch as f64) / denom;
        terms.push(exponent);
    }
    log_sum_exp(&terms) / (alpha - 1.0)
}

/// Theorem 1: `(α, γ_total)`-RDP ⇒ `(ε, δ)`-DP.
pub fn rdp_to_dp(alpha: f64, gamma_total: f64, delta: f64) -> f64 {
    assert!(alpha > 1.0 && delta > 0.0 && delta < 1.0);
    gamma_total + ((alpha - 1.0) / alpha).ln() - (delta.ln() + alpha.ln()) / (alpha - 1.0)
}

/// Inverse of [`rdp_to_dp`] in γ: the per-order Rényi budget that converts
/// to exactly `epsilon` at `(alpha, delta)`. `rdp_to_dp(α, dp_to_rdp(α, ε, δ), δ) == ε`
/// up to floating-point rounding — the round-trip property tests pin it.
pub fn dp_to_rdp(alpha: f64, epsilon: f64, delta: f64) -> f64 {
    assert!(alpha > 1.0 && delta > 0.0 && delta < 1.0);
    epsilon - ((alpha - 1.0) / alpha).ln() + (delta.ln() + alpha.ln()) / (alpha - 1.0)
}

/// Per-release RDP of the *plain* (unsubsampled) Gaussian mechanism with
/// sensitivity-normalised noise multiplier `sigma`: `γ(α) = α / (2σ²)`.
/// This is the unit cost the serving-side tenant ledger composes per
/// admitted query.
pub fn gaussian_rdp(alpha: f64, sigma: f64) -> f64 {
    assert!(alpha > 1.0, "RDP order must exceed 1");
    assert!(sigma > 0.0, "noise multiplier must be positive");
    alpha / (2.0 * sigma * sigma)
}

/// Best `ε(δ)` over the default α grid for `T` composed steps at noise
/// multiplier `sigma`.
pub fn best_epsilon(sigma: f64, delta: f64, params: &PrivacyParams) -> f64 {
    default_alpha_grid()
        .into_iter()
        .map(|alpha| {
            let gamma = rdp_gamma_per_step(alpha, sigma, params);
            rdp_to_dp(alpha, gamma * params.steps as f64, delta)
        })
        .fold(f64::INFINITY, f64::min)
}

/// Calibrate the smallest noise multiplier `σ` achieving
/// `best_epsilon(σ) ≤ target_eps`, by bisection. Panics if even a huge σ
/// cannot reach the target (ε is monotone decreasing in σ).
pub fn calibrate_sigma(target_eps: f64, delta: f64, params: &PrivacyParams) -> f64 {
    assert!(target_eps > 0.0);
    let mut lo = 1e-2;
    let mut hi = 1.0;
    // grow hi until it satisfies the budget
    let mut guard = 0;
    while best_epsilon(hi, delta, params) > target_eps {
        hi *= 2.0;
        guard += 1;
        assert!(
            guard < 64,
            "cannot reach epsilon {target_eps} with any sigma"
        );
    }
    // shrink lo until it violates (so the root is bracketed)
    while best_epsilon(lo, delta, params) <= target_eps && lo > 1e-6 {
        lo /= 2.0;
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if best_epsilon(mid, delta, params) <= target_eps {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// Stateful accountant: accumulates per-step γ over the α grid so that
/// heterogeneous steps (e.g. different N_g between PrivIM stages, or extra
/// releases) compose by Definition 5.
#[derive(Clone, Debug)]
pub struct RdpAccountant {
    alphas: Vec<f64>,
    gammas: Vec<f64>,
    delta: f64,
}

impl RdpAccountant {
    /// New accountant targeting a fixed `δ`.
    pub fn new(delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0);
        let alphas = default_alpha_grid();
        let gammas = vec![0.0; alphas.len()];
        RdpAccountant {
            alphas,
            gammas,
            delta,
        }
    }

    /// Record `steps` iterations of the Theorem 3 mechanism at `sigma`.
    pub fn record_steps(&mut self, sigma: f64, steps: u64, params: &PrivacyParams) {
        for (alpha, gamma) in self.alphas.iter().zip(self.gammas.iter_mut()) {
            *gamma += rdp_gamma_per_step(*alpha, sigma, params) * steps as f64;
        }
    }

    /// Record an arbitrary `(α, γ)` curve sampled on the same grid —
    /// escape hatch for composing non-Theorem-3 mechanisms.
    pub fn record_rdp_curve(&mut self, gamma_of_alpha: impl Fn(f64) -> f64) {
        for (alpha, gamma) in self.alphas.iter().zip(self.gammas.iter_mut()) {
            *gamma += gamma_of_alpha(*alpha);
        }
    }

    /// Record `count` plain Gaussian-mechanism releases at noise
    /// multiplier `sigma` ([`gaussian_rdp`]). The per-query charge the
    /// serving ledger uses.
    pub fn record_gaussian_releases(&mut self, sigma: f64, count: u64) {
        self.record_rdp_curve(|alpha| gaussian_rdp(alpha, sigma) * count as f64);
    }

    /// Current `ε` spent at the accountant's `δ`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon_at(self.delta)
    }

    /// `ε` spent converted at an arbitrary `δ` (read-out for callers that
    /// report at a different failure probability than the accountant's).
    pub fn epsilon_at(&self, delta: f64) -> f64 {
        self.alphas
            .iter()
            .zip(&self.gammas)
            .map(|(&a, &g)| rdp_to_dp(a, g, delta))
            .fold(f64::INFINITY, f64::min)
    }

    /// The δ this accountant reports ε at.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The α grid the accountant composes on.
    pub fn alphas(&self) -> &[f64] {
        &self.alphas
    }

    /// Accumulated per-order Rényi budgets, aligned with [`Self::alphas`].
    pub fn gammas(&self) -> &[f64] {
        &self.gammas
    }

    /// The full accumulated `(α, γ)` curve — the accountant's complete
    /// state, consumed by budget ledgers and the attack-evidence tables.
    pub fn rdp_curve(&self) -> Vec<(f64, f64)> {
        self.alphas.iter().copied().zip(self.gammas.iter().copied()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> PrivacyParams {
        PrivacyParams {
            n_g: 4,
            batch: 16,
            container: 256,
            steps: 50,
        }
    }

    #[test]
    fn gamma_decreases_with_sigma() {
        let p = params();
        let g1 = rdp_gamma_per_step(8.0, 0.5, &p);
        let g2 = rdp_gamma_per_step(8.0, 2.0, &p);
        let g3 = rdp_gamma_per_step(8.0, 8.0, &p);
        assert!(g1 > g2 && g2 > g3);
        assert!(g3 > 0.0);
    }

    #[test]
    fn gamma_increases_with_batch() {
        // A larger batch makes it likelier that affected subgraphs are
        // sampled, so privacy loss per step grows with B. (Note γ is *not*
        // monotone in N_g: Theorem 3's noise is σ·C·N_g, so a larger
        // occurrence bound costs utility — absolute noise — rather than ε.)
        let base = params();
        let bigger = PrivacyParams { batch: 128, ..base };
        let g_small = rdp_gamma_per_step(8.0, 1.0, &base);
        let g_large = rdp_gamma_per_step(8.0, 1.0, &bigger);
        assert!(g_large > g_small, "{g_large} vs {g_small}");
    }

    #[test]
    fn subsampling_amplifies_vs_full_batch() {
        // q = 1 (container = n_g) must be worse than q ≪ 1.
        let sub = params();
        let full = PrivacyParams {
            container: 4,
            n_g: 4,
            ..sub
        };
        let g_sub = rdp_gamma_per_step(4.0, 1.0, &sub);
        let g_full = rdp_gamma_per_step(4.0, 1.0, &full);
        assert!(g_full > 10.0 * g_sub, "{g_full} vs {g_sub}");
    }

    #[test]
    fn epsilon_monotone_in_steps() {
        let p1 = PrivacyParams {
            steps: 10,
            ..params()
        };
        let p2 = PrivacyParams {
            steps: 100,
            ..params()
        };
        let e1 = best_epsilon(1.0, 1e-5, &p1);
        let e2 = best_epsilon(1.0, 1e-5, &p2);
        assert!(e2 > e1);
    }

    #[test]
    fn calibration_bisects_to_budget() {
        let p = params();
        for target in [0.5, 1.0, 2.0, 4.0, 6.0] {
            let sigma = calibrate_sigma(target, 1e-5, &p);
            let eps = best_epsilon(sigma, 1e-5, &p);
            assert!(eps <= target, "target {target}: eps {eps}");
            // within 2% of the budget (not over-noised)
            let eps_lo = best_epsilon(sigma * 0.98, 1e-5, &p);
            assert!(eps_lo > target, "sigma not tight for target {target}");
        }
    }

    #[test]
    fn calibrated_sigma_grows_as_budget_shrinks() {
        let p = params();
        let s_tight = calibrate_sigma(1.0, 1e-5, &p);
        let s_loose = calibrate_sigma(6.0, 1e-5, &p);
        assert!(s_tight > s_loose, "{s_tight} vs {s_loose}");
    }

    #[test]
    fn higher_ng_needs_more_noise_for_same_budget() {
        // The quantitative heart of the paper: naive N_g = 1111 demands a
        // far larger multiplier than dual-stage M = 4.
        let naive = PrivacyParams {
            n_g: 1111,
            batch: 16,
            container: 2048,
            steps: 50,
        };
        let dual = PrivacyParams {
            n_g: 4,
            batch: 16,
            container: 2048,
            steps: 50,
        };
        let s_naive = calibrate_sigma(2.0, 1e-5, &naive);
        let s_dual = calibrate_sigma(2.0, 1e-5, &dual);
        // Total noise std is σ·C·N_g, so compare effective noise:
        let noise_naive = s_naive * 1111.0;
        let noise_dual = s_dual * 4.0;
        assert!(
            noise_naive > 20.0 * noise_dual,
            "naive {noise_naive} vs dual {noise_dual}"
        );
    }

    #[test]
    fn accountant_accumulates_linearly() {
        let p = PrivacyParams {
            steps: 1,
            ..params()
        };
        let mut acc = RdpAccountant::new(1e-5);
        acc.record_steps(1.0, 25, &p);
        acc.record_steps(1.0, 25, &p);
        let eps_acc = acc.epsilon();
        let eps_direct = best_epsilon(1.0, 1e-5, &PrivacyParams { steps: 50, ..p });
        assert!((eps_acc - eps_direct).abs() < 1e-9);
    }

    #[test]
    fn conversion_rule_formula() {
        // Hand-check Theorem 1 at α = 2, γ = 1, δ = 1e-5.
        let want = 1.0 + (0.5f64).ln() - ((1e-5f64).ln() + (2.0f64).ln()) / 1.0;
        assert!((rdp_to_dp(2.0, 1.0, 1e-5) - want).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "order must exceed")]
    fn alpha_one_rejected() {
        rdp_gamma_per_step(1.0, 1.0, &params());
    }

    #[test]
    fn accountant_read_out_exposes_full_state() {
        let mut acc = RdpAccountant::new(1e-5);
        assert_eq!(acc.alphas().len(), acc.gammas().len());
        assert!(acc.gammas().iter().all(|&g| g == 0.0));
        acc.record_gaussian_releases(2.0, 3);
        let curve = acc.rdp_curve();
        assert_eq!(curve.len(), default_alpha_grid().len());
        for &(alpha, gamma) in &curve {
            let want = 3.0 * gaussian_rdp(alpha, 2.0);
            assert!((gamma - want).abs() < 1e-12, "alpha {alpha}");
        }
        // epsilon_at at the accountant's own delta equals epsilon()
        assert_eq!(acc.epsilon().to_bits(), acc.epsilon_at(1e-5).to_bits());
        // a looser delta never increases epsilon
        assert!(acc.epsilon_at(1e-3) <= acc.epsilon());
    }
}

/// Seeded property-style sweeps: the proptest-free equivalent the
/// workspace uses everywhere (PR 1 rewrote proptests as seeded loops).
/// Each test draws many random parameterisations from a fixed ChaCha
/// stream and asserts an accountant invariant on every draw.
#[cfg(test)]
mod property_tests {
    use super::*;
    use privim_rt::{ChaCha8Rng, Rng, SeedableRng};

    fn random_params(rng: &mut ChaCha8Rng) -> PrivacyParams {
        let n_g = rng.gen_range(1..64u64);
        let batch = rng.gen_range(1..128u64);
        // container at least n_g so q <= 1 is the interesting subsampled
        // regime on most draws (q = 1 draws still occur when equal).
        let container = n_g + rng.gen_range(0..4096u64);
        let steps = rng.gen_range(1..200u64);
        PrivacyParams {
            n_g,
            batch,
            container,
            steps,
        }
    }

    fn random_sigma(rng: &mut ChaCha8Rng) -> f64 {
        0.3 + 4.0 * rng.gen::<f64>()
    }

    #[test]
    fn composition_is_monotone_in_recorded_steps() {
        // Recording more steps can only spend more budget: ε after k+j
        // steps >= ε after k steps, for every draw and at every α.
        let mut rng = ChaCha8Rng::seed_from_u64(0xACC0);
        for trial in 0..40u64 {
            let p = PrivacyParams {
                steps: 1,
                ..random_params(&mut rng)
            };
            let sigma = random_sigma(&mut rng);
            let mut acc = RdpAccountant::new(1e-5);
            let mut prev = acc.epsilon();
            for round in 0..4 {
                acc.record_steps(sigma, 1 + (trial % 3), &p);
                let eps = acc.epsilon();
                assert!(
                    eps >= prev - 1e-12,
                    "trial {trial} round {round}: ε regressed {prev} -> {eps}"
                );
                prev = eps;
            }
        }
    }

    #[test]
    fn subsampled_gamma_never_exceeds_base_mechanism() {
        // Amplification-by-subsampling soundness: the Theorem 3 bound with
        // q = N_g/m < 1 must never exceed the same mechanism at full
        // participation (q = 1, i.e. container = n_g) — subsampling can
        // only help. Also: γ is always non-negative.
        let mut rng = ChaCha8Rng::seed_from_u64(0xACC1);
        for trial in 0..60usize {
            let p = random_params(&mut rng);
            let full = PrivacyParams {
                container: p.n_g, // q = 1: the base mechanism
                ..p
            };
            let sigma = random_sigma(&mut rng);
            let alpha = [1.25, 2.0, 8.0, 64.0, 512.0][trial % 5];
            let g_sub = rdp_gamma_per_step(alpha, sigma, &p);
            let g_full = rdp_gamma_per_step(alpha, sigma, &full);
            assert!(g_sub >= 0.0, "trial {trial}: negative γ {g_sub}");
            assert!(
                g_sub <= g_full + 1e-9,
                "trial {trial} α={alpha}: subsampled γ {g_sub} above base {g_full}"
            );
        }
    }

    #[test]
    fn epsilon_conversion_round_trips_at_extreme_orders() {
        // dp_to_rdp must invert rdp_to_dp exactly (to rounding) at both
        // ends of the α grid, including the extreme orders 1.0625 and 8192
        // beyond the default grid's edges.
        let mut rng = ChaCha8Rng::seed_from_u64(0xACC2);
        let extreme_alphas = [1.0625, 1.25, 2.0, 512.0, 8192.0];
        for trial in 0..50usize {
            let alpha = extreme_alphas[trial % extreme_alphas.len()];
            let gamma = rng.gen::<f64>() * 40.0;
            let delta = 10f64.powi(-(1 + (trial % 9) as i32));
            let eps = rdp_to_dp(alpha, gamma, delta);
            let back = dp_to_rdp(alpha, eps, delta);
            let scale = gamma.abs().max(eps.abs()).max(1.0);
            assert!(
                (back - gamma).abs() <= 1e-9 * scale,
                "trial {trial} α={alpha} δ={delta}: γ {gamma} -> ε {eps} -> {back}"
            );
        }
    }

    #[test]
    fn grid_optimum_never_beats_any_single_order() {
        // best_epsilon is a min over the grid: it can never be larger than
        // the conversion at any individual order.
        let mut rng = ChaCha8Rng::seed_from_u64(0xACC3);
        for trial in 0..20 {
            let p = random_params(&mut rng);
            let sigma = random_sigma(&mut rng);
            let best = best_epsilon(sigma, 1e-5, &p);
            for alpha in [1.5, 4.0, 32.0, 256.0] {
                let gamma = rdp_gamma_per_step(alpha, sigma, &p);
                let single = rdp_to_dp(alpha, gamma * p.steps as f64, 1e-5);
                assert!(
                    best <= single + 1e-12,
                    "trial {trial} α={alpha}: best {best} above single-order {single}"
                );
            }
        }
    }

    #[test]
    fn gaussian_rdp_is_linear_in_alpha_and_quadratic_in_sigma() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xACC4);
        for _ in 0..30 {
            let alpha = 1.0 + rng.gen::<f64>() * 100.0;
            let sigma = random_sigma(&mut rng);
            let g = gaussian_rdp(alpha, sigma);
            assert!((gaussian_rdp(2.0 * alpha, sigma) - 2.0 * g).abs() < 1e-9 * g.max(1.0));
            assert!((gaussian_rdp(alpha, 2.0 * sigma) - g / 4.0).abs() < 1e-9 * g.max(1.0));
        }
    }
}

//! Noise mechanisms: Gaussian (DP-SGD, Algorithm 2 line 8), Laplace (the
//! naive private-greedy strawman of Example 2), and the Symmetric
//! Multivariate Laplace noise used by the HP baseline (Xiang et al.).

use privim_rt::Rng;

/// Sample one standard normal via Box–Muller.
fn standard_normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// iid `N(0, (σ·Δ)²)` noise vector — the Gaussian mechanism with noise
/// multiplier `sigma` and sensitivity `delta` (Algorithm 2 adds this to the
/// summed clipped gradients).
pub fn gaussian_noise_vec(len: usize, sigma: f64, delta: f64, rng: &mut impl Rng) -> Vec<f64> {
    assert!(sigma >= 0.0 && delta >= 0.0);
    let s = sigma * delta;
    (0..len).map(|_| standard_normal(rng) * s).collect()
}

/// iid `Lap(0, Δ/ε)` noise vector — the Laplace mechanism. Used by the
/// Example 2 demonstration of why private greedy IM fails: with
/// `Δ ≈ 2×10⁵` and `ε = 1`, the noise dwarfs marginal gains.
pub fn laplace_noise_vec(len: usize, epsilon: f64, delta: f64, rng: &mut impl Rng) -> Vec<f64> {
    assert!(epsilon > 0.0 && delta >= 0.0);
    let b = delta / epsilon;
    (0..len)
        .map(|_| {
            // inverse-CDF sampling
            let u: f64 = rng.gen::<f64>() - 0.5;
            -b * u.signum() * (1.0 - 2.0 * u.abs()).ln()
        })
        .collect()
}

/// Symmetric Multivariate Laplace noise `SML(0, s²·I)`: `X = √W · Z` with
/// `W ~ Exp(1)` and `Z ~ N(0, s²·I)`. This is the heavier-tailed noise the
/// HP baseline (HeterPoisson, Xiang et al. S&P'24) injects; the mixture
/// structure makes the whole vector share one radial scale.
pub fn sml_noise_vec(len: usize, scale: f64, rng: &mut impl Rng) -> Vec<f64> {
    assert!(scale >= 0.0);
    let w: f64 = {
        let u: f64 = rng.gen::<f64>();
        -(1.0 - u).max(f64::MIN_POSITIVE).ln() // Exp(1)
    };
    let radial = w.sqrt();
    (0..len)
        .map(|_| standard_normal(rng) * scale * radial)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_rt::ChaCha8Rng;
    use privim_rt::SeedableRng;

    fn var(xs: &[f64]) -> f64 {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n
    }

    #[test]
    fn gaussian_variance_matches() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let v = gaussian_noise_vec(50_000, 2.0, 3.0, &mut rng);
        // variance (σΔ)² = 36
        assert!((var(&v) - 36.0).abs() < 1.5, "var {}", var(&v));
    }

    #[test]
    fn gaussian_zero_sigma_is_zero() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let v = gaussian_noise_vec(100, 0.0, 5.0, &mut rng);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn laplace_variance_matches() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        // Var(Lap(b)) = 2b²; b = Δ/ε = 4 → Var = 32
        let v = laplace_noise_vec(100_000, 0.5, 2.0, &mut rng);
        assert!((var(&v) - 32.0).abs() < 1.5, "var {}", var(&v));
    }

    #[test]
    fn laplace_noise_overwhelms_gain_example2() {
        // Example 2: Δf ≈ 2×10⁵, ε = 1 → typical |noise| far above the
        // 10⁰..10³ range of actual marginal gains.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let v = laplace_noise_vec(1_000, 1.0, 2e5, &mut rng);
        let median_abs = {
            let mut a: Vec<f64> = v.iter().map(|x| x.abs()).collect();
            a.sort_by(|x, y| x.partial_cmp(y).unwrap());
            a[a.len() / 2]
        };
        assert!(median_abs > 1e4, "median |noise| {median_abs}");
    }

    #[test]
    fn sml_variance_matches() {
        // Var(√W·Z) = E[W]·s² = s² for W ~ Exp(1).
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut all = Vec::new();
        for _ in 0..2_000 {
            all.extend(sml_noise_vec(32, 3.0, &mut rng));
        }
        assert!((var(&all) - 9.0).abs() < 0.6, "var {}", var(&all));
    }

    #[test]
    fn sml_is_heavier_tailed_than_gaussian() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut sml = Vec::new();
        for _ in 0..5_000 {
            sml.extend(sml_noise_vec(8, 1.0, &mut rng));
        }
        let gau = gaussian_noise_vec(sml.len(), 1.0, 1.0, &mut rng);
        let kurt = |xs: &[f64]| {
            let v = var(xs);
            let m4 = xs.iter().map(|x| x.powi(4)).sum::<f64>() / xs.len() as f64;
            m4 / (v * v)
        };
        assert!(
            kurt(&sml) > kurt(&gau) + 0.5,
            "kurtosis sml {} vs gaussian {}",
            kurt(&sml),
            kurt(&gau)
        );
    }
}

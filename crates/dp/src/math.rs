//! Special functions needed by the accountant and the parameter indicator:
//! log-gamma (Lanczos), log-binomial coefficients, log-sum-exp, and the
//! Gamma-distribution pdf used by Eq. 10/11.

/// Lanczos approximation of `ln Γ(x)` for `x > 0`.
///
/// Accuracy ~1e-13 over the range used here (binomial coefficients with
/// arguments up to ~1e9 and Gamma-pdf shapes in single digits).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain: x > 0, got {x}");
    // g = 7, n = 9 Lanczos coefficients.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln C(n, k)` computed stably via log-gamma.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    assert!(k <= n, "k={k} > n={n}");
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// `log Σ exp(xᵢ)` without overflow.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

/// Gamma-distribution probability density `ξ(x; β, ψ)` — Eq. 11 of the
/// paper (shape `β`, scale `ψ`).
pub fn gamma_pdf(x: f64, shape: f64, scale: f64) -> f64 {
    assert!(
        shape > 0.0 && scale > 0.0,
        "gamma pdf params must be positive"
    );
    if x <= 0.0 {
        return 0.0;
    }
    let ln_pdf = (shape - 1.0) * x.ln() - x / scale - shape * scale.ln() - ln_gamma(shape);
    ln_pdf.exp()
}

/// Mode of the Gamma pdf: `(β − 1)ψ` for `β > 1` (Eq. 46) — where the
/// paper's indicator peaks.
pub fn gamma_mode(shape: f64, scale: f64) -> f64 {
    ((shape - 1.0) * scale).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts: [(f64, f64); 5] = [
            (1.0, 1.0),
            (2.0, 1.0),
            (3.0, 2.0),
            (5.0, 24.0),
            (7.0, 720.0),
        ];
        for (x, f) in facts {
            assert!(
                (ln_gamma(x) - f.ln()).abs() < 1e-10,
                "ln_gamma({x}) = {} want {}",
                ln_gamma(x),
                f.ln()
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        let want = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - want).abs() < 1e-10);
    }

    #[test]
    fn binomial_small_values() {
        assert!((ln_binomial(5, 2) - 10.0f64.ln()).abs() < 1e-10);
        assert_eq!(ln_binomial(9, 0), 0.0);
        assert_eq!(ln_binomial(9, 9), 0.0);
        assert!((ln_binomial(10, 5) - 252.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn binomial_large_values_stay_finite() {
        let v = ln_binomial(1_000_000_000, 500);
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn log_sum_exp_basic() {
        let xs = [0.0, 0.0];
        assert!((log_sum_exp(&xs) - 2.0f64.ln()).abs() < 1e-12);
        // overflow-prone inputs
        let big = [1000.0, 1000.0];
        assert!((log_sum_exp(&big) - (1000.0 + 2.0f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn gamma_pdf_integrates_to_one() {
        // crude trapezoid over [0, 60]
        let (shape, scale) = (3.0, 2.5);
        let n = 60_000;
        let h = 60.0 / n as f64;
        let mut total = 0.0;
        for i in 0..n {
            let x0 = i as f64 * h;
            total += 0.5 * (gamma_pdf(x0, shape, scale) + gamma_pdf(x0 + h, shape, scale)) * h;
        }
        assert!((total - 1.0).abs() < 1e-3, "integral {total}");
    }

    #[test]
    fn gamma_pdf_peaks_at_mode() {
        let (shape, scale) = (4.0, 5.0);
        let mode = gamma_mode(shape, scale);
        assert_eq!(mode, 15.0);
        let at_mode = gamma_pdf(mode, shape, scale);
        for dx in [-2.0, -1.0, 1.0, 2.0] {
            assert!(gamma_pdf(mode + dx, shape, scale) < at_mode);
        }
    }

    #[test]
    fn gamma_pdf_zero_left_of_origin() {
        assert_eq!(gamma_pdf(-1.0, 2.0, 1.0), 0.0);
        assert_eq!(gamma_pdf(0.0, 2.0, 1.0), 0.0);
    }
}

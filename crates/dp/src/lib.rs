#![warn(missing_docs)]
//! # privim-dp
//!
//! Differential-privacy substrate for PrivIM: the Rényi-DP accountant
//! implementing Theorem 3's subsampled-Gaussian mixture bound, the
//! RDP → (ε, δ) conversion of Theorem 1, noise-multiplier calibration by
//! bisection, the sensitivity bounds of Lemmas 1–2, and the noise
//! mechanisms used by the framework and its baselines (Gaussian, Laplace,
//! and the Symmetric Multivariate Laplace noise of the HP baseline).
//!
//! ## Accounting example
//!
//! ```
//! use privim_dp::accountant::{PrivacyParams, best_epsilon, calibrate_sigma};
//!
//! let params = PrivacyParams { n_g: 4, batch: 16, container: 256, steps: 50 };
//! let sigma = calibrate_sigma(2.0, 1e-5, &params);
//! let eps = best_epsilon(sigma, 1e-5, &params);
//! assert!(eps <= 2.0 && eps > 1.0);
//! ```

pub mod accountant;
pub mod math;
pub mod mechanisms;
pub mod sensitivity;

pub use accountant::{
    best_epsilon, calibrate_sigma, dp_to_rdp, gaussian_rdp, rdp_to_dp, PrivacyParams,
    RdpAccountant,
};
pub use mechanisms::{gaussian_noise_vec, laplace_noise_vec, sml_noise_vec};
pub use sensitivity::{
    naive_occurrence_bound, node_sensitivity, occurrence_bound_for_unit, sampled_occurrence_bound,
    PrivacyUnit,
};

//! Node-level sensitivity bounds (Lemmas 1 and 2).

/// Lemma 1: the maximum number of times a single node can occur across the
/// subgraphs extracted by Algorithm 1 on a θ-bounded graph with an
/// `r`-layer GNN:
///
/// `N_g = Σ_{i=0}^{r} θ^i = (θ^{r+1} − 1) / (θ − 1)`.
///
/// Saturates at `u64::MAX` instead of overflowing (θ and r are small in
/// practice: θ=10, r=3 → N_g = 1111).
pub fn naive_occurrence_bound(theta: u64, r: u32) -> u64 {
    assert!(theta >= 1, "theta must be >= 1");
    if theta == 1 {
        return r as u64 + 1;
    }
    let mut total: u64 = 0;
    let mut term: u64 = 1;
    for _ in 0..=r {
        total = total.saturating_add(term);
        term = term.saturating_mul(theta);
    }
    total
}

/// High-probability refinement of Lemma 1 under start-node subsampling.
///
/// Lemma 1's worst case assumes *every* node in the reverse r-hop
/// neighbourhood of `v` starts a walk. Algorithm 1 only starts walks from
/// nodes sampled with rate `q`, so `v`'s occurrence count is stochastically
/// dominated by `Binomial(N_g, q)`. A Chernoff bound gives, with
/// probability at least `1 − delta_slack`,
///
/// `occ(v) ≤ qN_g + sqrt(3 qN_g ln(1/δ_s)) + ln(1/δ_s)`.
///
/// Using this bound costs an additive `delta_slack` in the final δ (union
/// bound over the failure event), which callers must account for. This is
/// the refinement that keeps the naive pipeline's noise finite in practice
/// (the worst-case Σθ^i = 1111 at θ=10, r=3 would drown any gradient);
/// DESIGN.md documents the reproduction rationale.
pub fn sampled_occurrence_bound(theta: u64, r: u32, q: f64, delta_slack: f64) -> u64 {
    assert!((0.0..=1.0).contains(&q), "sampling rate must be in [0,1]");
    assert!(delta_slack > 0.0 && delta_slack < 1.0);
    let n_g = naive_occurrence_bound(theta, r);
    if q >= 1.0 {
        return n_g;
    }
    let mean = q * n_g as f64;
    let ln_term = (1.0 / delta_slack).ln();
    let bound = mean + (3.0 * mean * ln_term).sqrt() + ln_term;
    (bound.ceil() as u64).clamp(1, n_g)
}

/// Lemma 2: node-level `l2` sensitivity of the summed, per-subgraph-clipped
/// batch gradient: `Δ_g ≤ C · N_g` where `C` is the clip bound and `N_g`
/// the occurrence bound (from Lemma 1 for the naive sampler, or the
/// frequency threshold `M` for the dual-stage sampler, §IV-D).
pub fn node_sensitivity(clip_bound: f64, occurrence_bound: u64) -> f64 {
    assert!(clip_bound > 0.0, "clip bound must be positive");
    assert!(occurrence_bound >= 1, "occurrence bound must be >= 1");
    clip_bound * occurrence_bound as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_series_closed_form() {
        // θ=10, r=3: 1 + 10 + 100 + 1000 (the paper's default setting).
        assert_eq!(naive_occurrence_bound(10, 3), 1111);
        assert_eq!(naive_occurrence_bound(2, 3), 15);
        assert_eq!(naive_occurrence_bound(5, 0), 1);
    }

    #[test]
    fn theta_one_is_linear() {
        assert_eq!(naive_occurrence_bound(1, 3), 4);
        assert_eq!(naive_occurrence_bound(1, 0), 1);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let v = naive_occurrence_bound(u64::MAX / 2, 4);
        assert_eq!(v, u64::MAX);
    }

    #[test]
    fn sensitivity_scales_linearly() {
        assert_eq!(node_sensitivity(1.0, 1111), 1111.0);
        assert_eq!(node_sensitivity(0.5, 4), 2.0);
    }

    #[test]
    fn dual_stage_beats_naive_by_orders_of_magnitude() {
        // The core quantitative claim behind PrivIM*: M ≪ N_g.
        let naive = node_sensitivity(1.0, naive_occurrence_bound(10, 3));
        let dual = node_sensitivity(1.0, 4);
        assert!(naive / dual > 250.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_clip_rejected() {
        node_sensitivity(0.0, 4);
    }

    #[test]
    fn sampled_bound_never_exceeds_worst_case() {
        for q in [0.01, 0.067, 0.3, 1.0] {
            let b = sampled_occurrence_bound(10, 3, q, 1e-6);
            assert!(b <= 1111, "q={q}: {b}");
            assert!(b >= 1);
        }
        assert_eq!(sampled_occurrence_bound(10, 3, 1.0, 1e-6), 1111);
    }

    #[test]
    fn sampled_bound_tracks_mean_plus_tail() {
        // q = 256/3800 on LastFM-ish settings: mean ≈ 75, bound ≈ 100-150.
        let b = sampled_occurrence_bound(10, 3, 256.0 / 3800.0, 1e-6);
        assert!((75..=200).contains(&(b as i64)), "bound {b}");
        // monotone in q
        let lo = sampled_occurrence_bound(10, 3, 0.01, 1e-6);
        let hi = sampled_occurrence_bound(10, 3, 0.5, 1e-6);
        assert!(lo < hi);
    }
}

/// The unit of privacy (Definition 2). The paper primarily analyses
/// node-level DP but notes the method "can be extended to edge-level DP";
/// this enum lets the accounting switch between the two.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrivacyUnit {
    /// Adjacent graphs differ by one node and all its incident edges
    /// (unbounded node-level DP — the paper's default).
    Node,
    /// Adjacent graphs differ by one edge.
    Edge,
}

impl PrivacyUnit {
    /// Stable lowercase name (used in JSON output and CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            PrivacyUnit::Node => "node",
            PrivacyUnit::Edge => "edge",
        }
    }

    /// Parse a [`Self::name`] string.
    pub fn from_name(name: &str) -> Option<PrivacyUnit> {
        match name {
            "node" => Some(PrivacyUnit::Node),
            "edge" => Some(PrivacyUnit::Edge),
            _ => None,
        }
    }
}

/// Occurrence bound for the chosen privacy unit under the dual-stage
/// sampler's threshold `M`.
///
/// *Node:* a node appears in at most `M` subgraphs by construction
/// (Lemma 2 with `N_g* = M`).
///
/// *Edge:* an edge `(u, v)` influences a subgraph's gradient only when
/// both endpoints are present, so its occurrence is at most
/// `min(occ(u), occ(v)) ≤ M` — never larger than the node bound, and in
/// practice much smaller because co-occurrence is rarer than occurrence.
/// We release the safe `M`. Like the paper's own Lemma 2, this counts
/// only subgraphs *containing* the differing element and inherits the
/// same sampling-stability assumption for the extraction phase (§II-B
/// sketches the edge-level extension without a separate proof).
pub fn occurrence_bound_for_unit(unit: PrivacyUnit, threshold: u32) -> u64 {
    match unit {
        PrivacyUnit::Node | PrivacyUnit::Edge => threshold as u64,
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn edge_bound_never_exceeds_node_bound() {
        for m in [1u32, 4, 12] {
            let node = occurrence_bound_for_unit(PrivacyUnit::Node, m);
            let edge = occurrence_bound_for_unit(PrivacyUnit::Edge, m);
            assert!(edge <= node);
            assert_eq!(node, m as u64);
        }
    }

    #[test]
    fn unit_name_roundtrip() {
        for unit in [PrivacyUnit::Node, PrivacyUnit::Edge] {
            assert_eq!(PrivacyUnit::from_name(unit.name()), Some(unit));
        }
        assert_eq!(PrivacyUnit::from_name("graph"), None);
    }
}

//! Walks the workspace, runs the rule registry, applies annotation
//! suppression, and renders findings (human or `--json`).
//!
//! Since v2 the engine parses every file exactly once into a
//! [`ParsedFile`] list, runs the per-file rules over it, then builds the
//! workspace call graph ([`crate::callgraph`]) and runs the
//! cross-file rules (lock-order, dp-taint, unsafe-audit) over the same
//! parse. Suppression and annotation hygiene are applied uniformly at
//! the end, so a workspace finding is silenced by the same
//! `allow(<rule>, reason = …)` grammar as a single-file one.

use crate::callgraph::{self, GraphStats};
use crate::rules::{self, RuleInfo, RuleKind};
use crate::source::SourceFile;
use std::path::{Path, PathBuf};

/// Finding severity. Only errors fail the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// What a rule emits before suppression/severity resolution.
#[derive(Debug)]
pub struct RawFinding {
    pub line: usize,
    pub message: String,
    /// Lines at which a matching `allow` annotation suppresses this
    /// finding (usually just `[line]`; function-scoped rules add the
    /// `fn` signature line).
    pub suppress_lines: Vec<usize>,
    /// Override of the rule's default severity.
    pub severity: Option<Severity>,
}

/// A reportable finding.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: usize,
    pub severity: Severity,
    pub message: String,
}

/// Per-file rule applicability, derived from the workspace-relative path.
#[derive(Debug, Clone)]
pub struct Scope {
    /// Crate library code: `crates/*/src/**`, excluding `src/bin/`.
    pub lib_code: bool,
    /// Crate whose iteration order can reach results.
    pub det_crate: bool,
    /// The one file allowed to read the wall clock freely.
    pub wall_clock_exempt: bool,
    /// `crates/serve` library code: wall-clock reads are expected for
    /// latency instrumentation, so one fn-level `allow(wall-clock, ...)`
    /// annotation covers every read in that function.
    pub serve_latency: bool,
}

/// Crates where iteration order / hash randomization can reach outputs.
/// `serve` is included: response payloads (metrics, seed sets, cache
/// eviction order) must be deterministic for the bit-equivalence e2e test.
const DET_CRATES: [&str; 11] = [
    "tensor", "dp", "gnn", "sampling", "im", "core", "graph", "bench", "lint", "serve",
    "attack",
];

pub fn scope_for(rel: &str) -> Scope {
    let lib_code =
        rel.starts_with("crates/") && rel.contains("/src/") && !rel.contains("/src/bin/");
    let krate = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");
    Scope {
        lib_code,
        det_crate: DET_CRATES.contains(&krate),
        wall_clock_exempt: rel == "crates/rt/src/bench.rs",
        serve_latency: lib_code && krate == "serve",
    }
}

/// A source file parsed once and shared by per-file rules and the
/// workspace call graph.
pub struct ParsedFile {
    pub sf: SourceFile,
    pub scope: Scope,
}

/// The result of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    /// Call-graph statistics; `None` when no workspace rule ran.
    pub graph: Option<GraphStats>,
}

impl Report {
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .count()
    }

    /// Machine-readable findings for the bench harness (archived next to
    /// experiment results — see EXPERIMENTS.md).
    ///
    /// Schema v2: `version`, `findings[]`, `errors`, `warnings`,
    /// `files_scanned`, a `rules` object with a per-rule finding count
    /// for every registered rule, and (when the call graph was built) a
    /// `callgraph` stats object. `scripts/ci.sh` archives this file and
    /// the `workspace_json_is_v2_schema` test pins the shape, so schema
    /// drift fails CI rather than silently breaking consumers.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"version\":2,\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"rule\":{},\"file\":{},\"line\":{},\"severity\":{},\"message\":{}}}",
                json_str(f.rule),
                json_str(&f.file),
                f.line,
                json_str(f.severity.as_str()),
                json_str(&f.message),
            ));
        }
        s.push_str(&format!(
            "],\"errors\":{},\"warnings\":{},\"files_scanned\":{},\"rules\":{{",
            self.errors(),
            self.warnings(),
            self.files_scanned
        ));
        for (i, r) in rules::registry().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let n = self.findings.iter().filter(|f| f.rule == r.id).count();
            s.push_str(&format!("{}:{}", json_str(r.id), n));
        }
        s.push('}');
        if let Some(g) = &self.graph {
            s.push_str(&format!(
                ",\"callgraph\":{{\"functions\":{},\"call_sites\":{},\
                 \"resolved_call_sites\":{},\"edges\":{}}}",
                g.functions, g.call_sites, g.resolved_call_sites, g.edges
            ));
        }
        s.push('}');
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Is a rule enabled under an optional `--rule` filter?
fn enabled(rule: &RuleInfo, only: Option<&str>) -> bool {
    match only {
        Some(id) => rule.id == id,
        None => !rule.advisory,
    }
}

/// Run the registry over in-memory sources. `rs` and `tomls` are
/// `(workspace-relative path, content)` pairs; `only` restricts to a
/// single rule id (annotation hygiene always runs).
pub fn run_sources(rs: &[(String, String)], tomls: &[(String, String)], only: Option<&str>) -> Report {
    let mut findings: Vec<Finding> = Vec::new();
    let registry = rules::registry();

    // Parse every file exactly once; per-file rules and the workspace
    // call graph share the same token streams.
    let mut files: Vec<ParsedFile> = rs
        .iter()
        .map(|(path, text)| ParsedFile {
            sf: SourceFile::parse(path, text),
            scope: scope_for(path),
        })
        .collect();

    // Raw findings are collected first and suppressed in one pass at
    // the end, so annotation bookkeeping (`used`) is uniform across
    // per-file and workspace rules.
    let mut raws: Vec<(usize, &'static RuleInfo, RawFinding)> = Vec::new();

    for (idx, pf) in files.iter().enumerate() {
        for rule in registry {
            let RuleKind::Rust(check) = &rule.kind else {
                continue;
            };
            if !enabled(rule, only) {
                continue;
            }
            for raw in check(&pf.sf, &pf.scope) {
                raws.push((idx, rule, raw));
            }
        }
    }

    // Cross-file rules run over the cached call graph. The graph is
    // built once and only when at least one workspace rule is enabled.
    let mut graph = None;
    let ws_rules: Vec<&'static RuleInfo> = registry
        .iter()
        .filter(|r| matches!(r.kind, RuleKind::Workspace(_)) && enabled(r, only))
        .collect();
    if !ws_rules.is_empty() {
        let ws = callgraph::build(&files);
        graph = Some(ws.stats.clone());
        for rule in ws_rules {
            let RuleKind::Workspace(check) = &rule.kind else {
                continue;
            };
            for (idx, raw) in check(&ws) {
                raws.push((idx, rule, raw));
            }
        }
    }

    for (idx, rule, raw) in raws {
        let pf = &mut files[idx];
        let suppressed = pf.sf.allows.iter_mut().any(|a| {
            let hit = a.rule == rule.allow_id && raw.suppress_lines.contains(&a.covered_line);
            if hit {
                a.used = true;
            }
            hit
        });
        if !suppressed {
            findings.push(Finding {
                rule: rule.id,
                file: pf.sf.path.clone(),
                line: raw.line,
                severity: raw.severity.unwrap_or(rule.severity),
                message: raw.message,
            });
        }
    }

    // Annotation hygiene always runs: malformed or unknown-rule
    // annotations are errors; dead allows are warnings (full runs
    // only — under --rule most allows legitimately go unused).
    for pf in &files {
        let path = &pf.sf.path;
        for (line, msg) in &pf.sf.bad_annotations {
            findings.push(Finding {
                rule: "bad-annotation",
                file: path.clone(),
                line: *line,
                severity: Severity::Error,
                message: msg.clone(),
            });
        }
        for a in &pf.sf.allows {
            if !rules::is_known_allow_id(&a.rule) {
                findings.push(Finding {
                    rule: "bad-annotation",
                    file: path.clone(),
                    line: a.comment_line,
                    severity: Severity::Error,
                    message: format!("allow({}) names an unknown rule", a.rule),
                });
            } else if only.is_none() && !a.used {
                findings.push(Finding {
                    rule: "bad-annotation",
                    file: path.clone(),
                    line: a.comment_line,
                    severity: Severity::Warning,
                    message: format!(
                        "allow({}) suppresses nothing — remove the dead annotation",
                        a.rule
                    ),
                });
            }
        }
    }

    for (path, text) in tomls {
        for rule in registry {
            let RuleKind::Toml(check) = &rule.kind else {
                continue;
            };
            if !enabled(rule, only) {
                continue;
            }
            for raw in check(path, text) {
                findings.push(Finding {
                    rule: rule.id,
                    file: path.clone(),
                    line: raw.line,
                    severity: raw.severity.unwrap_or(rule.severity),
                    message: raw.message,
                });
            }
        }
    }

    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule))
    });
    Report {
        findings,
        files_scanned: rs.len() + tomls.len(),
        graph,
    }
}

/// Directories never descended into.
const SKIP_DIRS: [&str; 5] = ["target", ".git", "results", "node_modules", ".claude"];

/// Collect workspace sources: every `.rs` and `Cargo.toml`, skipping
/// build output and the lint crate's own rule fixtures (which are dirty
/// on purpose).
pub fn load_workspace(root: &Path) -> Result<(Vec<(String, String)>, Vec<(String, String)>), String> {
    let mut rs = Vec::new();
    let mut tomls = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir)
            .map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let rel = rel_path(root, &path);
            if path.is_dir() {
                if SKIP_DIRS.contains(&name) || rel.ends_with("tests/fixtures") {
                    continue;
                }
                stack.push(path);
            } else if name == "Cargo.toml" || name.ends_with(".rs") {
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                if name == "Cargo.toml" {
                    tomls.push((rel, text));
                } else {
                    rs.push((rel, text));
                }
            }
        }
    }
    rs.sort();
    tomls.sort();
    Ok((rs, tomls))
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Full workspace run: walk + lint.
pub fn run_workspace(root: &Path, only: Option<&str>) -> Result<Report, String> {
    run_workspace_under(root, only, None)
}

/// [`run_workspace`] restricted to files whose workspace-relative path
/// starts with `under` (e.g. `crates/lint`). The filter is applied
/// *after* the walk so scoping (`crates/<name>/src/…` matching) still
/// sees true workspace-relative paths.
pub fn run_workspace_under(
    root: &Path,
    only: Option<&str>,
    under: Option<&str>,
) -> Result<Report, String> {
    if let Some(id) = only {
        // A misspelled rule silently matching nothing would turn the
        // gate green vacuously; reject it here so library callers get
        // the same protection as the CLI.
        match rules::by_id(id) {
            Some(r) if !matches!(r.kind, RuleKind::Meta) => {}
            _ => return Err(format!("`--rule {id}` does not name a runnable rule")),
        }
    }
    let (mut rs, mut tomls) = load_workspace(root)?;
    if let Some(prefix) = under {
        rs.retain(|(p, _)| p.starts_with(prefix));
        tomls.retain(|(p, _)| p.starts_with(prefix));
        if rs.is_empty() && tomls.is_empty() {
            return Err(format!("--under {prefix} matches no workspace files"));
        }
    }
    Ok(run_sources(&rs, &tomls, only))
}

/// Locate the workspace root: the nearest ancestor (including `start`)
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(path: &str, src: &str) -> Vec<(String, String)> {
        vec![(path.to_string(), src.to_string())]
    }

    #[test]
    fn suppression_marks_allow_used() {
        let src = "fn f(v: Vec<u32>) -> u32 {\n\
                   // privim-lint: allow(panic, reason = \"nonempty by contract\")\n\
                   v.first().copied().unwrap()\n}";
        let r = run_sources(&rs("crates/rt/src/x.rs", src), &[], None);
        assert_eq!(r.errors(), 0, "{:?}", r.findings);
        assert_eq!(r.warnings(), 0, "{:?}", r.findings);
    }

    #[test]
    fn dead_allow_warns_unknown_rule_errors() {
        let src = "// privim-lint: allow(panic, reason = \"nothing here\")\nfn f() {}\n\
                   // privim-lint: allow(made-up, reason = \"x\")\nfn g() {}\n";
        let r = run_sources(&rs("crates/rt/src/x.rs", src), &[], None);
        assert_eq!(r.errors(), 1, "{:?}", r.findings);
        assert_eq!(r.warnings(), 1, "{:?}", r.findings);
    }

    #[test]
    fn rule_filter_restricts() {
        let src = "fn f(v: Vec<u32>) -> u32 { let m = HashMap::new(); v.first().copied().unwrap() }";
        let all = run_sources(&rs("crates/core/src/x.rs", src), &[], None);
        assert_eq!(all.errors(), 2, "{:?}", all.findings);
        let only = run_sources(&rs("crates/core/src/x.rs", src), &[], Some("panic-surface"));
        assert_eq!(only.errors(), 1, "{:?}", only.findings);
        assert_eq!(only.findings[0].rule, "panic-surface");
    }

    #[test]
    fn json_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}

//! `privim-lint` CLI.
//!
//! ```text
//! privim-lint [--workspace] [--root <dir>] [--rule <id>] [--json]
//! privim-lint --explain <rule>
//! ```
//!
//! Exit codes: 0 clean (warnings allowed), 1 error findings, 2 usage.

use privim_lint::engine;
use privim_lint::rules::{self, RuleKind};

const USAGE: &str = "\
privim-lint — static enforcement of PrivIM's DP/determinism/panic invariants

USAGE:
    privim-lint [--workspace] [--root <dir>] [--rule <id>] [--under <prefix>] [--json]
    privim-lint --explain <rule>

OPTIONS:
    --workspace      Lint the enclosing cargo workspace (default)
    --root <dir>     Lint the workspace rooted at <dir>
    --rule <id>      Run a single rule (annotation hygiene still applies)
    --under <prefix> Lint only files under <prefix> (workspace-relative,
                     e.g. crates/lint); cross-file analysis is scoped to
                     that subtree
    --json           Machine-readable findings on stdout
    --explain <id>   Print a rule's rationale and contract
    -h, --help       This text

RULES:";

fn usage() -> String {
    let mut s = String::from(USAGE);
    for r in rules::registry() {
        s.push_str(&format!(
            "\n    {:28} {}{}",
            r.id,
            r.summary,
            if r.advisory { " [advisory]" } else { "" }
        ));
    }
    s
}

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let mut json = false;
    let mut rule: Option<String> = None;
    let mut explain: Option<String> = None;
    let mut root: Option<String> = None;
    let mut under: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => {}
            "--json" => json = true,
            "--rule" => rule = args.next(),
            "--explain" => explain = args.next(),
            "--root" => root = args.next(),
            "--under" => under = args.next(),
            "-h" | "--help" => {
                println!("{}", usage());
                return 0;
            }
            other => {
                eprintln!("unknown argument `{other}`\n\n{}", usage());
                return 2;
            }
        }
    }

    if let Some(id) = explain {
        return match rules::by_id(&id) {
            Some(r) => {
                println!("{} — {}\nseverity: {}{}\n\n{}", r.id, r.summary,
                    r.severity.as_str(),
                    if r.advisory { " (advisory: never fails the gate)" } else { "" },
                    r.explain);
                0
            }
            None => {
                eprintln!("unknown rule `{id}`\n\n{}", usage());
                2
            }
        };
    }

    if let Some(id) = &rule {
        let known = rules::by_id(id).map(|r| !matches!(r.kind, RuleKind::Meta));
        if known != Some(true) {
            eprintln!("`--rule {id}` does not name a runnable rule\n\n{}", usage());
            return 2;
        }
    }

    let root = match root {
        Some(r) => std::path::PathBuf::from(r),
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("cannot determine current directory: {e}");
                    return 2;
                }
            };
            match engine::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("no enclosing cargo workspace found (try --root)");
                    return 2;
                }
            }
        }
    };

    let report = match engine::run_workspace_under(&root, rule.as_deref(), under.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("privim-lint: {e}");
            return 2;
        }
    };

    if json {
        println!("{}", report.to_json());
    } else {
        for f in &report.findings {
            println!(
                "{}[{}]: {}:{}: {}",
                f.severity.as_str(),
                f.rule,
                f.file,
                f.line,
                f.message
            );
        }
        let gate = match rule.as_deref() {
            Some(id) => format!("rule `{id}`"),
            None => "all rules".to_string(),
        };
        println!(
            "privim-lint: {} error(s), {} warning(s) across {} files ({gate})",
            report.errors(),
            report.warnings(),
            report.files_scanned
        );
    }
    if report.errors() > 0 {
        1
    } else {
        0
    }
}

//! `privim-lint` — source-level enforcement of the invariants PrivIM's
//! correctness claims rest on but the compiler cannot check.
//!
//! Three contracts hold this codebase together:
//!
//! 1. **Privacy**: every noise-adding call must be charged to the RDP
//!    accountant, or the paper's (ε, δ) guarantee is void
//!    (`unaccounted-noise`).
//! 2. **Determinism**: every result-affecting code path must be
//!    bit-deterministic so the 1-vs-N-thread equivalence tests mean
//!    something (`nondeterministic-collection`, `wall-clock`, `float-eq`).
//! 3. **Fault tolerance**: library code stays `Result`-based so the
//!    crash-safe harness can actually observe failures (`panic-surface`).
//!
//! The analyzer is deliberately dependency-free: a hand-rolled lexer
//! ([`lexer`]) tokenizes Rust source (raw strings, nested block comments,
//! char-vs-lifetime disambiguation), so — unlike the grep-based
//! `scripts/panic_gate.sh` it replaces — it never confuses code with
//! comments or string literals. Rules live in [`rules`], suppression is by
//! inline audited annotation:
//!
//! ```text
//! // privim-lint: allow(<rule>, reason = "<non-empty justification>")
//! ```
//!
//! See `DESIGN.md` §9 for the rule catalogue and annotation grammar.

pub mod callgraph;
pub mod engine;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod source;

//! Hand-rolled Rust lexer — zero dependencies, resilient by construction.
//!
//! Produces a token stream precise enough for invariant linting: line and
//! nested block comments, string / byte-string / raw-string literals (with
//! arbitrary `#` fences), char literals vs lifetimes, numeric literals with
//! float detection, identifiers (including raw `r#ident`), and single-byte
//! punctuation. It never fails: unrecognised bytes are emitted as
//! punctuation or skipped, so a malformed file degrades to fewer findings
//! rather than a crashed gate.

/// Token kind. Literal contents are not retained — rules only need shape.
#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    /// Identifier or keyword (keywords are not distinguished).
    Ident(String),
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// Numeric literal; `is_float` is true for `1.0`, `1e3`, `2f64`, …
    Num { is_float: bool },
    /// String, byte-string, or raw-string literal.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Any other single byte (`=`, `!`, `(`, `[`, `.`, …).
    Punct(u8),
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    /// 1-based line of the token's first byte.
    pub line: usize,
    /// Byte offset of the token's first byte (for adjacency checks such
    /// as distinguishing `==` from two stray `=`).
    pub offset: usize,
}

/// One comment (line or block), with its text including the delimiters.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the opening `//` or `/*`.
    pub line: usize,
    /// 1-based line of the comment's last byte (equals `line` for `//`).
    pub end_line: usize,
    pub text: String,
}

/// Full lexer output: code tokens plus the comment stream.
#[derive(Debug, Default)]
pub struct LexOutput {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic() || c >= 0x80
}

fn is_ident_cont(c: u8) -> bool {
    is_ident_start(c) || c.is_ascii_digit()
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: usize,
    out: LexOutput,
}

/// Tokenize `src`. Infallible; see module docs for the degradation model.
pub fn lex(src: &str) -> LexOutput {
    Lexer {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        out: LexOutput::default(),
    }
    .run()
}

impl<'a> Lexer<'a> {
    fn at(&self, k: usize) -> u8 {
        self.b.get(self.i + k).copied().unwrap_or(0)
    }

    fn push(&mut self, kind: TokKind, offset: usize, line: usize) {
        self.out.tokens.push(Token { kind, line, offset });
    }

    fn run(mut self) -> LexOutput {
        while self.i < self.b.len() {
            let c = self.at(0);
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ if c.is_ascii_whitespace() => self.i += 1,
                b'/' if self.at(1) == b'/' => self.line_comment(),
                b'/' if self.at(1) == b'*' => self.block_comment(),
                b'r' | b'b' if self.literal_prefix() => {}
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                _ if c.is_ascii_digit() => self.number(),
                _ if is_ident_start(c) => self.ident(),
                _ => {
                    self.push(TokKind::Punct(c), self.i, self.line);
                    self.i += 1;
                }
            }
        }
        self.out
    }

    /// Handle `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `b'…'`, `br#"…"#`.
    /// Returns false when the `r` / `b` is just an ordinary identifier
    /// head, in which case nothing was consumed.
    fn literal_prefix(&mut self) -> bool {
        let c = self.at(0);
        if c == b'b' {
            match self.at(1) {
                b'"' => {
                    self.i += 1;
                    self.string();
                    return true;
                }
                b'\'' => {
                    self.i += 1;
                    self.char_literal();
                    return true;
                }
                b'r' if self.at(2) == b'"' || self.at(2) == b'#' => {
                    let (start, line) = (self.i, self.line);
                    self.i += 2;
                    self.raw_string(start, line);
                    return true;
                }
                _ => return self.ident_then(false),
            }
        }
        // c == b'r'
        match self.at(1) {
            b'"' => {
                let (start, line) = (self.i, self.line);
                self.i += 1;
                self.raw_string(start, line);
                true
            }
            b'#' => {
                // Either a raw string `r#"…"#` (any fence depth) or a raw
                // identifier `r#ident`.
                let mut h = 0;
                while self.at(1 + h) == b'#' {
                    h += 1;
                }
                if self.at(1 + h) == b'"' {
                    let (start, line) = (self.i, self.line);
                    self.i += 1;
                    self.raw_string(start, line);
                    true
                } else if h == 1 && is_ident_start(self.at(2)) {
                    self.ident_then(true)
                } else {
                    self.ident_then(false)
                }
            }
            _ => self.ident_then(false),
        }
    }

    /// Emit an identifier starting at the cursor (skipping a `r#` raw
    /// prefix when `raw`). Always returns true so callers can tail-call.
    fn ident_then(&mut self, raw: bool) -> bool {
        let (start, line) = (self.i, self.line);
        let name_start = if raw { self.i + 2 } else { self.i };
        self.i = name_start;
        while self.i < self.b.len() && is_ident_cont(self.at(0)) {
            self.i += 1;
        }
        let name = String::from_utf8_lossy(&self.b[name_start..self.i]).into_owned();
        self.push(TokKind::Ident(name), start, line);
        true
    }

    fn ident(&mut self) {
        self.ident_then(false);
    }

    fn string(&mut self) {
        let (start, line) = (self.i, self.line);
        self.i += 1; // opening quote
        while self.i < self.b.len() {
            match self.at(0) {
                b'\\' => self.i += 2,
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'"' => {
                    self.i += 1;
                    break;
                }
                _ => self.i += 1,
            }
        }
        self.push(TokKind::Str, start, line);
    }

    /// Cursor is on the `#`s/quote after the (already consumed) `r` / `br`
    /// head; `start`/`line` point at the head for the emitted token.
    fn raw_string(&mut self, start: usize, line: usize) {
        let mut h = 0;
        while self.at(0) == b'#' {
            h += 1;
            self.i += 1;
        }
        self.i += 1; // opening quote
        while self.i < self.b.len() {
            match self.at(0) {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'"' => {
                    let mut k = 0;
                    while k < h && self.at(1 + k) == b'#' {
                        k += 1;
                    }
                    self.i += 1;
                    if k == h {
                        self.i += h;
                        break;
                    }
                }
                _ => self.i += 1,
            }
        }
        self.push(TokKind::Str, start, line);
    }

    /// Cursor is on the opening `'` of a (possibly byte-) char literal
    /// known to be one (callers guarantee it — used for `b'…'`).
    fn char_literal(&mut self) {
        let (start, line) = (self.i, self.line);
        self.i += 1; // opening quote
        if self.at(0) == b'\\' {
            let head = self.at(1);
            self.i += 2;
            if head == b'u' && self.at(0) == b'{' {
                while self.i < self.b.len() && self.at(0) != b'}' {
                    self.i += 1;
                }
                self.i += 1;
            } else if head == b'x' {
                self.i += 2;
            }
        } else {
            self.i += 1;
            // Multi-byte UTF-8 scalar: keep consuming continuation bytes.
            while self.at(0) >= 0x80 {
                self.i += 1;
            }
        }
        if self.at(0) == b'\'' {
            self.i += 1;
        }
        self.push(TokKind::Char, start, line);
    }

    /// Disambiguate `'a'` (char) from `'a` (lifetime) at an opening `'`.
    fn char_or_lifetime(&mut self) {
        let next = self.at(1);
        if next == b'\\' {
            self.char_literal();
            return;
        }
        if is_ident_start(next) {
            // Scan the ident-like run; a closing quote right after makes
            // it a char literal ('a', 'é'), otherwise it is a lifetime
            // ('a, 'static).
            let mut k = 1;
            while is_ident_cont(self.at(k)) {
                k += 1;
            }
            if self.at(k) == b'\'' {
                self.char_literal();
            } else {
                self.push(TokKind::Lifetime, self.i, self.line);
                self.i += k;
            }
            return;
        }
        if next != 0 && self.at(2) == b'\'' {
            // '1', '(', … — a one-byte non-ident char literal.
            self.char_literal();
            return;
        }
        self.push(TokKind::Punct(b'\''), self.i, self.line);
        self.i += 1;
    }

    fn number(&mut self) {
        let (start, line) = (self.i, self.line);
        let mut is_float = false;
        if self.at(0) == b'0' && matches!(self.at(1), b'x' | b'o' | b'b') {
            self.i += 2;
            while self.at(0).is_ascii_alphanumeric() || self.at(0) == b'_' {
                self.i += 1;
            }
            self.push(TokKind::Num { is_float: false }, start, line);
            return;
        }
        while self.at(0).is_ascii_digit() || self.at(0) == b'_' {
            self.i += 1;
        }
        // Fractional part only when followed by a digit, so ranges
        // (`0..n`) and method calls on ints stay intact.
        if self.at(0) == b'.' && self.at(1).is_ascii_digit() {
            is_float = true;
            self.i += 1;
            while self.at(0).is_ascii_digit() || self.at(0) == b'_' {
                self.i += 1;
            }
        }
        // Exponent: `1e5`, `1.2E-3`.
        if matches!(self.at(0), b'e' | b'E')
            && (self.at(1).is_ascii_digit()
                || (matches!(self.at(1), b'+' | b'-') && self.at(2).is_ascii_digit()))
        {
            is_float = true;
            self.i += 1;
            if matches!(self.at(0), b'+' | b'-') {
                self.i += 1;
            }
            while self.at(0).is_ascii_digit() || self.at(0) == b'_' {
                self.i += 1;
            }
        }
        // Type suffix (`u64`, `f32`, …): an `f` head means float.
        if is_ident_start(self.at(0)) {
            if self.at(0) == b'f' {
                is_float = true;
            }
            while is_ident_cont(self.at(0)) {
                self.i += 1;
            }
        }
        self.push(TokKind::Num { is_float }, start, line);
    }

    fn line_comment(&mut self) {
        let (start, line) = (self.i, self.line);
        while self.i < self.b.len() && self.at(0) != b'\n' {
            self.i += 1;
        }
        self.out.comments.push(Comment {
            line,
            end_line: line,
            text: String::from_utf8_lossy(&self.b[start..self.i]).into_owned(),
        });
    }

    fn block_comment(&mut self) {
        let (start, line) = (self.i, self.line);
        self.i += 2;
        let mut depth = 1usize;
        while self.i < self.b.len() && depth > 0 {
            if self.at(0) == b'/' && self.at(1) == b'*' {
                depth += 1;
                self.i += 2;
            } else if self.at(0) == b'*' && self.at(1) == b'/' {
                depth -= 1;
                self.i += 2;
            } else {
                if self.at(0) == b'\n' {
                    self.line += 1;
                }
                self.i += 1;
            }
        }
        self.out.comments.push(Comment {
            line,
            end_line: self.line,
            text: String::from_utf8_lossy(&self.b[start..self.i]).into_owned(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn code_in_comments_and_strings_is_not_tokenized() {
        let src = r###"
            // x.unwrap() in a line comment
            /* outer /* nested panic!( */ still comment */
            let s = "a \" quoted .unwrap() string";
            let r = r#"raw "string" with .expect( inside"#;
            real_ident();
        "###;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(!ids.contains(&"expect".to_string()));
        let out = lex(src);
        assert_eq!(out.comments.len(), 2);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let out = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let u = '\\u{1F600}'; }");
        let lifetimes = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 3);
    }

    #[test]
    fn float_detection() {
        let floats: Vec<bool> = lex("1 1.0 0x1F 1e3 2f64 3u32 0..5 x.0")
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::Num { is_float } => Some(is_float),
                _ => None,
            })
            .collect();
        // 1, 1.0, 0x1F, 1e3, 2f64, 3u32, 0, 5, 0 (tuple index)
        assert_eq!(
            floats,
            vec![false, true, false, true, true, false, false, false, false]
        );
    }

    #[test]
    fn raw_idents_and_byte_literals() {
        let out = lex(r##"let r#fn = b"bytes"; let c = b'x'; let s = br#"raw"#;"##);
        let ids = out
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Ident(_)))
            .count();
        assert_eq!(ids, 6); // let, r#fn, let, c, let, s
        let strs = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .count();
        assert_eq!(strs, 2);
        let chars = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        assert_eq!(chars, 1);
    }

    #[test]
    fn line_numbers_track_through_multiline_constructs() {
        let src = "let a = \"x\ny\";\n/* c\nc */\nlet b = 1;\n";
        let out = lex(src);
        let b_tok = out
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Ident("b".into()));
        assert_eq!(b_tok.map(|t| t.line), Some(5));
    }

    #[test]
    fn nested_generics_emit_single_angle_puncts_not_shifts() {
        // `Vec<Vec<u8>>` must close with two separate `>` tokens so the
        // item parser's angle-depth tracking balances; a fused `>>`
        // (shift) token would leave depth at 1 forever.
        let out = lex("let v: Vec<Vec<u8>> = make(); let x = a >> 2;");
        let closes = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct(b'>'))
            .count();
        // 2 from the nested generic + 2 from the genuine shift — the
        // lexer stays uniform and leaves disambiguation to the parser.
        assert_eq!(closes, 4);
        let opens = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct(b'<'))
            .count();
        assert_eq!(opens, 2);
    }

    #[test]
    fn turbofish_lexes_as_path_then_angles() {
        let out = lex("let v = it.collect::<Vec<u8>>();");
        let kinds: Vec<String> = out
            .tokens
            .iter()
            .map(|t| match &t.kind {
                TokKind::Ident(s) => s.clone(),
                TokKind::Punct(p) => (*p as char).to_string(),
                other => format!("{other:?}"),
            })
            .collect();
        let collect_at = kinds.iter().position(|k| k == "collect").unwrap();
        assert_eq!(
            &kinds[collect_at..collect_at + 9],
            &["collect", ":", ":", "<", "Vec", "<", "u8", ">", ">"]
        );
    }

    #[test]
    fn multiline_where_clause_keeps_spans_and_lines() {
        let src = "fn f<T>(x: T) -> T\nwhere\n    T: Clone + Send,\n    T: Sync,\n{\n    x\n}\n";
        let out = lex(src);
        let where_tok = out
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Ident("where".into()))
            .expect("where lexed as plain ident");
        assert_eq!(where_tok.line, 2);
        let open = out
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Punct(b'{'))
            .expect("body brace");
        assert_eq!(open.line, 5);
    }
}

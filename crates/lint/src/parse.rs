//! Item-level parser: `fn` items with their enclosing `mod`/`impl` path,
//! modifiers, attributes, and extracted call sites.
//!
//! This sits between the lexer and the workspace call graph
//! ([`crate::callgraph`]): it does *not* build an AST. A single forward
//! pass over the token stream tracks a scope stack of `mod`/`impl`
//! blocks (via whole-file delimiter matching) and records, for every
//! `fn`, its qualified path, signature/body token ranges, visibility,
//! `unsafe`-ness, `#[target_feature]` attributes, and whether it takes a
//! `self` receiver. A second pass extracts call sites (`free(...)`,
//! `path::to::free(...)`, `.method(...)`) and assigns each to the
//! innermost enclosing function.
//!
//! Known imprecision (accepted, documented in DESIGN.md §9): macro
//! bodies are opaque, calls inside closure literals are attributed to
//! the function that *constructs* the closure (not the one that runs
//! it), and `<T as Trait>::f` UFCS paths lose their qualifier. All of
//! these degrade to *fewer* resolved edges, never to a crash.

use crate::lexer::{TokKind, Token};
use crate::source::SourceFile;

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Index of the owning file in the workspace file list.
    pub file: usize,
    pub name: String,
    /// Enclosing `mod` / `impl` segments, outermost first.
    pub path: Vec<String>,
    /// Crate name derived from `crates/<name>/…` in the file path.
    pub krate: String,
    pub sig_line: usize,
    /// Token index of the `fn` keyword.
    pub sig_start: usize,
    /// Half-open token range of the body including both braces.
    pub body: (usize, usize),
    pub is_pub: bool,
    pub is_unsafe: bool,
    /// Carries a `#[target_feature(...)]` attribute.
    pub has_target_feature: bool,
    /// Takes a `self` receiver (method).
    pub has_self: bool,
    /// Lies inside the embedded `#[cfg(test)]` region.
    pub in_test: bool,
    /// Call sites inside the body, in token order.
    pub calls: Vec<CallSite>,
}

/// One extracted call site.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (final path segment / method name).
    pub name: String,
    /// Path segments before the name (`fsio::write_all_faulty` → `[fsio]`).
    pub qualifier: Vec<String>,
    /// For method calls, the last identifier of the receiver chain
    /// (`self.queue.lock()` → `queue`).
    pub recv: Option<String>,
    pub is_method: bool,
    pub line: usize,
    /// Token index of the callee-name identifier.
    pub tok: usize,
    /// Token range of the argument list including both parens.
    pub args: (usize, usize),
}

/// Per-file delimiter matching: `open[i] = Some(j)` when token `i` is an
/// opening `(`/`[`/`{` whose matching closer is token `j`, and
/// `close[j] = Some(i)` for the reverse direction. Unbalanced delimiters
/// stay `None` (the file degrades, the pass never fails).
pub struct DelimMap {
    pub open: Vec<Option<usize>>,
    pub close: Vec<Option<usize>>,
}

pub fn match_delims(toks: &[Token]) -> DelimMap {
    let mut open = vec![None; toks.len()];
    let mut close = vec![None; toks.len()];
    let mut stack: Vec<(u8, usize)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Punct(b @ (b'(' | b'[' | b'{')) => stack.push((b, i)),
            TokKind::Punct(b @ (b')' | b']' | b'}')) => {
                let want = match b {
                    b')' => b'(',
                    b']' => b'[',
                    _ => b'{',
                };
                // Pop past any mismatched openers so one stray bracket
                // cannot corrupt the rest of the file.
                while let Some(&(k, _)) = stack.last() {
                    if k == want {
                        let (_, o) = stack.pop().unwrap_or((0, 0));
                        open[o] = Some(i);
                        close[i] = Some(o);
                        break;
                    }
                    stack.pop();
                }
            }
            _ => {}
        }
    }
    DelimMap { open, close }
}

fn ident_at<'a>(toks: &'a [Token], i: usize) -> Option<&'a str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Token], i: usize, b: u8) -> bool {
    matches!(toks.get(i).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == b)
}

/// Crate name from a workspace-relative path (`crates/rt/src/…` → `rt`).
pub fn crate_of(rel: &str) -> String {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
        .to_string()
}

/// File stem (`crates/rt/src/fsio.rs` → `fsio`), used as a module-name
/// hint when resolving `module::function(...)` qualifiers.
pub fn file_stem(rel: &str) -> &str {
    rel.rsplit('/')
        .next()
        .and_then(|n| n.strip_suffix(".rs"))
        .unwrap_or("")
}

/// Words that can directly precede `(` without being calls.
const NON_CALL_NAMES: [&str; 10] = [
    "if", "while", "for", "match", "loop", "return", "in", "as", "move", "else",
];

/// Parse every `fn` item in `sf` (file index `file`), with call sites
/// attached to the innermost enclosing function.
pub fn parse_items(file: usize, sf: &SourceFile) -> Vec<FnItem> {
    let toks = &sf.tokens;
    let delims = match_delims(toks);
    let krate = crate_of(&sf.path);
    let mut fns = collect_fns(file, sf, toks, &delims, &krate);
    attach_calls(sf, toks, &delims, &mut fns);
    fns
}

fn collect_fns(
    file: usize,
    sf: &SourceFile,
    toks: &[Token],
    delims: &DelimMap,
    krate: &str,
) -> Vec<FnItem> {
    // (segment name, token index of the scope's closing `}`)
    let mut scopes: Vec<(String, usize)> = Vec::new();
    let mut fns = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while let Some(&(_, end)) = scopes.last() {
            if i > end {
                scopes.pop();
            } else {
                break;
            }
        }
        match ident_at(toks, i) {
            Some("mod") => {
                if let (Some(name), true) = (ident_at(toks, i + 1), punct_at(toks, i + 2, b'{')) {
                    let end = delims.open[i + 2].unwrap_or(toks.len());
                    scopes.push((name.to_string(), end));
                    i += 3;
                    continue;
                }
            }
            Some("impl") => {
                if let Some((name, body_open)) = impl_header(toks, i) {
                    let end = delims.open[body_open].unwrap_or(toks.len());
                    scopes.push((name, end));
                    i = body_open + 1;
                    continue;
                }
            }
            Some("fn") => {
                if let Some(item) = fn_item(file, sf, toks, delims, krate, &scopes, i) {
                    // Skip past the signature so `fn` inside the name
                    // position cannot retrigger; the body is *not*
                    // skipped (nested fns and mods must be seen).
                    i = item.body.0.max(i + 2).min(toks.len());
                    fns.push(item);
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
    fns
}

/// Parse an `impl` header starting at token `i` (the `impl` keyword).
/// Returns `(type name, token index of the body's '{')`. The type is the
/// first depth-0 identifier after `for` when present (`impl Trait for
/// Foo`), otherwise the first depth-0 identifier (`impl<T> Foo<T>`).
fn impl_header(toks: &[Token], i: usize) -> Option<(String, usize)> {
    let mut depth = 0i32;
    let mut first: Option<&str> = None;
    let mut after_for: Option<&str> = None;
    let mut saw_for = false;
    let mut j = i + 1;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct(b'{') if depth == 0 => {
                let name = after_for.or(first)?;
                return Some((name.to_string(), j));
            }
            TokKind::Punct(b';') if depth == 0 => return None,
            TokKind::Punct(b'<') => depth += 1,
            TokKind::Punct(b'>') => {
                // `->` in an `Fn(..) -> T` bound is not a closing angle.
                let arrow = j > 0
                    && matches!(toks[j - 1].kind, TokKind::Punct(b'-'))
                    && toks[j - 1].offset + 1 == toks[j].offset;
                if !arrow {
                    depth -= 1;
                }
            }
            TokKind::Ident(s) if depth == 0 => {
                if s == "for" {
                    saw_for = true;
                } else if s == "where" {
                    // `impl<T> Foo<T> where …`: the name is settled.
                } else if s != "dyn" && s != "const" && s != "unsafe" {
                    if saw_for {
                        after_for.get_or_insert(s.as_str());
                    } else {
                        first.get_or_insert(s.as_str());
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

fn fn_item(
    file: usize,
    sf: &SourceFile,
    toks: &[Token],
    delims: &DelimMap,
    krate: &str,
    scopes: &[(String, usize)],
    i: usize,
) -> Option<FnItem> {
    let name = ident_at(toks, i + 1)?;
    // Scan to the body `{`; a `;` first means a bodyless trait method or
    // an `extern` declaration — not an item we track.
    let mut j = i + 2;
    let open = loop {
        match toks.get(j).map(|t| &t.kind) {
            Some(TokKind::Punct(b'{')) => break j,
            Some(TokKind::Punct(b';')) | None => return None,
            _ => j += 1,
        }
    };
    let close = delims.open[open].map(|c| c + 1).unwrap_or(toks.len());
    let (is_pub, is_unsafe, has_target_feature) = modifiers(toks, delims, i);
    let has_self = toks[i + 2..open]
        .iter()
        .any(|t| matches!(&t.kind, TokKind::Ident(s) if s == "self"));
    Some(FnItem {
        file,
        name: name.to_string(),
        path: scopes.iter().map(|(s, _)| s.clone()).collect(),
        krate: krate.to_string(),
        sig_line: toks[i].line,
        sig_start: i,
        body: (open, close),
        is_pub,
        is_unsafe,
        has_target_feature,
        has_self,
        in_test: sf.in_test_region(toks[i].line),
        calls: Vec::new(),
    })
}

/// Walk backwards from the `fn` keyword over visibility/qualifier tokens
/// and attributes: `(is_pub, is_unsafe, has_target_feature)`.
fn modifiers(toks: &[Token], delims: &DelimMap, fn_idx: usize) -> (bool, bool, bool) {
    let mut is_pub = false;
    let mut is_unsafe = false;
    let mut target_feature = false;
    let mut k = fn_idx;
    while k > 0 {
        k -= 1;
        match &toks[k].kind {
            TokKind::Ident(s) if s == "pub" => is_pub = true,
            TokKind::Ident(s) if s == "unsafe" => is_unsafe = true,
            TokKind::Ident(s) if s == "const" || s == "async" || s == "extern" => {}
            TokKind::Str => {} // the ABI string of `extern "C"`
            TokKind::Punct(b')') => {
                // `pub(crate)` / `pub(in …)` — jump to the opening paren.
                match delims.close[k] {
                    Some(o) if o > 0 => k = o,
                    _ => return (is_pub, is_unsafe, target_feature),
                }
            }
            TokKind::Punct(b']') => {
                // An attribute `#[…]` — scan its tokens, jump before `#`.
                let Some(o) = delims.close[k] else {
                    return (is_pub, is_unsafe, target_feature);
                };
                if o == 0 || !punct_at(toks, o - 1, b'#') {
                    return (is_pub, is_unsafe, target_feature);
                }
                if toks[o..k]
                    .iter()
                    .any(|t| matches!(&t.kind, TokKind::Ident(s) if s == "target_feature"))
                {
                    target_feature = true;
                }
                k = o - 1;
            }
            _ => return (is_pub, is_unsafe, target_feature),
        }
    }
    (is_pub, is_unsafe, target_feature)
}

/// Extract every call site in the file and attach each to the innermost
/// enclosing function (token-range containment).
fn attach_calls(sf: &SourceFile, toks: &[Token], delims: &DelimMap, fns: &mut [FnItem]) {
    let _ = sf;
    for i in 0..toks.len() {
        let Some(name) = ident_at(toks, i) else {
            continue;
        };
        if !punct_at(toks, i + 1, b'(') {
            continue;
        }
        if NON_CALL_NAMES.contains(&name) {
            continue;
        }
        let mut qualifier = Vec::new();
        let mut recv = None;
        let mut is_method = false;
        if i > 0 {
            match &toks[i - 1].kind {
                TokKind::Ident(s) if s == "fn" => continue, // definition head
                TokKind::Punct(b'.') => {
                    is_method = true;
                    if i >= 2 {
                        if let Some(r) = ident_at(toks, i - 2) {
                            recv = Some(r.to_string());
                        }
                    }
                }
                TokKind::Punct(b'!') => continue, // macro invocation
                TokKind::Punct(b':') => {
                    // Walk back over `seg ::` pairs.
                    let mut k = i;
                    while k >= 3
                        && punct_at(toks, k - 1, b':')
                        && punct_at(toks, k - 2, b':')
                    {
                        match ident_at(toks, k - 3) {
                            Some(seg) => {
                                qualifier.insert(0, seg.to_string());
                                k -= 3;
                            }
                            None => {
                                // `<T as Trait>::f(…)` — qualifier lost.
                                qualifier.clear();
                                break;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        let args_close = delims.open[i + 1].unwrap_or(toks.len().saturating_sub(1));
        let site = CallSite {
            name: name.to_string(),
            qualifier,
            recv,
            is_method,
            line: toks[i].line,
            tok: i,
            args: (i + 1, args_close),
        };
        // Innermost enclosing fn: smallest body span containing `i`.
        let owner = fns
            .iter_mut()
            .filter(|f| f.body.0 < i && i < f.body.1)
            .min_by_key(|f| f.body.1 - f.body.0);
        if let Some(f) = owner {
            f.calls.push(site);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Vec<FnItem> {
        let sf = SourceFile::parse("crates/core/src/x.rs", src);
        parse_items(0, &sf)
    }

    #[test]
    fn paths_track_mods_and_impls() {
        let src = "mod a { impl Foo { pub fn m(&self) {} } fn free() {} }\nfn top() {}";
        let fns = parse(src);
        let by_name = |n: &str| fns.iter().find(|f| f.name == n).expect(n);
        assert_eq!(by_name("m").path, vec!["a", "Foo"]);
        assert!(by_name("m").is_pub);
        assert!(by_name("m").has_self);
        assert_eq!(by_name("free").path, vec!["a"]);
        assert!(by_name("top").path.is_empty());
        assert_eq!(by_name("top").krate, "core");
    }

    #[test]
    fn impl_trait_for_type_takes_the_type() {
        let fns = parse("impl Display for Wrapper { fn fmt(&self) {} }");
        assert_eq!(fns[0].path, vec!["Wrapper"]);
    }

    #[test]
    fn modifiers_and_attributes() {
        let src = "#[target_feature(enable = \"avx2\")]\npub(crate) unsafe fn k() {}\nconst fn c() {}";
        let fns = parse(src);
        assert!(fns[0].is_pub && fns[0].is_unsafe && fns[0].has_target_feature);
        assert!(!fns[1].is_pub && !fns[1].has_target_feature);
    }

    #[test]
    fn where_clause_does_not_break_body_span() {
        let src = "fn g<F>(f: F) -> u32\nwhere\n    F: Fn(u32) -> u32,\n{\n    f(1)\n}";
        let fns = parse(src);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].sig_line, 1);
        // The body is the `{ f(1) }` block on lines 4–6, and the call to
        // `f` inside it is attributed to `g`.
        assert_eq!(fns[0].calls.len(), 1);
        assert_eq!(fns[0].calls[0].name, "f");
        assert_eq!(fns[0].calls[0].line, 5);
    }

    #[test]
    fn call_kinds() {
        let src = "fn f() { free(); path::seg::qual(); x.method(); mac!(); Self::assoc(); }";
        let calls = &parse(src)[0].calls;
        let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["free", "qual", "method", "assoc"]);
        assert_eq!(calls[1].qualifier, vec!["path", "seg"]);
        assert!(calls[2].is_method);
        assert_eq!(calls[2].recv.as_deref(), Some("x"));
        assert_eq!(calls[3].qualifier, vec!["Self"]);
    }

    #[test]
    fn receiver_chain_takes_last_ident() {
        let calls = &parse("fn f(&self) { self.queue.lock(); }")[0].calls;
        assert_eq!(calls[0].recv.as_deref(), Some("queue"));
    }

    #[test]
    fn test_region_fns_are_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests { fn t() { lib(); } }";
        let fns = parse(src);
        assert!(!fns[0].in_test);
        assert!(fns[1].in_test);
    }

    #[test]
    fn nested_generics_and_turbofish_do_not_derail() {
        let src = "fn f(v: Vec<Vec<u8>>) { g::<Vec<u8>>(); v.iter().collect::<Vec<_>>(); }";
        let fns = parse(src);
        assert_eq!(fns.len(), 1);
        // `g::<…>()` loses its turbofish qualifier but the body span and
        // other calls stay intact.
        assert!(fns[0].calls.iter().any(|c| c.name == "iter"));
    }
}

//! Workspace call graph: every [`FnItem`] across every file, with call
//! sites resolved to candidate definitions by name, path qualifier, and
//! method-receiver heuristics.
//!
//! Resolution is a *may* analysis: an ambiguous call links to every
//! plausible candidate, so downstream rules (lock-order, dp-taint,
//! unsafe-audit) over-approximate reachable effects rather than miss
//! them. Three deliberate precision valves keep the over-approximation
//! from drowning the rules in noise:
//!
//! 1. Method calls whose names are ubiquitous std-container vocabulary
//!    (`len`, `insert`, `clone`, …) never resolve — linking `.len()` on
//!    a `Vec` to some workspace type's `len` would fabricate effects.
//! 2. A qualified call (`Type::f`, `module::f`) whose qualifier matches
//!    no known impl/mod/file resolves to *nothing* (it names a foreign
//!    type such as `Mutex::new`), instead of to every `f`.
//! 3. Any call with more than [`MAX_CANDIDATES`] candidates is dropped
//!    as hopelessly ambiguous.
//!
//! The graph is built once per `Engine` run and shared by every
//! workspace rule; see DESIGN.md §9 for the soundness discussion.

use crate::engine::ParsedFile;
use crate::parse::{self, FnItem};
use std::collections::{BTreeMap, BTreeSet};

/// Calls with more candidate targets than this are left unresolved.
pub const MAX_CANDIDATES: usize = 8;

/// Method names too generic to resolve against workspace definitions
/// (std collection/conversion vocabulary plus the atomic `load`/`store`
/// pair, which would otherwise alias file-loading functions).
const METHOD_BLOCKLIST: [&str; 38] = [
    "new", "default", "len", "is_empty", "clone", "get", "get_mut", "insert", "remove",
    "push", "pop", "iter", "iter_mut", "into_iter", "next", "clear", "contains",
    "contains_key", "fmt", "eq", "ne", "cmp", "partial_cmp", "hash", "from", "into",
    "drop", "as_ref", "as_mut", "to_string", "to_owned", "take", "min", "max", "abs",
    "map", "load", "store",
];

/// Aggregate graph statistics, surfaced in `lint.json` v2.
#[derive(Debug, Clone, Default)]
pub struct GraphStats {
    /// Functions outside `#[cfg(test)]` regions.
    pub functions: usize,
    /// Call sites extracted from those functions.
    pub call_sites: usize,
    /// Call sites resolved to at least one workspace definition.
    pub resolved_call_sites: usize,
    /// Total caller→callee edges (a site may contribute several).
    pub edges: usize,
}

/// The cached per-run workspace graph handed to workspace rules.
pub struct Workspace<'a> {
    pub files: &'a [ParsedFile],
    /// Every fn item, test-region ones included (rules filter).
    pub fns: Vec<FnItem>,
    /// `targets[f][c]` = fn ids call `c` of fn `f` may invoke.
    pub targets: Vec<Vec<Vec<usize>>>,
    /// Reverse edges: `callers[f]` = fn ids with an edge into `f`.
    pub callers: Vec<Vec<usize>>,
    pub stats: GraphStats,
}

impl<'a> Workspace<'a> {
    /// The workspace-relative path of the file owning fn `id`.
    pub fn path_of(&self, id: usize) -> &str {
        &self.files[self.fns[id].file].sf.path
    }
}

/// Build the graph over already-parsed files.
pub fn build(files: &[ParsedFile]) -> Workspace<'_> {
    let mut fns: Vec<FnItem> = Vec::new();
    for (idx, pf) in files.iter().enumerate() {
        fns.extend(parse::parse_items(idx, &pf.sf));
    }

    // Name index over non-test definitions.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (id, f) in fns.iter().enumerate() {
        if !f.in_test {
            by_name.entry(f.name.as_str()).or_default().push(id);
        }
    }

    let mut stats = GraphStats::default();
    let mut targets: Vec<Vec<Vec<usize>>> = Vec::with_capacity(fns.len());
    for f in &fns {
        if f.in_test {
            targets.push(vec![Vec::new(); f.calls.len()]);
            continue;
        }
        stats.functions += 1;
        let mut per_call = Vec::with_capacity(f.calls.len());
        for c in &f.calls {
            stats.call_sites += 1;
            let resolved = resolve(files, &fns, &by_name, f, c);
            if !resolved.is_empty() {
                stats.resolved_call_sites += 1;
                stats.edges += resolved.len();
            }
            per_call.push(resolved);
        }
        targets.push(per_call);
    }

    let mut caller_sets: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); fns.len()];
    for (f, per_call) in targets.iter().enumerate() {
        for tgt in per_call.iter().flatten() {
            caller_sets[*tgt].insert(f);
        }
    }
    let callers = caller_sets
        .into_iter()
        .map(|s| s.into_iter().collect())
        .collect();

    Workspace {
        files,
        fns,
        targets,
        callers,
        stats,
    }
}

fn resolve(
    files: &[ParsedFile],
    fns: &[FnItem],
    by_name: &BTreeMap<&str, Vec<usize>>,
    caller: &FnItem,
    call: &crate::parse::CallSite,
) -> Vec<usize> {
    if call.is_method && METHOD_BLOCKLIST.contains(&call.name.as_str()) {
        return Vec::new();
    }
    let Some(cands) = by_name.get(call.name.as_str()) else {
        return Vec::new();
    };
    let mut cands: Vec<usize> = cands.clone();

    if call.is_method {
        // A `.m(…)` call targets a method; prefer self-receiver defs.
        let methods: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&id| fns[id].has_self)
            .collect();
        if !methods.is_empty() {
            cands = methods;
        }
    } else if let Some(qual) = call.qualifier.last() {
        // `Qual::name(…)`: the qualifier must match a known impl/mod
        // segment, the defining file's stem, or (for `Self::`) the
        // caller's own impl block — otherwise it names a foreign type.
        let matched: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&id| {
                let f = &fns[id];
                if qual == "Self" || qual == "self" || qual == "crate" {
                    return f.file == caller.file
                        && (f.path == caller.path || qual == "crate");
                }
                f.path.iter().any(|seg| seg == qual)
                    || parse::file_stem(&files[f.file].sf.path) == qual
                    || f.krate == qual.trim_start_matches("privim_")
            })
            .collect();
        if matched.is_empty() {
            return Vec::new();
        }
        cands = matched;
    } else {
        // Bare `name(…)`: a same-file definition wins outright.
        let local: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&id| fns[id].file == caller.file)
            .collect();
        if !local.is_empty() {
            cands = local;
        }
    }

    if cands.len() > MAX_CANDIDATES {
        return Vec::new();
    }
    cands
}

/// Per-function effect summary propagated transitively over the graph.
#[derive(Debug, Clone, Default)]
pub struct Effects {
    /// Lock ids this fn (or anything it may call) acquires.
    pub acquires: BTreeSet<String>,
    /// May block on a condvar / completion latch.
    pub blocks: bool,
    /// May perform file or socket I/O (or sleep).
    pub io: bool,
}

/// Propagate per-fn direct effects to a transitive fixpoint over the
/// call graph (cycles converge because the lattice is finite).
pub fn propagate(ws: &Workspace<'_>, mut eff: Vec<Effects>) -> Vec<Effects> {
    loop {
        let mut changed = false;
        for f in 0..ws.fns.len() {
            for tgt in ws.targets[f].iter().flatten() {
                let (callee_acq, callee_blocks, callee_io) = {
                    let c = &eff[*tgt];
                    (c.acquires.clone(), c.blocks, c.io)
                };
                let e = &mut eff[f];
                let before = e.acquires.len();
                e.acquires.extend(callee_acq);
                if e.acquires.len() != before
                    || (callee_blocks && !e.blocks)
                    || (callee_io && !e.io)
                {
                    changed = true;
                }
                e.blocks |= callee_blocks;
                e.io |= callee_io;
            }
        }
        if !changed {
            return eff;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{scope_for, ParsedFile};
    use crate::source::SourceFile;

    fn ws_files(files: &[(&str, &str)]) -> Vec<ParsedFile> {
        files
            .iter()
            .map(|(p, s)| ParsedFile {
                sf: SourceFile::parse(p, s),
                scope: scope_for(p),
            })
            .collect()
    }

    fn fn_id(ws: &Workspace<'_>, name: &str) -> usize {
        ws.fns.iter().position(|f| f.name == name).expect(name)
    }

    #[test]
    fn cross_file_free_call_resolves() {
        let files = ws_files(&[
            ("crates/a/src/lib.rs", "pub fn callee() {}"),
            ("crates/b/src/lib.rs", "pub fn caller() { callee(); }"),
        ]);
        let ws = build(&files);
        let (caller, callee) = (fn_id(&ws, "caller"), fn_id(&ws, "callee"));
        assert_eq!(ws.targets[caller][0], vec![callee]);
        assert_eq!(ws.callers[callee], vec![caller]);
        assert_eq!(ws.stats.resolved_call_sites, 1);
    }

    #[test]
    fn same_file_definition_shadows_remote_one() {
        let files = ws_files(&[
            ("crates/a/src/lib.rs", "pub fn helper() {}"),
            ("crates/b/src/lib.rs", "fn helper() {} fn caller() { helper(); }"),
        ]);
        let ws = build(&files);
        let caller = fn_id(&ws, "caller");
        assert_eq!(ws.targets[caller][0].len(), 1);
        assert_eq!(ws.fns[ws.targets[caller][0][0]].file, 1);
    }

    #[test]
    fn qualified_call_filters_by_impl_and_file_stem() {
        let files = ws_files(&[
            (
                "crates/a/src/widget.rs",
                "impl Widget { pub fn build(&self) {} } pub fn helper() {}",
            ),
            (
                "crates/b/src/lib.rs",
                "fn f(w: &Widget) { Widget::build(w); widget::helper(); Foreign::build(); }",
            ),
        ]);
        let ws = build(&files);
        let f = fn_id(&ws, "f");
        assert_eq!(ws.targets[f][0].len(), 1, "Widget:: matches the impl");
        assert_eq!(ws.targets[f][1].len(), 1, "widget:: matches the file stem");
        assert!(ws.targets[f][2].is_empty(), "unknown qualifier resolves to nothing");
    }

    #[test]
    fn method_calls_prefer_self_receivers_and_skip_std_vocabulary() {
        let files = ws_files(&[(
            "crates/a/src/lib.rs",
            "impl T { pub fn work(&self) {} } pub fn work() {}\n\
             fn go(t: &T, v: &Vec<u32>) { t.work(); v.len(); }",
        )]);
        let ws = build(&files);
        let go = fn_id(&ws, "go");
        assert_eq!(ws.targets[go][0].len(), 1);
        assert!(ws.fns[ws.targets[go][0][0]].has_self);
        assert!(ws.targets[go][1].is_empty(), ".len() never resolves to workspace defs");
    }

    #[test]
    fn test_region_definitions_neither_resolve_nor_count() {
        let files = ws_files(&[(
            "crates/a/src/lib.rs",
            "fn live() { target(); }\npub fn target() {}\n\
             #[cfg(test)]\nmod tests { fn target() {} fn t() { live(); } }",
        )]);
        let ws = build(&files);
        let live = fn_id(&ws, "live");
        assert_eq!(ws.targets[live][0].len(), 1, "only the non-test def resolves");
        assert_eq!(ws.stats.functions, 2, "test fns are not counted");
    }

    #[test]
    fn effects_propagate_through_cycles() {
        let files = ws_files(&[(
            "crates/a/src/lib.rs",
            "fn a() { b(); } fn b() { a(); c(); } fn c() {}",
        )]);
        let ws = build(&files);
        let mut eff = vec![Effects::default(); ws.fns.len()];
        eff[fn_id(&ws, "c")].io = true;
        eff[fn_id(&ws, "c")].acquires.insert("L".to_string());
        let eff = propagate(&ws, eff);
        assert!(eff[fn_id(&ws, "a")].io);
        assert!(eff[fn_id(&ws, "a")].acquires.contains("L"));
        assert!(eff[fn_id(&ws, "b")].io);
    }
}

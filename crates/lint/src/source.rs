//! A parsed source file: token stream, comments, audited `allow`
//! annotations, and the embedded-test-module boundary.
//!
//! ## Annotation grammar
//!
//! A suppression is a comment of the form
//!
//! ```text
//! // privim-lint: allow(<rule-id>, reason = "<non-empty justification>")
//! ```
//!
//! The `reason` is mandatory — an allow without a why is itself a finding
//! (`bad-annotation`). A trailing annotation covers its own line; an
//! annotation on a line of its own covers the next line that carries code.
//! Rule ids are the *allow ids* from the rule registry (`panic` for the
//! `panic-surface` rule, otherwise identical to the rule id). Only plain
//! `//` / `/* */` comments carry annotations — doc comments (`///`,
//! `//!`) are exempt so rustdoc can quote the grammar.

use crate::lexer::{lex, Comment, TokKind, Token};

/// The comment marker that introduces an annotation.
pub const MARKER: &str = "privim-lint:";

/// One parsed `allow` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The allow id being suppressed (e.g. `panic`, `wall-clock`).
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// Line of the annotation comment itself.
    pub comment_line: usize,
    /// Line of code this annotation covers (`usize::MAX` if it dangles at
    /// end of file and covers nothing).
    pub covered_line: usize,
    /// Set by the engine when a finding was suppressed by this allow.
    pub used: bool,
}

/// A source file, parsed once and shared by every rule.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    pub allows: Vec<Allow>,
    /// Malformed annotations: `(line, what is wrong)`.
    pub bad_annotations: Vec<(usize, String)>,
    /// Line of the first `#[cfg(test)]` — everything from here on is the
    /// embedded test module and exempt from library-code rules.
    pub test_start: Option<usize>,
}

impl SourceFile {
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let out = lex(src);
        let test_start = find_test_start(&out.tokens);
        let mut allows = Vec::new();
        let mut bad = Vec::new();
        for c in &out.comments {
            // Doc comments *describe* the annotation grammar; only plain
            // `//` / `/* */` comments can carry a live annotation.
            if c.text.starts_with("///")
                || c.text.starts_with("//!")
                || c.text.starts_with("/**")
                || c.text.starts_with("/*!")
            {
                continue;
            }
            let Some(pos) = c.text.find(MARKER) else {
                continue;
            };
            let body = &c.text[pos + MARKER.len()..];
            match parse_allow(body) {
                Ok((rule, reason)) => allows.push(Allow {
                    rule,
                    reason,
                    comment_line: c.line,
                    covered_line: covered_line(&out.tokens, c),
                    used: false,
                }),
                Err(msg) => bad.push((c.line, msg)),
            }
        }
        SourceFile {
            path: path.to_string(),
            tokens: out.tokens,
            comments: out.comments,
            allows,
            bad_annotations: bad,
            test_start,
        }
    }

    /// True when `line` lies inside the embedded `#[cfg(test)]` module.
    pub fn in_test_region(&self, line: usize) -> bool {
        matches!(self.test_start, Some(t) if line >= t)
    }
}

/// Line of first `#[cfg(test)]` attribute in the token stream.
fn find_test_start(toks: &[Token]) -> Option<usize> {
    let want: [&dyn Fn(&TokKind) -> bool; 7] = [
        &|k| *k == TokKind::Punct(b'#'),
        &|k| *k == TokKind::Punct(b'['),
        &|k| matches!(k, TokKind::Ident(s) if s == "cfg"),
        &|k| *k == TokKind::Punct(b'('),
        &|k| matches!(k, TokKind::Ident(s) if s == "test"),
        &|k| *k == TokKind::Punct(b')'),
        &|k| *k == TokKind::Punct(b']'),
    ];
    toks.windows(want.len())
        .find(|w| w.iter().zip(&want).all(|(t, m)| m(&t.kind)))
        .map(|w| w[0].line)
}

/// Which code line an annotation comment covers (see module docs).
fn covered_line(toks: &[Token], c: &Comment) -> usize {
    if toks.iter().any(|t| t.line == c.line) {
        return c.line; // trailing comment on a code line
    }
    toks.iter()
        .map(|t| t.line)
        .filter(|&l| l > c.end_line)
        .min()
        .unwrap_or(usize::MAX)
}

/// Parse the text after the `privim-lint:` marker.
fn parse_allow(body: &str) -> Result<(String, String), String> {
    let t = body.trim().trim_end_matches("*/").trim_end();
    let Some(rest) = t.strip_prefix("allow") else {
        return Err(format!("expected `allow(...)` after `{MARKER}`"));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("expected `(` after `allow`".to_string());
    };
    let Some(inner) = rest.trim_end().strip_suffix(')') else {
        return Err("unclosed `allow(`".to_string());
    };
    let (rule, tail) = match inner.split_once(',') {
        Some((r, tail)) => (r.trim(), Some(tail.trim())),
        None => (inner.trim(), None),
    };
    if rule.is_empty() || !rule.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
    {
        return Err(format!("bad rule id `{rule}` (lowercase kebab-case required)"));
    }
    let Some(tail) = tail else {
        return Err(format!(
            "allow({rule}) is missing its mandatory `reason = \"...\"`"
        ));
    };
    let Some(tail) = tail.strip_prefix("reason") else {
        return Err("expected `reason = \"...\"` after the rule id".to_string());
    };
    let tail = tail.trim_start();
    let Some(tail) = tail.strip_prefix('=') else {
        return Err("expected `=` after `reason`".to_string());
    };
    let tail = tail.trim();
    let Some(q) = tail.strip_prefix('"') else {
        return Err("reason must be a double-quoted string".to_string());
    };
    let Some(reason) = q.strip_suffix('"') else {
        return Err("unterminated reason string".to_string());
    };
    if reason.trim().is_empty() {
        return Err(format!("allow({rule}) has an empty reason — justify the suppression"));
    }
    Ok((rule.to_string(), reason.trim().to_string()))
}

/// A `fn` item with its body's token range (used by function-scoped rules).
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    /// Line of the `fn` keyword.
    pub sig_line: usize,
    /// Token index of the `fn` keyword (signature start).
    pub sig_start: usize,
    /// Half-open token-index range of the body including both braces.
    pub body: (usize, usize),
}

/// Locate every `fn` item (including nested ones) and its body span.
/// Function-pointer types (`fn(i32)`) and bodyless trait methods are
/// skipped. Unbalanced braces degrade to a span ending at EOF.
pub fn find_fns(toks: &[Token]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let is_fn_kw = matches!(&toks[i].kind, TokKind::Ident(s) if s == "fn");
        if !is_fn_kw {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        let TokKind::Ident(name) = &name_tok.kind else {
            i += 1; // `fn(` pointer type or malformed
            continue;
        };
        // Scan to the body's `{`, giving up at a `;` (trait declaration).
        let mut j = i + 2;
        let mut body = None;
        while let Some(t) = toks.get(j) {
            match t.kind {
                TokKind::Punct(b'{') => {
                    body = Some(j);
                    break;
                }
                TokKind::Punct(b';') => break,
                _ => j += 1,
            }
        }
        if let Some(open) = body {
            let mut depth = 0usize;
            let mut k = open;
            let mut close = toks.len();
            while let Some(t) = toks.get(k) {
                match t.kind {
                    TokKind::Punct(b'{') => depth += 1,
                    TokKind::Punct(b'}') => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            close = k + 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            fns.push(FnSpan {
                name: name.clone(),
                sig_line: toks[i].line,
                sig_start: i,
                body: (open, close),
            });
        }
        i += 2;
    }
    fns
}

/// The innermost function span containing token index `idx`, if any.
pub fn innermost_fn<'a>(fns: &'a [FnSpan], idx: usize) -> Option<&'a FnSpan> {
    fns.iter()
        .filter(|f| f.body.0 <= idx && idx < f.body.1)
        .min_by_key(|f| f.body.1 - f.body.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotations_parse_and_cover() {
        let src = "\
fn a() {
    // privim-lint: allow(panic, reason = \"fixed-size slice\")
    x.unwrap();
}
let y = 1; // privim-lint: allow(wall-clock, reason = \"bench label\")
";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert_eq!(f.allows.len(), 2);
        assert_eq!(f.allows[0].rule, "panic");
        assert_eq!(f.allows[0].covered_line, 3);
        assert_eq!(f.allows[1].rule, "wall-clock");
        assert_eq!(f.allows[1].covered_line, 5);
        assert!(f.bad_annotations.is_empty());
    }

    #[test]
    fn malformed_annotations_are_findings() {
        for bad in [
            "// privim-lint: allow(panic)",
            "// privim-lint: allow(panic, reason = \"\")",
            "// privim-lint: allow(Panic, reason = \"x\")",
            "// privim-lint: deny(panic)",
        ] {
            let f = SourceFile::parse("crates/x/src/lib.rs", bad);
            assert_eq!(f.bad_annotations.len(), 1, "{bad}");
        }
    }

    #[test]
    fn test_region_detection() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests { fn t() {} }\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(!f.in_test_region(1));
        assert!(f.in_test_region(2));
        assert!(f.in_test_region(3));
    }

    #[test]
    fn fn_spans_nest() {
        let src = "fn outer() { fn inner() { body(); } tail(); }";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let fns = find_fns(&f.tokens);
        assert_eq!(fns.len(), 2);
        let body_idx = f
            .tokens
            .iter()
            .position(|t| matches!(&t.kind, TokKind::Ident(s) if s == "body"))
            .expect("body token");
        let inner = innermost_fn(&fns, body_idx).expect("span");
        assert_eq!(inner.name, "inner");
        let tail_idx = f
            .tokens
            .iter()
            .position(|t| matches!(&t.kind, TokKind::Ident(s) if s == "tail"))
            .expect("tail token");
        assert_eq!(innermost_fn(&fns, tail_idx).map(|s| s.name.as_str()), Some("outer"));
    }
}

//! `unaccounted-noise`: every function that draws DP noise must reference
//! the RDP accountant or carry an audited annotation saying who charges
//! the budget instead. See the registry entry for the full rationale.

use crate::engine::{RawFinding, Scope};
use crate::lexer::TokKind;
use crate::source::{find_fns, innermost_fn, SourceFile};

/// Exact names of noise primitives (plus the `noisy_` prefix family).
const NOISE_FNS: [&str; 4] = [
    "gaussian_noise_vec",
    "laplace_noise_vec",
    "sml_noise_vec",
    "add_noise",
];

pub(crate) fn is_noise_fn(name: &str) -> bool {
    NOISE_FNS.contains(&name) || name.starts_with("noisy_")
}

/// An identifier that counts as "touching the accountant". Shared with
/// the dp-taint rule, whose sanitizer definition reuses this check.
pub(crate) fn is_accountant_ref(name: &str) -> bool {
    name == "charge" || name == "compose" || name.to_ascii_lowercase().contains("accountant")
}

pub fn check(f: &SourceFile, scope: &Scope) -> Vec<RawFinding> {
    if !scope.lib_code {
        return Vec::new();
    }
    let toks = &f.tokens;
    let fns = find_fns(toks);
    // Precompute, per fn, whether its signature or body references the
    // accountant (a `&mut Accountant` parameter counts).
    let has_acct: Vec<bool> = fns
        .iter()
        .map(|s| {
            toks[s.sig_start..s.body.1]
                .iter()
                .any(|t| matches!(&t.kind, TokKind::Ident(n) if is_accountant_ref(n)))
        })
        .collect();

    let mut out = Vec::new();
    for i in 0..toks.len() {
        let TokKind::Ident(name) = &toks[i].kind else {
            continue;
        };
        if !is_noise_fn(name) {
            continue;
        }
        // Call position: followed by `(`, and not a `fn` definition head.
        let is_call = matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Punct(b'(')));
        let is_def = matches!(
            toks.get(i.wrapping_sub(1)).map(|t| &t.kind),
            Some(TokKind::Ident(k)) if k == "fn"
        ) && i > 0;
        if !is_call || is_def || f.in_test_region(toks[i].line) {
            continue;
        }
        let line = toks[i].line;
        let (fn_name, sig_line, accounted) = match innermost_fn(&fns, i) {
            Some(span) => {
                let idx = fns
                    .iter()
                    .position(|s| s.body == span.body)
                    .unwrap_or(usize::MAX);
                (
                    span.name.as_str(),
                    span.sig_line,
                    idx < has_acct.len() && has_acct[idx],
                )
            }
            None => ("<file scope>", line, false),
        };
        if accounted {
            continue;
        }
        out.push(RawFinding {
            line,
            message: format!(
                "`{name}` draws noise but fn `{fn_name}` never references the RDP \
                 accountant (Accountant / charge / compose); charge the budget or \
                 annotate allow(unaccounted-noise, reason = \"where it is charged\")"
            ),
            // An allow on either the call line or the `fn` line suppresses.
            suppress_lines: vec![line, sig_line],
            severity: None,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::scope_for;

    fn run(src: &str) -> Vec<RawFinding> {
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        check(&f, &scope_for("crates/core/src/x.rs"))
    }

    #[test]
    fn unaccounted_call_is_flagged_accounted_is_not() {
        let bad = run("fn f(rng: &mut R) { let n = gaussian_noise_vec(3, 1.0, 1.0, rng); }");
        assert_eq!(bad.len(), 1);
        let good = run(
            "fn f(a: &mut Accountant, rng: &mut R) { a.charge(1); \
             let n = gaussian_noise_vec(3, 1.0, 1.0, rng); }",
        );
        assert!(good.is_empty());
    }

    #[test]
    fn noisy_prefix_counts_definition_does_not() {
        assert_eq!(run("fn f() { noisy_topk(5); }").len(), 1);
        assert!(run("fn noisy_topk(k: usize) -> usize { k }").is_empty());
    }

    #[test]
    fn innermost_fn_is_charged_not_outer() {
        // Outer references the accountant, inner draws noise: still a leak.
        let src = "fn outer(a: &Accountant) { fn inner(r: &mut R) { sml_noise_vec(1, 1.0, r); } }";
        assert_eq!(run(src).len(), 1);
    }
}

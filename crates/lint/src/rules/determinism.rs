//! Determinism rules: `nondeterministic-collection` and `wall-clock`.
//!
//! PR 1's 1-vs-N-thread equivalence tests assert *bit-identical* results
//! at any parallelism level. Both rules remove the two classic sources of
//! silent run-to-run divergence: hash-randomized iteration order and
//! wall-clock reads flowing into results.

use crate::engine::{RawFinding, Scope};
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// `nondeterministic-collection`: no `HashMap`/`HashSet` in
/// result-affecting crate library code.
pub fn check_collections(f: &SourceFile, scope: &Scope) -> Vec<RawFinding> {
    if !scope.lib_code || !scope.det_crate {
        return Vec::new();
    }
    let mut out = Vec::new();
    for t in &f.tokens {
        let TokKind::Ident(name) = &t.kind else {
            continue;
        };
        if (name == "HashMap" || name == "HashSet") && !f.in_test_region(t.line) {
            out.push(RawFinding {
                line: t.line,
                message: format!(
                    "`{name}` has hash-randomized iteration order; use \
                     BTree{}/a sorted Vec (or annotate a provably \
                     order-free scratch use)",
                    &name[4..]
                ),
                suppress_lines: vec![t.line],
                severity: None,
            });
        }
    }
    out
}

/// `wall-clock`: `Instant::now` / `SystemTime` confined to the bench
/// harness or explicitly labelled timing telemetry.
pub fn check_wall_clock(f: &SourceFile, scope: &Scope) -> Vec<RawFinding> {
    if !scope.lib_code || scope.wall_clock_exempt {
        return Vec::new();
    }
    let toks = &f.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let TokKind::Ident(name) = &toks[i].kind else {
            continue;
        };
        if f.in_test_region(toks[i].line) {
            continue;
        }
        let flagged = match name.as_str() {
            // `Instant::now(...)` — the read itself, not the mere import.
            "Instant" => {
                matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Punct(b':')))
                    && matches!(toks.get(i + 2).map(|t| &t.kind), Some(TokKind::Punct(b':')))
                    && matches!(toks.get(i + 3).map(|t| &t.kind), Some(TokKind::Ident(n)) if n == "now")
            }
            // SystemTime is nondeterministic in every position.
            "SystemTime" => true,
            _ => false,
        };
        if flagged {
            // In crates/serve, latency instrumentation legitimately reads
            // the clock throughout a function: let one annotation on the
            // `fn` signature line cover every read inside it, instead of
            // demanding a per-line allow.
            let mut suppress_lines = vec![toks[i].line];
            if scope.serve_latency {
                if let Some(fn_line) = enclosing_fn_line(toks, i) {
                    suppress_lines.push(fn_line);
                }
            }
            out.push(RawFinding {
                line: toks[i].line,
                message: format!(
                    "wall-clock read (`{name}`) outside crates/rt/src/bench.rs; \
                     results must not depend on time — annotate \
                     allow(wall-clock, ...) if this is timing-only telemetry"
                ),
                suppress_lines,
                severity: None,
            });
        }
    }
    out
}

/// Line of the nearest `fn` keyword at or before token `i` — the
/// enclosing function's signature line for annotation purposes. (A
/// token-level approximation: nested closures/items resolve to the
/// closest preceding `fn`, which is where a scoping annotation would sit
/// anyway.)
fn enclosing_fn_line(toks: &[crate::lexer::Token], i: usize) -> Option<usize> {
    toks[..i]
        .iter()
        .rev()
        .find(|t| matches!(&t.kind, TokKind::Ident(n) if n == "fn"))
        .map(|t| t.line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::scope_for;

    #[test]
    fn hashmap_flagged_in_det_crate_only() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        let f = SourceFile::parse("crates/dp/src/x.rs", src);
        assert_eq!(check_collections(&f, &scope_for("crates/dp/src/x.rs")).len(), 3);
        let f = SourceFile::parse("crates/rt/src/x.rs", src);
        assert!(check_collections(&f, &scope_for("crates/rt/src/x.rs")).is_empty());
        let f = SourceFile::parse("crates/dp/src/bin/tool.rs", src);
        assert!(check_collections(&f, &scope_for("crates/dp/src/bin/tool.rs")).is_empty());
    }

    #[test]
    fn instant_now_flagged_import_alone_is_not() {
        let src = "use std::time::Instant;\nfn f() -> f64 { let t = Instant::now(); t.elapsed().as_secs_f64() }";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let got = check_wall_clock(&f, &scope_for("crates/core/src/x.rs"));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 2);
        let f = SourceFile::parse("crates/rt/src/bench.rs", src);
        assert!(check_wall_clock(&f, &scope_for("crates/rt/src/bench.rs")).is_empty());
    }

    #[test]
    fn serve_reads_suppressible_at_fn_line() {
        // Two clock reads inside one function: in crates/serve both
        // findings list the `fn` line (3) as a suppression point, so one
        // fn-level annotation covers the whole function.
        let src = "use std::time::Instant;\n\
                   \n\
                   fn observe() -> f64 {\n\
                   let a = Instant::now();\n\
                   let b = Instant::now();\n\
                   b.duration_since(a).as_secs_f64()\n\
                   }";
        let f = SourceFile::parse("crates/serve/src/metrics.rs", src);
        let got = check_wall_clock(&f, &scope_for("crates/serve/src/metrics.rs"));
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|r| r.suppress_lines.contains(&3)), "{got:?}");
        // Outside crates/serve the fn line is NOT a suppression point.
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let got = check_wall_clock(&f, &scope_for("crates/core/src/x.rs"));
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|r| !r.suppress_lines.contains(&3)), "{got:?}");
    }

    #[test]
    fn serve_fn_annotation_suppresses_all_reads_in_fn() {
        use crate::engine::run_sources;
        let src = "// privim-lint: allow(wall-clock, reason = \"latency telemetry: request timer, never feeds response bodies\")\n\
                   fn observe() -> f64 {\n\
                   let a = std::time::Instant::now();\n\
                   let b = std::time::Instant::now();\n\
                   b.duration_since(a).as_secs_f64()\n\
                   }";
        let r = run_sources(
            &[("crates/serve/src/metrics.rs".to_string(), src.to_string())],
            &[],
            None,
        );
        assert_eq!(r.errors(), 0, "{:?}", r.findings);
        assert_eq!(r.warnings(), 0, "{:?}", r.findings);
    }
}

//! The rule catalogue: ids, severities, allow ids, and `--explain` text.
//!
//! Every rule is a pure function from a parsed [`SourceFile`] (or a
//! `Cargo.toml`) to raw findings; the engine applies annotation
//! suppression and severity accounting on top. Adding a rule means adding
//! a module here and one [`RuleInfo`] entry to [`registry`].

pub mod deps;
pub mod determinism;
pub mod float_eq;
pub mod noise;
pub mod panic_surface;

use crate::engine::{RawFinding, Scope, Severity};
use crate::source::SourceFile;

/// What a rule consumes.
pub enum RuleKind {
    /// Runs over parsed `.rs` files.
    Rust(fn(&SourceFile, &Scope) -> Vec<RawFinding>),
    /// Runs over `Cargo.toml` manifests: `(workspace-relative path, text)`.
    Toml(fn(&str, &str) -> Vec<RawFinding>),
    /// Emitted by the engine itself (annotation hygiene); listed here so
    /// `--explain` covers it.
    Meta,
}

/// Static description of one rule.
pub struct RuleInfo {
    pub id: &'static str,
    /// Id accepted in `allow(...)` annotations (differs from `id` only
    /// for `panic-surface`, whose allow id is the shorter `panic`).
    pub allow_id: &'static str,
    pub severity: Severity,
    /// Advisory rules run only when explicitly selected via `--rule` and
    /// never fail the gate.
    pub advisory: bool,
    pub summary: &'static str,
    pub explain: &'static str,
    pub kind: RuleKind,
}

/// All rules, in reporting order.
pub fn registry() -> &'static [RuleInfo] {
    &[
        RuleInfo {
            id: "unaccounted-noise",
            allow_id: "unaccounted-noise",
            severity: Severity::Error,
            advisory: false,
            summary: "noise primitives must be charged to the RDP accountant",
            explain: "\
The paper's (epsilon, delta) guarantee is a statement about *accounted*
noise: Theorem 3 composes the per-step RDP cost of every Gaussian draw, so
a code path that adds noise without charging the accountant silently voids
the guarantee (the classic DP-implementation leak of Tramer et al.). Any
function whose body calls a noise primitive (gaussian_noise_vec,
laplace_noise_vec, sml_noise_vec, add_noise, noisy_*) must also reference
the accountant (an identifier containing `Accountant`, or `charge` /
`compose`), or carry an audited annotation:

    // privim-lint: allow(unaccounted-noise, reason = \"...\")

placed on the noise-call line or the function's `fn` line. The reason must
say where the budget is charged instead. This is the load-bearing rule:
every other invariant protects test fidelity, this one protects the
privacy claim itself.",
            kind: RuleKind::Rust(noise::check),
        },
        RuleInfo {
            id: "nondeterministic-collection",
            allow_id: "nondeterministic-collection",
            severity: Severity::Error,
            advisory: false,
            summary: "HashMap/HashSet are banned in result-affecting crates",
            explain: "\
std's HashMap/HashSet use SipHash with process-random keys, so iteration
order differs across runs and platforms. In result-affecting crates
(tensor, dp, gnn, sampling, im, core, graph, bench, lint) that breaks the
1-vs-N-thread bit-equality tests and makes experiment outputs
irreproducible. Use BTreeMap/BTreeSet, a sorted Vec, or the seeded
alternative. Library code only (src/bin CLIs and test modules are exempt);
suppress a genuinely order-free scratch use with
allow(nondeterministic-collection, reason = \"...\").",
            kind: RuleKind::Rust(determinism::check_collections),
        },
        RuleInfo {
            id: "wall-clock",
            allow_id: "wall-clock",
            severity: Severity::Error,
            advisory: false,
            summary: "Instant::now/SystemTime only in bench plumbing or labelled timing",
            explain: "\
Wall-clock reads are nondeterministic inputs: a result that depends on
Instant::now() cannot be bit-reproduced. Instant::now and SystemTime are
confined to crates/rt/src/bench.rs (the bench harness); every other site
must be explicitly labelled as timing-only telemetry with
allow(wall-clock, reason = \"...\") so an auditor can verify the value
never feeds a result. In crates/serve (latency instrumentation is the
point) an annotation on the enclosing fn signature covers every read in
that function.",
            kind: RuleKind::Rust(determinism::check_wall_clock),
        },
        RuleInfo {
            id: "float-eq",
            allow_id: "float-eq",
            severity: Severity::Error,
            advisory: false,
            summary: "no == / != against float literals",
            explain: "\
Exact float equality is almost always a latent bug: values that are
mathematically equal differ in the last ulp after reordered summation,
which is exactly what the deterministic-parallelism contract forbids
relying on. Comparisons `x == 1.0` / `x != 0.0` (either operand a float
literal) are denied in library code. Convert result-affecting ones to an
explicit epsilon or bit-pattern (`to_bits`) check; annotate intentional
IEEE-exact sentinels with allow(float-eq, reason = \"...\").",
            kind: RuleKind::Rust(float_eq::check),
        },
        RuleInfo {
            id: "panic-surface",
            allow_id: "panic",
            severity: Severity::Error,
            advisory: false,
            summary: "library code must stay Result-based",
            explain: "\
The fault-tolerance contract (DESIGN.md section 8) requires library code
to surface failures as PrivimError, not aborts: the crash-safe harness can
only checkpoint around errors it observes. Token-aware counting of
.unwrap() / .expect( / panic!( / unreachable!( / todo!( / unimplemented!(
in crate library code (src/bin entry points and #[cfg(test)] modules are
exempt; assert! invariant checks are allowed). Unlike the retired
grep-based scripts/panic_gate.sh, comments, doc examples, and string
literals do not count, and methods merely *named* `expect` do not trip it.
Every remaining site must be provably infallible and annotated in place:

    // privim-lint: allow(panic, reason = \"...\")

The annotation replaces the old external allowlist file, so the audit
travels with the code it audits.",
            kind: RuleKind::Rust(panic_surface::check),
        },
        RuleInfo {
            id: "panic-indexing",
            allow_id: "panic-indexing",
            severity: Severity::Warning,
            advisory: true,
            summary: "advisory: slice/array indexing in library code",
            explain: "\
Indexing (`xs[i]`) panics on out-of-bounds and is invisible to the
panic-surface rule. This advisory heuristic lists indexing expressions in
library code so a reviewer can sweep for unchecked indices. It is noisy by
design (CSR adjacency walks index heavily and provably in-bounds), so it
only runs when explicitly requested via `--rule panic-indexing` and never
fails the gate.",
            kind: RuleKind::Rust(panic_surface::check_indexing),
        },
        RuleInfo {
            id: "dependency-policy",
            allow_id: "dependency-policy",
            severity: Severity::Error,
            advisory: false,
            summary: "only path / workspace dependencies are allowed",
            explain: "\
The workspace builds with crates.io unreachable (DESIGN.md
zero-external-dependency policy): every dependency in every Cargo.toml
must be a pure path dependency or `workspace = true` inheritance. This
rule is a real section-aware manifest parser (it understands
[dependencies], [dev-dependencies], [build-dependencies],
[workspace.dependencies], target-specific tables, and
[dependencies.<name>] subtables) and replaces the line-oriented awk check
that previously lived in scripts/ci.sh. Any `version`, `git`, or
`registry` key on a dependency is a finding even when a `path` is also
present.",
            kind: RuleKind::Toml(deps::check_toml),
        },
        RuleInfo {
            id: "bad-annotation",
            allow_id: "bad-annotation",
            severity: Severity::Error,
            advisory: false,
            summary: "annotation hygiene: parseable, known rule, mandatory reason, no dead allows",
            explain: "\
Suppressions are part of the audited surface, so they are linted too: a
`privim-lint:` comment that does not parse as
allow(<rule>, reason = \"...\"), names an unknown rule, or omits the
reason is an error. An allow that suppresses nothing is reported as a
warning (dead allows rot into false confidence). This rule always runs,
even under `--rule <other>`.",
            kind: RuleKind::Meta,
        },
    ]
}

/// Look up a rule by id.
pub fn by_id(id: &str) -> Option<&'static RuleInfo> {
    registry().iter().find(|r| r.id == id)
}

/// True when `id` is accepted inside `allow(...)`.
pub fn is_known_allow_id(id: &str) -> bool {
    registry()
        .iter()
        .any(|r| r.allow_id == id && !matches!(r.kind, RuleKind::Meta))
}

//! The rule catalogue: ids, severities, allow ids, and `--explain` text.
//!
//! Every rule is a pure function from a parsed [`SourceFile`] (or a
//! `Cargo.toml`) to raw findings; the engine applies annotation
//! suppression and severity accounting on top. Adding a rule means adding
//! a module here and one [`RuleInfo`] entry to [`registry`].

pub mod deps;
pub mod determinism;
pub mod dp_taint;
pub mod float_eq;
pub mod lock_order;
pub mod noise;
pub mod panic_surface;
pub mod unsafe_audit;

use crate::callgraph::Workspace;
use crate::engine::{RawFinding, Scope, Severity};
use crate::source::SourceFile;

/// What a rule consumes.
pub enum RuleKind {
    /// Runs over parsed `.rs` files.
    Rust(fn(&SourceFile, &Scope) -> Vec<RawFinding>),
    /// Runs over `Cargo.toml` manifests: `(workspace-relative path, text)`.
    Toml(fn(&str, &str) -> Vec<RawFinding>),
    /// Runs once over the whole-workspace call graph; findings carry the
    /// index of the file they anchor to.
    Workspace(fn(&Workspace<'_>) -> Vec<(usize, RawFinding)>),
    /// Emitted by the engine itself (annotation hygiene); listed here so
    /// `--explain` covers it.
    Meta,
}

/// Static description of one rule.
pub struct RuleInfo {
    pub id: &'static str,
    /// Id accepted in `allow(...)` annotations (differs from `id` only
    /// for `panic-surface`, whose allow id is the shorter `panic`).
    pub allow_id: &'static str,
    pub severity: Severity,
    /// Advisory rules run only when explicitly selected via `--rule` and
    /// never fail the gate.
    pub advisory: bool,
    pub summary: &'static str,
    pub explain: &'static str,
    pub kind: RuleKind,
}

/// All rules, in reporting order.
pub fn registry() -> &'static [RuleInfo] {
    &[
        RuleInfo {
            id: "unaccounted-noise",
            allow_id: "unaccounted-noise",
            severity: Severity::Error,
            advisory: false,
            summary: "noise primitives must be charged to the RDP accountant",
            explain: "\
The paper's (epsilon, delta) guarantee is a statement about *accounted*
noise: Theorem 3 composes the per-step RDP cost of every Gaussian draw, so
a code path that adds noise without charging the accountant silently voids
the guarantee (the classic DP-implementation leak of Tramer et al.). Any
function whose body calls a noise primitive (gaussian_noise_vec,
laplace_noise_vec, sml_noise_vec, add_noise, noisy_*) must also reference
the accountant (an identifier containing `Accountant`, or `charge` /
`compose`), or carry an audited annotation:

    // privim-lint: allow(unaccounted-noise, reason = \"...\")

placed on the noise-call line or the function's `fn` line. The reason must
say where the budget is charged instead. This is the load-bearing rule:
every other invariant protects test fidelity, this one protects the
privacy claim itself.",
            kind: RuleKind::Rust(noise::check),
        },
        RuleInfo {
            id: "nondeterministic-collection",
            allow_id: "nondeterministic-collection",
            severity: Severity::Error,
            advisory: false,
            summary: "HashMap/HashSet are banned in result-affecting crates",
            explain: "\
std's HashMap/HashSet use SipHash with process-random keys, so iteration
order differs across runs and platforms. In result-affecting crates
(tensor, dp, gnn, sampling, im, core, graph, bench, lint) that breaks the
1-vs-N-thread bit-equality tests and makes experiment outputs
irreproducible. Use BTreeMap/BTreeSet, a sorted Vec, or the seeded
alternative. Library code only (src/bin CLIs and test modules are exempt);
suppress a genuinely order-free scratch use with
allow(nondeterministic-collection, reason = \"...\").",
            kind: RuleKind::Rust(determinism::check_collections),
        },
        RuleInfo {
            id: "wall-clock",
            allow_id: "wall-clock",
            severity: Severity::Error,
            advisory: false,
            summary: "Instant::now/SystemTime only in bench plumbing or labelled timing",
            explain: "\
Wall-clock reads are nondeterministic inputs: a result that depends on
Instant::now() cannot be bit-reproduced. Instant::now and SystemTime are
confined to crates/rt/src/bench.rs (the bench harness); every other site
must be explicitly labelled as timing-only telemetry with
allow(wall-clock, reason = \"...\") so an auditor can verify the value
never feeds a result. In crates/serve (latency instrumentation is the
point) an annotation on the enclosing fn signature covers every read in
that function.",
            kind: RuleKind::Rust(determinism::check_wall_clock),
        },
        RuleInfo {
            id: "float-eq",
            allow_id: "float-eq",
            severity: Severity::Error,
            advisory: false,
            summary: "no == / != against float literals",
            explain: "\
Exact float equality is almost always a latent bug: values that are
mathematically equal differ in the last ulp after reordered summation,
which is exactly what the deterministic-parallelism contract forbids
relying on. Comparisons `x == 1.0` / `x != 0.0` (either operand a float
literal) are denied in library code. Convert result-affecting ones to an
explicit epsilon or bit-pattern (`to_bits`) check; annotate intentional
IEEE-exact sentinels with allow(float-eq, reason = \"...\").",
            kind: RuleKind::Rust(float_eq::check),
        },
        RuleInfo {
            id: "panic-surface",
            allow_id: "panic",
            severity: Severity::Error,
            advisory: false,
            summary: "library code must stay Result-based",
            explain: "\
The fault-tolerance contract (DESIGN.md section 8) requires library code
to surface failures as PrivimError, not aborts: the crash-safe harness can
only checkpoint around errors it observes. Token-aware counting of
.unwrap() / .expect( / panic!( / unreachable!( / todo!( / unimplemented!(
in crate library code (src/bin entry points and #[cfg(test)] modules are
exempt; assert! invariant checks are allowed). Unlike the retired
grep-based scripts/panic_gate.sh, comments, doc examples, and string
literals do not count, and methods merely *named* `expect` do not trip it.
Every remaining site must be provably infallible and annotated in place:

    // privim-lint: allow(panic, reason = \"...\")

The annotation replaces the old external allowlist file, so the audit
travels with the code it audits.",
            kind: RuleKind::Rust(panic_surface::check),
        },
        RuleInfo {
            id: "panic-indexing",
            allow_id: "panic-indexing",
            severity: Severity::Warning,
            advisory: true,
            summary: "advisory: slice/array indexing in library code",
            explain: "\
Indexing (`xs[i]`) panics on out-of-bounds and is invisible to the
panic-surface rule. This advisory heuristic lists indexing expressions in
library code so a reviewer can sweep for unchecked indices. It is noisy by
design (CSR adjacency walks index heavily and provably in-bounds), so it
only runs when explicitly requested via `--rule panic-indexing` and never
fails the gate.",
            kind: RuleKind::Rust(panic_surface::check_indexing),
        },
        RuleInfo {
            id: "dependency-policy",
            allow_id: "dependency-policy",
            severity: Severity::Error,
            advisory: false,
            summary: "only path / workspace dependencies are allowed",
            explain: "\
The workspace builds with crates.io unreachable (DESIGN.md
zero-external-dependency policy): every dependency in every Cargo.toml
must be a pure path dependency or `workspace = true` inheritance. This
rule is a real section-aware manifest parser (it understands
[dependencies], [dev-dependencies], [build-dependencies],
[workspace.dependencies], target-specific tables, and
[dependencies.<name>] subtables) and replaces the line-oriented awk check
that previously lived in scripts/ci.sh. Any `version`, `git`, or
`registry` key on a dependency is a finding even when a `path` is also
present.",
            kind: RuleKind::Toml(deps::check_toml),
        },
        RuleInfo {
            id: "lock-order",
            allow_id: "lock-order",
            severity: Severity::Error,
            advisory: false,
            summary: "no lock cycles; no blocking I/O or condvar waits under a lock",
            explain: "\
Cross-file deadlock and lock-latency analysis over the workspace call
graph. Every acquisition site (.lock(), calls to the per-module `lock`
helpers, rwlock-ish .read()/.write()) opens a held range: to the end of
the enclosing block for a let-bound guard (ending early at drop(guard)),
to the end of the statement otherwise. Within a held range the rule
flags, transitively through the call graph:

  * acquiring locks in a cycle-forming order (A before B here, B before
    A anywhere else — including a re-acquisition of the same lock, which
    self-deadlocks std::sync::Mutex);
  * blocking on a Condvar or completion latch (waiting on the condvar
    that releases the held guard itself is exempt — that is what a
    condvar is for);
  * file I/O, fsync, socket writes, or sleeps (rt::fsio helpers, the
    write_all/flush/sync family) — holding a hot-path lock across a disk
    flush is how a 10ms fsync becomes a 10ms admission stall.

Lock identities are `file::name` so two modules' `queue` mutexes stay
distinct; acquisition through the per-module `fn lock` helper is
attributed to the helper's *argument* (`lock(&shared.queue)` acquires
`queue`). Deliberate exceptions (e.g. the WAL durability contract of
DESIGN.md §13 holds the journal lock across fsync by design) must be
annotated in place:

    // privim-lint: allow(lock-order, reason = \"...\")

on the acquisition line or the enclosing fn signature. The analysis is
heuristic, not sound — see DESIGN.md §9 for what the resolver can miss.",
            kind: RuleKind::Workspace(lock_order::check),
        },
        RuleInfo {
            id: "dp-taint",
            allow_id: "dp-taint",
            severity: Severity::Error,
            advisory: false,
            summary: "raw gradients/embeddings must pass clip+noise before any release path",
            explain: "\
Function-level taint tracking for the DP boundary. Sources are the raw
model internals an adversary must never see unperturbed: per-sample
gradients (Tape::backward, sample_gradient) and penultimate-layer
embeddings (embed, embed_graph) defined in the training stack (tensor /
gnn / dp / core). A function that (transitively) consumes a source is
tainted unless it is a sanitizer: a function that clips (clip / clip_*)
AND draws accountant-referenced noise — the same accountant test the
unaccounted-noise rule applies, including its audited
allow(unaccounted-noise) annotations. Tainted functions are flagged when
they reach a release path: a pub API outside the training stack (the
serve response surface included) or any serialization call
(to_json/to_json_string/pack or the file-write family). The GAP/ProGAP
line of work shows exactly this failure: one aggregation path that skips
the perturbation silently voids the epsilon guarantee. Code that is
*supposed* to see raw internals (the attack harness measuring leakage)
carries an audited annotation:

    // privim-lint: allow(dp-taint, reason = \"...\")

on the function's fn line. A flagged-and-audited function does not
re-taint its callers — the annotation marks the audited boundary.",
            kind: RuleKind::Workspace(dp_taint::check),
        },
        RuleInfo {
            id: "unsafe-audit",
            allow_id: "unsafe",
            severity: Severity::Error,
            advisory: false,
            summary: "every unsafe needs an audited reason; intrinsics need guarded scalar fallbacks",
            explain: "\
Two contracts ahead of the SIMD roadmap item. (1) Every `unsafe` block,
fn, or impl outside #[cfg(test)] must carry an audited annotation with a
real safety argument:

    // privim-lint: allow(unsafe, reason = \"why this cannot misbehave\")

on the unsafe line or the enclosing fn signature — the safety comment
becomes machine-checked instead of conventional. (2) Any core::arch
intrinsic call (_mm*/v* families or an arch-qualified path) must be
unreachable without a runtime feature check: the containing fn either
performs the is_x86_feature_detected!/is_aarch64_feature_detected!
check itself, or is #[target_feature]-gated — in which case a scalar
fallback sibling must exist (the name minus its _avx2/_sse/_neon/_simd
suffix, or name_scalar) and every call site in the graph must sit in a
function that references the detection macro. This makes 'SIMD behind a
detected fallback' an enforced invariant rather than a convention, so
the deterministic kernels stay runnable on any host.",
            kind: RuleKind::Workspace(unsafe_audit::check),
        },
        RuleInfo {
            id: "bad-annotation",
            allow_id: "bad-annotation",
            severity: Severity::Error,
            advisory: false,
            summary: "annotation hygiene: parseable, known rule, mandatory reason, no dead allows",
            explain: "\
Suppressions are part of the audited surface, so they are linted too: a
`privim-lint:` comment that does not parse as
allow(<rule>, reason = \"...\"), names an unknown rule, or omits the
reason is an error. An allow that suppresses nothing is reported as a
warning (dead allows rot into false confidence). This rule always runs,
even under `--rule <other>`.",
            kind: RuleKind::Meta,
        },
    ]
}

/// Look up a rule by id.
pub fn by_id(id: &str) -> Option<&'static RuleInfo> {
    registry().iter().find(|r| r.id == id)
}

/// True when `id` is accepted inside `allow(...)`.
pub fn is_known_allow_id(id: &str) -> bool {
    registry()
        .iter()
        .any(|r| r.allow_id == id && !matches!(r.kind, RuleKind::Meta))
}

//! `dependency-policy`: a section-aware Cargo.toml parser enforcing the
//! zero-external-dependency policy — every dependency must be a pure
//! `path` dependency or `workspace = true` inheritance, with no
//! `version` / `git` / `registry` escape hatches. Replaces the awk
//! one-liner that used to live in `scripts/ci.sh`.

use crate::engine::RawFinding;

/// Strip a `#` comment, respecting basic single-line strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// Does a TOML section header name a dependency table?
/// Matches `dependencies`, `dev-dependencies`, `build-dependencies`,
/// `workspace.dependencies`, and `target.'cfg(...)'.dependencies`.
fn is_dep_section(name: &str) -> bool {
    name.rsplit('.')
        .next()
        .map(|last| last.ends_with("dependencies"))
        .unwrap_or(false)
}

/// A `[dependencies.<name>]` subtable (keys accumulate until the next
/// section header).
struct Subtable {
    dep: String,
    line: usize,
    ok: bool,
    external_key: Option<(usize, String)>,
}

/// Keys that make a dependency external regardless of anything else.
const EXTERNAL_KEYS: [&str; 3] = ["version", "git", "registry"];

pub fn check_toml(path: &str, text: &str) -> Vec<RawFinding> {
    let mut out = Vec::new();
    let mut in_dep_section = false;
    let mut sub: Option<Subtable> = None;

    let mut flag = |line: usize, msg: String| {
        out.push(RawFinding {
            line,
            message: msg,
            suppress_lines: vec![line],
            severity: None,
        })
    };
    let flush = |sub: &mut Option<Subtable>, flag: &mut dyn FnMut(usize, String)| {
        if let Some(s) = sub.take() {
            if let Some((l, k)) = s.external_key {
                flag(
                    l,
                    format!(
                        "dependency table `{}` sets `{k}` — external sources are \
                         banned ({path}: path-only policy)",
                        s.dep
                    ),
                );
            } else if !s.ok {
                flag(
                    s.line,
                    format!(
                        "dependency table `{}` has neither `path` nor \
                         `workspace = true` — external dependencies are banned",
                        s.dep
                    ),
                );
            }
        }
    };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let t = strip_comment(raw).trim();
        if t.is_empty() {
            continue;
        }
        if t.starts_with('[') {
            flush(&mut sub, &mut flag);
            let name = t.trim_start_matches('[').trim_end_matches(']').trim();
            in_dep_section = is_dep_section(name);
            // `[dependencies.foo]` / `[workspace.dependencies.foo]` style
            // subtable: the *parent* is the dependency section.
            if !in_dep_section {
                if let Some((parent, dep)) = name.rsplit_once('.') {
                    if is_dep_section(parent) {
                        sub = Some(Subtable {
                            dep: dep.trim().to_string(),
                            line: lineno,
                            ok: false,
                            external_key: None,
                        });
                    }
                }
            }
            continue;
        }
        let Some((key, value)) = t.split_once('=') else {
            continue;
        };
        let (key, value) = (key.trim().trim_matches('"'), value.trim());
        if let Some(s) = sub.as_mut() {
            if key == "path" || (key == "workspace" && value == "true") {
                s.ok = true;
            } else if EXTERNAL_KEYS.contains(&key) && s.external_key.is_none() {
                s.external_key = Some((lineno, key.to_string()));
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        // A dependency entry in a `[*dependencies]` section.
        let has = |k: &str| {
            value.contains(&format!("{k} =")) || value.contains(&format!("{k}="))
        };
        if value.starts_with('{') {
            if let Some(bad) = EXTERNAL_KEYS.iter().find(|k| has(k)) {
                flag(
                    lineno,
                    format!("dependency `{key}` sets `{bad}` — external sources are banned"),
                );
            } else if !has("path") && !value.contains("workspace = true") && !value.contains("workspace=true") {
                flag(
                    lineno,
                    format!(
                        "dependency `{key}` is not a path / workspace dependency — \
                         external dependencies are banned"
                    ),
                );
            }
        } else {
            // Bare `name = "1.0"` version strings are the classic
            // crates.io form.
            flag(
                lineno,
                format!(
                    "dependency `{key}` uses a bare version requirement — \
                     external dependencies are banned (use a path dependency)"
                ),
            );
        }
    }
    flush(&mut sub, &mut flag);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_and_workspace_deps_pass() {
        let toml = r#"
[package]
name = "x"
version = "0.1.0"          # package version is not a dependency

[dependencies]
privim-rt = { path = "../rt" }
privim = { workspace = true }

[workspace.dependencies]
privim-graph = { path = "crates/graph" }

[dependencies.local]
path = "../local"
"#;
        assert!(check_toml("crates/x/Cargo.toml", toml).is_empty());
    }

    #[test]
    fn external_forms_flagged() {
        let toml = r#"
[dependencies]
serde = "1.0"
rand = { version = "0.8" }
hybrid = { version = "1", path = "../h" }

[dev-dependencies]
criterion = { git = "https://github.com/x/y" }

[dependencies.tokio]
version = "1"
features = ["full"]
"#;
        let got = check_toml("crates/x/Cargo.toml", toml);
        assert_eq!(got.len(), 5, "{got:?}");
    }

    #[test]
    fn comments_do_not_confuse_the_parser() {
        let toml = "[dependencies]\n# serde = \"1.0\"\nrt = { path = \"../rt\" } # version = \"9\"\n";
        assert!(check_toml("crates/x/Cargo.toml", toml).is_empty());
    }
}

//! `lock-order`: cross-file deadlock / latency analysis over the
//! workspace call graph. See the registry entry for the contract and
//! DESIGN.md §9 for the soundness discussion.
//!
//! Mechanics: every acquisition site opens a *held range* of tokens.
//! A let-bound guard (`let g = lock(&m);`) is held to the end of its
//! enclosing block, ending early at an explicit `drop(g)`; a temporary
//! guard (`lock(&m).pop_front()`) is held to the end of the statement.
//! Within a held range the rule collects (a) lock→lock ordering edges,
//! direct or through the transitive acquire-set of every resolvable
//! callee, and (b) blocking hazards: condvar waits and file/socket I/O,
//! again direct or transitive. Edges feed a cycle check; hazards are
//! reported at the acquisition site.

use crate::callgraph::{propagate, Effects, Workspace};
use crate::engine::RawFinding;
use crate::lexer::{TokKind, Token};
use crate::parse::{match_delims, CallSite, DelimMap, FnItem};
use std::collections::{BTreeMap, BTreeSet};

/// Identifiers whose call means file/socket I/O or sleeping — blocking
/// work that must never happen under a lock (the rt::fsio helpers plus
/// the std write/sync family).
const IO_IDENTS: [&str; 16] = [
    "write_all",
    "write_all_faulty",
    "fsync_faulty",
    "atomic_write_durable",
    "atomic_write_durable_with_plan",
    "sync_data",
    "sync_all",
    "sync_dir",
    "flush",
    "rename",
    "remove_file",
    "create_dir_all",
    "read_to_string",
    "read_to_end",
    "read_exact",
    "sleep",
];

/// One lock acquisition site.
struct Acq {
    fn_id: usize,
    /// Index into the owning fn's `calls`.
    call_idx: usize,
    /// File-qualified lock identity (`crates/rt/src/par.rs::queue`).
    lock: String,
    /// Binding name when the guard is let-bound.
    guard: Option<String>,
    /// Token range (in the owning file) over which the guard is held.
    hold: (usize, usize),
}

/// A lock-ordering edge observed at a concrete site.
struct Edge {
    from: String,
    to: String,
    file: usize,
    line: usize,
    sig_line: usize,
    via: String,
}

pub fn check(ws: &Workspace<'_>) -> Vec<(usize, RawFinding)> {
    let delims: Vec<DelimMap> = ws
        .files
        .iter()
        .map(|pf| match_delims(&pf.sf.tokens))
        .collect();

    // 1. Acquisition sites, per function.
    let mut acqs: Vec<Acq> = Vec::new();
    let mut acq_by_fn: Vec<Vec<usize>> = vec![Vec::new(); ws.fns.len()];
    for (fid, f) in ws.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let toks = &ws.files[f.file].sf.tokens;
        for (ci, c) in f.calls.iter().enumerate() {
            let Some(lock) = acquisition_name(f, c, toks) else {
                continue;
            };
            let guard = guard_binding(toks, c);
            let hold = hold_range(toks, &delims[f.file], c, guard.as_deref());
            acq_by_fn[fid].push(acqs.len());
            acqs.push(Acq {
                fn_id: fid,
                call_idx: ci,
                lock,
                guard,
                hold,
            });
        }
    }

    // 2. Direct per-fn effects, propagated to a transitive fixpoint.
    let mut eff = vec![Effects::default(); ws.fns.len()];
    for (fid, f) in ws.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        for &ai in &acq_by_fn[fid] {
            eff[fid].acquires.insert(acqs[ai].lock.clone());
        }
        for c in &f.calls {
            if c.is_method && c.name == "wait" {
                eff[fid].blocks = true;
            }
            if IO_IDENTS.contains(&c.name.as_str()) {
                eff[fid].io = true;
            }
        }
    }
    let eff = propagate(ws, eff);

    // 3. Hazards and ordering edges inside each held range.
    let mut edges: Vec<Edge> = Vec::new();
    let mut findings: Vec<(usize, RawFinding)> = Vec::new();
    for a in &acqs {
        let f = &ws.fns[a.fn_id];
        let toks = &ws.files[f.file].sf.tokens;
        let a_line = toks[f.calls[a.call_idx].tok].line;
        // kind -> first observed culprit description
        let mut hazards: BTreeMap<&'static str, String> = BTreeMap::new();
        for (ci, c) in f.calls.iter().enumerate() {
            if ci == a.call_idx || c.tok <= a.hold.0 || c.tok >= a.hold.1 {
                continue;
            }
            if c.is_method && c.name == "wait" {
                // `cond.wait(guard)` releases exactly the held guard —
                // the legal condvar protocol, exempt for *this* lock.
                if let (Some(g), Some(arg)) = (&a.guard, single_ident_arg(toks, c)) {
                    if arg == g {
                        continue;
                    }
                }
                hazards
                    .entry("wait")
                    .or_insert_with(|| format!("`.wait(…)` on line {}", c.line));
            }
            if IO_IDENTS.contains(&c.name.as_str()) {
                hazards
                    .entry("io")
                    .or_insert_with(|| format!("`{}` on line {}", c.name, c.line));
            }
            if let Some(&other) = acq_by_fn[a.fn_id]
                .iter()
                .find(|&&ai| acqs[ai].call_idx == ci)
            {
                edges.push(Edge {
                    from: a.lock.clone(),
                    to: acqs[other].lock.clone(),
                    file: f.file,
                    line: a_line,
                    sig_line: f.sig_line,
                    via: format!("acquired on line {}", c.line),
                });
            }
            for &tgt in &ws.targets[a.fn_id][ci] {
                let te = &eff[tgt];
                for l in &te.acquires {
                    edges.push(Edge {
                        from: a.lock.clone(),
                        to: l.clone(),
                        file: f.file,
                        line: a_line,
                        sig_line: f.sig_line,
                        via: format!("via `{}` on line {}", c.name, c.line),
                    });
                }
                if te.blocks {
                    hazards.entry("wait").or_insert_with(|| {
                        format!("`{}` on line {} (may block on a condvar/latch)", c.name, c.line)
                    });
                }
                if te.io {
                    hazards.entry("io").or_insert_with(|| {
                        format!("`{}` on line {} (may do file/socket I/O)", c.name, c.line)
                    });
                }
            }
        }
        for (kind, culprit) in hazards {
            let what = match kind {
                "wait" => "blocks on a condvar or completion latch",
                _ => "performs blocking I/O or sleeps",
            };
            findings.push((
                f.file,
                RawFinding {
                    line: a_line,
                    message: format!(
                        "lock `{}` is held while the critical section {what}: {culprit}; \
                         shrink the critical section or annotate \
                         allow(lock-order, reason = \"…\")",
                        a.lock
                    ),
                    suppress_lines: vec![a_line, f.sig_line],
                    severity: None,
                },
            ));
        }
    }

    // 4. Acquisition-order cycles over the edge digraph.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        adj.entry(e.from.as_str()).or_default().insert(e.to.as_str());
    }
    let mut seen: BTreeSet<(usize, usize, String, String)> = BTreeSet::new();
    for e in &edges {
        let cyclic = e.from == e.to || reaches(&adj, &e.to, &e.from);
        if !cyclic || !seen.insert((e.file, e.line, e.from.clone(), e.to.clone())) {
            continue;
        }
        let message = if e.from == e.to {
            format!(
                "lock `{}` is re-acquired while already held ({}); \
                 std::sync::Mutex self-deadlocks — restructure or annotate \
                 allow(lock-order, reason = \"…\")",
                e.from, e.via
            )
        } else {
            format!(
                "acquisition-order cycle: `{}` is held while `{}` is taken here ({}), \
                 but the reverse order also occurs elsewhere in the workspace — \
                 deadlock risk; pick one global order or annotate \
                 allow(lock-order, reason = \"…\")",
                e.from, e.to, e.via
            )
        };
        findings.push((
            e.file,
            RawFinding {
                line: e.line,
                message,
                suppress_lines: vec![e.line, e.sig_line],
                severity: None,
            },
        ));
    }

    findings
}

/// Reachability (DFS) in the ordering digraph.
fn reaches(adj: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> bool {
    let mut stack = vec![from];
    let mut visited: BTreeSet<&str> = BTreeSet::new();
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if !visited.insert(n) {
            continue;
        }
        if let Some(next) = adj.get(n) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

/// Is this call site a lock acquisition, and of which lock?
///
/// * `.lock()` method calls — identity is the receiver's last ident;
/// * bare calls to a per-module `lock` helper — identity is the last
///   ident of the *argument* (`lock(&shared.queue)` acquires `queue`);
/// * `.read()` / `.write()` only when the receiver smells like an
///   rwlock (plain `io::Read`/`Write` receivers stay exempt).
///
/// Identities are crate-qualified (`serve::wal`): the same mutex field
/// locked from two files of one crate unifies (so cross-file cycles are
/// visible), while two crates' unrelated `queue` mutexes stay distinct.
fn acquisition_name(f: &FnItem, c: &CallSite, toks: &[Token]) -> Option<String> {
    if f.name == "lock" {
        return None; // the helper's own `m.lock()` — attributed to callers
    }
    let name = if c.is_method && c.name == "lock" {
        c.recv.clone().unwrap_or_else(|| "lock".to_string())
    } else if !c.is_method && c.name == "lock" && c.qualifier.is_empty() {
        last_ident_in(toks, c.args).unwrap_or_else(|| "lock".to_string())
    } else if c.is_method && (c.name == "read" || c.name == "write") {
        let recv = c.recv.as_deref()?;
        let low = recv.to_ascii_lowercase();
        if low.contains("lock") || low.contains("rw") {
            recv.to_string()
        } else {
            return None;
        }
    } else {
        return None;
    };
    Some(format!("{}::{}", f.krate, name))
}

/// Last identifier strictly inside a delimiter span.
fn last_ident_in(toks: &[Token], span: (usize, usize)) -> Option<String> {
    toks[span.0 + 1..span.1.min(toks.len())]
        .iter()
        .rev()
        .find_map(|t| match &t.kind {
            TokKind::Ident(s) => Some(s.clone()),
            _ => None,
        })
}

/// The guard's binding name when the acquisition is directly let-bound
/// (`let [mut] g = <acquisition>…;`). A guard that is method-chained
/// away (`lock(&m).pop_front()`) is a temporary — no binding.
fn guard_binding(toks: &[Token], c: &CallSite) -> Option<String> {
    // Chained call on the guard => temporary.
    if matches!(toks.get(c.args.1 + 1).map(|t| &t.kind), Some(TokKind::Punct(b'.'))) {
        return None;
    }
    // Walk back to the statement boundary.
    let mut s = c.tok;
    while s > 0 {
        match &toks[s - 1].kind {
            TokKind::Punct(b';' | b'{' | b'}') => break,
            _ => s -= 1,
        }
    }
    if !matches!(&toks.get(s).map(|t| &t.kind), Some(TokKind::Ident(k)) if *k == "let") {
        return None;
    }
    let mut i = s + 1;
    if matches!(&toks.get(i).map(|t| &t.kind), Some(TokKind::Ident(k)) if *k == "mut") {
        i += 1;
    }
    match (toks.get(i).map(|t| &t.kind), toks.get(i + 1).map(|t| &t.kind)) {
        (Some(TokKind::Ident(name)), Some(TokKind::Punct(b'='))) => Some(name.clone()),
        _ => None,
    }
}

/// Token range over which the guard acquired at `c` is held.
fn hold_range(
    toks: &[Token],
    delims: &DelimMap,
    c: &CallSite,
    guard: Option<&str>,
) -> (usize, usize) {
    let start = c.tok;
    let Some(guard) = guard else {
        // Temporary guard: held to the end of the statement.
        let end = (c.args.1..toks.len())
            .find(|&i| matches!(toks[i].kind, TokKind::Punct(b';')))
            .unwrap_or(toks.len());
        return (start, end);
    };
    // Let-bound: held to the close of the innermost enclosing block…
    let mut end = toks.len();
    for (o, close) in delims.open.iter().enumerate() {
        if let Some(cl) = close {
            if matches!(toks[o].kind, TokKind::Punct(b'{')) && o < start && start < *cl {
                end = end.min(*cl);
            }
        }
    }
    // …ending early at an explicit `drop(guard)`. The scan is linear:
    // a drop on one branch ends tracking for the whole block (documented
    // completeness tradeoff — it can only under-report).
    for i in start..end.saturating_sub(3) {
        if matches!(&toks[i].kind, TokKind::Ident(s) if s == "drop")
            && matches!(toks[i + 1].kind, TokKind::Punct(b'('))
            && matches!(&toks[i + 2].kind, TokKind::Ident(s) if s == guard)
            && matches!(toks[i + 3].kind, TokKind::Punct(b')'))
        {
            return (start, i);
        }
    }
    (start, end)
}

/// `Some(name)` when the call's argument list is exactly one identifier.
fn single_ident_arg<'a>(toks: &'a [Token], c: &CallSite) -> Option<&'a str> {
    let inner = &toks[c.args.0 + 1..c.args.1.min(toks.len())];
    match inner {
        [Token {
            kind: TokKind::Ident(s),
            ..
        }] => Some(s.as_str()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build;
    use crate::engine::{scope_for, ParsedFile};
    use crate::source::SourceFile;

    fn run(files: &[(&str, &str)]) -> Vec<String> {
        let parsed: Vec<ParsedFile> = files
            .iter()
            .map(|(p, s)| ParsedFile {
                sf: SourceFile::parse(p, s),
                scope: scope_for(p),
            })
            .collect();
        let ws = build(&parsed);
        check(&ws).into_iter().map(|(_, r)| r.message).collect()
    }

    #[test]
    fn nested_opposite_orders_cycle() {
        let msgs = run(&[(
            "crates/a/src/lib.rs",
            "fn ab(s: &S) { let a = lock(&s.alpha); let b = lock(&s.beta); }\n\
             fn ba(s: &S) { let b = lock(&s.beta); let a = lock(&s.alpha); }",
        )]);
        assert!(
            msgs.iter().any(|m| m.contains("acquisition-order cycle")),
            "{msgs:?}"
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let msgs = run(&[(
            "crates/a/src/lib.rs",
            "fn ab(s: &S) { let a = lock(&s.alpha); let b = lock(&s.beta); }\n\
             fn ab2(s: &S) { let a = lock(&s.alpha); let b = lock(&s.beta); use_both(&a, &b); }\n\
             fn use_both(_a: &A, _b: &B) {}",
        )]);
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn cycle_through_cross_file_call_graph() {
        let msgs = run(&[
            (
                "crates/a/src/one.rs",
                "pub fn hold_m1_then_remote(s: &S) { let g = lock(&s.m_one); remote_lock_m2(s); }",
            ),
            (
                "crates/b/src/two.rs",
                "pub fn remote_lock_m2(s: &S) { let g = lock(&s.m_two); }\n\
                 pub fn hold_m2_then_back(s: &S) { let g = lock(&s.m_two); back_lock_m1(s); }",
            ),
            (
                "crates/a/src/one_more.rs",
                "pub fn back_lock_m1(s: &S) { let g = lock(&s.m_one); }",
            ),
        ]);
        assert!(
            msgs.iter().any(|m| m.contains("acquisition-order cycle")),
            "{msgs:?}"
        );
    }

    #[test]
    fn io_under_lock_direct_and_transitive() {
        let msgs = run(&[(
            "crates/a/src/lib.rs",
            "fn direct(s: &S) { let g = lock(&s.m); g.file.sync_data(); }\n\
             fn indirect(s: &S) { let g = lock(&s.m); persist(s); }\n\
             fn persist(s: &S) { s.file.write_all(b\"x\"); }",
        )]);
        assert_eq!(
            msgs.iter().filter(|m| m.contains("blocking I/O")).count(),
            2,
            "{msgs:?}"
        );
    }

    #[test]
    fn condvar_wait_on_own_guard_is_exempt_foreign_wait_is_not() {
        let msgs = run(&[(
            "crates/a/src/lib.rs",
            "fn ok(s: &S) { let mut q = lock(&s.queue); q = s.ready.wait(q); }\n\
             fn bad(s: &S) { let g = lock(&s.other); let mut q = lock(&s.queue); q = s.ready.wait(q); }",
        )]);
        // `ok` is clean; in `bad` the wait is exempt for `queue` but a
        // hazard for the still-held `other`.
        assert_eq!(
            msgs.iter().filter(|m| m.contains("condvar")).count(),
            1,
            "{msgs:?}"
        );
        assert!(msgs.iter().any(|m| m.contains("::other")), "{msgs:?}");
    }

    #[test]
    fn drop_and_statement_temporaries_end_the_hold() {
        let msgs = run(&[(
            "crates/a/src/lib.rs",
            "fn dropped(s: &S) { let g = lock(&s.m); drop(g); s.file.sync_data(); }\n\
             fn temp(s: &S) { let job = lock(&s.queue).pop_front(); s.file.sync_data(); }",
        )]);
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn self_reacquisition_is_a_deadlock() {
        let msgs = run(&[(
            "crates/a/src/lib.rs",
            "fn outer(s: &S) { let g = lock(&s.m); inner(s); }\n\
             fn inner(s: &S) { let g = lock(&s.m); }",
        )]);
        // Same file, same argument ident => same lock identity.
        assert!(
            msgs.iter().any(|m| m.contains("re-acquired while already held")),
            "{msgs:?}"
        );
    }
}

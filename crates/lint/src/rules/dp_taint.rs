//! `dp-taint`: function-level taint tracking for raw (pre-DP) gradient
//! and embedding data, over the workspace call graph.
//!
//! *Sources* are calls that resolve to `embed` / `embed_graph` /
//! `backward` / `sample_gradient` definitions inside the DP training
//! stack (tensor, gnn, dp, core). *Sanitizers* are functions that both
//! clip and draw accountant-charged noise — the only transformation the
//! paper's privacy proof admits. A function is *tainted* if it calls a
//! source or a tainted function without being a sanitizer; tainted
//! functions that are a pub API outside the stack, or that serialize /
//! write bytes, are flagged. Flagged sinks stop further propagation so
//! one leak reports once, at the boundary.

use crate::callgraph::Workspace;
use crate::engine::RawFinding;
use crate::lexer::TokKind;
use crate::rules::noise;
use std::collections::BTreeSet;

/// Raw-data producers: calling one of these (when it resolves into the
/// DP stack) makes the caller a carrier of per-example information.
const SOURCE_FNS: [&str; 4] = ["embed", "embed_graph", "backward", "sample_gradient"];

/// Crates where raw gradients/embeddings legitimately live while being
/// privatized. `pub` functions *inside* the stack are not sinks — the
/// boundary is the stack's edge.
const STACK: [&str; 4] = ["tensor", "gnn", "dp", "core"];

/// Calls that turn a value into bytes that leave the process.
const SERIALIZE_FNS: [&str; 9] = [
    "to_json",
    "to_json_string",
    "pack",
    "pack_parts",
    "write_all",
    "write_all_faulty",
    "atomic_write_durable",
    "atomic_write_durable_with_plan",
    "write_response",
];

pub fn check(ws: &Workspace<'_>) -> Vec<(usize, RawFinding)> {
    let n = ws.fns.len();

    // A sanitizer clips, draws noise, and either references the
    // accountant or carries an audited allow(unaccounted-noise) — the
    // same standard the unaccounted-noise rule enforces, so the two
    // rules cannot disagree about what "charged" means.
    let sanitizer: Vec<bool> = (0..n).map(|i| is_sanitizer(ws, i)).collect();

    let source_call: Vec<Option<String>> = ws
        .fns
        .iter()
        .enumerate()
        .map(|(fid, f)| {
            f.calls.iter().enumerate().find_map(|(ci, c)| {
                if !SOURCE_FNS.contains(&c.name.as_str()) {
                    return None;
                }
                let hits_stack = ws.targets[fid][ci]
                    .iter()
                    .any(|&t| STACK.contains(&ws.fns[t].krate.as_str()));
                hits_stack.then(|| c.name.clone())
            })
        })
        .collect();

    let sink: Vec<Option<String>> = ws
        .fns
        .iter()
        .map(|f| {
            if f.is_pub
                && !STACK.contains(&f.krate.as_str())
                && ws.files[f.file].scope.lib_code
            {
                return Some(format!(
                    "is a pub API of crate `{}`, outside the DP training stack",
                    f.krate
                ));
            }
            f.calls
                .iter()
                .find(|c| SERIALIZE_FNS.contains(&c.name.as_str()))
                .map(|c| format!("serializes via `{}` on line {}", c.name, c.line))
        })
        .collect();

    // Taint fixpoint with one-hop provenance. Source functions are not
    // themselves flagged — taint enters at the *call*, so `embed` stays
    // clean while its un-sanitized callers carry the mark.
    let mut taint: Vec<Option<String>> = (0..n)
        .map(|i| {
            if ws.fns[i].in_test || sanitizer[i] {
                None
            } else {
                source_call[i]
                    .as_ref()
                    .map(|s| format!("calls source `{s}`"))
            }
        })
        .collect();
    loop {
        let mut changed = false;
        for fid in 0..n {
            if taint[fid].is_some() || ws.fns[fid].in_test || sanitizer[fid] {
                continue;
            }
            let hit = ws.fns[fid].calls.iter().enumerate().find_map(|(ci, c)| {
                ws.targets[fid][ci]
                    .iter()
                    .any(|&t| taint[t].is_some() && sink[t].is_none() && !ws.fns[t].in_test)
                    .then(|| c.name.clone())
            });
            if let Some(name) = hit {
                taint[fid] = Some(format!("calls tainted `{name}`"));
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut out = Vec::new();
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    for fid in 0..n {
        let f = &ws.fns[fid];
        if f.in_test || !seen.insert(fid) {
            continue;
        }
        let (Some(why), Some(boundary)) = (&taint[fid], &sink[fid]) else {
            continue;
        };
        out.push((
            f.file,
            RawFinding {
                line: f.sig_line,
                message: format!(
                    "fn `{}` handles raw gradient/embedding data ({why}) and {boundary}; \
                     route it through clip + accountant-charged noise first, or annotate \
                     allow(dp-taint, reason = \"…\") if the exposure is intentional",
                    f.name
                ),
                suppress_lines: vec![f.sig_line],
                severity: None,
            },
        ));
    }
    out
}

fn is_sanitizer(ws: &Workspace<'_>, fid: usize) -> bool {
    let f = &ws.fns[fid];
    let clips = f
        .calls
        .iter()
        .any(|c| c.name == "clip" || c.name.starts_with("clip_"));
    let noisy = f.calls.iter().any(|c| noise::is_noise_fn(&c.name));
    if !clips || !noisy {
        return false;
    }
    let sf = &ws.files[f.file].sf;
    let toks = &sf.tokens;
    let accounted = toks[f.sig_start..f.body.1.min(toks.len())]
        .iter()
        .any(|t| matches!(&t.kind, TokKind::Ident(s) if noise::is_accountant_ref(s)));
    if accounted {
        return true;
    }
    // An audited allow(unaccounted-noise) inside the fn counts too: the
    // annotation names where the budget is charged instead.
    let end_line = toks
        .get(f.body.1)
        .map(|t| t.line)
        .unwrap_or(usize::MAX);
    sf.allows
        .iter()
        .any(|a| a.rule == "unaccounted-noise" && (f.sig_line..=end_line).contains(&a.covered_line))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build;
    use crate::engine::{scope_for, ParsedFile};
    use crate::source::SourceFile;

    fn run(files: &[(&str, &str)]) -> Vec<String> {
        let parsed: Vec<ParsedFile> = files
            .iter()
            .map(|(p, s)| ParsedFile {
                sf: SourceFile::parse(p, s),
                scope: scope_for(p),
            })
            .collect();
        let ws = build(&parsed);
        check(&ws).into_iter().map(|(_, r)| r.message).collect()
    }

    const GNN: (&str, &str) = (
        "crates/gnn/src/model.rs",
        "impl Model { pub fn embed(&self, x: &M) -> M { x.clone() } }",
    );

    #[test]
    fn tainted_pub_api_outside_stack_is_flagged() {
        let msgs = run(&[
            GNN,
            (
                "crates/attack/src/lib.rs",
                "pub fn shadow_scores(m: &Model, x: &M) -> M { m.embed(x) }",
            ),
        ]);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("shadow_scores"), "{msgs:?}");
    }

    #[test]
    fn source_itself_and_in_stack_callers_stay_clean() {
        let msgs = run(&[
            GNN,
            (
                "crates/core/src/trainer.rs",
                "fn sample_gradient(m: &Model, x: &M) -> M { m.embed(x) }",
            ),
        ]);
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn sanitizer_stops_propagation() {
        let msgs = run(&[
            GNN,
            (
                "crates/core/src/trainer.rs",
                "fn step(m: &Model, x: &M, a: &mut Accountant, r: &mut R) -> Vec<f64> {\n\
                 let g = m.embed(x);\n\
                 let g = clip_l2(&g, 1.0);\n\
                 a.charge(1);\n\
                 gaussian_noise_vec(3, 1.0, 1.0, r)\n\
                 }",
            ),
            (
                "crates/serve/src/server.rs",
                "pub fn respond(m: &Model, x: &M, a: &mut Accountant, r: &mut R) -> Vec<f64> { step(m, x, a, r) }",
            ),
        ]);
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn serialization_of_tainted_data_is_flagged_once_at_the_sink() {
        let msgs = run(&[
            GNN,
            (
                "crates/serve/src/dump.rs",
                "fn leak(m: &Model, x: &M, w: &mut W) { let e = m.embed(x); w.write_all(&e.bytes()); }\n\
                 fn caller(m: &Model, x: &M, w: &mut W) { leak(m, x, w); }",
            ),
        ]);
        // `leak` is the sink; `caller` does not inherit taint through a
        // flagged sink, so exactly one finding.
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("leak"), "{msgs:?}");
    }

    #[test]
    fn unresolved_method_named_embed_is_not_a_source() {
        let msgs = run(&[(
            "crates/serve/src/other.rs",
            "pub fn widget(w: &Widget) -> M { w.embed() }",
        )]);
        assert!(msgs.is_empty(), "{msgs:?}");
    }
}

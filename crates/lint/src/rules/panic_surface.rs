//! `panic-surface`: library code stays `Result`-based; every residual
//! panic-capable site carries an inline `allow(panic, ...)` audit. Also
//! hosts the advisory `panic-indexing` heuristic.
//!
//! This subsumes the retired grep-based `scripts/panic_gate.sh`: being
//! token-aware, it does not count doc-comment examples or string
//! literals, does not confuse a method *named* `expect` with
//! `Result::expect`, and it additionally counts `unreachable!` /
//! `todo!` / `unimplemented!`, which the grep never saw.

use crate::engine::{RawFinding, Scope, Severity};
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// Macro heads that abort instead of returning an error.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

pub fn check(f: &SourceFile, scope: &Scope) -> Vec<RawFinding> {
    if !scope.lib_code {
        return Vec::new();
    }
    let toks = &f.tokens;
    let mut out = Vec::new();
    let mut flag = |line: usize, what: &str| {
        out.push(RawFinding {
            line,
            message: format!(
                "panic-capable `{what}` in library code; return \
                 privim_rt::PrivimResult, or audit a provably infallible \
                 site with allow(panic, reason = \"...\")"
            ),
            suppress_lines: vec![line],
            severity: None,
        });
    };
    for i in 0..toks.len() {
        let TokKind::Ident(name) = &toks[i].kind else {
            continue;
        };
        if f.in_test_region(toks[i].line) {
            continue;
        }
        let prev_dot = i > 0 && matches!(&toks[i - 1].kind, TokKind::Punct(b'.'));
        let next = toks.get(i + 1).map(|t| &t.kind);
        match name.as_str() {
            // `.unwrap()` — exactly, so `.unwrap_or(...)` stays legal.
            "unwrap"
                if prev_dot
                    && matches!(next, Some(TokKind::Punct(b'(')))
                    && matches!(toks.get(i + 2).map(|t| &t.kind), Some(TokKind::Punct(b')'))) =>
            {
                flag(toks[i].line, ".unwrap()");
            }
            // `.expect(` as a method call — a standalone fn named expect
            // (no leading dot) is someone's parser, not Result::expect.
            "expect" if prev_dot && matches!(next, Some(TokKind::Punct(b'('))) => {
                flag(toks[i].line, ".expect(");
            }
            m if PANIC_MACROS.contains(&m)
                && matches!(next, Some(TokKind::Punct(b'!'))) =>
            {
                flag(toks[i].line, &format!("{m}!("));
            }
            _ => {}
        }
    }
    out
}

/// Rust keywords that can legitimately precede a `[` that is *not* an
/// indexing expression (array/slice types and literals, attributes).
const NON_INDEX_PRECEDERS: [&str; 16] = [
    "let", "mut", "in", "impl", "dyn", "ref", "move", "return", "break", "as", "where", "const",
    "static", "pub", "crate", "else",
];

/// Advisory `panic-indexing`: list indexing expressions in library code.
pub fn check_indexing(f: &SourceFile, scope: &Scope) -> Vec<RawFinding> {
    if !scope.lib_code {
        return Vec::new();
    }
    let toks = &f.tokens;
    let mut out = Vec::new();
    for i in 1..toks.len() {
        if !matches!(toks[i].kind, TokKind::Punct(b'[')) || f.in_test_region(toks[i].line) {
            continue;
        }
        let indexes = match &toks[i - 1].kind {
            TokKind::Ident(n) => !NON_INDEX_PRECEDERS.contains(&n.as_str()),
            TokKind::Punct(b')') | TokKind::Punct(b']') => true,
            _ => false,
        };
        if indexes {
            out.push(RawFinding {
                line: toks[i].line,
                message: "indexing expression (panics when out of bounds) — \
                          verify the index is provably in range or use `.get`"
                    .to_string(),
                suppress_lines: vec![toks[i].line],
                severity: Some(Severity::Warning),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::scope_for;

    fn run(src: &str) -> Vec<RawFinding> {
        let f = SourceFile::parse("crates/rt/src/x.rs", src);
        check(&f, &scope_for("crates/rt/src/x.rs"))
    }

    #[test]
    fn panic_sites_counted_token_aware() {
        let src = r#"
fn f(v: Vec<u32>) -> u32 {
    // an .unwrap() in a comment does not count
    let s = "panic!( in a string does not count";
    let a = v.first().unwrap();
    let b = v.last().expect("nonempty");
    if v.is_empty() { unreachable!("checked") }
    *a + *b
}
"#;
        let got = run(src);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].line, 5);
    }

    #[test]
    fn named_expect_method_and_unwrap_or_pass() {
        let src = "fn g(p: &mut Parser) -> R { p.check(); expect(b'[');\n\
                   let x = opt.unwrap_or(3); let y = opt.unwrap_or_default(); x + y }\n\
                   impl P { fn expect(&mut self, b: u8) -> R { self.go(b) } }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_modules_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn t() { None::<u32>.unwrap(); }\n}";
        assert!(run(src).is_empty());
    }

    #[test]
    fn indexing_advisory() {
        let f = SourceFile::parse(
            "crates/rt/src/x.rs",
            "fn f(xs: &[u32], i: usize) -> u32 { let v: [u32; 2] = [0, 1]; xs[i] + v[0] }",
        );
        let got = check_indexing(&f, &scope_for("crates/rt/src/x.rs"));
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|g| g.severity == Some(Severity::Warning)));
    }
}

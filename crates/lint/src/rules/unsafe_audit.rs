//! `unsafe-audit`: every `unsafe` must carry an audited justification,
//! and CPU intrinsics must sit behind runtime feature detection with a
//! scalar fallback. The annotation id is `allow(unsafe, reason = "…")` —
//! the reason *is* the safety argument.

use crate::callgraph::Workspace;
use crate::engine::RawFinding;
use crate::lexer::TokKind;
use crate::parse::CallSite;
use crate::source::{find_fns, innermost_fn};

/// Runtime CPU-capability checks that make an intrinsic call sound.
const DETECT_IDENTS: [&str; 2] = ["is_x86_feature_detected", "is_aarch64_feature_detected"];

/// Suffixes naming a SIMD variant; stripping one yields the expected
/// scalar sibling's name (`dot_avx2` → `dot` or `dot_scalar`).
const SIMD_SUFFIXES: [&str; 9] = [
    "_avx512", "_avx2", "_avx", "_sse42", "_sse41", "_sse2", "_sse", "_neon", "_simd",
];

pub fn check(ws: &Workspace<'_>) -> Vec<(usize, RawFinding)> {
    let mut out = Vec::new();

    // (1) Every `unsafe` keyword outside test code needs an audited
    // annotation on its line or its enclosing fn's signature line.
    for (idx, pf) in ws.files.iter().enumerate() {
        let toks = &pf.sf.tokens;
        let fns = find_fns(toks);
        for (i, t) in toks.iter().enumerate() {
            if !matches!(&t.kind, TokKind::Ident(s) if s == "unsafe") {
                continue;
            }
            if pf.sf.in_test_region(t.line) {
                continue;
            }
            let what = match toks.get(i + 1).map(|n| &n.kind) {
                Some(TokKind::Punct(b'{')) => "unsafe block",
                Some(TokKind::Ident(k)) if k == "fn" => "unsafe fn",
                Some(TokKind::Ident(k)) if k == "impl" => "unsafe impl",
                _ => "unsafe construct",
            };
            let sig_line = innermost_fn(&fns, i).map(|s| s.sig_line).unwrap_or(t.line);
            out.push((
                idx,
                RawFinding {
                    line: t.line,
                    message: format!(
                        "{what} without an audited safety argument; annotate \
                         allow(unsafe, reason = \"why every invariant the unsafe \
                         contract needs actually holds here\")"
                    ),
                    suppress_lines: vec![t.line, sig_line],
                    severity: None,
                },
            ));
        }
    }

    // (2) Intrinsics: a fn that calls `core::arch` intrinsics must either
    // guard them with runtime feature detection in its own body, or be a
    // `#[target_feature]` fn — in which case it needs a scalar sibling
    // and every workspace caller must perform the runtime check.
    for (fid, f) in ws.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let intrinsics: Vec<&CallSite> =
            f.calls.iter().filter(|c| is_intrinsic(c)).collect();
        if intrinsics.is_empty() {
            continue;
        }
        if !f.has_target_feature {
            if !span_has_detect(ws, fid) {
                let first = intrinsics[0];
                out.push((
                    f.file,
                    RawFinding {
                        line: first.line,
                        message: format!(
                            "intrinsic `{}` called without a runtime feature check in \
                             fn `{}`; guard with is_x86_feature_detected!/\
                             is_aarch64_feature_detected! or move it into a \
                             #[target_feature] fn with a scalar fallback",
                            first.name, f.name
                        ),
                        suppress_lines: vec![first.line, f.sig_line],
                        severity: None,
                    },
                ));
            }
            continue;
        }
        // #[target_feature] fn: demand a scalar sibling…
        if !scalar_sibling_exists(ws, &f.name) {
            out.push((
                f.file,
                RawFinding {
                    line: f.sig_line,
                    message: format!(
                        "#[target_feature] fn `{}` has no scalar fallback sibling \
                         (`{}` or a suffix-stripped base); older CPUs must have a \
                         correct non-SIMD path",
                        f.name,
                        expected_scalar_names(&f.name).join("` / `")
                    ),
                    suppress_lines: vec![f.sig_line],
                    severity: None,
                },
            ));
        }
        // …and a feature-detection guard in every caller.
        for &caller in &ws.callers[fid] {
            if span_has_detect(ws, caller) {
                continue;
            }
            let cf = &ws.fns[caller];
            let line = cf
                .calls
                .iter()
                .enumerate()
                .find(|(ci, _)| ws.targets[caller][*ci].contains(&fid))
                .map(|(_, c)| c.line)
                .unwrap_or(cf.sig_line);
            out.push((
                cf.file,
                RawFinding {
                    line,
                    message: format!(
                        "fn `{}` calls #[target_feature] fn `{}` without runtime \
                         feature detection; calling it on a CPU lacking the feature \
                         is undefined behavior",
                        cf.name, f.name
                    ),
                    suppress_lines: vec![line, cf.sig_line],
                    severity: None,
                },
            ));
        }
    }
    out
}

/// A call that is (syntactically) a `core::arch` intrinsic. The
/// `_mm`-prefix check catches glob-imported x86 intrinsics; ARM NEON
/// intrinsics are only recognized when path-qualified — a documented
/// completeness gap (DESIGN.md §9).
fn is_intrinsic(c: &CallSite) -> bool {
    c.name.starts_with("_mm")
        || c.qualifier
            .iter()
            .any(|q| q == "arch" || q == "x86_64" || q == "x86" || q == "aarch64")
}

fn span_has_detect(ws: &Workspace<'_>, fid: usize) -> bool {
    let f = &ws.fns[fid];
    let toks = &ws.files[f.file].sf.tokens;
    toks[f.sig_start..f.body.1.min(toks.len())]
        .iter()
        .any(|t| matches!(&t.kind, TokKind::Ident(s) if DETECT_IDENTS.contains(&s.as_str())))
}

fn expected_scalar_names(name: &str) -> Vec<String> {
    for suf in SIMD_SUFFIXES {
        if let Some(base) = name.strip_suffix(suf) {
            if !base.is_empty() {
                return vec![base.to_string(), format!("{base}_scalar")];
            }
        }
    }
    vec![format!("{name}_scalar")]
}

fn scalar_sibling_exists(ws: &Workspace<'_>, name: &str) -> bool {
    let wanted = expected_scalar_names(name);
    ws.fns
        .iter()
        .any(|f| !f.in_test && !f.has_target_feature && wanted.iter().any(|w| *w == f.name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build;
    use crate::engine::{scope_for, ParsedFile};
    use crate::source::SourceFile;

    fn run(files: &[(&str, &str)]) -> Vec<String> {
        let parsed: Vec<ParsedFile> = files
            .iter()
            .map(|(p, s)| ParsedFile {
                sf: SourceFile::parse(p, s),
                scope: scope_for(p),
            })
            .collect();
        let ws = build(&parsed);
        check(&ws).into_iter().map(|(_, r)| r.message).collect()
    }

    #[test]
    fn bare_unsafe_block_and_fn_are_flagged() {
        let msgs = run(&[(
            "crates/rt/src/x.rs",
            "fn f() { unsafe { core::ptr::read(p) }; }\nunsafe fn g() {}",
        )]);
        assert_eq!(msgs.len(), 2, "{msgs:?}");
        assert!(msgs[0].contains("unsafe block"), "{msgs:?}");
        assert!(msgs[1].contains("unsafe fn"), "{msgs:?}");
    }

    #[test]
    fn test_region_unsafe_is_exempt() {
        let msgs = run(&[(
            "crates/rt/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    fn f() { unsafe { core::ptr::read(p) }; }\n}",
        )]);
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn unguarded_intrinsic_vs_runtime_detected() {
        let bad = run(&[(
            "crates/tensor/src/simd.rs",
            "fn dot(a: &[f32]) -> f32 { _mm256_setzero_ps(); 0.0 }",
        )]);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("runtime feature check"), "{bad:?}");
        let good = run(&[(
            "crates/tensor/src/simd.rs",
            "fn dot(a: &[f32]) -> f32 { if is_x86_feature_detected!(\"avx2\") { _mm256_setzero_ps(); } 0.0 }",
        )]);
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn target_feature_fn_needs_scalar_sibling_and_guarded_callers() {
        let src = "\
#[target_feature(enable = \"avx2\")]\n\
unsafe fn dot_avx2(a: &[f32]) -> f32 { _mm256_setzero_ps(); 0.0 }\n\
// privim-lint: allow(unsafe, reason = \"fixture\")\n\
fn unguarded(a: &[f32]) -> f32 { dot_avx2(a) }\n";
        let msgs = run(&[("crates/tensor/src/simd.rs", src)]);
        assert!(
            msgs.iter().any(|m| m.contains("no scalar fallback sibling")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("without runtime feature detection")),
            "{msgs:?}"
        );

        let fixed = "\
#[target_feature(enable = \"avx2\")]\n\
unsafe fn dot_avx2(a: &[f32]) -> f32 { _mm256_setzero_ps(); 0.0 }\n\
fn dot_scalar(a: &[f32]) -> f32 { 0.0 }\n\
fn guarded(a: &[f32]) -> f32 {\n\
    if is_x86_feature_detected!(\"avx2\") { unsafe { dot_avx2(a) } } else { dot_scalar(a) }\n\
}\n";
        let msgs = run(&[("crates/tensor/src/simd.rs", fixed)]);
        // Only the two bare `unsafe` findings remain; the intrinsic
        // discipline itself is satisfied.
        assert!(
            msgs.iter().all(|m| m.contains("unsafe")),
            "{msgs:?}"
        );
        assert!(
            !msgs.iter().any(|m| m.contains("scalar fallback")),
            "{msgs:?}"
        );
    }
}

//! `float-eq`: deny `==` / `!=` where either operand is a float literal.
//!
//! Type-blind but token-precise: the heuristic catches the overwhelmingly
//! common shape (`x == 0.0`, `1.5 != y`, `x == -1.0`) without a type
//! checker. Ordering comparisons (`<=`, `>=`) are fine — only exact
//! (in)equality is fragile under reordered float summation.

use crate::engine::{RawFinding, Scope};
use crate::lexer::{TokKind, Token};
use crate::source::SourceFile;

fn is_float(t: Option<&Token>) -> bool {
    matches!(t.map(|t| &t.kind), Some(TokKind::Num { is_float: true }))
}

pub fn check(f: &SourceFile, scope: &Scope) -> Vec<RawFinding> {
    if !scope.lib_code {
        return Vec::new();
    }
    let toks = &f.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len().saturating_sub(1) {
        let (a, b) = (&toks[i], &toks[i + 1]);
        // `==` or `!=` as two adjacent punct bytes.
        let head = match (&a.kind, &b.kind) {
            (TokKind::Punct(h @ (b'=' | b'!')), TokKind::Punct(b'=')) if b.offset == a.offset + 1 => *h,
            _ => continue,
        };
        // Exclude the tail of `<=`, `>=`, `=>`, and chained `=` noise.
        if matches!(
            toks.get(i.wrapping_sub(1)).filter(|_| i > 0).map(|t| &t.kind),
            Some(TokKind::Punct(b'<' | b'>' | b'=' | b'!'))
        ) || matches!(toks.get(i + 2).map(|t| &t.kind), Some(TokKind::Punct(b'=' | b'>')))
        {
            continue;
        }
        if f.in_test_region(a.line) {
            continue;
        }
        let lhs_float = is_float(if i > 0 { toks.get(i - 1) } else { None });
        // Allow one leading unary minus on the right-hand side.
        let rhs_float = is_float(toks.get(i + 2))
            || (matches!(toks.get(i + 2).map(|t| &t.kind), Some(TokKind::Punct(b'-')))
                && is_float(toks.get(i + 3)));
        if lhs_float || rhs_float {
            let op = if head == b'=' { "==" } else { "!=" };
            out.push(RawFinding {
                line: a.line,
                message: format!(
                    "exact float `{op}` against a literal; use an epsilon or \
                     bit-pattern (`to_bits`) check, or annotate an intentional \
                     IEEE-exact sentinel with allow(float-eq, ...)"
                ),
                suppress_lines: vec![a.line],
                severity: None,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::scope_for;

    fn run(src: &str) -> usize {
        let f = SourceFile::parse("crates/tensor/src/x.rs", src);
        check(&f, &scope_for("crates/tensor/src/x.rs")).len()
    }

    #[test]
    fn literal_equality_flagged() {
        assert_eq!(run("fn f(x: f64) -> bool { x == 0.0 }"), 1);
        assert_eq!(run("fn f(x: f64) -> bool { 1.5 != x }"), 1);
        assert_eq!(run("fn f(x: f64) -> bool { x == -2.0e3 }"), 1);
    }

    #[test]
    fn orderings_ints_and_idents_pass() {
        assert_eq!(run("fn f(x: f64) -> bool { x >= 0.0 && x <= 1.0 }"), 0);
        assert_eq!(run("fn f(x: usize) -> bool { x == 0 }"), 0);
        assert_eq!(run("fn f(x: f64, y: f64) -> bool { x == y }"), 0); // type-blind
        assert_eq!(run("fn f() -> u32 { match 1 { _ => 0 } }"), 0); // `=>`
    }
}

//! Per-rule fixture tests: every rule must flag its dirty fixture and
//! accept its clean counterpart. Fixtures live in `tests/fixtures/` and
//! are excluded from workspace walks (the dirty ones violate the rules
//! on purpose).

use privim_lint::engine::run_sources;

fn fixture(kind: &str, name: &str) -> String {
    let path = format!(
        "{}/tests/fixtures/{kind}/{name}",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Lint one fixture as if it lived at `crates/core/src/fixture.rs` — a
/// result-affecting library path where every Rust rule applies.
fn lint_rs(kind: &str, name: &str) -> privim_lint::engine::Report {
    let rs = vec![("crates/core/src/fixture.rs".to_string(), fixture(kind, name))];
    run_sources(&rs, &[], None)
}

fn errors_of(report: &privim_lint::engine::Report, rule: &str) -> usize {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule && f.severity == privim_lint::engine::Severity::Error)
        .count()
}

fn assert_pair(name: &str, rule: &str) {
    let dirty = lint_rs("dirty", name);
    assert!(
        errors_of(&dirty, rule) >= 1,
        "dirty/{name} should trip {rule}: {:?}",
        dirty.findings
    );
    let clean = lint_rs("clean", name);
    assert_eq!(
        clean.errors(),
        0,
        "clean/{name} should pass every rule: {:?}",
        clean.findings
    );
    assert_eq!(
        clean.warnings(),
        0,
        "clean/{name} should carry no dead annotations: {:?}",
        clean.findings
    );
}

#[test]
fn unaccounted_noise_pair() {
    assert_pair("unaccounted_noise.rs", "unaccounted-noise");
}

#[test]
fn nondeterministic_collection_pair() {
    assert_pair("nondeterministic_collection.rs", "nondeterministic-collection");
}

#[test]
fn wall_clock_pair() {
    assert_pair("wall_clock.rs", "wall-clock");
}

#[test]
fn float_eq_pair() {
    assert_pair("float_eq.rs", "float-eq");
}

#[test]
fn panic_surface_pair() {
    assert_pair("panic_surface.rs", "panic-surface");
}

#[test]
fn bad_annotation_pair() {
    assert_pair("bad_annotation.rs", "bad-annotation");
}

#[test]
fn lock_order_pair() {
    assert_pair("lock_order.rs", "lock-order");
}

#[test]
fn dp_taint_pair() {
    assert_pair("dp_taint.rs", "dp-taint");
}

#[test]
fn unsafe_audit_pair() {
    assert_pair("unsafe_audit.rs", "unsafe-audit");
}

#[test]
fn dirty_lock_fixture_reports_cycle_and_io() {
    let dirty = lint_rs("dirty", "lock_order.rs");
    let msgs: Vec<&str> = dirty
        .findings
        .iter()
        .filter(|f| f.rule == "lock-order")
        .map(|f| f.message.as_str())
        .collect();
    assert!(
        msgs.iter().any(|m| m.contains("acquisition-order cycle")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("blocking I/O")),
        "{msgs:?}"
    );
}

#[test]
fn dirty_unsafe_fixture_reports_both_shapes() {
    let dirty = lint_rs("dirty", "unsafe_audit.rs");
    let msgs: Vec<&str> = dirty
        .findings
        .iter()
        .filter(|f| f.rule == "unsafe-audit")
        .map(|f| f.message.as_str())
        .collect();
    assert!(
        msgs.iter().any(|m| m.contains("unsafe block")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("runtime feature check")),
        "{msgs:?}"
    );
}

#[test]
fn dirty_panic_fixture_counts_every_site() {
    // unwrap + expect + unreachable! — the token-aware scan must see all
    // three shapes, not just the grep-able ones.
    let dirty = lint_rs("dirty", "panic_surface.rs");
    assert_eq!(errors_of(&dirty, "panic-surface"), 3, "{:?}", dirty.findings);
}

#[test]
fn dependency_policy_pair() {
    let dirty = vec![(
        "crates/fixture/Cargo.toml".to_string(),
        fixture("dirty", "Cargo.toml"),
    )];
    let report = run_sources(&[], &dirty, None);
    assert_eq!(
        errors_of(&report, "dependency-policy"),
        5,
        "dirty Cargo.toml: bare version, inline version, git, subtable \
         version, dev-dep version: {:?}",
        report.findings
    );

    let clean = vec![(
        "crates/fixture/Cargo.toml".to_string(),
        fixture("clean", "Cargo.toml"),
    )];
    let report = run_sources(&[], &clean, None);
    assert_eq!(report.errors(), 0, "{:?}", report.findings);
}

#[test]
fn rule_filter_isolates_one_rule() {
    // The dirty collection fixture also has no other violations, so a
    // --rule filter on a different rule must report nothing.
    let rs = vec![(
        "crates/core/src/fixture.rs".to_string(),
        fixture("dirty", "nondeterministic_collection.rs"),
    )];
    let filtered = run_sources(&rs, &[], Some("wall-clock"));
    assert_eq!(filtered.errors(), 0, "{:?}", filtered.findings);
    let matching = run_sources(&rs, &[], Some("nondeterministic-collection"));
    assert!(matching.errors() >= 1);
}

#[test]
fn fixtures_outside_lib_scope_are_exempt() {
    // The same dirty source under src/bin/ is out of scope for the
    // library-code rules (experiment binaries may hash and time freely).
    let rs = vec![(
        "crates/bench/src/bin/fixture.rs".to_string(),
        fixture("dirty", "wall_clock.rs"),
    )];
    let report = run_sources(&rs, &[], None);
    assert_eq!(report.errors(), 0, "{:?}", report.findings);
}

//! Dirty fixture: annotation hygiene violations — a missing reason, an
//! unknown rule id, and a dead allow that suppresses nothing.

// privim-lint: allow(panic)
pub fn missing_reason(v: &[u32]) -> u32 {
    v[0]
}

// privim-lint: allow(definitely-not-a-rule, reason = "typo in the rule id")
pub fn unknown_rule() -> u32 {
    7
}

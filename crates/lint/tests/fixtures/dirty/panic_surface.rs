//! Dirty fixture: unaudited panic paths in library code.

pub fn head(v: &[u32]) -> u32 {
    v.first().copied().unwrap()
}

pub fn pick(v: &[u32], i: usize) -> u32 {
    *v.get(i).expect("index in bounds")
}

pub fn dispatch(kind: u8) -> u32 {
    match kind {
        0 => 10,
        1 => 20,
        _ => unreachable!("callers only pass 0 or 1"),
    }
}

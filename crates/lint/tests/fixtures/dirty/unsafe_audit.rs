//! Dirty: un-audited `unsafe`, plus an AVX2 intrinsic with neither a
//! runtime feature check nor a scalar fallback.

fn read_raw(p: *const u8) -> u8 {
    unsafe { core::ptr::read(p) }
}

fn dot(a: &[f32]) -> f32 {
    let acc = _mm256_setzero_ps();
    horizontal_sum(acc, a)
}

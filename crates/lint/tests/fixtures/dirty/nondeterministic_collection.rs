//! Dirty fixture: hash-randomised containers in a result-affecting crate.

use std::collections::{HashMap, HashSet};

pub fn count_degrees(edges: &[(u32, u32)]) -> HashMap<u32, usize> {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut deg = HashMap::new();
    for &(u, v) in edges {
        seen.insert(u);
        seen.insert(v);
        *deg.entry(u).or_insert(0) += 1;
    }
    deg
}

//! Dirty: opposite acquisition orders across two fns (cycle) plus
//! durable file I/O performed while a lock is held.

fn alpha_then_beta(s: &S) {
    let a = lock(&s.alpha);
    let b = lock(&s.beta);
    use_both(&a, &b);
}

fn beta_then_alpha(s: &S) {
    let b = lock(&s.beta);
    let a = lock(&s.alpha);
    use_both(&a, &b);
}

fn persist(s: &S) -> PrivimResult<()> {
    let g = lock(&s.state);
    s.file.write_all(&g.bytes())?;
    Ok(())
}

//! Dirty: a raw embedding flows from a DP-stack source to a byte sink
//! with no clip/noise/accounting in between.

pub fn embed(x: &Matrix) -> Matrix {
    x.transform()
}

fn leak(x: &Matrix, w: &mut Writer) -> PrivimResult<()> {
    let e = embed(x);
    w.write_all(&e.bytes())?;
    Ok(())
}

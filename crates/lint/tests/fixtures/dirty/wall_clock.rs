//! Dirty fixture: reads the wall clock outside the sanctioned bench file.

use std::time::Instant;

pub fn time_seeded_choice(candidates: &[u32]) -> u32 {
    let t = Instant::now();
    candidates[t.elapsed().subsec_nanos() as usize % candidates.len()]
}

//! Dirty fixture: draws DP noise without ever touching the accountant.

pub fn perturb_gradient(grad: &mut [f64], sigma: f64, rng: &mut Rng) {
    let noise = gaussian_noise_vec(grad.len(), sigma, 1.0, rng);
    for (g, n) in grad.iter_mut().zip(noise) {
        *g += n;
    }
}

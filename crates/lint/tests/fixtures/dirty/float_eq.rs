//! Dirty fixture: exact float equality against literals.

pub fn converged(prev: f64, cur: f64) -> bool {
    prev - cur == 0.0
}

pub fn is_not_unit(x: f64) -> bool {
    x != 1.0
}

pub fn negative_sentinel(x: f64) -> bool {
    x == -1.0
}

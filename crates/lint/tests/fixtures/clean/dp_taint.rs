//! Clean: the raw embedding is clipped, noised, and charged to the
//! accountant before any bytes leave the process.

pub fn embed(x: &Matrix) -> Matrix {
    x.transform()
}

fn release(x: &Matrix, acct: &mut Accountant, rng: &mut ChaCha8Rng) -> Vec<f64> {
    let e = embed(x);
    let e = clip_l2(&e, 1.0);
    acct.charge(1);
    gaussian_noise_vec(e.dims(), 1.0, 1.0, rng)
}

fn publish(
    x: &Matrix,
    acct: &mut Accountant,
    rng: &mut ChaCha8Rng,
    w: &mut Writer,
) -> PrivimResult<()> {
    let out = release(x, acct, rng);
    w.write_all(&encode(&out))?;
    Ok(())
}

//! Clean: every `unsafe` carries an audited safety argument, the SIMD
//! kernel is a `#[target_feature]` fn with a scalar sibling, and the
//! dispatcher performs runtime feature detection.

#[target_feature(enable = "avx2")]
// privim-lint: allow(unsafe, reason = "callers are required (and lint-checked) to verify avx2 via runtime detection before entering; all pointer math stays within the input slice")
unsafe fn dot_avx2(a: &[f32]) -> f32 {
    let acc = _mm256_setzero_ps();
    horizontal_sum(acc, a)
}

fn dot_scalar(a: &[f32]) -> f32 {
    a.iter().sum()
}

fn dot(a: &[f32]) -> f32 {
    if is_x86_feature_detected!("avx2") {
        // privim-lint: allow(unsafe, reason = "the branch condition is exactly the precondition dot_avx2's contract demands")
        unsafe { dot_avx2(a) }
    } else {
        dot_scalar(a)
    }
}

//! Clean fixture: errors propagate as Results; the one residual panic
//! site is audited with an annotation.

pub fn head(v: &[u32]) -> Result<u32, String> {
    v.first().copied().ok_or_else(|| "empty input".to_string())
}

pub fn head_nonempty(v: &[u32]) -> u32 {
    assert!(!v.is_empty(), "head_nonempty requires a nonempty slice");
    // privim-lint: allow(panic, reason = "nonemptiness asserted on the line above, so first() is always Some")
    v.first().copied().unwrap()
}

pub fn unwrap_or_default_is_fine(v: &[u32]) -> u32 {
    v.first().copied().unwrap_or_default()
}

//! Clean fixture: timing is telemetry-only and annotated as such.

use std::time::Instant;

pub fn run_and_report(work: impl FnOnce()) -> f64 {
    // privim-lint: allow(wall-clock, reason = "telemetry only; the duration is reported, never used in computation")
    let t0 = Instant::now();
    work();
    t0.elapsed().as_secs_f64()
}

//! Clean fixture: epsilon / bit-pattern comparisons, plus one audited
//! IEEE-exact sentinel.

pub fn converged(prev: f64, cur: f64) -> bool {
    (prev - cur).abs() < 1e-12
}

pub fn same_bits(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

pub fn skip_structural_zero(x: f64) -> bool {
    // privim-lint: allow(float-eq, reason = "exact-zero sparsity sentinel; only IEEE zeros are skippable losslessly")
    x == 0.0
}

//! Clean fixture: every noise draw is visibly charged to the accountant,
//! or carries an audited allow annotation naming where the charge happens.

pub fn perturb_gradient(
    grad: &mut [f64],
    sigma: f64,
    rng: &mut Rng,
    accountant: &mut Accountant,
) {
    accountant.charge(sigma, 1);
    let noise = gaussian_noise_vec(grad.len(), sigma, 1.0, rng);
    for (g, n) in grad.iter_mut().zip(noise) {
        *g += n;
    }
}

pub fn perturb_elsewhere_charged(grad: &mut [f64], sigma: f64, rng: &mut Rng) {
    // privim-lint: allow(unaccounted-noise, reason = "caller charges one step per invocation before dispatch")
    let noise = laplace_noise_vec(grad.len(), sigma, rng);
    for (g, n) in grad.iter_mut().zip(noise) {
        *g += n;
    }
}

//! Clean: one global acquisition order, condvar waits release their own
//! guard, and I/O happens only after the guard is dropped.

fn alpha_then_beta(s: &S) {
    let a = lock(&s.alpha);
    let b = lock(&s.beta);
    use_both(&a, &b);
}

fn alpha_then_beta_again(s: &S) {
    let a = lock(&s.alpha);
    let b = lock(&s.beta);
    use_both(&b, &a);
}

fn consumer(s: &S) -> Job {
    let mut q = lock(&s.queue);
    while q.is_empty() {
        q = s.ready.wait(q);
    }
    q.pop_front()
}

fn persist(s: &S) -> PrivimResult<()> {
    let g = lock(&s.state);
    let snapshot = g.bytes();
    drop(g);
    s.file.write_all(&snapshot)?;
    Ok(())
}

fn quick_peek(s: &S) -> PrivimResult<()> {
    let n = lock(&s.queue).depth();
    s.file.write_all(&encode(n))
}

//! Clean fixture: ordered containers keep iteration deterministic.

use std::collections::{BTreeMap, BTreeSet};

pub fn count_degrees(edges: &[(u32, u32)]) -> BTreeMap<u32, usize> {
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    let mut deg = BTreeMap::new();
    for &(u, v) in edges {
        seen.insert(u);
        seen.insert(v);
        *deg.entry(u).or_insert(0) += 1;
    }
    deg
}

//! Clean fixture: a well-formed annotation that actually suppresses a
//! finding (so it is neither malformed nor dead).

pub fn head(v: &[u32]) -> u32 {
    assert!(!v.is_empty());
    // privim-lint: allow(panic, reason = "nonemptiness asserted above; unwrap cannot fire")
    v.first().copied().unwrap()
}

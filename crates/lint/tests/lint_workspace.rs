//! The live-tree gate: the workspace as committed must lint clean, and
//! injecting a dirty fixture must break it — proving the walker actually
//! reaches crate sources and the rules actually fire on them.

use privim_lint::engine::{load_workspace, run_sources, run_workspace};
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels under the workspace root")
}

#[test]
fn workspace_lints_clean() {
    let report = run_workspace(workspace_root(), None).expect("workspace walk");
    assert!(
        report.files_scanned > 50,
        "walker found only {} files — wrong root?",
        report.files_scanned
    );
    let rendered: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{}[{}]: {}:{}: {}", f.severity.as_str(), f.rule, f.file, f.line, f.message))
        .collect();
    assert_eq!(report.errors(), 0, "{rendered:#?}");
    assert_eq!(report.warnings(), 0, "{rendered:#?}");
}

#[test]
fn injected_dirty_file_fails_the_gate() {
    let root = workspace_root();
    let (mut rs, tomls) = load_workspace(root).expect("workspace walk");
    let dirty = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/dirty/unaccounted_noise.rs"),
    )
    .expect("dirty fixture");
    rs.push(("crates/core/src/injected_dirty.rs".to_string(), dirty));
    let report = run_sources(&rs, &tomls, None);
    assert!(
        report.errors() > 0,
        "injected noise-without-accounting file must fail the gate"
    );
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == "unaccounted-noise" && f.file == "crates/core/src/injected_dirty.rs"));
}

#[test]
fn workspace_json_is_v2_schema() {
    let report = run_workspace(workspace_root(), None).expect("workspace walk");
    let json = report.to_json();
    let doc = privim_rt::json::Value::parse(&json).expect("to_json emits valid JSON");
    assert_eq!(doc.get("version").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(doc.get("errors").and_then(|v| v.as_u64()), Some(0));
    assert!(doc.get("findings").and_then(|v| v.as_array()).is_some());

    // v2 additions: per-rule finding counts (zero-filled for every
    // registered runnable rule) and call-graph statistics.
    let rules = doc.get("rules").expect("v2 carries a rules object");
    for id in ["unaccounted-noise", "lock-order", "dp-taint", "unsafe-audit"] {
        assert!(
            rules.get(id).and_then(|v| v.as_u64()).is_some(),
            "rules.{id} missing in: {json}"
        );
    }
    let graph = doc.get("callgraph").expect("v2 carries callgraph stats");
    let functions = graph.get("functions").and_then(|v| v.as_u64()).expect("functions");
    let sites = graph.get("call_sites").and_then(|v| v.as_u64()).expect("call_sites");
    let resolved = graph
        .get("resolved_call_sites")
        .and_then(|v| v.as_u64())
        .expect("resolved_call_sites");
    assert!(graph.get("edges").and_then(|v| v.as_u64()).is_some());
    assert!(functions > 100, "live tree has hundreds of fns: {functions}");
    assert!(resolved <= sites, "resolved {resolved} > extracted {sites}");
}

#[test]
fn seeded_cross_file_lock_cycle_fails_the_gate() {
    // Mutation test for the whole pipeline: plant a two-file deadlock
    // (A holds m_one and calls into B, which takes m_two; elsewhere B
    // holds m_two and calls back into A's m_one) and require the gate
    // to catch it through call-graph propagation, not same-file scans.
    let root = workspace_root();
    let (mut rs, tomls) = load_workspace(root).expect("workspace walk");
    rs.push((
        "crates/core/src/injected_a.rs".to_string(),
        "pub fn hold_one_then_cross(s: &S) {\n\
             let g = lock(&s.m_one);\n\
             cross_take_two(s);\n\
         }\n\
         pub fn take_one(s: &S) {\n\
             let g = lock(&s.m_one);\n\
             touch(&g);\n\
         }\n"
        .to_string(),
    ));
    rs.push((
        "crates/core/src/injected_b.rs".to_string(),
        "pub fn cross_take_two(s: &S) {\n\
             let g = lock(&s.m_two);\n\
             touch(&g);\n\
         }\n\
         pub fn hold_two_then_cross(s: &S) {\n\
             let g = lock(&s.m_two);\n\
             take_one(s);\n\
         }\n"
        .to_string(),
    ));
    let report = run_sources(&rs, &tomls, None);
    assert!(report.errors() > 0, "planted deadlock must fail the gate");
    let cycle: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "lock-order" && f.message.contains("acquisition-order cycle"))
        .collect();
    assert!(
        cycle
            .iter()
            .any(|f| f.file.starts_with("crates/core/src/injected_")),
        "cycle must be attributed to the planted files: {:?}",
        report.findings
    );
}

#[test]
fn cli_binary_gates_on_dirty_fixture() {
    // End to end through the real binary: --workspace on the live tree
    // exits 0; pointing --explain at each registered rule succeeds.
    let bin = env!("CARGO_BIN_EXE_privim-lint");
    let out = std::process::Command::new(bin)
        .arg("--workspace")
        .current_dir(workspace_root())
        .output()
        .expect("run privim-lint");
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    let explain = std::process::Command::new(bin)
        .args(["--explain", "unaccounted-noise"])
        .output()
        .expect("run privim-lint --explain");
    assert!(explain.status.success());
    assert!(String::from_utf8_lossy(&explain.stdout).contains("accountant"));
}

#[test]
fn cli_rejects_unknown_rule_with_usage_exit() {
    let bin = env!("CARGO_BIN_EXE_privim-lint");
    let out = std::process::Command::new(bin)
        .args(["--workspace", "--rule", "no-such-rule"])
        .current_dir(workspace_root())
        .output()
        .expect("run privim-lint");
    assert_eq!(
        out.status.code(),
        Some(2),
        "a misspelled --rule must be a usage error, not a vacuous pass"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("does not name a runnable rule"));
}

#[test]
fn cli_explains_the_flow_rules() {
    let bin = env!("CARGO_BIN_EXE_privim-lint");
    for (id, needle) in [
        ("lock-order", "acquisition"),
        ("dp-taint", "sanitiz"),
        ("unsafe-audit", "safety"),
    ] {
        let out = std::process::Command::new(bin)
            .args(["--explain", id])
            .output()
            .expect("run privim-lint --explain");
        assert!(out.status.success(), "--explain {id} failed");
        let text = String::from_utf8_lossy(&out.stdout).to_ascii_lowercase();
        assert!(text.contains(needle), "--explain {id} missing `{needle}`: {text}");
    }
}

#[test]
fn cli_under_scopes_the_run_and_rejects_bad_prefixes() {
    let bin = env!("CARGO_BIN_EXE_privim-lint");
    // Self-check: the analyzer must hold its own sources to its rules.
    let out = std::process::Command::new(bin)
        .args(["--workspace", "--under", "crates/lint", "--json"])
        .current_dir(workspace_root())
        .output()
        .expect("run privim-lint --under");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = privim_rt::json::Value::parse(&String::from_utf8_lossy(&out.stdout))
        .expect("json output");
    assert_eq!(doc.get("errors").and_then(|v| v.as_u64()), Some(0));

    let bad = std::process::Command::new(bin)
        .args(["--workspace", "--under", "crates/nonexistent"])
        .current_dir(workspace_root())
        .output()
        .expect("run privim-lint --under bogus");
    assert_eq!(bad.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad.stderr).contains("matches no workspace files"));
}

//! The live-tree gate: the workspace as committed must lint clean, and
//! injecting a dirty fixture must break it — proving the walker actually
//! reaches crate sources and the rules actually fire on them.

use privim_lint::engine::{load_workspace, run_sources, run_workspace};
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels under the workspace root")
}

#[test]
fn workspace_lints_clean() {
    let report = run_workspace(workspace_root(), None).expect("workspace walk");
    assert!(
        report.files_scanned > 50,
        "walker found only {} files — wrong root?",
        report.files_scanned
    );
    let rendered: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{}[{}]: {}:{}: {}", f.severity.as_str(), f.rule, f.file, f.line, f.message))
        .collect();
    assert_eq!(report.errors(), 0, "{rendered:#?}");
    assert_eq!(report.warnings(), 0, "{rendered:#?}");
}

#[test]
fn injected_dirty_file_fails_the_gate() {
    let root = workspace_root();
    let (mut rs, tomls) = load_workspace(root).expect("workspace walk");
    let dirty = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/dirty/unaccounted_noise.rs"),
    )
    .expect("dirty fixture");
    rs.push(("crates/core/src/injected_dirty.rs".to_string(), dirty));
    let report = run_sources(&rs, &tomls, None);
    assert!(
        report.errors() > 0,
        "injected noise-without-accounting file must fail the gate"
    );
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == "unaccounted-noise" && f.file == "crates/core/src/injected_dirty.rs"));
}

#[test]
fn workspace_json_is_parseable() {
    let report = run_workspace(workspace_root(), None).expect("workspace walk");
    let json = report.to_json();
    let doc = privim_rt::json::Value::parse(&json).expect("to_json emits valid JSON");
    assert_eq!(doc.get("version").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(doc.get("errors").and_then(|v| v.as_u64()), Some(0));
    assert!(doc.get("findings").and_then(|v| v.as_array()).is_some());
}

#[test]
fn cli_binary_gates_on_dirty_fixture() {
    // End to end through the real binary: --workspace on the live tree
    // exits 0; pointing --explain at each registered rule succeeds.
    let bin = env!("CARGO_BIN_EXE_privim-lint");
    let out = std::process::Command::new(bin)
        .arg("--workspace")
        .current_dir(workspace_root())
        .output()
        .expect("run privim-lint");
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    let explain = std::process::Command::new(bin)
        .args(["--explain", "unaccounted-noise"])
        .output()
        .expect("run privim-lint --explain");
    assert!(explain.status.success());
    assert!(String::from_utf8_lossy(&explain.stdout).contains("accountant"));
}

//! Exact one-step influence spread (the paper's evaluation setting).

use privim_graph::{Graph, NodeId};

/// Influence spread under `w = 1, j = 1`: the number of nodes activated
/// after one deterministic step, `|S ∪ N⁺(S)|`.
pub fn one_step_spread(g: &Graph, seeds: &[NodeId]) -> usize {
    let mut active = vec![false; g.num_nodes()];
    let mut count = 0usize;
    for &s in seeds {
        if !active[s as usize] {
            active[s as usize] = true;
            count += 1;
        }
    }
    for &s in seeds {
        for &v in g.out_neighbors(s) {
            if !active[v as usize] {
                active[v as usize] = true;
                count += 1;
            }
        }
    }
    count
}

/// Exact *expected* spread after one IC step with arbitrary weights:
///
/// `E[|active|] = |S| + Σ_{u∉S} (1 − Π_{v∈S∩N⁻(u)} (1 − w_vu))`.
///
/// Reduces to [`one_step_spread`] when every weight is 1.
pub fn expected_one_step_spread(g: &Graph, seeds: &[NodeId]) -> f64 {
    let mut is_seed = vec![false; g.num_nodes()];
    for &s in seeds {
        is_seed[s as usize] = true;
    }
    let seed_count = is_seed.iter().filter(|&&x| x).count();
    let mut total = seed_count as f64;
    // survive[u] = Π (1 - w_vu) over seed in-neighbours v of u.
    let mut survive = vec![1.0f64; g.num_nodes()];
    for &s in seeds {
        let ws = g.out_weights(s);
        for (i, &u) in g.out_neighbors(s).iter().enumerate() {
            if !is_seed[u as usize] {
                survive[u as usize] *= 1.0 - ws[i];
            }
        }
    }
    for u in g.nodes() {
        if !is_seed[u as usize] && survive[u as usize] < 1.0 {
            total += 1.0 - survive[u as usize];
        }
    }
    total
}

/// Marginal gain of adding `v` to `S` under the exact one-step coverage
/// (`w = 1, j = 1`). `covered` must be the activation bitmap of `S`
/// (seeds + their out-neighbours); not modified.
pub fn one_step_marginal_gain(g: &Graph, covered: &[bool], v: NodeId) -> usize {
    let mut gain = usize::from(!covered[v as usize]);
    for &u in g.out_neighbors(v) {
        if !covered[u as usize] && u != v {
            gain += 1;
        }
    }
    gain
}

/// Update an activation bitmap after adding seed `v`. Returns how many new
/// nodes became covered.
pub fn one_step_cover(g: &Graph, covered: &mut [bool], v: NodeId) -> usize {
    let mut added = 0usize;
    if !covered[v as usize] {
        covered[v as usize] = true;
        added += 1;
    }
    for &u in g.out_neighbors(v) {
        if !covered[u as usize] {
            covered[u as usize] = true;
            added += 1;
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_graph::GraphBuilder;

    /// star: 0 -> {1,2,3}; chain 3 -> 4
    fn star_chain() -> Graph {
        let mut b = GraphBuilder::new_directed(5);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 1.0);
        b.add_edge(0, 3, 1.0);
        b.add_edge(3, 4, 1.0);
        b.build()
    }

    #[test]
    fn one_step_covers_seed_and_out_neighbors() {
        let g = star_chain();
        assert_eq!(one_step_spread(&g, &[0]), 4); // 0,1,2,3 — not 4
        assert_eq!(one_step_spread(&g, &[3]), 2); // 3,4
        assert_eq!(one_step_spread(&g, &[0, 3]), 5);
        assert_eq!(one_step_spread(&g, &[4]), 1);
        assert_eq!(one_step_spread(&g, &[]), 0);
    }

    #[test]
    fn duplicate_seeds_not_double_counted() {
        let g = star_chain();
        assert_eq!(one_step_spread(&g, &[0, 0]), 4);
    }

    #[test]
    fn expected_matches_deterministic_at_unit_weights() {
        let g = star_chain();
        for seeds in [vec![0u32], vec![3], vec![0, 3], vec![1, 2]] {
            assert_eq!(
                expected_one_step_spread(&g, &seeds),
                one_step_spread(&g, &seeds) as f64
            );
        }
    }

    #[test]
    fn expected_spread_with_fractional_weights() {
        // 0 -> 1 (0.5), 2 -> 1 (0.5): P(1 active | S={0,2}) = 1 - 0.25
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1, 0.5);
        b.add_edge(2, 1, 0.5);
        let g = b.build();
        let s = expected_one_step_spread(&g, &[0, 2]);
        assert!((s - (2.0 + 0.75)).abs() < 1e-12, "spread {s}");
    }

    #[test]
    fn marginal_gain_and_cover_agree() {
        let g = star_chain();
        let mut covered = vec![false; 5];
        let gain0 = one_step_marginal_gain(&g, &covered, 0);
        assert_eq!(gain0, 4);
        assert_eq!(one_step_cover(&g, &mut covered, 0), 4);
        // now 3 is covered; adding it only gains node 4
        let gain3 = one_step_marginal_gain(&g, &covered, 3);
        assert_eq!(gain3, 1);
        assert_eq!(one_step_cover(&g, &mut covered, 3), 1);
        assert_eq!(one_step_marginal_gain(&g, &covered, 3), 0);
    }

    #[test]
    fn submodularity_of_coverage() {
        // gain(v | A) >= gain(v | B) whenever A ⊆ B.
        let g = star_chain();
        let mut small = vec![false; 5];
        one_step_cover(&g, &mut small, 1);
        let mut big = small.clone();
        one_step_cover(&g, &mut big, 0);
        for v in g.nodes() {
            assert!(
                one_step_marginal_gain(&g, &small, v) >= one_step_marginal_gain(&g, &big, v),
                "submodularity violated at {v}"
            );
        }
    }
}

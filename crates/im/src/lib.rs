#![warn(missing_docs)]
//! # privim-im
//!
//! Influence-maximization substrate: diffusion models (Independent Cascade,
//! plus the Linear Threshold and SIS models the paper lists as future
//! work), exact and Monte-Carlo influence-spread estimation, the CELF lazy
//! greedy algorithm (the paper's ground truth), and simple heuristic
//! baselines.
//!
//! ## Evaluation convention
//!
//! §V-A fixes `w_vu = 1` and diffusion step `j = 1`, under which the
//! influence spread of a seed set `S` is exactly `|S ∪ N⁺(S)|` — a
//! deterministic, submodular coverage function. [`spread::one_step_spread`]
//! computes it exactly and [`celf::celf_exact`] maximises it with the
//! classic `(1 − 1/e)` guarantee. General `(w, j)` settings are served by
//! Monte-Carlo estimation ([`diffusion::ic_spread_estimate`]) and
//! [`celf::celf_monte_carlo`].

pub mod celf;
pub mod diffusion;
pub mod heuristics;
pub mod metrics;
pub mod ris;
pub mod spread;

pub use celf::{celf_exact, celf_monte_carlo, CelfResult, LazyGreedy};
pub use diffusion::{
    ic_simulate_once, ic_spread_estimate, lt_spread_estimate, sis_spread_estimate,
};
pub use metrics::coverage_ratio;
pub use ris::{random_rr_set, ris_select, RisResult};
pub use spread::{expected_one_step_spread, one_step_spread};

//! Stochastic diffusion models: Independent Cascade (Definition 6), and
//! the Linear Threshold and SIS models listed as future work (§VII).

use privim_graph::{Graph, NodeId};
use privim_rt::ChaCha8Rng;
use privim_rt::{Rng, SeedableRng};
use std::collections::VecDeque;

/// One IC realisation from `seeds`, run until quiescence or for at most
/// `max_steps` rounds (`None` = unbounded). Returns the number of activated
/// nodes. Each newly activated `u` gets a single chance to activate each
/// inactive out-neighbour `v` with probability `w_uv`.
pub fn ic_simulate_once(
    g: &Graph,
    seeds: &[NodeId],
    max_steps: Option<usize>,
    rng: &mut impl Rng,
) -> usize {
    let mut active = vec![false; g.num_nodes()];
    let mut frontier: VecDeque<(NodeId, usize)> = VecDeque::new();
    let mut count = 0usize;
    for &s in seeds {
        if !active[s as usize] {
            active[s as usize] = true;
            count += 1;
            frontier.push_back((s, 0));
        }
    }
    while let Some((u, step)) = frontier.pop_front() {
        if let Some(limit) = max_steps {
            if step >= limit {
                continue;
            }
        }
        let ws = g.out_weights(u);
        for (i, &v) in g.out_neighbors(u).iter().enumerate() {
            if !active[v as usize] && rng.gen::<f64>() < ws[i] {
                active[v as usize] = true;
                count += 1;
                frontier.push_back((v, step + 1));
            }
        }
    }
    count
}

/// Monte-Carlo estimate of IC influence spread: mean activated count over
/// `runs` independent realisations (thread-parallel, deterministic given
/// `seed` at any thread count).
pub fn ic_spread_estimate(
    g: &Graph,
    seeds: &[NodeId],
    max_steps: Option<usize>,
    runs: usize,
    seed: u64,
) -> f64 {
    assert!(runs >= 1);
    let total: usize = privim_rt::par::sum_range(runs, |i| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(i as u64));
        ic_simulate_once(g, seeds, max_steps, &mut rng)
    });
    total as f64 / runs as f64
}

/// One Linear Threshold realisation: node `u` activates once
/// `Σ_{active v ∈ N⁻(u)} w_vu ≥ θ_u` with `θ_u ~ U(0, 1)`. Arc weights
/// should sum to ≤ 1 per node (use
/// [`privim_graph::Graph::with_weighted_cascade`]).
pub fn lt_simulate_once(g: &Graph, seeds: &[NodeId], rng: &mut impl Rng) -> usize {
    let n = g.num_nodes();
    let thresholds: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let mut active = vec![false; n];
    let mut pressure = vec![0.0f64; n];
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    let mut count = 0usize;
    for &s in seeds {
        if !active[s as usize] {
            active[s as usize] = true;
            count += 1;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let ws = g.out_weights(u);
        for (i, &v) in g.out_neighbors(u).iter().enumerate() {
            if active[v as usize] {
                continue;
            }
            pressure[v as usize] += ws[i];
            if pressure[v as usize] >= thresholds[v as usize] {
                active[v as usize] = true;
                count += 1;
                queue.push_back(v);
            }
        }
    }
    count
}

/// Monte-Carlo LT spread estimate.
pub fn lt_spread_estimate(g: &Graph, seeds: &[NodeId], runs: usize, seed: u64) -> f64 {
    assert!(runs >= 1);
    let total: usize = privim_rt::par::sum_range(runs, |i| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(i as u64));
        lt_simulate_once(g, seeds, &mut rng)
    });
    total as f64 / runs as f64
}

/// One SIS (susceptible-infectious-susceptible) realisation for `steps`
/// rounds: infected nodes infect each susceptible out-neighbour with the
/// arc weight as infection probability, then recover (become susceptible
/// again) with probability `recovery`. Returns the number of *distinct*
/// nodes ever infected — the quantity comparable to IC's spread.
pub fn sis_simulate_once(
    g: &Graph,
    seeds: &[NodeId],
    recovery: f64,
    steps: usize,
    rng: &mut impl Rng,
) -> usize {
    assert!((0.0..=1.0).contains(&recovery));
    let n = g.num_nodes();
    let mut infected = vec![false; n];
    let mut ever = vec![false; n];
    let mut current: Vec<NodeId> = Vec::new();
    let mut ever_count = 0usize;
    for &s in seeds {
        if !infected[s as usize] {
            infected[s as usize] = true;
            ever[s as usize] = true;
            ever_count += 1;
            current.push(s);
        }
    }
    for _ in 0..steps {
        if current.is_empty() {
            break;
        }
        let mut newly: Vec<NodeId> = Vec::new();
        for &u in &current {
            let ws = g.out_weights(u);
            for (i, &v) in g.out_neighbors(u).iter().enumerate() {
                if !infected[v as usize] && rng.gen::<f64>() < ws[i] {
                    infected[v as usize] = true;
                    if !ever[v as usize] {
                        ever[v as usize] = true;
                        ever_count += 1;
                    }
                    newly.push(v);
                }
            }
        }
        // recovery sweep
        current.retain(|&u| {
            if rng.gen::<f64>() < recovery {
                infected[u as usize] = false;
                false
            } else {
                true
            }
        });
        current.extend(newly);
    }
    ever_count
}

/// Monte-Carlo SIS spread estimate.
pub fn sis_spread_estimate(
    g: &Graph,
    seeds: &[NodeId],
    recovery: f64,
    steps: usize,
    runs: usize,
    seed: u64,
) -> f64 {
    assert!(runs >= 1);
    let total: usize = privim_rt::par::sum_range(runs, |i| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(i as u64));
        sis_simulate_once(g, seeds, recovery, steps, &mut rng)
    });
    total as f64 / runs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spread::{expected_one_step_spread, one_step_spread};
    use privim_graph::{generators, GraphBuilder};

    fn chain(weights: f64) -> Graph {
        let mut b = GraphBuilder::new_directed(4);
        b.add_edge(0, 1, weights);
        b.add_edge(1, 2, weights);
        b.add_edge(2, 3, weights);
        b.build()
    }

    #[test]
    fn unit_weights_activate_everything_reachable() {
        let g = chain(1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(ic_simulate_once(&g, &[0], None, &mut rng), 4);
        assert_eq!(ic_simulate_once(&g, &[2], None, &mut rng), 2);
    }

    #[test]
    fn max_steps_truncates_diffusion() {
        let g = chain(1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert_eq!(ic_simulate_once(&g, &[0], Some(1), &mut rng), 2);
        assert_eq!(ic_simulate_once(&g, &[0], Some(2), &mut rng), 3);
        assert_eq!(ic_simulate_once(&g, &[0], Some(0), &mut rng), 1);
    }

    #[test]
    fn zero_weights_spread_nowhere() {
        let g = chain(0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert_eq!(ic_simulate_once(&g, &[0], None, &mut rng), 1);
    }

    #[test]
    fn monte_carlo_matches_exact_one_step() {
        // On a one-step truncated IC, the MC mean must approach the exact
        // closed-form expectation.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generators::barabasi_albert(60, 3, &mut rng).with_weighted_cascade();
        let seeds: Vec<NodeId> = vec![0, 5, 10];
        let exact = expected_one_step_spread(&g, &seeds);
        let mc = ic_spread_estimate(&g, &seeds, Some(1), 4000, 99);
        assert!(
            (mc - exact).abs() / exact < 0.05,
            "MC {mc} vs exact {exact}"
        );
    }

    #[test]
    fn deterministic_setting_has_zero_variance() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::barabasi_albert(100, 3, &mut rng).with_uniform_weights(1.0);
        let seeds = vec![1u32, 2, 3];
        let est = ic_spread_estimate(&g, &seeds, Some(1), 10, 7);
        assert_eq!(est, one_step_spread(&g, &seeds) as f64);
    }

    #[test]
    fn lt_unit_weights_cascade_fully() {
        // With w = 1 every neighbour of an active node crosses any θ ≤ 1.
        let g = chain(1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        assert_eq!(lt_simulate_once(&g, &[0], &mut rng), 4);
    }

    #[test]
    fn lt_spread_monotone_in_seed_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = generators::barabasi_albert(80, 3, &mut rng).with_weighted_cascade();
        let one = lt_spread_estimate(&g, &[0], 500, 11);
        let three = lt_spread_estimate(&g, &[0, 1, 2], 500, 11);
        assert!(
            three > one,
            "LT spread should grow with seeds: {three} vs {one}"
        );
    }

    #[test]
    fn sis_with_instant_recovery_matches_truncated_ic_shape() {
        let g = chain(1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        // recovery 1.0: every node recovers right after one infection round,
        // but the wave still propagates one hop per step.
        let spread = sis_simulate_once(&g, &[0], 1.0, 3, &mut rng);
        assert_eq!(spread, 4);
        let spread_short = sis_simulate_once(&g, &[0], 1.0, 1, &mut rng);
        assert_eq!(spread_short, 2);
    }

    #[test]
    fn sis_zero_steps_counts_seeds_only() {
        let g = chain(1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        assert_eq!(sis_simulate_once(&g, &[0, 2], 0.5, 0, &mut rng), 2);
    }

    #[test]
    fn estimates_are_deterministic_given_seed() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let g = generators::barabasi_albert(60, 3, &mut rng).with_weighted_cascade();
        let a = ic_spread_estimate(&g, &[0, 1], None, 200, 42);
        let b = ic_spread_estimate(&g, &[0, 1], None, 200, 42);
        assert_eq!(a, b);
    }
}

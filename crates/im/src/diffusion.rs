//! Stochastic diffusion models: Independent Cascade (Definition 6), and
//! the Linear Threshold and SIS models listed as future work (§VII).

use privim_graph::{Graph, NodeId};
use privim_rt::ChaCha8Rng;
use privim_rt::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Reusable buffers for repeated IC realisations on the same graph. The
/// Monte-Carlo estimators allocate one per worker chunk instead of one per
/// run — the dominant cost of a short cascade on a large graph is otherwise
/// the `vec![false; n]` zeroing round-trip.
#[derive(Default)]
struct IcScratch {
    active: Vec<bool>,
    frontier: VecDeque<(NodeId, usize)>,
}

fn ic_simulate_scratch(
    g: &Graph,
    seeds: &[NodeId],
    max_steps: Option<usize>,
    rng: &mut impl Rng,
    s: &mut IcScratch,
) -> usize {
    s.active.clear();
    s.active.resize(g.num_nodes(), false);
    s.frontier.clear();
    let active = &mut s.active;
    let frontier = &mut s.frontier;
    let mut count = 0usize;
    for &sd in seeds {
        if !active[sd as usize] {
            active[sd as usize] = true;
            count += 1;
            frontier.push_back((sd, 0));
        }
    }
    while let Some((u, step)) = frontier.pop_front() {
        if let Some(limit) = max_steps {
            if step >= limit {
                continue;
            }
        }
        let ws = g.out_weights(u);
        for (i, &v) in g.out_neighbors(u).iter().enumerate() {
            if !active[v as usize] && rng.gen::<f64>() < ws[i] {
                active[v as usize] = true;
                count += 1;
                frontier.push_back((v, step + 1));
            }
        }
    }
    count
}

/// One IC realisation from `seeds`, run until quiescence or for at most
/// `max_steps` rounds (`None` = unbounded). Returns the number of activated
/// nodes. Each newly activated `u` gets a single chance to activate each
/// inactive out-neighbour `v` with probability `w_uv`.
pub fn ic_simulate_once(
    g: &Graph,
    seeds: &[NodeId],
    max_steps: Option<usize>,
    rng: &mut impl Rng,
) -> usize {
    ic_simulate_scratch(g, seeds, max_steps, rng, &mut IcScratch::default())
}

/// Monte-Carlo estimate of IC influence spread: mean activated count over
/// `runs` independent realisations (thread-parallel, deterministic given
/// `seed` at any thread count).
///
/// Runs are summed chunk-wise with per-chunk scratch buffers; each run is
/// seeded by its global index and the counts are integers, so the total is
/// independent of how runs are split across workers.
pub fn ic_spread_estimate(
    g: &Graph,
    seeds: &[NodeId],
    max_steps: Option<usize>,
    runs: usize,
    seed: u64,
) -> f64 {
    assert!(runs >= 1);
    let total: usize = privim_rt::par::sum_chunks(runs, |range| {
        let mut scratch = IcScratch::default();
        range
            .map(|i| {
                let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(i as u64));
                ic_simulate_scratch(g, seeds, max_steps, &mut rng, &mut scratch)
            })
            .sum::<usize>()
    });
    total as f64 / runs as f64
}

/// One Linear Threshold realisation: node `u` activates once
/// `Σ_{active v ∈ N⁻(u)} w_vu ≥ θ_u` with `θ_u ~ U(0, 1)`. Arc weights
/// should sum to ≤ 1 per node (use
/// [`privim_graph::Graph::with_weighted_cascade`]).
pub fn lt_simulate_once(g: &Graph, seeds: &[NodeId], rng: &mut impl Rng) -> usize {
    lt_simulate_scratch(g, seeds, rng, &mut LtScratch::default())
}

/// Reusable buffers for repeated LT realisations (see [`IcScratch`]).
#[derive(Default)]
struct LtScratch {
    thresholds: Vec<f64>,
    active: Vec<bool>,
    pressure: Vec<f64>,
    queue: VecDeque<NodeId>,
}

fn lt_simulate_scratch(g: &Graph, seeds: &[NodeId], rng: &mut impl Rng, s: &mut LtScratch) -> usize {
    let n = g.num_nodes();
    s.thresholds.clear();
    s.thresholds.extend((0..n).map(|_| rng.gen::<f64>()));
    s.active.clear();
    s.active.resize(n, false);
    s.pressure.clear();
    s.pressure.resize(n, 0.0);
    s.queue.clear();
    let LtScratch {
        thresholds,
        active,
        pressure,
        queue,
    } = s;
    let mut count = 0usize;
    for &sd in seeds {
        if !active[sd as usize] {
            active[sd as usize] = true;
            count += 1;
            queue.push_back(sd);
        }
    }
    while let Some(u) = queue.pop_front() {
        let ws = g.out_weights(u);
        for (i, &v) in g.out_neighbors(u).iter().enumerate() {
            if active[v as usize] {
                continue;
            }
            pressure[v as usize] += ws[i];
            if pressure[v as usize] >= thresholds[v as usize] {
                active[v as usize] = true;
                count += 1;
                queue.push_back(v);
            }
        }
    }
    count
}

/// Monte-Carlo LT spread estimate (chunk-wise scratch reuse, thread-count
/// independent — see [`ic_spread_estimate`]).
pub fn lt_spread_estimate(g: &Graph, seeds: &[NodeId], runs: usize, seed: u64) -> f64 {
    assert!(runs >= 1);
    let total: usize = privim_rt::par::sum_chunks(runs, |range| {
        let mut scratch = LtScratch::default();
        range
            .map(|i| {
                let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(i as u64));
                lt_simulate_scratch(g, seeds, &mut rng, &mut scratch)
            })
            .sum::<usize>()
    });
    total as f64 / runs as f64
}

/// One SIS (susceptible-infectious-susceptible) realisation for `steps`
/// rounds: infected nodes infect each susceptible out-neighbour with the
/// arc weight as infection probability, then recover (become susceptible
/// again) with probability `recovery`. Returns the number of *distinct*
/// nodes ever infected — the quantity comparable to IC's spread.
pub fn sis_simulate_once(
    g: &Graph,
    seeds: &[NodeId],
    recovery: f64,
    steps: usize,
    rng: &mut impl Rng,
) -> usize {
    sis_simulate_scratch(g, seeds, recovery, steps, rng, &mut SisScratch::default())
}

/// Reusable buffers for repeated SIS realisations (see [`IcScratch`]).
#[derive(Default)]
struct SisScratch {
    infected: Vec<bool>,
    ever: Vec<bool>,
    current: Vec<NodeId>,
    newly: Vec<NodeId>,
}

fn sis_simulate_scratch(
    g: &Graph,
    seeds: &[NodeId],
    recovery: f64,
    steps: usize,
    rng: &mut impl Rng,
    s: &mut SisScratch,
) -> usize {
    assert!((0.0..=1.0).contains(&recovery));
    let n = g.num_nodes();
    s.infected.clear();
    s.infected.resize(n, false);
    s.ever.clear();
    s.ever.resize(n, false);
    s.current.clear();
    s.newly.clear();
    let SisScratch {
        infected,
        ever,
        current,
        newly,
    } = s;
    let mut ever_count = 0usize;
    for &sd in seeds {
        if !infected[sd as usize] {
            infected[sd as usize] = true;
            ever[sd as usize] = true;
            ever_count += 1;
            current.push(sd);
        }
    }
    for _ in 0..steps {
        if current.is_empty() {
            break;
        }
        newly.clear();
        for &u in current.iter() {
            let ws = g.out_weights(u);
            for (i, &v) in g.out_neighbors(u).iter().enumerate() {
                if !infected[v as usize] && rng.gen::<f64>() < ws[i] {
                    infected[v as usize] = true;
                    if !ever[v as usize] {
                        ever[v as usize] = true;
                        ever_count += 1;
                    }
                    newly.push(v);
                }
            }
        }
        // recovery sweep
        current.retain(|&u| {
            if rng.gen::<f64>() < recovery {
                infected[u as usize] = false;
                false
            } else {
                true
            }
        });
        current.append(newly);
    }
    ever_count
}

/// Monte-Carlo SIS spread estimate (chunk-wise scratch reuse, thread-count
/// independent — see [`ic_spread_estimate`]).
pub fn sis_spread_estimate(
    g: &Graph,
    seeds: &[NodeId],
    recovery: f64,
    steps: usize,
    runs: usize,
    seed: u64,
) -> f64 {
    assert!(runs >= 1);
    let total: usize = privim_rt::par::sum_chunks(runs, |range| {
        let mut scratch = SisScratch::default();
        range
            .map(|i| {
                let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(i as u64));
                sis_simulate_scratch(g, seeds, recovery, steps, &mut rng, &mut scratch)
            })
            .sum::<usize>()
    });
    total as f64 / runs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spread::{expected_one_step_spread, one_step_spread};
    use privim_graph::{generators, GraphBuilder};

    fn chain(weights: f64) -> Graph {
        let mut b = GraphBuilder::new_directed(4);
        b.add_edge(0, 1, weights);
        b.add_edge(1, 2, weights);
        b.add_edge(2, 3, weights);
        b.build()
    }

    #[test]
    fn unit_weights_activate_everything_reachable() {
        let g = chain(1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(ic_simulate_once(&g, &[0], None, &mut rng), 4);
        assert_eq!(ic_simulate_once(&g, &[2], None, &mut rng), 2);
    }

    #[test]
    fn max_steps_truncates_diffusion() {
        let g = chain(1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert_eq!(ic_simulate_once(&g, &[0], Some(1), &mut rng), 2);
        assert_eq!(ic_simulate_once(&g, &[0], Some(2), &mut rng), 3);
        assert_eq!(ic_simulate_once(&g, &[0], Some(0), &mut rng), 1);
    }

    #[test]
    fn zero_weights_spread_nowhere() {
        let g = chain(0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert_eq!(ic_simulate_once(&g, &[0], None, &mut rng), 1);
    }

    #[test]
    fn monte_carlo_matches_exact_one_step() {
        // On a one-step truncated IC, the MC mean must approach the exact
        // closed-form expectation.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generators::barabasi_albert(60, 3, &mut rng).with_weighted_cascade();
        let seeds: Vec<NodeId> = vec![0, 5, 10];
        let exact = expected_one_step_spread(&g, &seeds);
        let mc = ic_spread_estimate(&g, &seeds, Some(1), 4000, 99);
        assert!(
            (mc - exact).abs() / exact < 0.05,
            "MC {mc} vs exact {exact}"
        );
    }

    #[test]
    fn deterministic_setting_has_zero_variance() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::barabasi_albert(100, 3, &mut rng).with_uniform_weights(1.0);
        let seeds = vec![1u32, 2, 3];
        let est = ic_spread_estimate(&g, &seeds, Some(1), 10, 7);
        assert_eq!(est, one_step_spread(&g, &seeds) as f64);
    }

    #[test]
    fn lt_unit_weights_cascade_fully() {
        // With w = 1 every neighbour of an active node crosses any θ ≤ 1.
        let g = chain(1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        assert_eq!(lt_simulate_once(&g, &[0], &mut rng), 4);
    }

    #[test]
    fn lt_spread_monotone_in_seed_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = generators::barabasi_albert(80, 3, &mut rng).with_weighted_cascade();
        let one = lt_spread_estimate(&g, &[0], 500, 11);
        let three = lt_spread_estimate(&g, &[0, 1, 2], 500, 11);
        assert!(
            three > one,
            "LT spread should grow with seeds: {three} vs {one}"
        );
    }

    #[test]
    fn sis_with_instant_recovery_matches_truncated_ic_shape() {
        let g = chain(1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        // recovery 1.0: every node recovers right after one infection round,
        // but the wave still propagates one hop per step.
        let spread = sis_simulate_once(&g, &[0], 1.0, 3, &mut rng);
        assert_eq!(spread, 4);
        let spread_short = sis_simulate_once(&g, &[0], 1.0, 1, &mut rng);
        assert_eq!(spread_short, 2);
    }

    #[test]
    fn sis_zero_steps_counts_seeds_only() {
        let g = chain(1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        assert_eq!(sis_simulate_once(&g, &[0, 2], 0.5, 0, &mut rng), 2);
    }

    #[test]
    fn estimates_are_deterministic_given_seed() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let g = generators::barabasi_albert(60, 3, &mut rng).with_weighted_cascade();
        let a = ic_spread_estimate(&g, &[0, 1], None, 200, 42);
        let b = ic_spread_estimate(&g, &[0, 1], None, 200, 42);
        assert_eq!(a, b);
    }
}

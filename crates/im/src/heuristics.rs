//! Non-learning seed-selection heuristics, used as sanity baselines and in
//! tests (a trained private GNN should land between random and CELF).

use privim_graph::{Graph, NodeId};
use privim_rt::Rng;
use privim_rt::SliceRandom;

/// Top-`k` nodes by out-degree (the classic "degree centrality" heuristic).
/// Ties broken by lower id for determinism.
pub fn degree_top_k(g: &Graph, k: usize) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = g.nodes().collect();
    nodes.sort_by_key(|&v| (std::cmp::Reverse(g.out_degree(v)), v));
    nodes.truncate(k);
    nodes
}

/// `k` distinct uniform random seeds.
pub fn random_seeds(g: &Graph, k: usize, rng: &mut impl Rng) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = g.nodes().collect();
    nodes.shuffle(rng);
    nodes.truncate(k);
    nodes
}

/// Top-`k` by a caller-provided per-node score (how the trained GNN's
/// output probabilities become a seed set). Ties broken by lower id.
pub fn score_top_k(scores: &[f64], k: usize) -> Vec<NodeId> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx.into_iter().map(|i| i as NodeId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spread::one_step_spread;
    use privim_graph::generators;
    use privim_rt::ChaCha8Rng;
    use privim_rt::SeedableRng;

    #[test]
    fn degree_heuristic_finds_hubs() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::barabasi_albert(200, 3, &mut rng);
        let top = degree_top_k(&g, 5);
        let min_top_degree = top.iter().map(|&v| g.out_degree(v)).min().unwrap();
        for v in g.nodes() {
            if !top.contains(&v) {
                assert!(g.out_degree(v) <= min_top_degree);
            }
        }
    }

    #[test]
    fn degree_beats_random_on_scale_free_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = generators::barabasi_albert(500, 3, &mut rng).with_uniform_weights(1.0);
        let deg = one_step_spread(&g, &degree_top_k(&g, 10));
        let rnd = one_step_spread(&g, &random_seeds(&g, 10, &mut rng));
        assert!(deg > rnd, "degree {deg} vs random {rnd}");
    }

    #[test]
    fn random_seeds_are_distinct() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generators::barabasi_albert(50, 2, &mut rng);
        let s = random_seeds(&g, 20, &mut rng);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 20);
    }

    #[test]
    fn score_top_k_orders_and_breaks_ties() {
        let scores = [0.2, 0.9, 0.9, 0.1];
        assert_eq!(score_top_k(&scores, 3), vec![1, 2, 0]);
        assert_eq!(score_top_k(&scores, 0), Vec::<NodeId>::new());
    }

    #[test]
    fn k_exceeding_v_is_clamped() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generators::barabasi_albert(10, 2, &mut rng);
        assert_eq!(degree_top_k(&g, 100).len(), 10);
        assert_eq!(random_seeds(&g, 100, &mut rng).len(), 10);
    }
}

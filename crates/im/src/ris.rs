//! Reverse Influence Sampling (RIS) — the "sampling-based" IM family the
//! paper's related work singles out as the best effectiveness/efficiency
//! trade-off among traditional methods (Tang et al., SIGMOD'15).
//!
//! A random reverse-reachable (RR) set is the set of nodes that can reach
//! a uniformly chosen target through a random live-edge realisation of the
//! IC model. If `F_R(S)` is the fraction of RR sets hit by `S`, then
//! `E[I(S)] = |V| · E[F_R(S)]`, so greedy max-coverage over enough RR sets
//! approximates IM with the same `(1 − 1/e)` guarantee as CELF but at a
//! fraction of the simulation cost on large graphs.

use privim_graph::{Graph, NodeId};
use privim_rt::ChaCha8Rng;
use privim_rt::{Rng, SeedableRng};

/// One random RR set: reverse-BFS from a uniform target, traversing each
/// in-arc `v → u` with probability `w_vu`, truncated at `max_steps` hops
/// (`None` = unbounded), mirroring the forward IC truncation.
pub fn random_rr_set(g: &Graph, max_steps: Option<usize>, rng: &mut impl Rng) -> Vec<NodeId> {
    let n = g.num_nodes();
    assert!(n > 0, "empty graph");
    let target = rng.gen_range(0..n) as NodeId;
    let mut visited = vec![false; n];
    visited[target as usize] = true;
    let mut rr = vec![target];
    let mut frontier: Vec<(NodeId, usize)> = vec![(target, 0)];
    while let Some((u, depth)) = frontier.pop() {
        if let Some(limit) = max_steps {
            if depth >= limit {
                continue;
            }
        }
        let ws = g.in_weights(u);
        for (i, &v) in g.in_neighbors(u).iter().enumerate() {
            if !visited[v as usize] && rng.gen::<f64>() < ws[i] {
                visited[v as usize] = true;
                rr.push(v);
                frontier.push((v, depth + 1));
            }
        }
    }
    rr
}

/// Outcome of [`ris_select`].
#[derive(Clone, Debug)]
pub struct RisResult {
    /// Greedy max-coverage seeds over the RR collection.
    pub seeds: Vec<NodeId>,
    /// Estimated influence spread `|V| · (covered RR sets / total)`.
    pub estimated_spread: f64,
    /// Number of RR sets used.
    pub num_rr_sets: usize,
}

/// RIS seed selection: sample `num_rr_sets` RR sets (thread-parallel,
/// deterministic given `seed` at any thread count) and run greedy max-coverage.
pub fn ris_select(
    g: &Graph,
    k: usize,
    num_rr_sets: usize,
    max_steps: Option<usize>,
    seed: u64,
) -> RisResult {
    assert!(num_rr_sets >= 1);
    let n = g.num_nodes();
    let k = k.min(n);
    let rr_sets: Vec<Vec<NodeId>> = privim_rt::par::map_range(num_rr_sets, |i| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(i as u64));
        random_rr_set(g, max_steps, &mut rng)
    });

    // Inverted index: node -> RR sets containing it.
    let mut index: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (si, set) in rr_sets.iter().enumerate() {
        for &v in set {
            index[v as usize].push(si as u32);
        }
    }

    // Lazy greedy max coverage.
    let mut covered = vec![false; num_rr_sets];
    let mut gain: Vec<usize> = index.iter().map(|s| s.len()).collect();
    let mut stale = vec![false; n];
    let mut seeds = Vec::with_capacity(k);
    let mut covered_count = 0usize;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<(usize, Reverse<NodeId>)> =
        (0..n).map(|v| (gain[v], Reverse(v as NodeId))).collect();
    while seeds.len() < k {
        let Some((g_est, Reverse(v))) = heap.pop() else {
            break;
        };
        if stale[v as usize] {
            // recompute
            let fresh = index[v as usize]
                .iter()
                .filter(|&&s| !covered[s as usize])
                .count();
            gain[v as usize] = fresh;
            stale[v as usize] = false;
            heap.push((fresh, Reverse(v)));
            continue;
        }
        if g_est != gain[v as usize] {
            heap.push((gain[v as usize], Reverse(v)));
            continue;
        }
        // select v
        seeds.push(v);
        for &s in &index[v as usize] {
            if !covered[s as usize] {
                covered[s as usize] = true;
                covered_count += 1;
            }
        }
        for s in stale.iter_mut() {
            *s = true;
        }
        stale[v as usize] = true; // v itself never reselected (gain 0 now)
        gain[v as usize] = 0;
    }

    RisResult {
        seeds,
        estimated_spread: n as f64 * covered_count as f64 / num_rr_sets as f64,
        num_rr_sets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diffusion::ic_spread_estimate;
    use crate::spread::one_step_spread;
    use privim_graph::{generators, GraphBuilder};

    #[test]
    fn rr_set_contains_target_and_only_reachers() {
        // chain 0 -> 1 -> 2 with w = 1: RR(target=2) = {0,1,2}
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        let g = b.build();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..20 {
            let rr = random_rr_set(&g, None, &mut rng);
            assert!(!rr.is_empty());
            // every member can reach the target (first element)
            let target = rr[0];
            for &v in &rr {
                // with unit weights, reachability = v <= target on the chain
                assert!(v <= target, "{v} cannot reach {target}");
            }
        }
    }

    #[test]
    fn zero_weights_give_singleton_rr_sets() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = generators::barabasi_albert(50, 3, &mut rng).with_uniform_weights(0.0);
        for _ in 0..10 {
            assert_eq!(random_rr_set(&g, None, &mut rng).len(), 1);
        }
    }

    #[test]
    fn truncation_limits_depth() {
        // long chain with w = 1: depth-1 RR sets have at most 2 nodes
        let mut b = GraphBuilder::new_directed(10);
        for i in 0..9 {
            b.add_edge(i, i + 1, 1.0);
        }
        let g = b.build();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..20 {
            assert!(random_rr_set(&g, Some(1), &mut rng).len() <= 2);
        }
    }

    #[test]
    fn ris_matches_one_step_coverage_under_unit_weights() {
        // with w = 1 and 1-step truncation, RIS greedy solves the same
        // coverage problem as CELF; spreads should be close.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generators::barabasi_albert(300, 4, &mut rng).with_uniform_weights(1.0);
        let ris = ris_select(&g, 10, 6_000, Some(1), 42);
        let celf = crate::celf::celf_exact(&g, 10);
        let ris_true = one_step_spread(&g, &ris.seeds) as f64;
        assert!(
            ris_true > 0.9 * celf.spread,
            "RIS {ris_true} vs CELF {}",
            celf.spread
        );
        // the RR-based estimator tracks the truth
        assert!(
            (ris.estimated_spread - ris_true).abs() / ris_true < 0.15,
            "estimate {} vs true {ris_true}",
            ris.estimated_spread
        );
    }

    #[test]
    fn ris_estimator_is_unbiased_for_fixed_seeds() {
        // E[|V| F_R(S)] = E[I(S)] for general weights (multi-step)
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::barabasi_albert(120, 3, &mut rng).with_weighted_cascade();
        let seeds: Vec<NodeId> = vec![0, 7, 13];
        // estimate via RR sets
        let runs = 20_000;
        let mut hits = 0usize;
        for i in 0..runs {
            let mut r = ChaCha8Rng::seed_from_u64(1_000 + i as u64);
            let rr = random_rr_set(&g, None, &mut r);
            if rr.iter().any(|v| seeds.contains(v)) {
                hits += 1;
            }
        }
        let rr_estimate = g.num_nodes() as f64 * hits as f64 / runs as f64;
        let mc = ic_spread_estimate(&g, &seeds, None, 4_000, 9);
        assert!(
            (rr_estimate - mc).abs() / mc < 0.1,
            "RR {rr_estimate} vs MC {mc}"
        );
    }

    #[test]
    fn more_rr_sets_do_not_hurt() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let g = generators::barabasi_albert(200, 3, &mut rng).with_uniform_weights(1.0);
        let small = ris_select(&g, 8, 500, Some(1), 7);
        let big = ris_select(&g, 8, 8_000, Some(1), 7);
        let s_small = one_step_spread(&g, &small.seeds);
        let s_big = one_step_spread(&g, &big.seeds);
        assert!(s_big as f64 >= 0.95 * s_small as f64);
        assert_eq!(big.seeds.len(), 8);
    }
}

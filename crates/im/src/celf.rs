//! CELF — Cost-Effective Lazy Forward greedy (Leskovec et al., KDD'07).
//!
//! The paper's ground truth (§V-A): greedy seed selection with lazy
//! marginal-gain re-evaluation, exploiting submodularity for a `(1 − 1/e)`
//! approximation guarantee. Two oracles are provided:
//!
//! - [`celf_exact`]: the evaluation setting's deterministic one-step
//!   coverage (`w = 1, j = 1`) — exact gains, no sampling error.
//! - [`celf_monte_carlo`]: general IC via Monte-Carlo estimation.

use crate::diffusion::ic_spread_estimate;
use crate::spread::{one_step_cover, one_step_marginal_gain};
use privim_graph::{Graph, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Outcome of a CELF run.
#[derive(Clone, Debug)]
pub struct CelfResult {
    /// Selected seeds in pick order.
    pub seeds: Vec<NodeId>,
    /// Influence spread of the full seed set (same oracle as selection).
    pub spread: f64,
    /// Number of oracle (gain) evaluations — CELF's efficiency metric.
    pub evaluations: usize,
}

#[derive(PartialEq)]
struct HeapEntry {
    gain: f64,
    node: NodeId,
    round: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .partial_cmp(&other.gain)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// CELF under the exact one-step coverage oracle (`w = 1, j = 1`).
/// `O(|V| log |V|)`-ish in practice thanks to lazy evaluation.
pub fn celf_exact(g: &Graph, k: usize) -> CelfResult {
    let n = g.num_nodes();
    let k = k.min(n);
    let mut covered = vec![false; n];
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(n);
    let mut evaluations = 0usize;

    for v in g.nodes() {
        evaluations += 1;
        heap.push(HeapEntry {
            gain: one_step_marginal_gain(g, &covered, v) as f64,
            node: v,
            round: 0,
        });
    }

    let mut seeds = Vec::with_capacity(k);
    let mut spread = 0usize;
    let mut round = 1usize;
    while seeds.len() < k {
        let Some(top) = heap.pop() else { break };
        if top.round == round {
            // gain is current for this round: pick it
            spread += one_step_cover(g, &mut covered, top.node);
            seeds.push(top.node);
            round += 1;
        } else {
            // stale: re-evaluate lazily and push back
            evaluations += 1;
            heap.push(HeapEntry {
                gain: one_step_marginal_gain(g, &covered, top.node) as f64,
                node: top.node,
                round,
            });
        }
    }
    CelfResult {
        seeds,
        spread: spread as f64,
        evaluations,
    }
}

/// Resumable CELF under the exact one-step coverage oracle.
///
/// Greedy is *prefix-stable*: with an identical tie-break rule, the first
/// `k` seeds of a `k'`-seed run (`k' > k`) are exactly the `k`-seed run.
/// [`LazyGreedy`] exploits that to serve top-`k` queries from a cache —
/// compute once, answer any `k ≤ computed` for free, and
/// [`extend_to`](Self::extend_to) lazily when a larger `k` arrives, reusing
/// the heap and coverage state instead of starting over.
///
/// Holds the graph by [`Arc`] so a server can share one graph across
/// worker threads and cache entries without cloning CSR arrays.
///
/// Pick order is bit-identical to [`celf_exact`] (same oracle, same
/// tie-breaking); a unit test pins this.
pub struct LazyGreedy {
    g: std::sync::Arc<Graph>,
    covered: Vec<bool>,
    heap: BinaryHeap<HeapEntry>,
    seeds: Vec<NodeId>,
    /// Marginal coverage of each pick, so the spread of *any* prefix is a
    /// prefix sum — no re-simulation per query.
    gains: Vec<usize>,
    evaluations: usize,
    round: usize,
}

impl LazyGreedy {
    /// Initialise the lazy-greedy state (one oracle call per node, exactly
    /// like the first round of [`celf_exact`]). No seeds are picked yet.
    pub fn new(g: std::sync::Arc<Graph>) -> LazyGreedy {
        let n = g.num_nodes();
        let covered = vec![false; n];
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(n);
        let mut evaluations = 0usize;
        for v in g.nodes() {
            evaluations += 1;
            heap.push(HeapEntry {
                gain: one_step_marginal_gain(&g, &covered, v) as f64,
                node: v,
                round: 0,
            });
        }
        LazyGreedy {
            g,
            covered,
            heap,
            seeds: Vec::new(),
            gains: Vec::new(),
            evaluations,
            round: 1,
        }
    }

    /// Ensure at least `k` seeds are selected (clamped to `|V|`) and return
    /// the first `k` in pick order. Already-selected prefixes are returned
    /// without any oracle calls.
    pub fn extend_to(&mut self, k: usize) -> &[NodeId] {
        let k = k.min(self.g.num_nodes());
        while self.seeds.len() < k {
            let Some(top) = self.heap.pop() else { break };
            if top.round == self.round {
                let gained = one_step_cover(&self.g, &mut self.covered, top.node);
                self.seeds.push(top.node);
                self.gains.push(gained);
                self.round += 1;
            } else {
                self.evaluations += 1;
                self.heap.push(HeapEntry {
                    gain: one_step_marginal_gain(&self.g, &self.covered, top.node) as f64,
                    node: top.node,
                    round: self.round,
                });
            }
        }
        &self.seeds[..k.min(self.seeds.len())]
    }

    /// Influence spread of the first `k` selected seeds. `k` must not
    /// exceed [`computed`](Self::computed); call
    /// [`extend_to`](Self::extend_to) first.
    pub fn prefix_spread(&self, k: usize) -> f64 {
        self.gains[..k.min(self.gains.len())].iter().sum::<usize>() as f64
    }

    /// How many seeds have been selected so far.
    pub fn computed(&self) -> usize {
        self.seeds.len()
    }

    /// Total oracle (gain) evaluations across all extensions.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// The shared graph this selector runs on.
    pub fn graph(&self) -> &std::sync::Arc<Graph> {
        &self.g
    }
}

/// CELF with a Monte-Carlo IC oracle: `runs` simulations per gain estimate,
/// diffusion truncated at `max_steps`. Practical only on small graphs or
/// with modest `runs`; the paper's evaluation setting never needs it, but
/// general IC experiments do.
pub fn celf_monte_carlo(
    g: &Graph,
    k: usize,
    max_steps: Option<usize>,
    runs: usize,
    seed: u64,
) -> CelfResult {
    let n = g.num_nodes();
    let k = k.min(n);
    let mut evaluations = 0usize;
    let mut seeds: Vec<NodeId> = Vec::with_capacity(k);
    let mut current_spread = 0.0f64;

    let spread_of = |s: &[NodeId], evals: &mut usize| -> f64 {
        *evals += 1;
        if s.is_empty() {
            0.0
        } else {
            ic_spread_estimate(g, s, max_steps, runs, seed)
        }
    };

    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(n);
    for v in g.nodes() {
        let gain = spread_of(&[v], &mut evaluations);
        heap.push(HeapEntry {
            gain,
            node: v,
            round: 0,
        });
    }

    let mut round = 1usize;
    while seeds.len() < k {
        let Some(top) = heap.pop() else { break };
        if top.round == round {
            seeds.push(top.node);
            current_spread += top.gain;
            round += 1;
        } else {
            let mut with_v = seeds.clone();
            with_v.push(top.node);
            let gain = spread_of(&with_v, &mut evaluations) - current_spread;
            heap.push(HeapEntry {
                gain,
                node: top.node,
                round,
            });
        }
    }
    // Final spread measured on the chosen set for consistency.
    let spread = spread_of(&seeds, &mut evaluations);
    CelfResult {
        seeds,
        spread,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spread::one_step_spread;
    use privim_graph::{generators, GraphBuilder};
    use privim_rt::ChaCha8Rng;
    use privim_rt::SeedableRng;

    /// Two stars: hub 0 -> 1..=4 and hub 5 -> 6..=7, isolated 8.
    fn two_stars() -> Graph {
        let mut b = GraphBuilder::new_directed(9);
        for v in 1..=4 {
            b.add_edge(0, v, 1.0);
        }
        b.add_edge(5, 6, 1.0);
        b.add_edge(5, 7, 1.0);
        b.build()
    }

    #[test]
    fn picks_hubs_in_gain_order() {
        let g = two_stars();
        let r = celf_exact(&g, 2);
        assert_eq!(r.seeds, vec![0, 5]);
        assert_eq!(r.spread, 8.0);
    }

    #[test]
    fn k_larger_than_v_is_clamped() {
        let g = two_stars();
        let r = celf_exact(&g, 100);
        assert_eq!(r.seeds.len(), 9);
        assert_eq!(r.spread, 9.0);
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_graph() {
        // CELF (lazy greedy) must equal plain greedy; on this 9-node graph
        // greedy with k=2 is optimal, verify against brute force.
        let g = two_stars();
        let r = celf_exact(&g, 2);
        let mut best = 0usize;
        for a in 0..9u32 {
            for b in (a + 1)..9u32 {
                best = best.max(one_step_spread(&g, &[a, b]));
            }
        }
        assert_eq!(r.spread as usize, best);
    }

    #[test]
    fn lazy_evaluation_saves_oracle_calls() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::barabasi_albert(500, 4, &mut rng).with_uniform_weights(1.0);
        let k = 20;
        let r = celf_exact(&g, k);
        // plain greedy would cost |V| * k evaluations
        assert!(
            r.evaluations < 500 * k / 2,
            "evaluations {} not lazy",
            r.evaluations
        );
        assert_eq!(r.seeds.len(), k);
    }

    #[test]
    fn celf_spread_dominates_random_seeds() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = generators::barabasi_albert(300, 3, &mut rng).with_uniform_weights(1.0);
        let r = celf_exact(&g, 10);
        let random: Vec<NodeId> = (100..110).collect();
        assert!(r.spread as usize >= one_step_spread(&g, &random));
    }

    #[test]
    fn monte_carlo_agrees_with_exact_under_unit_weights() {
        // With w = 1 and 1-step truncation the MC oracle is deterministic,
        // so both CELF variants must find sets of equal spread.
        let g = two_stars();
        let exact = celf_exact(&g, 2);
        let mc = celf_monte_carlo(&g, 2, Some(1), 3, 7);
        assert_eq!(mc.spread, exact.spread);
    }

    #[test]
    fn empty_graph_returns_empty() {
        let g = Graph::empty(0, true);
        let r = celf_exact(&g, 5);
        assert!(r.seeds.is_empty());
        assert_eq!(r.spread, 0.0);
    }

    #[test]
    fn lazy_greedy_prefixes_match_celf_exact() {
        use std::sync::Arc;
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generators::barabasi_albert(200, 3, &mut rng).with_uniform_weights(1.0);
        let mut lazy = LazyGreedy::new(Arc::new(g.clone()));
        for k in [1usize, 2, 5, 13, 40] {
            let reference = celf_exact(&g, k);
            assert_eq!(lazy.extend_to(k), &reference.seeds[..], "k={k}");
            assert_eq!(lazy.prefix_spread(k), reference.spread, "k={k}");
        }
    }

    #[test]
    fn resuming_is_cheaper_than_restarting() {
        use std::sync::Arc;
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generators::barabasi_albert(300, 3, &mut rng).with_uniform_weights(1.0);
        let mut lazy = LazyGreedy::new(Arc::new(g.clone()));
        lazy.extend_to(5);
        let evals_at_5 = lazy.evaluations();
        // Answering k<=5 again touches no oracle.
        lazy.extend_to(3);
        assert_eq!(lazy.evaluations(), evals_at_5);
        // Extending to 20 reuses state: total work equals one straight run.
        lazy.extend_to(20);
        let straight = celf_exact(&g, 20);
        assert_eq!(lazy.evaluations(), straight.evaluations);
        assert_eq!(lazy.extend_to(20), &straight.seeds[..]);
    }

    #[test]
    fn lazy_greedy_clamps_and_handles_empty() {
        use std::sync::Arc;
        let mut lazy = LazyGreedy::new(Arc::new(two_stars()));
        assert_eq!(lazy.extend_to(100).len(), 9);
        assert_eq!(lazy.prefix_spread(100), 9.0);
        let mut empty = LazyGreedy::new(Arc::new(Graph::empty(0, true)));
        assert!(empty.extend_to(5).is_empty());
        assert_eq!(empty.computed(), 0);
    }

    #[test]
    fn prop_greedy_beats_random_k_subsets() {
        // Deterministic property test: 10 seeds sampled from [0, 500).
        use privim_rt::Rng;
        let mut meta = ChaCha8Rng::seed_from_u64(0xCE1F);
        for _ in 0..10 {
            let seed = meta.gen_range(0u64..500);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = generators::barabasi_albert(80, 2, &mut rng).with_uniform_weights(1.0);
            let k = 5;
            let r = celf_exact(&g, k);
            // any random k-subset must not beat greedy by more than the
            // (1 - 1/e) guarantee allows — in particular greedy must reach
            // at least 63% of any other set's spread.
            use privim_rt::SliceRandom;
            let mut nodes: Vec<NodeId> = g.nodes().collect();
            nodes.shuffle(&mut rng);
            let rand_spread = one_step_spread(&g, &nodes[..k]);
            assert!(r.spread >= 0.63 * rand_spread as f64, "case seed {seed}");
        }
    }
}

//! Evaluation metrics (§V-A).

/// Coverage ratio: `|V_method| / |V_CELF|` — the spread of a method's seed
/// set relative to the CELF ground truth, in percent (the unit Table II
/// reports).
pub fn coverage_ratio(method_spread: f64, celf_spread: f64) -> f64 {
    assert!(celf_spread > 0.0, "CELF spread must be positive");
    100.0 * method_spread / celf_spread
}

/// Mean and (population) standard deviation of repeated measurements —
/// Table II reports `mean ± std` over 5 runs.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    assert!(!values.is_empty());
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_is_percentage() {
        assert_eq!(coverage_ratio(50.0, 100.0), 50.0);
        assert_eq!(coverage_ratio(100.0, 100.0), 100.0);
        // a method may (rarely) beat greedy
        assert!(coverage_ratio(101.0, 100.0) > 100.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_celf_rejected() {
        coverage_ratio(10.0, 0.0);
    }

    #[test]
    fn mean_std_basic() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        let (m1, s1) = mean_std(&[3.0]);
        assert_eq!((m1, s1), (3.0, 0.0));
    }
}

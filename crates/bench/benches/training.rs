//! Microbenchmarks for DP-SGD training: per-step cost of each GNN
//! architecture (forward + backward + clip + noise on one batch) — the
//! per-epoch training costs behind Table III.

use privim::trainer::{train_dpgnn, DpSgdConfig, NoiseKind, TrainItem};
use privim::LossConfig;
use privim_gnn::{GnnConfig, GnnKind, GnnModel, FEATURE_DIM};
use privim_graph::{generators, induced_subgraph};
use privim_rt::bench::Bench;
use privim_rt::{ChaCha8Rng, SeedableRng};
use privim_sampling::{freq_sampling, FreqConfig};

fn make_items() -> Vec<TrainItem> {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let g = generators::barabasi_albert(2_000, 4, &mut rng).with_uniform_weights(1.0);
    let mut freq = vec![0u32; g.num_nodes()];
    let cfg = FreqConfig {
        subgraph_size: 40,
        return_prob: 0.3,
        decay: 1.0,
        sampling_rate: 0.2,
        walk_len: 200,
        threshold: 6,
    };
    let sets = freq_sampling(&g, &mut freq, &cfg, &mut rng).unwrap();
    let subs: Vec<_> = sets.iter().map(|s| induced_subgraph(&g, s)).collect();
    TrainItem::from_container(&subs)
}

fn main() {
    let items = make_items();
    let mut step = Bench::with_iters("dp_sgd_step", 10);
    for kind in GnnKind::ALL {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let model = GnnModel::new(
            GnnConfig {
                kind,
                layers: 3,
                hidden: 32,
                in_dim: FEATURE_DIM,
            },
            &mut rng,
        );
        let cfg = DpSgdConfig {
            batch: 16,
            iters: 1,
            lr: 0.05,
            clip: 1.0,
            sigma: 1.0,
            occurrence_bound: 6,
            loss: LossConfig::paper_default(),
            noise: NoiseKind::Gaussian,
            seed: 9,
            tail_average: false,
            weight_decay: 0.0,
            max_recoveries: 8,
            fault: None,
        };
        step.case(&format!("one_step/{}", kind.name()), || {
            let mut m = model.clone();
            train_dpgnn(&mut m, &items, &cfg).unwrap();
        });
    }

    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let g = generators::barabasi_albert(20_000, 5, &mut rng).with_uniform_weights(1.0);
    let model = GnnModel::new(GnnConfig::paper_default(), &mut rng);
    Bench::with_iters("inference", 10).case("score_graph_20k", || model.score_graph(&g).len());
}

//! Microbenchmarks for the subgraph samplers: Algorithm 1 (RWR on the
//! θ-bounded graph) versus Algorithm 3 (dual-stage adaptive frequency
//! sampling) — the preprocessing costs behind Table III.

use privim_graph::{generators, projection::theta_projection};
use privim_rt::bench::Bench;
use privim_rt::{ChaCha8Rng, SeedableRng};
use privim_sampling::{
    dual_stage_sampling, extract_subgraphs, DualStageConfig, FreqConfig, RwrConfig,
};

fn main() {
    let mut bench = Bench::with_iters("samplers", 10);
    for &n_nodes in &[1_000usize, 5_000] {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = generators::barabasi_albert(n_nodes, 4, &mut rng);
        let projected = theta_projection(&g, 10, &mut rng);

        let rwr_cfg = RwrConfig {
            subgraph_size: 40,
            return_prob: 0.3,
            sampling_rate: (256.0 / n_nodes as f64).min(1.0),
            walk_len: 200,
            hops: 3,
        };
        bench.case(&format!("algorithm1_rwr/{n_nodes}"), || {
            let mut rng = ChaCha8Rng::seed_from_u64(11);
            extract_subgraphs(&projected, &rwr_cfg, &mut rng).len()
        });

        let dual_cfg = DualStageConfig {
            stage1: FreqConfig {
                subgraph_size: 40,
                return_prob: 0.3,
                decay: 1.0,
                sampling_rate: (256.0 / n_nodes as f64).min(1.0),
                walk_len: 200,
                threshold: 4,
            },
            shrink: 2,
            enable_bes: true,
        };
        bench.case(&format!("algorithm3_dual_stage/{n_nodes}"), || {
            let mut rng = ChaCha8Rng::seed_from_u64(11);
            dual_stage_sampling(&g, &dual_cfg, &mut rng).unwrap().container.len()
        });

        bench.case(&format!("theta_projection/{n_nodes}"), || {
            let mut rng = ChaCha8Rng::seed_from_u64(13);
            theta_projection(&g, 10, &mut rng).num_arcs()
        });
    }
}

//! Microbenchmarks for the subgraph samplers: Algorithm 1 (RWR on the
//! θ-bounded graph) versus Algorithm 3 (dual-stage adaptive frequency
//! sampling) — the preprocessing costs behind Table III.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privim_graph::{generators, projection::theta_projection};
use privim_sampling::{
    dual_stage_sampling, extract_subgraphs, DualStageConfig, FreqConfig, RwrConfig,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("samplers");
    group.sample_size(10);
    for &n_nodes in &[1_000usize, 5_000] {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = generators::barabasi_albert(n_nodes, 4, &mut rng);
        let projected = theta_projection(&g, 10, &mut rng);

        group.bench_with_input(
            BenchmarkId::new("algorithm1_rwr", n_nodes),
            &n_nodes,
            |b, _| {
                let cfg = RwrConfig {
                    subgraph_size: 40,
                    return_prob: 0.3,
                    sampling_rate: (256.0 / n_nodes as f64).min(1.0),
                    walk_len: 200,
                    hops: 3,
                };
                b.iter(|| {
                    let mut rng = ChaCha8Rng::seed_from_u64(11);
                    extract_subgraphs(&projected, &cfg, &mut rng).len()
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("algorithm3_dual_stage", n_nodes),
            &n_nodes,
            |b, _| {
                let cfg = DualStageConfig {
                    stage1: FreqConfig {
                        subgraph_size: 40,
                        return_prob: 0.3,
                        decay: 1.0,
                        sampling_rate: (256.0 / n_nodes as f64).min(1.0),
                        walk_len: 200,
                        threshold: 4,
                    },
                    shrink: 2,
                    enable_bes: true,
                };
                b.iter(|| {
                    let mut rng = ChaCha8Rng::seed_from_u64(11);
                    dual_stage_sampling(&g, &cfg, &mut rng).container.len()
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("theta_projection", n_nodes),
            &n_nodes,
            |b, _| {
                b.iter(|| {
                    let mut rng = ChaCha8Rng::seed_from_u64(13);
                    theta_projection(&g, 10, &mut rng).num_arcs()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);

//! Microbenchmarks for the IM substrate: CELF lazy greedy (exact coverage
//! oracle), exact one-step spread, and Monte-Carlo IC estimation.

use privim_graph::generators;
use privim_im::{celf_exact, ic_spread_estimate, one_step_spread};
use privim_rt::bench::Bench;
use privim_rt::{ChaCha8Rng, SeedableRng};

fn main() {
    let mut celf = Bench::with_iters("celf", 10);
    for &n in &[2_000usize, 20_000] {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::barabasi_albert(n, 5, &mut rng).with_uniform_weights(1.0);
        celf.case(&format!("celf_exact_k50/{n}"), || celf_exact(&g, 50).spread);
        let seeds: Vec<u32> = (0..50).map(|i| (i * (n as u32 / 50)) as u32).collect();
        celf.case(&format!("one_step_spread/{n}"), || {
            one_step_spread(&g, &seeds)
        });
    }

    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let g = generators::barabasi_albert(5_000, 4, &mut rng).with_weighted_cascade();
    let seeds: Vec<u32> = (0..50).collect();
    let mut mc = Bench::with_iters("ic_monte_carlo", 10);
    for &runs in &[100usize, 1_000] {
        mc.case(&format!("estimate/{runs}"), || {
            ic_spread_estimate(&g, &seeds, None, runs, 42)
        });
    }
}

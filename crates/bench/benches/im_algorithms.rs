//! Microbenchmarks for the IM substrate: CELF lazy greedy (exact coverage
//! oracle), exact one-step spread, and Monte-Carlo IC estimation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privim_graph::generators;
use privim_im::{celf_exact, ic_spread_estimate, one_step_spread};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_celf(c: &mut Criterion) {
    let mut group = c.benchmark_group("celf");
    group.sample_size(10);
    for &n in &[2_000usize, 20_000] {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::barabasi_albert(n, 5, &mut rng).with_uniform_weights(1.0);
        group.bench_with_input(BenchmarkId::new("celf_exact_k50", n), &g, |b, g| {
            b.iter(|| celf_exact(g, 50).spread)
        });
        let seeds: Vec<u32> = (0..50).map(|i| (i * (n as u32 / 50)) as u32).collect();
        group.bench_with_input(BenchmarkId::new("one_step_spread", n), &g, |b, g| {
            b.iter(|| one_step_spread(g, &seeds))
        });
    }
    group.finish();
}

fn bench_monte_carlo(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let g = generators::barabasi_albert(5_000, 4, &mut rng).with_weighted_cascade();
    let seeds: Vec<u32> = (0..50).collect();
    let mut group = c.benchmark_group("ic_monte_carlo");
    group.sample_size(10);
    for &runs in &[100usize, 1_000] {
        group.bench_with_input(BenchmarkId::new("estimate", runs), &runs, |b, &r| {
            b.iter(|| ic_spread_estimate(&g, &seeds, None, r, 42))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_celf, bench_monte_carlo);
criterion_main!(benches);

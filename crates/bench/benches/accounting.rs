//! Microbenchmarks for the RDP accountant: the Theorem 3 per-step γ
//! evaluation (a log-space binomial mixture over up to N_g terms) and the
//! full σ calibration bisection.

use privim_dp::accountant::{best_epsilon, calibrate_sigma, rdp_gamma_per_step, PrivacyParams};
use privim_rt::bench::Bench;

fn main() {
    let mut bench = Bench::new("accountant");
    for &n_g in &[4u64, 100, 1_111] {
        let params = PrivacyParams {
            n_g,
            batch: 32,
            container: 10_000,
            steps: 80,
        };
        bench
            .case(&format!("gamma_per_step/{n_g}"), || {
                rdp_gamma_per_step(8.0, 1.0, &params)
            })
            .case(&format!("best_epsilon/{n_g}"), || {
                best_epsilon(1.0, 1e-5, &params)
            })
            .case(&format!("calibrate_sigma/{n_g}"), || {
                calibrate_sigma(3.0, 1e-5, &params)
            });
    }
}

//! Microbenchmarks for the RDP accountant: the Theorem 3 per-step γ
//! evaluation (a log-space binomial mixture over up to N_g terms) and the
//! full σ calibration bisection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privim_dp::accountant::{
    best_epsilon, calibrate_sigma, rdp_gamma_per_step, PrivacyParams,
};

fn bench_gamma(c: &mut Criterion) {
    let mut group = c.benchmark_group("accountant");
    for &n_g in &[4u64, 100, 1_111] {
        let params = PrivacyParams {
            n_g,
            batch: 32,
            container: 10_000,
            steps: 80,
        };
        group.bench_with_input(BenchmarkId::new("gamma_per_step", n_g), &params, |b, p| {
            b.iter(|| rdp_gamma_per_step(8.0, 1.0, p))
        });
        group.bench_with_input(BenchmarkId::new("best_epsilon", n_g), &params, |b, p| {
            b.iter(|| best_epsilon(1.0, 1e-5, p))
        });
        group.bench_with_input(
            BenchmarkId::new("calibrate_sigma", n_g),
            &params,
            |b, p| b.iter(|| calibrate_sigma(3.0, 1e-5, p)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gamma);
criterion_main!(benches);

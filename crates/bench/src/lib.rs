#![warn(missing_docs)]
//! # privim-bench
//!
//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper (see DESIGN.md §4 for the experiment ↔ binary
//! index). Each binary:
//!
//! 1. parses the common flags (`--scale`, `--reps`, `--k`, `--eps`,
//!    `--dataset`, `--out`, `--fast`, `--seed`),
//! 2. generates the calibrated dataset(s),
//! 3. runs the methods and prints the paper's rows/series, and
//! 4. optionally writes machine-readable JSON next to the pretty output.

use privim::pipeline::PipelineParams;
use privim_graph::datasets::Dataset;
use std::path::PathBuf;

pub mod runner;
pub use runner::{must_run, CellOutcome, CellRunner};

/// Common experiment arguments. Parse with [`ExpArgs::parse_env`].
#[derive(Clone, Debug)]
pub struct ExpArgs {
    /// Dataset-size multiplier applied on top of each dataset's default
    /// scale (1.0 = the paper's published size, Friendster excepted).
    pub scale: f64,
    /// Replicates per configuration (the paper uses 5).
    pub reps: u64,
    /// Seed-set size `k` (paper: 50).
    pub k: usize,
    /// Privacy budgets to sweep.
    pub eps: Vec<f64>,
    /// Datasets to run (default: the paper's six).
    pub datasets: Vec<Dataset>,
    /// JSON output path.
    pub out: Option<PathBuf>,
    /// Fast mode: smaller graphs and training budgets for smoke runs.
    pub fast: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            scale: 1.0,
            reps: 5,
            k: 50,
            eps: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            datasets: Dataset::MAIN_SIX.to_vec(),
            out: None,
            fast: false,
            seed: 42,
        }
    }
}

impl ExpArgs {
    /// Parse from `std::env::args()`. Unknown flags abort with usage help.
    pub fn parse_env() -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        Self::parse(&argv)
    }

    /// Parse from an explicit argument list (tests).
    pub fn parse(argv: &[String]) -> Self {
        let mut args = ExpArgs::default();
        let mut it = argv.iter().peekable();
        fn need(it: &mut std::iter::Peekable<std::slice::Iter<String>>, flag: &str) -> String {
            it.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
                .clone()
        }
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => args.scale = parse_or_die(&need(&mut it, "--scale"), "--scale"),
                "--reps" => args.reps = parse_or_die(&need(&mut it, "--reps"), "--reps"),
                "--k" => args.k = parse_or_die(&need(&mut it, "--k"), "--k"),
                "--seed" => args.seed = parse_or_die(&need(&mut it, "--seed"), "--seed"),
                "--eps" => {
                    let v = need(&mut it, "--eps");
                    args.eps = v.split(',').map(|s| parse_or_die(s, "--eps")).collect();
                }
                "--dataset" | "--datasets" => {
                    let v = need(&mut it, "--dataset");
                    args.datasets = v
                        .split(',')
                        .map(|s| {
                            Dataset::from_name(s)
                                .unwrap_or_else(|| die(&format!("unknown dataset {s}")))
                        })
                        .collect();
                }
                "--out" => args.out = Some(PathBuf::from(need(&mut it, "--out"))),
                "--fast" => args.fast = true,
                "--help" | "-h" => {
                    eprintln!("{USAGE}");
                    std::process::exit(0);
                }
                other => die(&format!("unknown flag {other}\n{USAGE}")),
            }
        }
        args
    }

    /// Effective generation scale for a dataset: its default (full size,
    /// Friendster scaled) times `--scale`, shrunk further in `--fast` mode.
    pub fn dataset_scale(&self, d: Dataset) -> f64 {
        let base = d.default_scale() * self.scale;
        if self.fast {
            base * 0.05
        } else {
            base
        }
    }

    /// Pipeline parameters for a graph, with the `--fast` training budget
    /// reduction applied.
    pub fn pipeline_params(&self, num_nodes: usize) -> PipelineParams {
        let mut p = PipelineParams::paper_defaults(num_nodes);
        if self.fast {
            p.iters = 15;
            p.batch = 8;
            p.hidden = 16;
        }
        p
    }

    /// Write `rows` as pretty JSON to `--out` if given. Writes are atomic
    /// (tmp + rename), so a crash mid-write never leaves a truncated file.
    pub fn write_json<T: privim_rt::json::ToJson + ?Sized>(&self, rows: &T) {
        if let Some(path) = &self.out {
            let json = rows.to_json().to_json_string_pretty();
            privim::results::write_atomic(path, &json)
                .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
            eprintln!("wrote {}", path.display());
        }
    }
}

const USAGE: &str = "common flags:
  --scale <f64>        dataset size multiplier (default 1.0)
  --reps <u64>         replicates per configuration (default 5)
  --k <usize>          seed set size (default 50)
  --eps <list>         comma-separated privacy budgets (default 1..6)
  --dataset <list>     comma-separated dataset names (default the main six)
  --out <path>         write JSON results
  --fast               smoke mode: tiny graphs + short training
  --seed <u64>         base RNG seed (default 42)";

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn parse_or_die<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.trim()
        .parse()
        .unwrap_or_else(|_| die(&format!("cannot parse {flag} value {s:?}")))
}

/// Print a Markdown-ish table: header row + aligned columns.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<w$}", w = widths.get(i).copied().unwrap_or(4)))
            .collect();
        println!("| {} |", joined.join(" | "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(&sep);
    for row in rows {
        line(row);
    }
}

/// Mean ± std formatter matching Table II (`93.76 ± 0.73`).
pub fn fmt_mean_std(values: &[f64]) -> String {
    let (m, s) = privim_im::metrics::mean_std(values);
    format!("{m:.2} ± {s:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> ExpArgs {
        ExpArgs::parse(&s.iter().map(|x| x.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_match_paper() {
        let a = parse(&[]);
        assert_eq!(a.reps, 5);
        assert_eq!(a.k, 50);
        assert_eq!(a.eps, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.datasets.len(), 6);
    }

    #[test]
    fn parses_lists() {
        let a = parse(&["--eps", "1,4", "--dataset", "lastfm,gowalla", "--fast"]);
        assert_eq!(a.eps, vec![1.0, 4.0]);
        assert_eq!(a.datasets, vec![Dataset::LastFm, Dataset::Gowalla]);
        assert!(a.fast);
    }

    #[test]
    fn fast_mode_shrinks_budget() {
        let a = parse(&["--fast"]);
        let p = a.pipeline_params(10_000);
        assert!(p.iters < 60);
        assert!(a.dataset_scale(Dataset::LastFm) < 0.1);
    }

    #[test]
    fn fmt_mean_std_rounds() {
        assert_eq!(fmt_mean_std(&[1.0, 2.0, 3.0]), "2.00 ± 0.82");
    }
}

//! Friendster panel of Figure 5: the partition-train-evaluate strategy for
//! graphs that exceed memory (§V-A). The graph is generated at a reduced
//! scale (65.6M nodes do not fit this substrate — see DESIGN.md), split
//! into `--parts` BFS-grown partitions, PrivIM* is trained on subgraphs
//! pooled across partitions, and seeds are selected per-partition then
//! merged.
//!
//! ```text
//! cargo run --release -p privim-bench --bin exp_friendster -- --fast --reps 1
//! ```

use privim::pipeline::{run_method, EvalSetup, Method};
use privim_bench::{print_table, ExpArgs};
use privim_graph::datasets::Dataset;
use privim_graph::partition::{bfs_partition, partition_subgraphs};
use privim_im::{celf_exact, heuristics, one_step_spread};
use privim_rt::ChaCha8Rng;
use privim_rt::SeedableRng;

struct Row {
    method: String,
    epsilon: Option<f64>,
    spread: f64,
    coverage: f64,
}
privim_rt::impl_to_json_struct!(Row {
    method,
    epsilon,
    spread,
    coverage
});

fn main() {
    let args = ExpArgs::parse_env();
    let parts = 4usize;
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
    let scale = args.dataset_scale(Dataset::Friendster);
    let g = Dataset::Friendster.generate_scaled(scale, &mut rng);
    eprintln!(
        "friendster at scale {scale:.6}: |V| = {}, |E| = {}, {} partitions",
        g.num_nodes(),
        g.num_edges(),
        parts
    );

    // Partition (the memory-bounding step) and check balance.
    let partition = bfs_partition(&g, parts);
    let subs = partition_subgraphs(&g, &partition);
    eprintln!(
        "partition sizes: {:?}, cut fraction {:.3}",
        subs.iter().map(|s| s.len()).collect::<Vec<_>>(),
        partition.cut_fraction(&g)
    );

    // Global CELF reference (the evaluation still scores the full graph).
    let celf = celf_exact(&g, args.k);
    let mut rows = vec![Row {
        method: "celf".into(),
        epsilon: None,
        spread: celf.spread,
        coverage: 100.0,
    }];

    // Per-partition pipeline: train + score inside each part, merge the
    // per-part top-(k/parts) seeds, evaluate globally.
    for &eps in &args.eps {
        for (m, label) in [
            (Method::PrivImStar { epsilon: eps }, "privim*"),
            (Method::HpGrat { epsilon: eps }, "hp-grat"),
            (Method::Egn { epsilon: eps }, "egn"),
        ] {
            let per_part = args.k.div_ceil(parts);
            let mut seeds = Vec::new();
            for sub in &subs {
                if sub.len() < 32 {
                    continue;
                }
                let mut srng = ChaCha8Rng::seed_from_u64(args.seed);
                let params = args.pipeline_params(sub.graph.num_nodes());
                let setup = EvalSetup::with_params(&sub.graph, per_part, params, &mut srng);
                let out = privim_bench::must_run("friendster cell", || run_method(m, &setup, args.seed));
                // map local seed ids back into the full graph
                seeds.extend(out.seeds.iter().map(|&l| sub.original_id(l)));
            }
            seeds.truncate(args.k);
            let spread = one_step_spread(&g, &seeds) as f64;
            rows.push(Row {
                method: label.into(),
                epsilon: Some(eps),
                spread,
                coverage: 100.0 * spread / celf.spread,
            });
        }
    }

    // degree reference
    let deg = heuristics::degree_top_k(&g, args.k);
    let dspread = one_step_spread(&g, &deg) as f64;
    rows.push(Row {
        method: "degree".into(),
        epsilon: None,
        spread: dspread,
        coverage: 100.0 * dspread / celf.spread,
    });

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.method.clone(),
                r.epsilon.map_or("∞".into(), |e| format!("{e}")),
                format!("{:.0}", r.spread),
                format!("{:.2}%", r.coverage),
            ]
        })
        .collect();
    print_table(&["method", "eps", "influence spread", "coverage"], &table);
    args.write_json(&rows);
}

//! Example 2 (§III-A): why differentially private *greedy* IM is hopeless.
//!
//! On a Gowalla-scale graph, the node-level sensitivity of the marginal
//! gain equals the potential influence range (≈ |V|), so the Laplace noise
//! at ε = 1 is ~2×10⁵ while true marginal gains live in 10⁰..10³. This
//! binary measures exactly that: it compares the true top gains against
//! noisy gains, and reports how often the noisy argmax lands anywhere near
//! the true top set.
//!
//! ```text
//! cargo run --release -p privim-bench --bin exp_example2_naive_greedy
//! ```

use privim_bench::{print_table, ExpArgs};
use privim_dp::mechanisms::laplace_noise_vec;
use privim_graph::datasets::Dataset;
use privim_im::spread::one_step_marginal_gain;
use privim_rt::ChaCha8Rng;
use privim_rt::SeedableRng;

struct Row {
    epsilon: f64,
    sensitivity: f64,
    noise_scale: f64,
    max_true_gain: f64,
    top50_hit_rate: f64,
}
privim_rt::impl_to_json_struct!(Row {
    epsilon,
    sensitivity,
    noise_scale,
    max_true_gain,
    top50_hit_rate
});

fn main() {
    let args = ExpArgs::parse_env();
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
    // Example 2's setting: Gowalla with |V| ≈ 2×10⁵ (scaled by --scale).
    let scale = args.dataset_scale(Dataset::Gowalla);
    let g = Dataset::Gowalla.generate_scaled(scale, &mut rng);
    let n = g.num_nodes();
    eprintln!("gowalla at scale {scale:.4}: |V| = {n}");

    // True first-step marginal gains of every node.
    let covered = vec![false; n];
    let gains: Vec<f64> = (0..n as u32)
        .map(|v| one_step_marginal_gain(&g, &covered, v) as f64)
        .collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| gains[b].partial_cmp(&gains[a]).unwrap());
    let true_top: std::collections::HashSet<usize> = order[..50].iter().copied().collect();
    let max_gain = gains[order[0]];

    // Sensitivity of the greedy gain query: removing one node can change
    // the gain by its whole influence range — Example 2 uses Δf ≈ |V|.
    let sensitivity = Dataset::Gowalla.spec().nodes as f64 * scale.min(1.0).max(1e-12);
    let mut rows = Vec::new();
    for &eps in &args.eps {
        // Noisy-argmax trial: add Laplace(Δ/ε) to every gain, pick the top
        // 50, measure overlap with the true top 50 — repeated `reps` times.
        let mut hits = 0usize;
        let mut total = 0usize;
        for _ in 0..args.reps.max(1) {
            let noise = laplace_noise_vec(n, eps, sensitivity, &mut rng);
            let mut noisy_order: Vec<usize> = (0..n).collect();
            noisy_order.sort_by(|&a, &b| {
                (gains[b] + noise[b])
                    .partial_cmp(&(gains[a] + noise[a]))
                    .unwrap()
            });
            hits += noisy_order[..50]
                .iter()
                .filter(|v| true_top.contains(v))
                .count();
            total += 50;
        }
        rows.push(Row {
            epsilon: eps,
            sensitivity,
            noise_scale: sensitivity / eps,
            max_true_gain: max_gain,
            top50_hit_rate: hits as f64 / total as f64,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.epsilon),
                format!("{:.0}", r.sensitivity),
                format!("{:.0}", r.noise_scale),
                format!("{:.0}", r.max_true_gain),
                format!("{:.1}%", 100.0 * r.top50_hit_rate),
            ]
        })
        .collect();
    print_table(
        &[
            "eps",
            "sensitivity Δf",
            "noise scale Δf/ε",
            "max true gain",
            "noisy top-50 hit rate",
        ],
        &table,
    );
    println!(
        "\nExpected: hit rate ≈ 50/|V| (pure chance) — the noise scale dwarfs \
         every true gain, reproducing Example 2's conclusion."
    );
    args.write_json(&rows);
}

//! Table I: dataset statistics — generates each calibrated dataset and
//! reports measured |V|, |E|, type and average degree next to the paper's
//! published values.
//!
//! ```text
//! cargo run --release -p privim-bench --bin exp_table1 -- --scale 0.2
//! ```

use privim_bench::{print_table, ExpArgs};
use privim_graph::datasets::{measure, Dataset};
use privim_rt::ChaCha8Rng;
use privim_rt::SeedableRng;

struct Row {
    dataset: String,
    paper_nodes: usize,
    paper_edges: usize,
    paper_avg_degree: f64,
    generated_nodes: usize,
    generated_edges: usize,
    generated_avg_degree: f64,
    directed: bool,
    scale: f64,
}
privim_rt::impl_to_json_struct!(Row {
    dataset,
    paper_nodes,
    paper_edges,
    paper_avg_degree,
    generated_nodes,
    generated_edges,
    generated_avg_degree,
    directed,
    scale
});

fn main() {
    let mut args = ExpArgs::parse_env();
    if args.datasets == Dataset::MAIN_SIX.to_vec() {
        args.datasets = Dataset::ALL.to_vec(); // Table I includes Friendster
    }
    let mut rows = Vec::new();
    for d in &args.datasets {
        let scale = args.dataset_scale(*d);
        let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
        let g = d.generate_scaled(scale, &mut rng);
        let m = measure(d.spec().name, &g);
        let spec = d.spec();
        rows.push(Row {
            dataset: m.name.clone(),
            paper_nodes: spec.nodes,
            paper_edges: spec.edges,
            paper_avg_degree: spec.avg_degree,
            generated_nodes: m.nodes,
            generated_edges: m.edges,
            generated_avg_degree: m.avg_degree,
            directed: m.directed,
            scale,
        });
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                format!("{}", r.paper_nodes),
                format!("{}", r.generated_nodes),
                format!("{}", r.paper_edges),
                format!("{}", r.generated_edges),
                if r.directed { "Directed" } else { "Undirected" }.into(),
                format!("{:.2}", r.paper_avg_degree),
                format!("{:.2}", r.generated_avg_degree),
                format!("{:.4}", r.scale),
            ]
        })
        .collect();
    print_table(
        &[
            "dataset",
            "|V| paper",
            "|V| gen",
            "|E| paper",
            "|E| gen",
            "type",
            "deg paper",
            "deg gen",
            "scale",
        ],
        &table,
    );
    args.write_json(&rows);
}

//! Table III: computational time cost — preprocessing versus per-epoch
//! training seconds for PrivIM*, PrivIM, HP-GRAT and EGN over the six
//! datasets.
//!
//! ```text
//! cargo run --release -p privim-bench --bin exp_table3_time -- --fast --reps 1
//! ```

use privim::pipeline::{run_method, EvalSetup, Method};
use privim_bench::{print_table, ExpArgs};
use privim_rt::ChaCha8Rng;
use privim_rt::SeedableRng;

struct Row {
    method: String,
    dataset: String,
    preprocess_secs: f64,
    per_epoch_secs: f64,
}
privim_rt::impl_to_json_struct!(Row {
    method,
    dataset,
    preprocess_secs,
    per_epoch_secs
});

fn main() {
    let mut args = ExpArgs::parse_env();
    if args.reps == 5 {
        args.reps = 1; // timings don't need replication by default
    }
    let eps = 3.0;
    let methods = [
        (Method::PrivImStar { epsilon: eps }, "privim*"),
        (Method::PrivIm { epsilon: eps }, "privim"),
        (Method::HpGrat { epsilon: eps }, "hp-grat"),
        (Method::Egn { epsilon: eps }, "egn"),
    ];
    let mut rows: Vec<Row> = Vec::new();

    for dataset in args.datasets.clone() {
        let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
        let scale = args.dataset_scale(dataset);
        eprintln!("== {} (scale {scale:.4}) ==", dataset.spec().name);
        let g = dataset.generate_scaled(scale, &mut rng);
        let params = args.pipeline_params(g.num_nodes());
        let setup = EvalSetup::with_params(&g, args.k, params, &mut rng);
        for (method, label) in methods {
            let mut pre = 0.0;
            let mut epoch = 0.0;
            for r in 0..args.reps {
                let out = privim_bench::must_run("table3 cell", || run_method(method, &setup, args.seed.wrapping_add(r)));
                pre += out.preprocess_secs;
                epoch += out.per_epoch_secs;
            }
            rows.push(Row {
                method: label.to_string(),
                dataset: dataset.spec().name.to_string(),
                preprocess_secs: pre / args.reps as f64,
                per_epoch_secs: epoch / args.reps as f64,
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.method.clone(),
                r.dataset.clone(),
                format!("{:.2}s", r.preprocess_secs),
                format!("{:.2}s", r.per_epoch_secs),
            ]
        })
        .collect();
    print_table(
        &["method", "dataset", "preprocessing", "per-epoch training"],
        &table,
    );
    args.write_json(&rows);
}

//! Figure 5 (and Figure 14 via `--dataset hepph`): influence spread of all
//! methods versus privacy budget ε ∈ {1..6} over the six main datasets.
//!
//! Runs through [`CellRunner`], so each (dataset, method, ε) cell is
//! isolated, failed cells are retried and reported without killing the
//! sweep, results land on disk incrementally after every cell, and
//! re-running with the same `--out` resumes instead of recomputing.
//!
//! ```text
//! cargo run --release -p privim-bench --bin exp_fig5 -- --fast --reps 2
//! cargo run --release -p privim-bench --bin exp_fig5              # full size
//! ```

use privim::pipeline::{run_method, EvalSetup, Method};
use privim_bench::{print_table, CellRunner, ExpArgs};
use privim_im::metrics::mean_std;
use privim_rt::json::{ToJson, Value};
use privim_rt::ChaCha8Rng;
use privim_rt::SeedableRng;

// privim-lint: allow(dp-taint, reason = "serializes mean/std of spread and coverage over reps — aggregate evaluation metrics; the DP release happened inside run_method's training loop")
fn cell_row(
    dataset: &str,
    method: Method,
    label_eps: Option<f64>,
    setup: &EvalSetup<'_>,
    args: &ExpArgs,
) -> privim_rt::PrivimResult<Value> {
    let mut spreads = Vec::new();
    let mut coverages = Vec::new();
    for r in 0..args.reps {
        let out = run_method(method, setup, args.seed.wrapping_add(r))?;
        spreads.push(out.spread);
        coverages.push(out.coverage_ratio);
    }
    let (sm, ss) = mean_std(&spreads);
    let (cm, _) = mean_std(&coverages);
    Ok(Value::obj(vec![
        ("dataset", dataset.to_json()),
        ("method", method.name().to_json()),
        ("epsilon", label_eps.to_json()),
        ("spread_mean", sm.to_json()),
        ("spread_std", ss.to_json()),
        ("coverage_mean", cm.to_json()),
    ]))
}

fn main() {
    let args = ExpArgs::parse_env();
    let mut runner = CellRunner::new(args.out.as_deref());

    for dataset in &args.datasets {
        let name = dataset.spec().name;
        // The cell grid for this dataset, in a fixed order (the resume
        // order must match the original run's order exactly).
        let mut grid: Vec<(Method, Option<f64>)> =
            vec![(Method::Celf, None), (Method::NonPrivate, None)];
        for &eps in &args.eps {
            for m in [
                Method::PrivImStar { epsilon: eps },
                Method::PrivIm { epsilon: eps },
                Method::HpGrat { epsilon: eps },
                Method::Hp { epsilon: eps },
                Method::Egn { epsilon: eps },
            ] {
                grid.push((m, Some(eps)));
            }
        }
        let key = |m: &Method, eps: Option<f64>| -> String {
            match eps {
                Some(e) => format!("{name}/{}/eps={e}", m.name()),
                None => format!("{name}/{}", m.name()),
            }
        };

        // Dataset generation is the expensive part of a resumed run; skip
        // it entirely when every cell is already on disk.
        let all_cached = grid.iter().all(|(m, e)| runner.is_cached(&key(m, *e)));
        if all_cached {
            eprintln!("== {name}: all cells cached, skipping generation ==");
            for (m, e) in &grid {
                runner.run_cell(&key(m, *e), || unreachable!("cached"));
            }
            continue;
        }

        let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
        let scale = args.dataset_scale(*dataset);
        eprintln!("== {name} (scale {scale:.4}) ==");
        let g = dataset.generate_scaled(scale, &mut rng);
        let params = args.pipeline_params(g.num_nodes());
        let setup = EvalSetup::with_params(&g, args.k, params, &mut rng);

        for (m, e) in &grid {
            runner.run_cell(&key(m, *e), || cell_row(name, *m, *e, &setup, &args));
        }
    }

    let table: Vec<Vec<String>> = runner
        .rows()
        .iter()
        .map(|r| {
            let s = |k: &str| r.get(k).and_then(|v| v.as_str()).unwrap_or("?").to_string();
            let f = |k: &str| r.get(k).and_then(|v| v.as_f64()).unwrap_or(f64::NAN);
            vec![
                s("dataset"),
                s("method"),
                r.get("epsilon")
                    .and_then(|v| v.as_f64())
                    .map_or("∞".into(), |e| format!("{e}")),
                format!("{:.1} ± {:.1}", f("spread_mean"), f("spread_std")),
                format!("{:.2}%", f("coverage_mean")),
            ]
        })
        .collect();
    print_table(
        &["dataset", "method", "eps", "influence spread", "coverage"],
        &table,
    );
    std::process::exit(runner.finish());
}

//! Figure 5 (and Figure 14 via `--dataset hepph`): influence spread of all
//! methods versus privacy budget ε ∈ {1..6} over the six main datasets.
//!
//! ```text
//! cargo run --release -p privim-bench --bin exp_fig5 -- --fast --reps 2
//! cargo run --release -p privim-bench --bin exp_fig5              # full size
//! ```

use privim::pipeline::{run_method, EvalSetup, Method};
use privim_bench::{print_table, ExpArgs};
use privim_im::metrics::mean_std;
use privim_rt::ChaCha8Rng;
use privim_rt::SeedableRng;

struct Row {
    dataset: String,
    method: String,
    epsilon: Option<f64>,
    spread_mean: f64,
    spread_std: f64,
    coverage_mean: f64,
}
privim_rt::impl_to_json_struct!(Row {
    dataset,
    method,
    epsilon,
    spread_mean,
    spread_std,
    coverage_mean
});

fn main() {
    let args = ExpArgs::parse_env();
    let mut rows: Vec<Row> = Vec::new();

    for dataset in &args.datasets {
        let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
        let scale = args.dataset_scale(*dataset);
        eprintln!("== {} (scale {scale:.4}) ==", dataset.spec().name);
        let g = dataset.generate_scaled(scale, &mut rng);
        let params = args.pipeline_params(g.num_nodes());
        let setup = EvalSetup::with_params(&g, args.k, params, &mut rng);

        // ε-independent references first.
        for m in [Method::Celf, Method::NonPrivate] {
            let outs: Vec<_> = (0..args.reps)
                .map(|r| run_method(m, &setup, args.seed.wrapping_add(r)))
                .collect();
            push_row(&mut rows, dataset.spec().name, &m.name(), None, &outs);
        }

        for &eps in &args.eps {
            for m in [
                Method::PrivImStar { epsilon: eps },
                Method::PrivIm { epsilon: eps },
                Method::HpGrat { epsilon: eps },
                Method::Hp { epsilon: eps },
                Method::Egn { epsilon: eps },
            ] {
                let outs: Vec<_> = (0..args.reps)
                    .map(|r| run_method(m, &setup, args.seed.wrapping_add(r)))
                    .collect();
                push_row(&mut rows, dataset.spec().name, &m.name(), Some(eps), &outs);
            }
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.method.clone(),
                r.epsilon.map_or("∞".into(), |e| format!("{e}")),
                format!("{:.1} ± {:.1}", r.spread_mean, r.spread_std),
                format!("{:.2}%", r.coverage_mean),
            ]
        })
        .collect();
    print_table(
        &["dataset", "method", "eps", "influence spread", "coverage"],
        &table,
    );
    args.write_json(&rows);
}

fn push_row(
    rows: &mut Vec<Row>,
    dataset: &str,
    method: &str,
    epsilon: Option<f64>,
    outs: &[privim::MethodOutput],
) {
    let spreads: Vec<f64> = outs.iter().map(|o| o.spread).collect();
    let coverages: Vec<f64> = outs.iter().map(|o| o.coverage_ratio).collect();
    let (sm, ss) = mean_std(&spreads);
    let (cm, _) = mean_std(&coverages);
    rows.push(Row {
        dataset: dataset.to_string(),
        method: method.to_string(),
        epsilon,
        spread_mean: sm,
        spread_std: ss,
        coverage_mean: cm,
    });
}

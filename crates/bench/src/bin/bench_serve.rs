//! `bench_serve` — open-loop load generator for the privim-serve server.
//!
//! Self-hosts a server in-process (from `--bundle`, or from a fabricated
//! untrained bundle when none is given), then drives it over raw TCP the
//! same way an external client would:
//!
//! * **compare mode** (default): a fixed old-vs-new front-end matrix —
//!   threaded one-shot (the pre-reactor baseline), reactor one-shot,
//!   reactor keep-alive at the same offered load, and reactor
//!   keep-alive + pipelining at 10x — each row against a freshly started
//!   server. Writes every row plus the reactor config to `BENCH_serve.json`.
//! * **`--mode oneshot|keepalive`**: a single custom row
//!   (`--frontend`, `--reuse`, `--pipeline`, `--rps`, `--secs`).
//! * **`--smoke`**: one request per endpoint with response assertions, a
//!   keep-alive reuse check, and a clean-drain check — the CI gate. No
//!   file output.
//!
//! All modes schedule arrivals open-loop (send times are fixed multiples
//! of the gap from t0) and measure latency from the *scheduled* send
//! time, so a slow server shows up as queueing delay in the percentiles
//! instead of silently stretching the arrival process (coordinated
//! omission).
//!
//! ```text
//! cargo run --release -p privim-bench --bin bench_serve                 # compare matrix, writes BENCH_serve.json
//! cargo run --release -p privim-bench --bin bench_serve -- --smoke --bundle ci.json
//! cargo run --release -p privim-bench --bin bench_serve -- --mode keepalive --pipeline 8 --rps 4000
//! ```

use privim::ServeArtifact;
use privim_gnn::{GnnConfig, GnnModel};
use privim_rt::json::Value;
use privim_rt::{ChaCha8Rng, SeedableRng};
use privim_serve::metrics::parse_counter;
use privim_serve::{bundle, start, FrontEnd, ServeConfig, ServerHandle};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Workload mix by request index: mostly embeds (the batched hot path),
/// a band of influence queries (cache-heavy), a trickle of seed queries.
fn endpoint_for(i: usize) -> &'static str {
    match i % 10 {
        0..=5 => "embed",
        6..=8 => "influence",
        _ => "seeds",
    }
}

fn body_for(i: usize, n_nodes: usize) -> String {
    match endpoint_for(i) {
        "embed" => format!("{{\"nodes\": [{}]}}", i % n_nodes),
        // 8 distinct seed pairs cycle, so the spread cache sees a
        // realistic hit/miss blend rather than all-hits or all-misses.
        "influence" => format!(
            "{{\"seeds\": [{}, {}], \"runs\": 32, \"seed\": 9}}",
            (i * 7) % 8 % n_nodes,
            (8 + (i * 13) % 8) % n_nodes
        ),
        _ => "{\"k\": 5}".to_string(),
    }
}

fn path_for(ep: &str) -> &'static str {
    match ep {
        "embed" => "/v1/embed",
        "influence" => "/v1/influence",
        _ => "/v1/seeds",
    }
}

/// Serialize one request frame. `close` asks the server to end the
/// connection after the response (one-shot clients read to EOF).
fn frame(method: &str, path: &str, body: &str, close: bool) -> Vec<u8> {
    let conn = if close { "Connection: close\r\n" } else { "" };
    format!(
        "{method} {path} HTTP/1.1\r\nHost: b\r\n{conn}Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// One-shot HTTP exchange; returns (status, body).
fn request(port: u16, method: &str, path: &str, body: &str) -> (u16, String) {
    let Ok(mut stream) = TcpStream::connect(("127.0.0.1", port)) else {
        return (0, String::new());
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    if stream.write_all(&frame(method, path, body, true)).is_err() {
        return (0, String::new());
    }
    let mut text = String::new();
    if stream.read_to_string(&mut text).is_err() {
        return (0, String::new());
    }
    let status = text
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Read exactly one framed response off a kept-alive connection. `carry`
/// holds over-read bytes (pipelined responses coalesce on the wire).
/// Returns `None` on EOF/error — the caller drops the connection.
fn read_one_framed(stream: &mut TcpStream, carry: &mut Vec<u8>) -> Option<u16> {
    let mut chunk = [0u8; 8192];
    let head_end = loop {
        if let Some(p) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
            break p + 4;
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => carry.extend_from_slice(&chunk[..n]),
        }
    };
    let head = String::from_utf8_lossy(&carry[..head_end]).to_string();
    let status: u16 = head.split_ascii_whitespace().nth(1)?.parse().ok()?;
    let content_length: usize = head
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::trim).map(String::from))?
        .parse()
        .ok()?;
    while carry.len() < head_end + content_length {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => carry.extend_from_slice(&chunk[..n]),
        }
    }
    carry.drain(..head_end + content_length);
    Some(status)
}

fn load_bundle(path: Option<&str>) -> bundle::Bundle {
    match path {
        Some(p) => {
            let f = std::fs::File::open(p).unwrap_or_else(|e| {
                eprintln!("error: open {p}: {e}");
                std::process::exit(1);
            });
            bundle::load(std::io::BufReader::new(f)).unwrap_or_else(|e| {
                eprintln!("error: load {p}: {e}");
                std::process::exit(1);
            })
        }
        None => {
            // Fabricated bundle: serving performance does not depend on
            // trained weights, so skip DP-SGD and bench the server alone.
            let mut rng = ChaCha8Rng::seed_from_u64(17);
            let g = privim_graph::generators::barabasi_albert(400, 3, &mut rng)
                .with_uniform_weights(1.0);
            let artifact = ServeArtifact {
                model: GnnModel::new(GnnConfig::paper_default(), &mut rng),
                epsilon: Some(2.0),
                delta: 1e-4,
                sigma: 1.5,
                steps: 80,
            };
            let mut buf = Vec::new();
            bundle::save(&artifact, &g, &mut buf).expect("in-memory bundle save");
            bundle::load(buf.as_slice()).expect("in-memory bundle load")
        }
    }
}

fn smoke(handle: ServerHandle, n_nodes: usize) {
    let port = handle.port();
    let checks: [(&str, &str, &str); 3] = [
        ("embed", "/v1/embed", "{\"nodes\": [0, 1]}"),
        ("influence", "/v1/influence", "{\"seeds\": [0, 1], \"runs\": 16, \"seed\": 3}"),
        ("seeds", "/v1/seeds", "{\"k\": 3}"),
    ];
    for (name, path, body) in checks {
        let (status, text) = request(port, "POST", path, body);
        assert_eq!(status, 200, "{name}: status {status}, body {text}");
        let v = Value::parse(&text).unwrap_or_else(|e| {
            panic!("{name}: unparseable body {text}: {e}");
        });
        match name {
            "embed" => assert_eq!(
                v.get("scores").and_then(|s| s.as_array()).map(|a| a.len()),
                Some(2),
                "{name}: {text}"
            ),
            "influence" => assert!(
                v.get("spread").and_then(|s| s.as_f64()).unwrap_or(-1.0) >= 2.0,
                "{name}: {text}"
            ),
            _ => assert_eq!(
                v.get("seeds").and_then(|s| s.as_array()).map(|a| a.len()),
                Some(3),
                "{name}: {text}"
            ),
        }
        println!("ok  POST {path}");
    }
    let (status, text) = request(port, "GET", "/healthz", "");
    assert_eq!(status, 200, "healthz: {text}");
    assert!(text.contains("\"ok\""), "healthz: {text}");
    println!("ok  GET /healthz");

    // Two requests down one kept-alive connection (the default front end
    // persists HTTP/1.1 connections).
    let mut ka = TcpStream::connect(("127.0.0.1", port)).expect("keep-alive connect");
    let _ = ka.set_read_timeout(Some(Duration::from_secs(30)));
    let mut carry = Vec::new();
    for _ in 0..2 {
        ka.write_all(&frame("GET", "/healthz", "", false)).expect("keep-alive write");
        let status = read_one_framed(&mut ka, &mut carry).expect("keep-alive response");
        assert_eq!(status, 200, "keep-alive healthz");
    }
    drop(ka);
    println!("ok  keep-alive reuse (2 requests, 1 connection)");

    let (status, text) = request(port, "GET", "/metrics", "");
    assert_eq!(status, 200);
    for (ep, want) in [("embed", 1), ("influence", 1), ("seeds", 1), ("healthz", 3)] {
        let name = format!("privim_requests_total{{endpoint=\"{ep}\"}}");
        assert_eq!(parse_counter(&text, &name), Some(want), "{name}");
    }
    println!("ok  GET /metrics (all requests accounted)");
    let _ = n_nodes;
    let drained = handle.shutdown();
    println!("ok  shutdown drained cleanly ({drained} in-flight at signal)");
    println!("smoke passed");
}

struct Sample {
    endpoint: &'static str,
    latency_us: u64,
    ok: bool,
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0) * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

#[derive(Clone, Copy, PartialEq)]
enum ClientMode {
    OneShot,
    KeepAlive,
}

impl ClientMode {
    fn name(self) -> &'static str {
        match self {
            ClientMode::OneShot => "oneshot",
            ClientMode::KeepAlive => "keepalive",
        }
    }
}

/// One benchmark row: start a fresh server with `frontend`, drive it at
/// `rps` for `secs` with the given client mode, return the row JSON.
struct RowSpec {
    frontend: FrontEnd,
    mode: ClientMode,
    /// Requests per connection before the keep-alive client reconnects.
    reuse: usize,
    /// Max responses outstanding before the client blocks on a read.
    pipeline: usize,
    rps: usize,
    secs: u64,
    /// Server-side micro-batch window. The embed path does one
    /// full-graph forward per pass regardless of batch size, so a wider
    /// window trades per-request latency for pass depth (throughput).
    batch_window_ms: u64,
    /// Server worker threads. Batch depth is capped by the worker count
    /// (each in-flight embed occupies a worker while it coalesces), so
    /// the high-load row needs more of these mostly-blocked threads.
    workers: usize,
}

/// Record a completion against its *scheduled* send time.
fn record(samples: &mut Vec<Sample>, ep: &'static str, t0: Instant, due: Duration, ok: bool) {
    let lat = t0.elapsed().saturating_sub(due);
    samples.push(Sample {
        endpoint: ep,
        latency_us: lat.as_micros() as u64,
        ok,
    });
}

/// Keep-alive sender: one persistent connection, up to `pipeline`
/// requests in flight, reconnecting every `reuse` requests.
fn keepalive_sender(
    port: u16,
    t0: Instant,
    gap: Duration,
    total: usize,
    senders: usize,
    w: usize,
    n_nodes: usize,
    reuse: usize,
    pipeline: usize,
) -> Vec<Sample> {
    let mut samples = Vec::new();
    let mut conn: Option<(TcpStream, Vec<u8>, usize)> = None;
    let mut outstanding: VecDeque<(&'static str, Duration)> = VecDeque::new();
    let drain = |conn: &mut Option<(TcpStream, Vec<u8>, usize)>,
                     outstanding: &mut VecDeque<(&'static str, Duration)>,
                     down_to: usize,
                     samples: &mut Vec<Sample>| {
        while outstanding.len() > down_to {
            let Some((stream, carry, _)) = conn.as_mut() else {
                // Connection already gone: everything unread failed.
                while let Some((ep, due)) = outstanding.pop_front() {
                    record(samples, ep, t0, due, false);
                }
                return;
            };
            match read_one_framed(stream, carry) {
                Some(status) => {
                    let (ep, due) = outstanding.pop_front().expect("response without request");
                    record(samples, ep, t0, due, status == 200);
                }
                None => {
                    *conn = None;
                }
            }
        }
    };

    let mut i = w;
    while i < total {
        let due = gap * i as u32;
        let now = t0.elapsed();
        if due > now {
            std::thread::sleep(due - now);
        }
        if conn.is_none() {
            match TcpStream::connect(("127.0.0.1", port)) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    let _ = s.set_read_timeout(Some(Duration::from_secs(30)));
                    conn = Some((s, Vec::new(), 0));
                }
                Err(_) => {
                    record(&mut samples, endpoint_for(i), t0, due, false);
                    i += senders;
                    continue;
                }
            }
        }
        let ep = endpoint_for(i);
        let body = body_for(i, n_nodes);
        let (wrote, reconnect) = {
            let (stream, _, used) = conn.as_mut().expect("connection just ensured");
            let ok = stream.write_all(&frame("POST", path_for(ep), &body, false)).is_ok();
            if ok {
                *used += 1;
            }
            (ok, *used >= reuse)
        };
        if !wrote {
            conn = None;
            drain(&mut conn, &mut outstanding, 0, &mut samples);
            record(&mut samples, ep, t0, due, false);
            i += senders;
            continue;
        }
        outstanding.push_back((ep, due));
        i += senders;
        // Enforce the pipeline cap; a depth of 1 degenerates to strict
        // request/response alternation.
        drain(&mut conn, &mut outstanding, pipeline.saturating_sub(1), &mut samples);
        if reconnect {
            drain(&mut conn, &mut outstanding, 0, &mut samples);
            conn = None;
        }
    }
    drain(&mut conn, &mut outstanding, 0, &mut samples);
    samples
}

fn run_row(bundle_path: Option<&str>, spec: &RowSpec) -> Value {
    let b = load_bundle(bundle_path);
    let n_nodes = b.graph.num_nodes();
    // Workers spend most of their time blocked (socket reads, batcher
    // waits), so the count is deliberately NOT tied to core count: on a
    // small machine extra workers are what turn queue depth into batch
    // depth for /v1/embed.
    let cfg = ServeConfig {
        workers: spec.workers,
        frontend: spec.frontend,
        batch_window: Duration::from_millis(spec.batch_window_ms),
        ..ServeConfig::default()
    };
    let handle = start(b, cfg).unwrap_or_else(|e| {
        eprintln!("error: start server: {e}");
        std::process::exit(1);
    });
    let port = handle.port();
    let total = spec.rps * spec.secs as usize;
    let gap = Duration::from_secs_f64(1.0 / spec.rps as f64);
    let senders = 16usize.min(total.max(1));
    let label = format!(
        "{:?}/{}{}",
        spec.frontend,
        spec.mode.name(),
        if spec.mode == ClientMode::KeepAlive {
            format!("(reuse={}, pipeline={})", spec.reuse, spec.pipeline)
        } else {
            String::new()
        }
    );
    println!(
        "row {label}: open-loop {} req/s for {} s = {total} requests, {senders} sender threads",
        spec.rps, spec.secs
    );

    let t0 = Instant::now();
    let threads: Vec<_> = (0..senders)
        .map(|w| {
            let (mode, reuse, pipeline) = (spec.mode, spec.reuse, spec.pipeline);
            std::thread::spawn(move || match mode {
                ClientMode::KeepAlive => keepalive_sender(
                    port, t0, gap, total, senders, w, n_nodes, reuse.max(1), pipeline.max(1),
                ),
                ClientMode::OneShot => {
                    let mut samples = Vec::new();
                    let mut i = w;
                    while i < total {
                        // Open loop: send times are fixed multiples of the
                        // gap from t0, independent of response speed.
                        let due = gap * i as u32;
                        let now = t0.elapsed();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        let ep = endpoint_for(i);
                        let body = body_for(i, n_nodes);
                        let (status, _) = request(port, "POST", path_for(ep), &body);
                        record(&mut samples, ep, t0, due, status == 200);
                        i += senders;
                    }
                    samples
                }
            })
        })
        .collect();
    let samples: Vec<Sample> = threads
        .into_iter()
        .flat_map(|t| t.join().expect("sender thread"))
        .collect();
    let elapsed = t0.elapsed().as_secs_f64();

    let (_, exposition) = request(port, "GET", "/metrics", "");
    let counter = |name: &str| parse_counter(&exposition, name).unwrap_or(0);
    let batch_passes = counter("privim_batch_forward_passes_total");
    let batch_served = counter("privim_batch_batched_requests_total");
    let cache_hits = counter("privim_cache_hits_total");
    let cache_misses = counter("privim_cache_misses_total");
    let shed = counter("privim_shed_total");
    let connections = counter("privim_connections_total");
    let reuses = counter("privim_keepalive_reuses_total");
    handle.shutdown();

    let ok = samples.iter().filter(|s| s.ok).count();
    println!(
        "{:<10} {:>6} {:>10} {:>10} {:>10}",
        "endpoint", "n", "p50", "p95", "p99"
    );
    let mut per_endpoint = Vec::new();
    for ep in ["embed", "influence", "seeds"] {
        let mut lat: Vec<u64> = samples
            .iter()
            .filter(|s| s.endpoint == ep && s.ok)
            .map(|s| s.latency_us)
            .collect();
        lat.sort_unstable();
        let (p50, p95, p99) = (
            percentile(&lat, 50.0),
            percentile(&lat, 95.0),
            percentile(&lat, 99.0),
        );
        println!(
            "{ep:<10} {:>6} {:>8}µs {:>8}µs {:>8}µs",
            lat.len(),
            p50,
            p95,
            p99
        );
        per_endpoint.push(Value::obj(vec![
            ("endpoint", Value::Str(ep.to_string())),
            ("completed", Value::Num(lat.len() as f64)),
            ("p50_us", Value::Num(p50 as f64)),
            ("p95_us", Value::Num(p95 as f64)),
            ("p99_us", Value::Num(p99 as f64)),
        ]));
    }
    let throughput = ok as f64 / elapsed;
    println!(
        "{ok}/{total} ok in {elapsed:.2} s = {throughput:.0} req/s; \
         batch: {batch_served} reqs over {batch_passes} passes; \
         cache: {cache_hits} hits / {cache_misses} misses; shed: {shed}; \
         conns: {connections} ({reuses} keep-alive reuses)"
    );

    Value::obj(vec![
        ("frontend", Value::Str(format!("{:?}", spec.frontend).to_lowercase())),
        ("client_mode", Value::Str(spec.mode.name().to_string())),
        ("reuse", Value::Num(spec.reuse as f64)),
        ("pipeline", Value::Num(spec.pipeline as f64)),
        ("offered_rps", Value::Num(spec.rps as f64)),
        ("batch_window_ms", Value::Num(spec.batch_window_ms as f64)),
        ("workers", Value::Num(spec.workers as f64)),
        ("duration_secs", Value::Num(spec.secs as f64)),
        ("requests", Value::Num(total as f64)),
        ("completed_ok", Value::Num(ok as f64)),
        ("achieved_rps", Value::Num(throughput)),
        ("batch_forward_passes", Value::Num(batch_passes as f64)),
        ("batch_served_requests", Value::Num(batch_served as f64)),
        ("cache_hits", Value::Num(cache_hits as f64)),
        ("cache_misses", Value::Num(cache_misses as f64)),
        ("shed", Value::Num(shed as f64)),
        ("connections", Value::Num(connections as f64)),
        ("keepalive_reuses", Value::Num(reuses as f64)),
        ("endpoints", Value::Arr(per_endpoint)),
    ])
}

fn write_doc(rows: Vec<Value>, out: &str) {
    let cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    let defaults = ServeConfig::default();
    let doc = Value::obj(vec![
        ("bench", Value::Str("serve".to_string())),
        ("available_parallelism", Value::Num(cpus as f64)),
        (
            "simd_backend",
            Value::Str(privim_tensor::simd::active().name().to_string()),
        ),
        (
            "simd_features",
            Value::Str(privim_tensor::simd::detected_features()),
        ),
        (
            "reactor_config",
            Value::obj(vec![
                ("queue_cap", Value::Num(defaults.queue_cap as f64)),
                ("idle_timeout_ms", Value::Num(defaults.idle_timeout.as_millis() as f64)),
                ("header_timeout_ms", Value::Num(defaults.header_timeout.as_millis() as f64)),
                ("max_pipeline", Value::Num(defaults.max_pipeline as f64)),
            ]),
        ),
        (
            "note",
            Value::Str(
                "open-loop arrivals measured from scheduled send time (coordinated-omission \
                 safe); latencies include connect + queue wait; the threaded/oneshot row is \
                 the pre-reactor front end; absolute numbers are hardware-dependent (see \
                 EXPERIMENTS.md)"
                    .to_string(),
            ),
        ),
        ("rows", Value::Arr(rows)),
    ]);
    privim::results::write_atomic(out, &doc.to_json_string_pretty()).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke_mode = false;
    let mut bundle_path: Option<String> = None;
    let mut rps = 400usize;
    let mut secs = 5u64;
    let mut out = "BENCH_serve.json".to_string();
    let mut mode: Option<ClientMode> = None;
    let mut frontend = FrontEnd::Reactor;
    let mut reuse = 64usize;
    let mut pipeline = 1usize;
    let mut batch_window_ms = 2u64;
    let mut workers = 8usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke_mode = true,
            "--bundle" => bundle_path = it.next().cloned(),
            "--rps" => rps = it.next().and_then(|s| s.parse().ok()).unwrap_or(rps),
            "--secs" => secs = it.next().and_then(|s| s.parse().ok()).unwrap_or(secs),
            "--out" => out = it.next().cloned().unwrap_or(out),
            "--mode" => {
                mode = match it.next().map(String::as_str) {
                    Some("oneshot") => Some(ClientMode::OneShot),
                    Some("keepalive") => Some(ClientMode::KeepAlive),
                    other => {
                        eprintln!("error: --mode {other:?} (expected oneshot|keepalive)");
                        std::process::exit(2);
                    }
                }
            }
            "--frontend" => {
                frontend = it
                    .next()
                    .and_then(|s| FrontEnd::parse(s))
                    .unwrap_or_else(|| {
                        eprintln!("error: --frontend expects reactor|threaded");
                        std::process::exit(2);
                    })
            }
            "--reuse" => reuse = it.next().and_then(|s| s.parse().ok()).unwrap_or(reuse),
            "--pipeline" => pipeline = it.next().and_then(|s| s.parse().ok()).unwrap_or(pipeline),
            "--batch-window-ms" => {
                batch_window_ms =
                    it.next().and_then(|s| s.parse().ok()).unwrap_or(batch_window_ms)
            }
            "--workers" => workers = it.next().and_then(|s| s.parse().ok()).unwrap_or(workers),
            other => {
                eprintln!(
                    "error: unknown flag {other} (flags: --smoke, --bundle <path>, --rps <n>, \
                     --secs <n>, --out <path>, --mode oneshot|keepalive, \
                     --frontend reactor|threaded, --reuse <n>, --pipeline <n>, \
                     --batch-window-ms <n>, --workers <n>)"
                );
                std::process::exit(2);
            }
        }
    }

    if smoke_mode {
        let b = load_bundle(bundle_path.as_deref());
        let n_nodes = b.graph.num_nodes();
        let cfg = ServeConfig {
            workers: 8,
            frontend,
            ..ServeConfig::default()
        };
        let handle = start(b, cfg).unwrap_or_else(|e| {
            eprintln!("error: start server: {e}");
            std::process::exit(1);
        });
        println!("serving bundle on port {} (|V|={n_nodes}, {frontend:?})", handle.port());
        smoke(handle, n_nodes);
        return;
    }

    let rows = match mode {
        // Single custom row.
        Some(m) => vec![run_row(
            bundle_path.as_deref(),
            &RowSpec {
                frontend,
                mode: m,
                reuse,
                pipeline,
                rps: rps.max(1),
                secs: secs.max(1),
                batch_window_ms,
                workers: workers.max(1),
            },
        )],
        // Compare matrix: the pre-reactor baseline, the reactor under the
        // identical one-shot client, keep-alive at equal offered load
        // (p99 comparison), and keep-alive + pipelining at 10x offered
        // load (throughput headroom).
        None => {
            // The 10x row also raises the worker count: batch depth is
            // capped by workers (each coalescing embed occupies one), and
            // the embed pass costs the same whatever its depth, so extra
            // mostly-blocked workers convert queue depth into pass depth
            // instead of backlog.
            let specs = [
                (FrontEnd::Threaded, ClientMode::OneShot, 1, rps, batch_window_ms, workers),
                (FrontEnd::Reactor, ClientMode::OneShot, 1, rps, batch_window_ms, workers),
                (FrontEnd::Reactor, ClientMode::KeepAlive, 1, rps, batch_window_ms, workers),
                (FrontEnd::Reactor, ClientMode::KeepAlive, 8, rps * 10, batch_window_ms, 64),
            ];
            specs
                .iter()
                .map(|&(frontend, mode, pipeline, rps, batch_window_ms, workers)| {
                    run_row(
                        bundle_path.as_deref(),
                        &RowSpec {
                            frontend,
                            mode,
                            reuse,
                            pipeline,
                            rps: rps.max(1),
                            secs: secs.max(1),
                            batch_window_ms,
                            workers,
                        },
                    )
                })
                .collect()
        }
    };
    write_doc(rows, &out);
}

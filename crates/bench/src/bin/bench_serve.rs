//! `bench_serve` — open-loop load generator for the privim-serve server.
//!
//! Self-hosts a server in-process (from `--bundle`, or from a fabricated
//! untrained bundle when none is given), then drives it over raw TCP the
//! same way an external client would:
//!
//! * **load mode** (default): an open-loop arrival schedule at `--rps`
//!   for `--secs`. Send times are fixed up front — a slow server does not
//!   slow the arrival process down, so queueing delay shows up in the
//!   measured latencies instead of being hidden (closed-loop coordinated
//!   omission). Reports per-endpoint p50/p95/p99 and achieved throughput,
//!   and writes `BENCH_serve.json`.
//! * **`--smoke`**: one request per endpoint with response assertions and
//!   a clean-drain check — the CI gate. No file output.
//!
//! ```text
//! cargo run --release -p privim-bench --bin bench_serve                 # load, writes BENCH_serve.json
//! cargo run --release -p privim-bench --bin bench_serve -- --smoke --bundle ci.json
//! ```

use privim::ServeArtifact;
use privim_gnn::{GnnConfig, GnnModel};
use privim_rt::json::Value;
use privim_rt::{ChaCha8Rng, SeedableRng};
use privim_serve::metrics::parse_counter;
use privim_serve::{bundle, start, ServeConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Workload mix by request index: mostly embeds (the batched hot path),
/// a band of influence queries (cache-heavy), a trickle of seed queries.
fn endpoint_for(i: usize) -> &'static str {
    match i % 10 {
        0..=5 => "embed",
        6..=8 => "influence",
        _ => "seeds",
    }
}

fn body_for(i: usize, n_nodes: usize) -> String {
    match endpoint_for(i) {
        "embed" => format!("{{\"nodes\": [{}]}}", i % n_nodes),
        // 8 distinct seed pairs cycle, so the spread cache sees a
        // realistic hit/miss blend rather than all-hits or all-misses.
        "influence" => format!(
            "{{\"seeds\": [{}, {}], \"runs\": 32, \"seed\": 9}}",
            (i * 7) % 8 % n_nodes,
            (8 + (i * 13) % 8) % n_nodes
        ),
        _ => "{\"k\": 5}".to_string(),
    }
}

fn path_for(ep: &str) -> &'static str {
    match ep {
        "embed" => "/v1/embed",
        "influence" => "/v1/influence",
        _ => "/v1/seeds",
    }
}

/// One-shot HTTP exchange; returns (status, body).
fn request(port: u16, method: &str, path: &str, body: &str) -> (u16, String) {
    let Ok(mut stream) = TcpStream::connect(("127.0.0.1", port)) else {
        return (0, String::new());
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: b\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    if stream.write_all(raw.as_bytes()).is_err() {
        return (0, String::new());
    }
    let mut text = String::new();
    if stream.read_to_string(&mut text).is_err() {
        return (0, String::new());
    }
    let status = text
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn load_bundle(path: Option<&str>) -> bundle::Bundle {
    match path {
        Some(p) => {
            let f = std::fs::File::open(p).unwrap_or_else(|e| {
                eprintln!("error: open {p}: {e}");
                std::process::exit(1);
            });
            bundle::load(std::io::BufReader::new(f)).unwrap_or_else(|e| {
                eprintln!("error: load {p}: {e}");
                std::process::exit(1);
            })
        }
        None => {
            // Fabricated bundle: serving performance does not depend on
            // trained weights, so skip DP-SGD and bench the server alone.
            let mut rng = ChaCha8Rng::seed_from_u64(17);
            let g = privim_graph::generators::barabasi_albert(400, 3, &mut rng)
                .with_uniform_weights(1.0);
            let artifact = ServeArtifact {
                model: GnnModel::new(GnnConfig::paper_default(), &mut rng),
                epsilon: Some(2.0),
                delta: 1e-4,
                sigma: 1.5,
                steps: 80,
            };
            let mut buf = Vec::new();
            bundle::save(&artifact, &g, &mut buf).expect("in-memory bundle save");
            bundle::load(buf.as_slice()).expect("in-memory bundle load")
        }
    }
}

fn smoke(handle: ServerHandle, n_nodes: usize) {
    let port = handle.port();
    let checks: [(&str, &str, &str); 3] = [
        ("embed", "/v1/embed", "{\"nodes\": [0, 1]}"),
        ("influence", "/v1/influence", "{\"seeds\": [0, 1], \"runs\": 16, \"seed\": 3}"),
        ("seeds", "/v1/seeds", "{\"k\": 3}"),
    ];
    for (name, path, body) in checks {
        let (status, text) = request(port, "POST", path, body);
        assert_eq!(status, 200, "{name}: status {status}, body {text}");
        let v = Value::parse(&text).unwrap_or_else(|e| {
            panic!("{name}: unparseable body {text}: {e}");
        });
        match name {
            "embed" => assert_eq!(
                v.get("scores").and_then(|s| s.as_array()).map(|a| a.len()),
                Some(2),
                "{name}: {text}"
            ),
            "influence" => assert!(
                v.get("spread").and_then(|s| s.as_f64()).unwrap_or(-1.0) >= 2.0,
                "{name}: {text}"
            ),
            _ => assert_eq!(
                v.get("seeds").and_then(|s| s.as_array()).map(|a| a.len()),
                Some(3),
                "{name}: {text}"
            ),
        }
        println!("ok  POST {path}");
    }
    let (status, text) = request(port, "GET", "/healthz", "");
    assert_eq!(status, 200, "healthz: {text}");
    assert!(text.contains("\"ok\""), "healthz: {text}");
    println!("ok  GET /healthz");
    let (status, text) = request(port, "GET", "/metrics", "");
    assert_eq!(status, 200);
    for (ep, want) in [("embed", 1), ("influence", 1), ("seeds", 1), ("healthz", 1)] {
        let name = format!("privim_requests_total{{endpoint=\"{ep}\"}}");
        assert_eq!(parse_counter(&text, &name), Some(want), "{name}");
    }
    println!("ok  GET /metrics (all four requests accounted)");
    let _ = n_nodes;
    let drained = handle.shutdown();
    println!("ok  shutdown drained cleanly ({drained} in-flight at signal)");
    println!("smoke passed");
}

struct Sample {
    endpoint: &'static str,
    latency_us: u64,
    ok: bool,
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0) * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

fn load(handle: ServerHandle, n_nodes: usize, rps: usize, secs: u64, out: &str) {
    let port = handle.port();
    let total = rps * secs as usize;
    let gap = Duration::from_secs_f64(1.0 / rps as f64);
    let senders = 16usize.min(total.max(1));
    println!("open-loop: {rps} req/s for {secs} s = {total} requests, {senders} sender threads");

    let t0 = Instant::now();
    let threads: Vec<_> = (0..senders)
        .map(|w| {
            std::thread::spawn(move || {
                let mut samples = Vec::new();
                let mut i = w;
                while i < total {
                    // Open loop: send times are fixed multiples of the gap
                    // from t0, independent of how fast responses come back.
                    let due = gap * i as u32;
                    let now = t0.elapsed();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    let ep = endpoint_for(i);
                    let body = body_for(i, n_nodes);
                    let sent = Instant::now();
                    let (status, _) = request(port, "POST", path_for(ep), &body);
                    samples.push(Sample {
                        endpoint: ep,
                        latency_us: sent.elapsed().as_micros() as u64,
                        ok: status == 200,
                    });
                    i += senders;
                }
                samples
            })
        })
        .collect();
    let samples: Vec<Sample> = threads
        .into_iter()
        .flat_map(|t| t.join().expect("sender thread"))
        .collect();
    let elapsed = t0.elapsed().as_secs_f64();

    let (_, exposition) = request(port, "GET", "/metrics", "");
    let batch_passes = parse_counter(&exposition, "privim_batch_forward_passes_total").unwrap_or(0);
    let batch_served =
        parse_counter(&exposition, "privim_batch_batched_requests_total").unwrap_or(0);
    let cache_hits = parse_counter(&exposition, "privim_cache_hits_total").unwrap_or(0);
    let cache_misses = parse_counter(&exposition, "privim_cache_misses_total").unwrap_or(0);
    let shed = parse_counter(&exposition, "privim_shed_total").unwrap_or(0);
    handle.shutdown();

    let ok = samples.iter().filter(|s| s.ok).count();
    println!(
        "{:<10} {:>6} {:>10} {:>10} {:>10}",
        "endpoint", "n", "p50", "p95", "p99"
    );
    let mut per_endpoint = Vec::new();
    for ep in ["embed", "influence", "seeds"] {
        let mut lat: Vec<u64> = samples
            .iter()
            .filter(|s| s.endpoint == ep && s.ok)
            .map(|s| s.latency_us)
            .collect();
        lat.sort_unstable();
        let (p50, p95, p99) = (
            percentile(&lat, 50.0),
            percentile(&lat, 95.0),
            percentile(&lat, 99.0),
        );
        println!(
            "{ep:<10} {:>6} {:>8}µs {:>8}µs {:>8}µs",
            lat.len(),
            p50,
            p95,
            p99
        );
        per_endpoint.push(Value::obj(vec![
            ("endpoint", Value::Str(ep.to_string())),
            ("completed", Value::Num(lat.len() as f64)),
            ("p50_us", Value::Num(p50 as f64)),
            ("p95_us", Value::Num(p95 as f64)),
            ("p99_us", Value::Num(p99 as f64)),
        ]));
    }
    let throughput = ok as f64 / elapsed;
    println!(
        "{ok}/{total} ok in {elapsed:.2} s = {throughput:.0} req/s; \
         batch: {batch_served} reqs over {batch_passes} passes; \
         cache: {cache_hits} hits / {cache_misses} misses; shed: {shed}"
    );

    let cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    let doc = Value::obj(vec![
        ("bench", Value::Str("serve".to_string())),
        ("offered_rps", Value::Num(rps as f64)),
        ("duration_secs", Value::Num(secs as f64)),
        ("requests", Value::Num(total as f64)),
        ("completed_ok", Value::Num(ok as f64)),
        ("achieved_rps", Value::Num(throughput)),
        ("available_parallelism", Value::Num(cpus as f64)),
        (
            "simd_backend",
            Value::Str(privim_tensor::simd::active().name().to_string()),
        ),
        (
            "simd_features",
            Value::Str(privim_tensor::simd::detected_features()),
        ),
        ("batch_forward_passes", Value::Num(batch_passes as f64)),
        ("batch_served_requests", Value::Num(batch_served as f64)),
        ("cache_hits", Value::Num(cache_hits as f64)),
        ("cache_misses", Value::Num(cache_misses as f64)),
        ("shed", Value::Num(shed as f64)),
        (
            "note",
            Value::Str(
                "open-loop arrivals (coordinated-omission safe); latencies include connect + \
                 queue wait; absolute numbers are hardware-dependent (see EXPERIMENTS.md)"
                    .to_string(),
            ),
        ),
        ("endpoints", Value::Arr(per_endpoint)),
    ]);
    privim::results::write_atomic(out, &doc.to_json_string_pretty()).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke_mode = false;
    let mut bundle_path: Option<String> = None;
    let mut rps = 400usize;
    let mut secs = 5u64;
    let mut out = "BENCH_serve.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke_mode = true,
            "--bundle" => bundle_path = it.next().cloned(),
            "--rps" => rps = it.next().and_then(|s| s.parse().ok()).unwrap_or(rps),
            "--secs" => secs = it.next().and_then(|s| s.parse().ok()).unwrap_or(secs),
            "--out" => out = it.next().cloned().unwrap_or(out),
            other => {
                eprintln!(
                    "error: unknown flag {other} (flags: --smoke, --bundle <path>, --rps <n>, --secs <n>, --out <path>)"
                );
                std::process::exit(2);
            }
        }
    }

    let b = load_bundle(bundle_path.as_deref());
    let n_nodes = b.graph.num_nodes();
    // Workers spend most of their time blocked (socket reads, batcher
    // waits), so the count is deliberately NOT tied to core count: on a
    // small machine extra workers are what turn queue depth into batch
    // depth for /v1/embed.
    let cfg = ServeConfig {
        workers: 8,
        ..ServeConfig::default()
    };
    let handle = start(b, cfg).unwrap_or_else(|e| {
        eprintln!("error: start server: {e}");
        std::process::exit(1);
    });
    println!("serving fabricated-or-loaded bundle on port {} (|V|={n_nodes})", handle.port());
    if smoke_mode {
        smoke(handle, n_nodes);
    } else {
        load(handle, n_nodes, rps.max(1), secs.max(1), &out);
    }
}

//! Ablation benches for the design choices DESIGN.md §5 calls out:
//!
//! - `--which mu`        : frequency-decay exponent μ ∈ {0, 0.5, 1, 2} (Eq. 9)
//! - `--which s`         : BES shrink factor s ∈ {1, 2, 4, 8}
//! - `--which tau`       : RWR restart probability τ ∈ {0, 0.15, 0.3, 0.5}
//! - `--which clipping`  : per-subgraph clip bound C ∈ {0.1, 0.5, 1, 4}
//! - `--which accountant`: Theorem 3 mixture bound vs naive (unamplified)
//!   Gaussian composition — reports the calibrated σ of each
//!
//! ```text
//! cargo run --release -p privim-bench --bin exp_ablations -- --which mu --dataset lastfm --fast
//! ```

use privim::pipeline::{run_method, EvalSetup, Method};
use privim_bench::{print_table, ExpArgs};
use privim_dp::accountant::{calibrate_sigma, PrivacyParams};
use privim_im::metrics::mean_std;
use privim_rt::ChaCha8Rng;
use privim_rt::SeedableRng;

struct Row {
    which: String,
    dataset: String,
    setting: String,
    value_mean: f64,
    value_std: f64,
}
privim_rt::impl_to_json_struct!(Row {
    which,
    dataset,
    setting,
    value_mean,
    value_std
});

fn main() {
    // peel off --which before the common parser sees it
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "mu".to_string();
    if let Some(i) = argv.iter().position(|a| a == "--which") {
        argv.remove(i);
        if i < argv.len() {
            which = argv.remove(i);
        }
    }
    let args = ExpArgs::parse(&argv);
    let eps = 3.0;
    let mut rows: Vec<Row> = Vec::new();

    if which == "accountant" {
        // Pure accounting comparison, dataset-independent.
        let amplified = PrivacyParams {
            n_g: 4,
            batch: 32,
            container: 300,
            steps: 80,
        };
        // "naive composition": no subsampling amplification (container = n_g)
        let naive = PrivacyParams {
            container: 4,
            ..amplified
        };
        for target in [1.0, 2.0, 3.0, 4.0, 6.0] {
            let s_amp = calibrate_sigma(target, 1e-5, &amplified);
            let s_naive = calibrate_sigma(target, 1e-5, &naive);
            rows.push(Row {
                which: which.clone(),
                dataset: "-".into(),
                setting: format!("eps={target}"),
                value_mean: s_amp,
                value_std: s_naive,
            });
        }
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.setting.clone(),
                    format!("{:.3}", r.value_mean),
                    format!("{:.3}", r.value_std),
                    format!("{:.1}x", r.value_std / r.value_mean),
                ]
            })
            .collect();
        print_table(
            &[
                "budget",
                "sigma (Theorem 3)",
                "sigma (no amplification)",
                "saving",
            ],
            &table,
        );
        args.write_json(&rows);
        return;
    }

    for dataset in args.datasets.clone() {
        let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
        let scale = args.dataset_scale(dataset);
        eprintln!("== {} (scale {scale:.4}) ==", dataset.spec().name);
        let g = dataset.generate_scaled(scale, &mut rng);

        let settings: Vec<(String, f64)> = match which.as_str() {
            "mu" => [0.0, 0.5, 1.0, 2.0]
                .iter()
                .map(|&v| (format!("mu={v}"), v))
                .collect(),
            "s" => [1.0, 2.0, 4.0, 8.0]
                .iter()
                .map(|&v| (format!("s={v}"), v))
                .collect(),
            "tau" => [0.0, 0.15, 0.3, 0.5]
                .iter()
                .map(|&v| (format!("tau={v}"), v))
                .collect(),
            "clipping" => [0.1, 0.5, 1.0, 4.0]
                .iter()
                .map(|&v| (format!("C={v}"), v))
                .collect(),
            other => {
                eprintln!("unknown ablation {other}; use mu|s|tau|clipping|accountant");
                std::process::exit(2);
            }
        };

        for (label, v) in settings {
            let mut params = args.pipeline_params(g.num_nodes());
            match which.as_str() {
                "mu" => params.decay = v,
                "s" => params.shrink = v as usize,
                "tau" => params.return_prob = v,
                "clipping" => params.clip = v,
                _ => unreachable!(),
            }
            let mut srng = ChaCha8Rng::seed_from_u64(args.seed);
            let setup = EvalSetup::with_params(&g, args.k, params, &mut srng);
            let coverages: Vec<f64> = (0..args.reps)
                .map(|r| {
                    privim_bench::must_run("ablation cell", || run_method(Method::PrivImStar { epsilon: eps }, &setup, args.seed + r))
                        .coverage_ratio
                })
                .collect();
            let (m, s) = mean_std(&coverages);
            rows.push(Row {
                which: which.clone(),
                dataset: dataset.spec().name.to_string(),
                setting: label,
                value_mean: m,
                value_std: s,
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.setting.clone(),
                format!("{:.2} ± {:.2}", r.value_mean, r.value_std),
            ]
        })
        .collect();
    print_table(&["dataset", "setting", "coverage ratio"], &table);
    args.write_json(&rows);
}

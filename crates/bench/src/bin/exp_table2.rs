//! Table II: coverage-ratio ablation of the dual-stage sampling scheme —
//! PrivIM (naive) vs PrivIM+SCS vs PrivIM+SCS+BES (= PrivIM*) at
//! ε ∈ {1, 4}, mean ± std over `--reps` runs, plus the Non-Private
//! reference row.
//!
//! Each (dataset, method, ε) cell runs isolated through [`CellRunner`]:
//! failures are retried/reported per cell, output is written atomically
//! after every cell, and an interrupted sweep resumes from its `--out`
//! file.
//!
//! ```text
//! cargo run --release -p privim-bench --bin exp_table2 -- --fast
//! ```

use privim::pipeline::{run_method, EvalSetup, Method};
use privim_bench::{fmt_mean_std, print_table, CellRunner, ExpArgs};
use privim_rt::json::{ToJson, Value};
use privim_rt::ChaCha8Rng;
use privim_rt::SeedableRng;

// privim-lint: allow(dp-taint, reason = "serializes mean/std coverage over reps — aggregate evaluation metrics; the DP release happened inside run_method's training loop")
fn cell_row(
    dataset: &str,
    method: Method,
    label: &str,
    setup: &EvalSetup<'_>,
    args: &ExpArgs,
) -> privim_rt::PrivimResult<Value> {
    let mut coverages = Vec::new();
    for r in 0..args.reps {
        coverages.push(run_method(method, setup, args.seed.wrapping_add(r))?.coverage_ratio);
    }
    let (m, s) = privim_im::metrics::mean_std(&coverages);
    Ok(Value::obj(vec![
        ("method", label.to_json()),
        ("epsilon", method.epsilon().to_json()),
        ("dataset", dataset.to_json()),
        ("coverage_mean", m.to_json()),
        ("coverage_std", s.to_json()),
        ("pretty", fmt_mean_std(&coverages).to_json()),
    ]))
}

fn main() {
    let mut args = ExpArgs::parse_env();
    if args.eps == vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0] {
        args.eps = vec![4.0, 1.0]; // Table II reports ε = 4 and ε = 1
    }
    let mut runner = CellRunner::new(args.out.as_deref());

    for dataset in args.datasets.clone() {
        let name = dataset.spec().name;
        let mut grid: Vec<(Method, String)> =
            vec![(Method::NonPrivate, "non-private".to_string())];
        for &eps in &args.eps {
            grid.push((Method::PrivIm { epsilon: eps }, "privim".into()));
            grid.push((Method::PrivImScs { epsilon: eps }, "privim+scs".into()));
            grid.push((
                Method::PrivImStar { epsilon: eps },
                "privim+scs+bes (privim*)".into(),
            ));
        }
        let key = |m: &Method, label: &str| -> String {
            match m.epsilon() {
                Some(e) => format!("{name}/{label}/eps={e}"),
                None => format!("{name}/{label}"),
            }
        };

        let all_cached = grid.iter().all(|(m, l)| runner.is_cached(&key(m, l)));
        if all_cached {
            eprintln!("== {name}: all cells cached, skipping generation ==");
            for (m, l) in &grid {
                runner.run_cell(&key(m, l), || unreachable!("cached"));
            }
            continue;
        }

        let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
        let scale = args.dataset_scale(dataset);
        eprintln!("== {name} (scale {scale:.4}) ==");
        let g = dataset.generate_scaled(scale, &mut rng);
        let params = args.pipeline_params(g.num_nodes());
        let setup = EvalSetup::with_params(&g, args.k, params, &mut rng);

        for (m, l) in &grid {
            runner.run_cell(&key(m, l), || cell_row(name, *m, l, &setup, &args));
        }
    }

    // Pivot: method × ε rows, dataset columns (the paper's layout).
    let rows = runner.rows();
    let datasets: Vec<String> = args
        .datasets
        .iter()
        .map(|d| d.spec().name.to_string())
        .collect();
    let row_method = |r: &Value| -> String {
        r.get("method")
            .and_then(|v| v.as_str())
            .unwrap_or("?")
            .to_string()
    };
    let row_eps = |r: &Value| -> Option<f64> { r.get("epsilon").and_then(|v| v.as_f64()) };
    let mut keys: Vec<(String, Option<f64>)> = Vec::new();
    for r in rows {
        let k = (row_method(r), row_eps(r));
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    let table: Vec<Vec<String>> = keys
        .iter()
        .map(|(m, e)| {
            let mut row = vec![m.clone(), e.map_or("∞".into(), |x| format!("{x}"))];
            for d in &datasets {
                let cell = rows
                    .iter()
                    .find(|r| {
                        &row_method(r) == m
                            && row_eps(r) == *e
                            && r.get("dataset").and_then(|v| v.as_str()) == Some(d)
                    })
                    .and_then(|r| r.get("pretty").and_then(|v| v.as_str()))
                    .unwrap_or_default()
                    .to_string();
                row.push(cell);
            }
            row
        })
        .collect();
    let mut headers: Vec<&str> = vec!["method", "eps"];
    let owned: Vec<String> = datasets.clone();
    headers.extend(owned.iter().map(|s| s.as_str()));
    print_table(&headers, &table);
    std::process::exit(runner.finish());
}

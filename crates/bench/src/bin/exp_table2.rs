//! Table II: coverage-ratio ablation of the dual-stage sampling scheme —
//! PrivIM (naive) vs PrivIM+SCS vs PrivIM+SCS+BES (= PrivIM*) at
//! ε ∈ {1, 4}, mean ± std over `--reps` runs, plus the Non-Private
//! reference row.
//!
//! ```text
//! cargo run --release -p privim-bench --bin exp_table2 -- --fast
//! ```

use privim::pipeline::{run_method, EvalSetup, Method};
use privim_bench::{fmt_mean_std, print_table, ExpArgs};
use privim_rt::ChaCha8Rng;
use privim_rt::SeedableRng;

struct Row {
    method: String,
    epsilon: Option<f64>,
    dataset: String,
    coverage_mean: f64,
    coverage_std: f64,
    pretty: String,
}
privim_rt::impl_to_json_struct!(Row {
    method,
    epsilon,
    dataset,
    coverage_mean,
    coverage_std,
    pretty
});

fn main() {
    let mut args = ExpArgs::parse_env();
    if args.eps == vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0] {
        args.eps = vec![4.0, 1.0]; // Table II reports ε = 4 and ε = 1
    }
    let mut rows: Vec<Row> = Vec::new();

    for dataset in args.datasets.clone() {
        let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
        let scale = args.dataset_scale(dataset);
        eprintln!("== {} (scale {scale:.4}) ==", dataset.spec().name);
        let g = dataset.generate_scaled(scale, &mut rng);
        let params = args.pipeline_params(g.num_nodes());
        let setup = EvalSetup::with_params(&g, args.k, params, &mut rng);

        let record = |method: Method, label: &str, rows: &mut Vec<Row>| {
            let coverages: Vec<f64> = (0..args.reps)
                .map(|r| run_method(method, &setup, args.seed.wrapping_add(r)).coverage_ratio)
                .collect();
            let (m, s) = privim_im::metrics::mean_std(&coverages);
            rows.push(Row {
                method: label.to_string(),
                epsilon: method.epsilon(),
                dataset: dataset.spec().name.to_string(),
                coverage_mean: m,
                coverage_std: s,
                pretty: fmt_mean_std(&coverages),
            });
        };

        record(Method::NonPrivate, "non-private", &mut rows);
        for &eps in &args.eps {
            record(Method::PrivIm { epsilon: eps }, "privim", &mut rows);
            record(Method::PrivImScs { epsilon: eps }, "privim+scs", &mut rows);
            record(
                Method::PrivImStar { epsilon: eps },
                "privim+scs+bes (privim*)",
                &mut rows,
            );
        }
    }

    // Pivot: method × ε rows, dataset columns (the paper's layout).
    let datasets: Vec<String> = args
        .datasets
        .iter()
        .map(|d| d.spec().name.to_string())
        .collect();
    let mut keys: Vec<(String, Option<f64>)> = Vec::new();
    for r in &rows {
        let k = (r.method.clone(), r.epsilon);
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    let table: Vec<Vec<String>> = keys
        .iter()
        .map(|(m, e)| {
            let mut row = vec![m.clone(), e.map_or("∞".into(), |x| format!("{x}"))];
            for d in &datasets {
                let cell = rows
                    .iter()
                    .find(|r| &r.method == m && r.epsilon == *e && &r.dataset == d)
                    .map(|r| r.pretty.clone())
                    .unwrap_or_default();
                row.push(cell);
            }
            row
        })
        .collect();
    let mut headers: Vec<&str> = vec!["method", "eps"];
    let owned: Vec<String> = datasets.clone();
    headers.extend(owned.iter().map(|s| s.as_str()));
    print_table(&headers, &table);
    args.write_json(&rows);
}

//! Figures 8, 12 and 15: the §IV-C indicator versus empirical influence
//! spread. For each dataset, sweeps `M` at a fixed `n` (and `n` at the
//! indicator-optimal `M`), printing the normalised indicator value next to
//! the measured spread so the peak alignment can be checked. Fig. 15 is the
//! same sweep at ε ∈ {1, 6} (`--eps 1,6 --dataset lastfm`).
//!
//! ```text
//! cargo run --release -p privim-bench --bin exp_fig8_indicator -- --fast
//! ```

use privim::pipeline::{run_method, EvalSetup, Method};
use privim_bench::{print_table, ExpArgs};
use privim_im::metrics::mean_std;
use privim_rt::ChaCha8Rng;
use privim_rt::SeedableRng;
use privim_sampling::{Indicator, IndicatorParams};

struct Row {
    dataset: String,
    epsilon: f64,
    sweep: &'static str,
    n: usize,
    m: u32,
    indicator: f64,
    spread_mean: f64,
    spread_std: f64,
}
privim_rt::impl_to_json_struct!(Row {
    dataset,
    epsilon,
    sweep,
    n,
    m,
    indicator,
    spread_mean,
    spread_std
});

fn main() {
    let mut args = ExpArgs::parse_env();
    if args.eps == vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0] {
        args.eps = vec![3.0]; // Fig. 8 uses ε = 3; Fig. 15 passes 1,6
    }
    let mut rows: Vec<Row> = Vec::new();

    for dataset in args.datasets.clone() {
        let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
        let scale = args.dataset_scale(dataset);
        eprintln!("== {} (scale {scale:.4}) ==", dataset.spec().name);
        let g = dataset.generate_scaled(scale, &mut rng);
        // The indicator models the *published* dataset size, not the scaled
        // instance, so feed it the paper's |V|.
        let ind = Indicator::for_dataset(IndicatorParams::paper_values(), dataset.spec().nodes);
        let base = args.pipeline_params(g.num_nodes());
        let (n_star, m_star) =
            ind.best_parameters(&[10, 20, 30, 40, 50, 60, 70, 80], &[2, 3, 4, 6, 8, 10, 12]);

        for &eps in &args.eps {
            // Sweep M at fixed n*.
            let m_grid = [2u32, 4, 6, 8, 10];
            let cands: Vec<(f64, f64)> =
                m_grid.iter().map(|&m| (n_star as f64, m as f64)).collect();
            let (ind_vals, _) = ind.normalized_over(&cands);
            for (i, &m) in m_grid.iter().enumerate() {
                let mut params = base;
                params.subgraph_size = n_star;
                params.threshold = m;
                let mut srng = ChaCha8Rng::seed_from_u64(args.seed);
                let setup = EvalSetup::with_params(&g, args.k, params, &mut srng);
                let spreads: Vec<f64> = (0..args.reps)
                    .map(|r| {
                        privim_bench::must_run("fig8 cell", || run_method(Method::PrivImStar { epsilon: eps }, &setup, args.seed + r))
                            .spread
                    })
                    .collect();
                let (mean, std) = mean_std(&spreads);
                rows.push(Row {
                    dataset: dataset.spec().name.to_string(),
                    epsilon: eps,
                    sweep: "M",
                    n: n_star,
                    m,
                    indicator: ind_vals[i],
                    spread_mean: mean,
                    spread_std: std,
                });
            }
            // Sweep n at fixed M*.
            let n_grid = [20usize, 40, 60, 80];
            let cands: Vec<(f64, f64)> =
                n_grid.iter().map(|&n| (n as f64, m_star as f64)).collect();
            let (ind_vals, _) = ind.normalized_over(&cands);
            for (i, &n) in n_grid.iter().enumerate() {
                let mut params = base;
                params.subgraph_size = n;
                params.threshold = m_star;
                let mut srng = ChaCha8Rng::seed_from_u64(args.seed);
                let setup = EvalSetup::with_params(&g, args.k, params, &mut srng);
                let spreads: Vec<f64> = (0..args.reps)
                    .map(|r| {
                        privim_bench::must_run("fig8 cell", || run_method(Method::PrivImStar { epsilon: eps }, &setup, args.seed + r))
                            .spread
                    })
                    .collect();
                let (mean, std) = mean_std(&spreads);
                rows.push(Row {
                    dataset: dataset.spec().name.to_string(),
                    epsilon: eps,
                    sweep: "n",
                    n,
                    m: m_star,
                    indicator: ind_vals[i],
                    spread_mean: mean,
                    spread_std: std,
                });
            }
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                format!("{}", r.epsilon),
                r.sweep.to_string(),
                format!("{}", r.n),
                format!("{}", r.m),
                format!("{:.3}", r.indicator),
                format!("{:.1} ± {:.1}", r.spread_mean, r.spread_std),
            ]
        })
        .collect();
    print_table(
        &[
            "dataset",
            "eps",
            "sweep",
            "n",
            "M",
            "indicator",
            "influence spread",
        ],
        &table,
    );
    args.write_json(&rows);
}

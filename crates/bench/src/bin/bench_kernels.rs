//! Kernel micro-benchmarks: the first point of the perf trajectory.
//!
//! Times the tensor primitives the DP-SGD hot path bottoms out in —
//! `Matrix::matmul`, `Matrix::transpose`, `Csr::spmm`, `Csr::spmm_transpose`,
//! the `simd` reductions (`dot`, `sum`) and the DP-SGD clip loop — in
//! several configurations per kernel:
//!
//! * **naive** — the pre-tiling seed kernel (re-implemented here verbatim),
//! * **per backend** — the current kernel pinned to each SIMD backend the
//!   CPU supports (`scalar` always, then `sse2`/`avx2`/`neon` as detected),
//!   serial (`set_threads(1)`),
//! * **serial** — the current kernel under the default (`PRIVIM_SIMD`
//!   env / auto) backend at 1 thread,
//! * **par4** — the same on the persistent pool at `set_threads(4)`.
//!
//! Before any timing, every kernel's output is asserted *bit-identical*
//! across backends and thread counts (and against its naive reference
//! where one exists) — a benchmark of a wrong kernel is worse than no
//! benchmark. This is the determinism contract of `privim_tensor::simd`
//! (DESIGN.md §14) being re-proved on the bench's own inputs.
//!
//! A final section times the int8-quantized inference matmul
//! (`QuantWeights::matmul`) against the dense `f64` product and reports
//! the quantization error the integer path trades for its speed.
//!
//! All wall-clock reads go through `privim_rt::bench::time_iters` (the
//! workspace's single timing point, per the `wall-clock` lint rule).
//!
//! ```text
//! cargo run --release -p privim-bench --bin bench_kernels              # full, writes BENCH_kernels.json
//! cargo run --release -p privim-bench --bin bench_kernels -- --smoke  # tiny sizes, no file output
//! ```

use privim_graph::generators;
use privim_rt::bench::time_iters;
use privim_rt::json::Value;
use privim_rt::{ChaCha8Rng, Rng, SeedableRng};
use privim_tensor::{simd, GradClip, Matrix, QuantWeights, SparseMatrix};

/// Seed-era dense kernel: plain `i → k → j` scalar loop with the zero-skip.
/// Term order per output element is k-ascending, exactly like the blocked
/// kernel — so the two must agree bitwise, not just approximately.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for kx in 0..k {
            let aik = a.get(i, kx);
            // exact zero-skip mirrors the production kernel so the
            // bit-identity assertion is meaningful
            if aik == 0.0 {
                continue;
            }
            let brow = b.row(kx);
            let orow = out.row_mut(i);
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += aik * bv;
            }
        }
    }
    out
}

/// Seed-era transpose: the plain double loop. A transpose is a pure
/// permutation, so any implementation is bit-identical by construction.
fn naive_transpose(a: &Matrix) -> Matrix {
    let (m, n) = a.shape();
    let mut out = Matrix::zeros(n, m);
    for i in 0..m {
        for (j, &v) in a.row(i).iter().enumerate() {
            out.row_mut(j)[i] = v;
        }
    }
    out
}

/// Seed-era `S·D` kernel: per output row, gather source rows in CSR
/// column order — the elementwise accumulation order the production spmm
/// preserves (its `axpy` never reassociates across elements).
fn naive_spmm(s: &SparseMatrix, dense: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(s.rows(), dense.cols());
    for r in 0..s.rows() {
        let (cols, vals) = s.row(r);
        let orow = out.row_mut(r);
        for (&c, &v) in cols.iter().zip(vals) {
            for (o, &dv) in orow.iter_mut().zip(dense.row(c as usize)) {
                *o += v * dv;
            }
        }
    }
    out
}

/// Seed-era `Aᵀ·D` kernel: scatter rows of `dense` into the output, source
/// rows ascending — the accumulation order the cached-transpose spmm
/// reproduces.
fn naive_spmm_transpose(s: &SparseMatrix, dense: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(s.cols(), dense.cols());
    for r in 0..s.rows() {
        let (cols, vals) = s.row(r);
        let drow: Vec<f64> = dense.row(r).to_vec();
        for (&c, &v) in cols.iter().zip(vals) {
            let orow = out.row_mut(c as usize);
            for (o, &dv) in orow.iter_mut().zip(&drow) {
                *o += v * dv;
            }
        }
    }
    out
}

fn random_matrix(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.gen::<f64>() - 0.5).collect(),
    )
}

fn assert_bit_identical(name: &str, a: &Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "{name}: shape mismatch");
    for (i, (x, y)) in a.data().iter().zip(b.data()).collect::<Vec<_>>().into_iter().enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{name}: bit mismatch at flat index {i}: {x:?} vs {y:?}"
        );
    }
}

/// The backends this CPU can actually run: `scalar` always, then every
/// wider backend whose forced resolution sticks.
fn available_backends() -> Vec<(simd::Choice, &'static str)> {
    let mut v: Vec<(simd::Choice, &'static str)> = vec![(simd::Choice::Scalar, "scalar")];
    for (c, n) in [
        (simd::Choice::Sse2, "sse2"),
        (simd::Choice::Avx2, "avx2"),
        (simd::Choice::Neon, "neon"),
    ] {
        simd::set_backend(Some(c));
        if simd::active().name() == n {
            v.push((c, n));
        }
    }
    simd::set_backend(None);
    v
}

struct CaseResult {
    name: String,
    shape: String,
    naive_secs: Option<f64>,
    /// Serial (1-thread) seconds per iteration, per pinned backend.
    backend_secs: Vec<(&'static str, f64)>,
    /// Serial under the default (env/auto) backend resolution.
    serial_secs: f64,
    par4_secs: f64,
    note: Option<&'static str>,
}

impl CaseResult {
    fn scalar_secs(&self) -> Option<f64> {
        self.backend_secs
            .iter()
            .find(|(n, _)| *n == "scalar")
            .map(|&(_, s)| s)
    }

    fn best_simd_secs(&self) -> Option<f64> {
        self.backend_secs
            .iter()
            .filter(|(n, _)| *n != "scalar")
            .map(|&(_, s)| s)
            .fold(None, |acc: Option<f64>, s| Some(acc.map_or(s, |a| a.min(s))))
    }

    fn to_json(&self) -> Value {
        let speedup_tiling = self.naive_secs.map(|n| n / self.serial_secs);
        let speedup_simd = match (self.scalar_secs(), self.best_simd_secs()) {
            (Some(sc), Some(best)) => Some(sc / best),
            _ => None,
        };
        let mut fields = vec![
            ("kernel", Value::Str(self.name.clone())),
            ("shape", Value::Str(self.shape.clone())),
            (
                "naive_secs_per_iter",
                self.naive_secs.map_or(Value::Null, Value::Num),
            ),
            (
                "backend_secs_per_iter",
                Value::Obj(
                    self.backend_secs
                        .iter()
                        .map(|&(n, s)| (n.to_string(), Value::Num(s)))
                        .collect(),
                ),
            ),
            ("serial_secs_per_iter", Value::Num(self.serial_secs)),
            ("par4_secs_per_iter", Value::Num(self.par4_secs)),
            (
                "speedup_serial_vs_naive",
                speedup_tiling.map_or(Value::Null, Value::Num),
            ),
            (
                "speedup_simd_vs_scalar",
                speedup_simd.map_or(Value::Null, Value::Num),
            ),
            (
                "speedup_par4_vs_serial",
                Value::Num(self.serial_secs / self.par4_secs),
            ),
        ];
        if let Some(note) = self.note {
            fields.push(("note", Value::Str(note.to_string())));
        }
        Value::obj(fields)
    }
}

/// Time `f` under every available SIMD backend (serial), under the
/// default backend serially and at 4 threads, and optionally a naive
/// reference — asserting every configuration bit-identical first.
fn run_case(
    name: &str,
    shape: String,
    iters: u64,
    naive: Option<&dyn Fn() -> Matrix>,
    f: &dyn Fn() -> Matrix,
    note: Option<&'static str>,
) -> CaseResult {
    privim_rt::par::set_threads(1);
    simd::set_backend(Some(simd::Choice::Scalar));
    let scalar_out = f();
    if let Some(naive) = naive {
        assert_bit_identical(name, &naive(), &scalar_out);
    }
    let mut backend_secs: Vec<(&'static str, f64)> = Vec::new();
    for (choice, bname) in available_backends() {
        simd::set_backend(Some(choice));
        assert_bit_identical(name, &f(), &scalar_out);
        backend_secs.push((bname, time_iters(iters, f)));
    }
    simd::set_backend(None);
    privim_rt::par::set_threads(4);
    assert_bit_identical(name, &f(), &scalar_out);

    let naive_secs = naive.map(|naive| {
        privim_rt::par::set_threads(1);
        time_iters(iters, naive)
    });
    privim_rt::par::set_threads(1);
    let serial_secs = time_iters(iters, f);
    privim_rt::par::set_threads(4);
    let par4_secs = time_iters(iters, f);
    privim_rt::par::set_threads(0); // back to auto

    let result = CaseResult {
        name: name.to_string(),
        shape,
        naive_secs,
        backend_secs,
        serial_secs,
        par4_secs,
        note,
    };
    println!(
        "{:<24} {:>11} {:>11} {:>11} {:>11}   x{:.2} simd, x{:.2} par4",
        format!("{name} {}", result.shape),
        result.naive_secs.map_or_else(|| "-".into(), fmt_secs),
        result.scalar_secs().map_or_else(|| "-".into(), fmt_secs),
        fmt_secs(result.serial_secs),
        fmt_secs(result.par4_secs),
        result
            .scalar_secs()
            .zip(result.best_simd_secs())
            .map_or(1.0, |(sc, best)| sc / best),
        result.serial_secs / result.par4_secs,
    );
    result
}

fn fmt_secs(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.1} µs", secs * 1e6)
    } else {
        format!("{:.2} ms", secs * 1e3)
    }
}

/// Int8-quantized inference matmul vs the dense product: per-backend
/// timings (the integer contraction is exact, so bits must match across
/// backends) plus the quantization error against the dense result.
fn run_quant_case(iters: u64, a: &Matrix, b: &Matrix) -> Value {
    let (m, k) = a.shape();
    let n = b.cols();
    let qw = QuantWeights::quantize(b);

    privim_rt::par::set_threads(1);
    simd::set_backend(Some(simd::Choice::Scalar));
    let q_scalar = qw.matmul(a);
    let mut backend_secs: Vec<(&'static str, f64)> = Vec::new();
    for (choice, bname) in available_backends() {
        simd::set_backend(Some(choice));
        assert_bit_identical("quant_matmul", &qw.matmul(a), &q_scalar);
        backend_secs.push((bname, time_iters(iters, &|| qw.matmul(a))));
    }
    simd::set_backend(None);
    let dense_secs = time_iters(iters, &|| a.matmul(b));
    privim_rt::par::set_threads(0);

    let dense = a.matmul(b);
    let mut max_abs = 0.0f64;
    let mut err_sq = 0.0f64;
    let mut ref_sq = 0.0f64;
    for (&q, &d) in q_scalar.data().iter().zip(dense.data()) {
        let e = (q - d).abs();
        max_abs = max_abs.max(e);
        err_sq += e * e;
        ref_sq += d * d;
    }
    let rel_fro = if ref_sq > 0.0 { (err_sq / ref_sq).sqrt() } else { 0.0 };
    let best_int8 = backend_secs
        .iter()
        .map(|&(_, s)| s)
        .fold(f64::INFINITY, f64::min);

    println!(
        "{:<24} {:>11} {:>11} {:>23}   x{:.2} int8 vs dense, rel_err {:.2e}",
        format!("quant_matmul {m}x{k}x{n}"),
        "-",
        fmt_secs(dense_secs),
        fmt_secs(best_int8),
        dense_secs / best_int8,
        rel_fro,
    );
    Value::obj(vec![
        ("kernel", Value::Str("quant_matmul".to_string())),
        ("shape", Value::Str(format!("{m}x{k}x{n}"))),
        (
            "backend_secs_per_iter",
            Value::Obj(
                backend_secs
                    .iter()
                    .map(|&(bn, s)| (bn.to_string(), Value::Num(s)))
                    .collect(),
            ),
        ),
        ("dense_secs_per_iter", Value::Num(dense_secs)),
        ("speedup_int8_vs_dense", Value::Num(dense_secs / best_int8)),
        ("max_abs_error", Value::Num(max_abs)),
        ("rel_frobenius_error", Value::Num(rel_fro)),
        (
            "note",
            Value::Str(
                "int8 path quantizes activations per row on the fly; error bound is \
                 per-column scale/2 per weight element (DESIGN.md §14)"
                    .to_string(),
            ),
        ),
    ])
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().cloned(),
            other => {
                eprintln!("error: unknown flag {other} (flags: --smoke, --out <path>)");
                std::process::exit(2);
            }
        }
    }
    // Smoke mode exists for CI: prove the harness and the bit-identity
    // assertions hold, in well under a second, without touching the
    // checked-in trajectory file.
    let (iters, mm, tr, gn, gm, dc, rv, cm) = if smoke {
        (2u64, 48usize, 64usize, 300usize, 4usize, 8usize, 4096usize, 32usize)
    } else {
        (20, 256, 512, 20_000, 8, 32, 1_000_000, 256)
    };
    if !smoke && out.is_none() {
        out = Some("BENCH_kernels.json".to_string());
    }

    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let a = random_matrix(mm, mm, &mut rng);
    let b = random_matrix(mm, mm, &mut rng);
    let t = random_matrix(tr, tr, &mut rng);
    let g = generators::barabasi_albert(gn, gm, &mut rng);
    let adj = SparseMatrix::from_triplets(
        gn,
        gn,
        (0..gn as u32).flat_map(|u| {
            g.out_neighbors(u)
                .iter()
                .map(move |&v| (u as usize, v as usize, 1.0))
        }),
    );
    let h = random_matrix(gn, dc, &mut rng);
    // spmm_transpose caches its transpose on first use; build it before
    // timing so every configuration measures the product, not the setup.
    let _ = adj.spmm_transpose(&h);
    let xv = random_matrix(1, rv, &mut rng);
    let yv = random_matrix(1, rv, &mut rng);
    let grads: Vec<Matrix> = (0..2).map(|_| random_matrix(cm, cm, &mut rng)).collect();

    println!(
        "{:<24} {:>11} {:>11} {:>11} {:>11}",
        "kernel", "naive", "scalar", "serial", "par4"
    );
    let results = vec![
        run_case(
            "matmul",
            format!("{mm}x{mm}x{mm}"),
            iters,
            Some(&|| naive_matmul(&a, &b)),
            &|| a.matmul(&b),
            None,
        ),
        run_case(
            "transpose",
            format!("{tr}x{tr}"),
            iters,
            Some(&|| naive_transpose(&t)),
            &|| t.transpose(),
            Some(
                "pure permutation, memory-bound: backends are at parity by design — \
                 there is no arithmetic to vectorize",
            ),
        ),
        run_case(
            "spmm",
            format!("nnz={} x{dc}", adj.nnz()),
            iters,
            Some(&|| naive_spmm(&adj, &h)),
            &|| adj.spmm(&h),
            Some("short rows (x32): gather-bound, SIMD gains are modest by design"),
        ),
        run_case(
            "spmm_transpose",
            format!("nnz={} x{dc}", adj.nnz()),
            iters,
            Some(&|| naive_spmm_transpose(&adj, &h)),
            &|| adj.spmm_transpose(&h),
            Some("short rows (x32): gather-bound, SIMD gains are modest by design"),
        ),
        run_case(
            "dot",
            format!("n={rv}"),
            iters,
            None,
            &|| Matrix::full(1, 1, simd::dot(xv.data(), yv.data())),
            Some(
                "at n=1e6 the stream comes from DRAM: memory-bound, backends near parity (smoke's cache-resident n shows the compute-bound speedup)",
            ),
        ),
        run_case(
            "sum",
            format!("n={rv}"),
            iters,
            None,
            &|| Matrix::full(1, 1, simd::sum(xv.data())),
            Some(
                "at n=1e6 the stream comes from DRAM: memory-bound, backends near parity (smoke's cache-resident n shows the compute-bound speedup)",
            ),
        ),
        run_case(
            "clip_loop",
            format!("2x{cm}x{cm}"),
            iters,
            None,
            &|| {
                // DP-SGD per-step clip: global L2 norm (sumsq reduction)
                // then in-place rescale. The defensive copy is part of
                // every configuration equally.
                let mut g = grads.clone();
                GradClip::clip(&mut g, 1.0);
                g.swap_remove(0)
            },
            Some("includes a per-iteration copy of the gradient list (both columns pay it)"),
        ),
    ];
    let quant = run_quant_case(iters, &a, &b);

    if let Some(path) = out {
        let cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
        let doc = Value::obj(vec![
            ("bench", Value::Str("kernels".to_string())),
            ("iters", Value::Num(iters as f64)),
            ("available_parallelism", Value::Num(cpus as f64)),
            ("simd_backend", Value::Str(simd::active().name().to_string())),
            ("simd_features", Value::Str(simd::detected_features())),
            (
                "note",
                Value::Str(
                    "secs/iter means over fixed iterations; backend_secs_per_iter pins each \
                     SIMD backend serially; par4 = persistent pool at set_threads(4); \
                     speedups are hardware-dependent (see EXPERIMENTS.md)"
                        .to_string(),
                ),
            ),
            (
                "cases",
                Value::Arr(results.iter().map(CaseResult::to_json).collect()),
            ),
            ("quant_matmul", quant),
        ]);
        privim::results::write_atomic(&path, &doc.to_json_string_pretty())
            .unwrap_or_else(|e| {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            });
        eprintln!("wrote {path}");
    }
}

//! Kernel micro-benchmarks: the first point of the perf trajectory.
//!
//! Times the tensor primitives the DP-SGD hot path bottoms out in —
//! `Matrix::matmul`, `Matrix::transpose`, `Csr::spmm`, `Csr::spmm_transpose`
//! — in three configurations per kernel:
//!
//! * **naive** — the pre-tiling seed kernel (re-implemented here verbatim),
//! * **serial** — the current blocked kernel pinned to `set_threads(1)`,
//! * **par4** — the same kernel on the persistent pool at `set_threads(4)`.
//!
//! Before any timing, every kernel's output is asserted *bit-identical*
//! across thread counts (and against its naive reference) — a benchmark of
//! a wrong kernel is worse than no benchmark.
//!
//! All wall-clock reads go through `privim_rt::bench::time_iters` (the
//! workspace's single timing point, per the `wall-clock` lint rule).
//!
//! ```text
//! cargo run --release -p privim-bench --bin bench_kernels              # full, writes BENCH_kernels.json
//! cargo run --release -p privim-bench --bin bench_kernels -- --smoke  # tiny sizes, no file output
//! ```

use privim_graph::generators;
use privim_rt::bench::time_iters;
use privim_rt::json::Value;
use privim_rt::{ChaCha8Rng, Rng, SeedableRng};
use privim_tensor::{Matrix, SparseMatrix};

/// Seed-era dense kernel: plain `i → k → j` scalar loop with the zero-skip.
/// Term order per output element is k-ascending, exactly like the blocked
/// kernel — so the two must agree bitwise, not just approximately.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for kx in 0..k {
            let aik = a.get(i, kx);
            // exact zero-skip mirrors the production kernel so the
            // bit-identity assertion is meaningful
            if aik == 0.0 {
                continue;
            }
            let brow = b.row(kx);
            let orow = out.row_mut(i);
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += aik * bv;
            }
        }
    }
    out
}

/// Seed-era `Aᵀ·D` kernel: scatter rows of `dense` into the output, source
/// rows ascending — the accumulation order the cached-transpose spmm
/// reproduces.
fn naive_spmm_transpose(s: &SparseMatrix, dense: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(s.cols(), dense.cols());
    for r in 0..s.rows() {
        let (cols, vals) = s.row(r);
        let drow: Vec<f64> = dense.row(r).to_vec();
        for (&c, &v) in cols.iter().zip(vals) {
            let orow = out.row_mut(c as usize);
            for (o, &dv) in orow.iter_mut().zip(&drow) {
                *o += v * dv;
            }
        }
    }
    out
}

fn random_matrix(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.gen::<f64>() - 0.5).collect(),
    )
}

fn assert_bit_identical(name: &str, a: &Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "{name}: shape mismatch");
    for (i, (x, y)) in a.data().iter().zip(b.data()).collect::<Vec<_>>().into_iter().enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{name}: bit mismatch at flat index {i}: {x:?} vs {y:?}"
        );
    }
}

struct CaseResult {
    name: String,
    shape: String,
    naive_secs: Option<f64>,
    serial_secs: f64,
    par4_secs: f64,
}

impl CaseResult {
    fn to_json(&self) -> Value {
        let speedup_tiling = self.naive_secs.map(|n| n / self.serial_secs);
        Value::obj(vec![
            ("kernel", Value::Str(self.name.clone())),
            ("shape", Value::Str(self.shape.clone())),
            (
                "naive_secs_per_iter",
                self.naive_secs.map_or(Value::Null, Value::Num),
            ),
            ("serial_secs_per_iter", Value::Num(self.serial_secs)),
            ("par4_secs_per_iter", Value::Num(self.par4_secs)),
            (
                "speedup_serial_vs_naive",
                speedup_tiling.map_or(Value::Null, Value::Num),
            ),
            (
                "speedup_par4_vs_serial",
                Value::Num(self.serial_secs / self.par4_secs),
            ),
        ])
    }
}

/// Time `f` serial (1 thread), at 4 threads, and optionally a naive
/// reference — asserting all three produce bit-identical output first.
fn run_case(
    name: &str,
    shape: String,
    iters: u64,
    naive: Option<&dyn Fn() -> Matrix>,
    f: &dyn Fn() -> Matrix,
) -> CaseResult {
    privim_rt::par::set_threads(1);
    let serial_out = f();
    if let Some(naive) = naive {
        assert_bit_identical(name, &naive(), &serial_out);
    }
    privim_rt::par::set_threads(4);
    assert_bit_identical(name, &f(), &serial_out);

    let naive_secs = naive.map(|naive| {
        privim_rt::par::set_threads(1);
        time_iters(iters, naive)
    });
    privim_rt::par::set_threads(1);
    let serial_secs = time_iters(iters, f);
    privim_rt::par::set_threads(4);
    let par4_secs = time_iters(iters, f);
    privim_rt::par::set_threads(0); // back to auto

    println!(
        "{:<28} {:>12} {:>12} {:>12}   x{:.2} vs serial",
        format!("{name} {shape}"),
        naive_secs.map_or_else(|| "-".into(), fmt_secs),
        fmt_secs(serial_secs),
        fmt_secs(par4_secs),
        serial_secs / par4_secs,
    );
    CaseResult {
        name: name.to_string(),
        shape,
        naive_secs,
        serial_secs,
        par4_secs,
    }
}

fn fmt_secs(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.1} µs", secs * 1e6)
    } else {
        format!("{:.2} ms", secs * 1e3)
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().cloned(),
            other => {
                eprintln!("error: unknown flag {other} (flags: --smoke, --out <path>)");
                std::process::exit(2);
            }
        }
    }
    // Smoke mode exists for CI: prove the harness and the bit-identity
    // assertions hold, in well under a second, without touching the
    // checked-in trajectory file.
    let (iters, mm, tr, gn, gm, dc) = if smoke {
        (2u64, 48usize, 64usize, 300usize, 4usize, 8usize)
    } else {
        (20, 256, 512, 20_000, 8, 32)
    };
    if !smoke && out.is_none() {
        out = Some("BENCH_kernels.json".to_string());
    }

    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let a = random_matrix(mm, mm, &mut rng);
    let b = random_matrix(mm, mm, &mut rng);
    let t = random_matrix(tr, tr, &mut rng);
    let g = generators::barabasi_albert(gn, gm, &mut rng);
    let adj = SparseMatrix::from_triplets(
        gn,
        gn,
        (0..gn as u32).flat_map(|u| {
            g.out_neighbors(u)
                .iter()
                .map(move |&v| (u as usize, v as usize, 1.0))
        }),
    );
    let h = random_matrix(gn, dc, &mut rng);
    // spmm_transpose caches its transpose on first use; build it before
    // timing so every configuration measures the product, not the setup.
    let _ = adj.spmm_transpose(&h);

    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "kernel", "naive", "serial", "par4"
    );
    let results = vec![
        run_case(
            "matmul",
            format!("{mm}x{mm}x{mm}"),
            iters,
            Some(&|| naive_matmul(&a, &b)),
            &|| a.matmul(&b),
        ),
        run_case(
            "transpose",
            format!("{tr}x{tr}"),
            iters,
            None,
            &|| t.transpose(),
        ),
        run_case(
            "spmm",
            format!("nnz={} x{dc}", adj.nnz()),
            iters,
            None,
            &|| adj.spmm(&h),
        ),
        run_case(
            "spmm_transpose",
            format!("nnz={} x{dc}", adj.nnz()),
            iters,
            Some(&|| naive_spmm_transpose(&adj, &h)),
            &|| adj.spmm_transpose(&h),
        ),
    ];

    if let Some(path) = out {
        let cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
        let doc = Value::obj(vec![
            ("bench", Value::Str("kernels".to_string())),
            ("iters", Value::Num(iters as f64)),
            ("available_parallelism", Value::Num(cpus as f64)),
            (
                "note",
                Value::Str(
                    "secs/iter means over fixed iterations; par4 = persistent pool at set_threads(4); \
                     speedups are hardware-dependent (see EXPERIMENTS.md)"
                        .to_string(),
                ),
            ),
            (
                "cases",
                Value::Arr(results.iter().map(CaseResult::to_json).collect()),
            ),
        ]);
        privim::results::write_atomic(&path, &doc.to_json_string_pretty())
            .unwrap_or_else(|e| {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            });
        eprintln!("wrote {path}");
    }
}

//! `slowloris_serve` — connection-hygiene gate for the reactor front end.
//!
//! Drives a real `privim-serve` process (not an in-process server: the
//! point is the OS-level socket behaviour of the shipped binary) started
//! with short idle/header timeouts, and asserts the reactor's defenses:
//!
//! 1. open a pack of slowloris connections that each send half a request
//!    and then dribble one byte per second — far slower than the header
//!    timeout allows. Every one of them must be closed by the server,
//!    and attributed to `privim_header_timeout_closes_total`;
//! 2. while the pack is dribbling, a healthy keep-alive client must keep
//!    getting `200`s — the attack occupies connections, not workers;
//! 3. an idle keep-alive connection (one completed exchange, then
//!    silence) must be reaped and attributed to
//!    `privim_idle_timeout_closes_total`;
//! 4. after the reaps, `privim_open_connections` must return to zero
//!    (only the scrape's own short-lived connection comes and goes).
//!
//! Exits non-zero on violation.
//!
//! ```text
//! cargo run --release -p privim-bench --bin slowloris_serve -- \
//!     --server-bin target/release/privim-serve --bundle serve.json --smoke
//! ```

use privim_serve::metrics::parse_counter;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{exit, Child, Command, Stdio};
use std::time::{Duration, Instant};

struct Flags {
    server_bin: PathBuf,
    bundle: PathBuf,
    attackers: usize,
    header_timeout_ms: u64,
    idle_timeout_ms: u64,
    smoke: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: slowloris_serve --server-bin <privim-serve> --bundle <bundle.json>
                       [--attackers 32] [--header-timeout-ms 1500]
                       [--idle-timeout-ms 1500] [--smoke]"
    );
    exit(2)
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("slowloris_serve: FAIL: {msg}");
    exit(1)
}

fn parse_flags() -> Flags {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut f = Flags {
        server_bin: PathBuf::from("target/release/privim-serve"),
        bundle: PathBuf::new(),
        attackers: 32,
        header_timeout_ms: 1_500,
        idle_timeout_ms: 1_500,
        smoke: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    usage()
                })
                .clone()
        };
        match a.as_str() {
            "--server-bin" => f.server_bin = PathBuf::from(val("--server-bin")),
            "--bundle" => f.bundle = PathBuf::from(val("--bundle")),
            "--attackers" => f.attackers = val("--attackers").parse().unwrap_or_else(|_| usage()),
            "--header-timeout-ms" => {
                f.header_timeout_ms =
                    val("--header-timeout-ms").parse().unwrap_or_else(|_| usage())
            }
            "--idle-timeout-ms" => {
                f.idle_timeout_ms = val("--idle-timeout-ms").parse().unwrap_or_else(|_| usage())
            }
            "--smoke" => f.smoke = true,
            _ => usage(),
        }
    }
    if f.bundle.as_os_str().is_empty() {
        usage()
    }
    if f.smoke {
        f.attackers = f.attackers.min(16);
    }
    if f.attackers == 0 {
        usage()
    }
    f
}

/// Spawn the server and block until it prints its "serving on port N"
/// banner (stdout is a pipe; the server flushes the banner explicitly).
fn spawn_server(f: &Flags) -> (Child, u16) {
    let mut child = Command::new(&f.server_bin)
        .arg("run")
        .arg("--bundle")
        .arg(&f.bundle)
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--workers")
        .arg("2")
        .arg("--no-wal")
        .arg("--frontend")
        .arg("reactor")
        .arg("--header-timeout-ms")
        .arg(f.header_timeout_ms.to_string())
        .arg("--idle-timeout-ms")
        .arg(f.idle_timeout_ms.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap_or_else(|e| fail(format!("spawning {}: {e}", f.server_bin.display())));
    let stdout = child.stdout.take().expect("stdout was piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .unwrap_or_else(|e| fail(format!("reading server stdout: {e}")));
        if n == 0 {
            let _ = child.kill();
            fail("server exited before printing its port banner");
        }
        print!("  server: {line}");
        if let Some(rest) = line.strip_prefix("serving on port ") {
            let port: u16 = rest
                .split_whitespace()
                .next()
                .and_then(|p| p.parse().ok())
                .unwrap_or_else(|| fail(format!("unparseable banner: {line:?}")));
            // Keep draining the pipe so the server never blocks on a
            // full stdout buffer once we stop reading.
            std::thread::spawn(move || {
                let mut sink = String::new();
                let _ = reader.read_to_string(&mut sink);
            });
            return (child, port);
        }
    }
}

/// One-shot healthz probe; returns true on a 200.
fn healthz_ok(port: u16) -> bool {
    let Ok(mut s) = TcpStream::connect(("127.0.0.1", port)) else {
        return false;
    };
    let _ = s.set_read_timeout(Some(Duration::from_secs(10)));
    if s.write_all(b"GET /healthz HTTP/1.1\r\nHost: s\r\nConnection: close\r\n\r\n").is_err() {
        return false;
    }
    let mut text = String::new();
    if s.read_to_string(&mut text).is_err() {
        return false;
    }
    text.starts_with("HTTP/1.1 200")
}

fn scrape_metrics(port: u16) -> String {
    let Ok(mut s) = TcpStream::connect(("127.0.0.1", port)) else {
        fail("server refused /metrics connection");
    };
    let _ = s.set_read_timeout(Some(Duration::from_secs(10)));
    if s.write_all(b"GET /metrics HTTP/1.1\r\nHost: s\r\nConnection: close\r\n\r\n").is_err() {
        fail("writing /metrics request");
    }
    let mut text = String::new();
    let _ = s.read_to_string(&mut text);
    text
}

fn counter(port: u16, name: &str) -> u64 {
    parse_counter(&scrape_metrics(port), name).unwrap_or(0)
}

fn main() {
    let f = parse_flags();
    let (mut child, port) = spawn_server(&f);
    println!(
        "slowloris gate: {} attackers vs header-timeout {}ms / idle-timeout {}ms",
        f.attackers, f.header_timeout_ms, f.idle_timeout_ms
    );

    // Phase 1+2: the dribbling pack, with a healthy client interleaved.
    // Each attacker sends a partial request line, then one byte per
    // second — the header timeout counts from the FIRST partial byte, so
    // the dribble cannot keep the connection alive.
    let mut attackers: Vec<TcpStream> = (0..f.attackers)
        .filter_map(|_| {
            let s = TcpStream::connect(("127.0.0.1", port)).ok()?;
            let _ = s.set_nodelay(true);
            // Short probe timeout: each reap check peeks for EOF without
            // stalling the dribble loop.
            let _ = s.set_read_timeout(Some(Duration::from_millis(50)));
            Some(s)
        })
        .collect();
    if attackers.len() != f.attackers {
        let _ = child.kill();
        fail(format!("only {}/{} attack connections opened", attackers.len(), f.attackers));
    }
    for s in &mut attackers {
        let _ = s.write_all(b"POST /v1/embed HTTP/1.1\r\nHos");
    }
    let deadline = Instant::now() + Duration::from_millis(f.header_timeout_ms * 4 + 2_000);
    let mut healthy_checks = 0u64;
    let dribble = b"X-Slow: aaaaaaaa\r\n";
    let mut di = 0usize;
    // Dribble until every attacker is closed by the server (read returns
    // EOF). A connection the server never closes fails the gate via the
    // deadline.
    let mut open: Vec<TcpStream> = attackers;
    while !open.is_empty() {
        if Instant::now() > deadline {
            let _ = child.kill();
            fail(format!("{} slowloris connection(s) never reaped", open.len()));
        }
        std::thread::sleep(Duration::from_millis(200));
        // The attack must not starve real traffic.
        if !healthz_ok(port) {
            let _ = child.kill();
            fail("healthy client starved while slowloris pack was dribbling");
        }
        healthy_checks += 1;
        let byte = [dribble[di % dribble.len()]];
        di += 1;
        open.retain_mut(|s| {
            // A write can succeed after the server closed (buffered RST);
            // the authoritative signal is read() returning 0/error.
            let _ = s.write_all(&byte);
            let mut buf = [0u8; 16];
            match s.read(&mut buf) {
                Ok(0) => false,         // server closed cleanly
                Ok(_) => true,          // bytes before close? keep watching
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => true,
                Err(e) if e.kind() == std::io::ErrorKind::TimedOut => true,
                Err(_) => false,        // RST — server tore it down
            }
        });
    }
    println!(
        "ok  all {} slowloris connections reaped; healthy client served {healthy_checks} time(s) during the attack",
        f.attackers
    );
    let reaped = counter(port, "privim_header_timeout_closes_total");
    if reaped < f.attackers as u64 {
        let _ = child.kill();
        fail(format!(
            "header_timeout_closes_total = {reaped}, expected >= {}",
            f.attackers
        ));
    }
    println!("ok  privim_header_timeout_closes_total = {reaped}");

    // Phase 3: a keep-alive connection that completes one exchange and
    // then goes silent must be reaped by the idle timeout.
    let mut idle = TcpStream::connect(("127.0.0.1", port))
        .unwrap_or_else(|e| fail(format!("idle connect: {e}")));
    let _ = idle.set_read_timeout(Some(Duration::from_millis(f.idle_timeout_ms * 4 + 2_000)));
    idle.write_all(b"GET /healthz HTTP/1.1\r\nHost: s\r\n\r\n")
        .unwrap_or_else(|e| fail(format!("idle request: {e}")));
    let mut text = String::new();
    // Keep-alive response, then server-side close on idle timeout: EOF
    // ends read_to_string without a Connection: close from us.
    idle.read_to_string(&mut text)
        .unwrap_or_else(|e| fail(format!("idle connection never reaped: {e}")));
    if !text.starts_with("HTTP/1.1 200") {
        let _ = child.kill();
        fail(format!("idle exchange failed: {text:?}"));
    }
    let idle_reaps = counter(port, "privim_idle_timeout_closes_total");
    if idle_reaps < 1 {
        let _ = child.kill();
        fail("idle keep-alive connection was closed but not attributed to the idle timeout");
    }
    println!("ok  idle keep-alive connection reaped (idle_timeout_closes_total = {idle_reaps})");

    // Phase 4: nothing left open. The scrape's own short-lived connection
    // is the one permitted reading.
    let open_now = counter(port, "privim_open_connections");
    if open_now > 1 {
        let _ = child.kill();
        fail(format!(
            "privim_open_connections = {open_now} after all clients left (only the scrape's own connection may be open)"
        ));
    }
    println!("ok  open connections back to zero (scrape excluded)");

    // Orderly exit: SIGTERM drains; fall back to SIGKILL on a wedge.
    #[cfg(unix)]
    {
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
        }
        const SIGTERM: i32 = 15;
        // privim-lint: allow(unsafe, reason = "libc kill() FFI sending SIGTERM to the child we spawned; pid comes from Child::id and the call has no memory-safety surface")
        unsafe {
            kill(child.id() as i32, SIGTERM);
        }
        let t0 = Instant::now();
        loop {
            match child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if t0.elapsed() > Duration::from_secs(15) => {
                    let _ = child.kill();
                    fail("server did not drain within 15s of SIGTERM");
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(100)),
                Err(e) => fail(format!("waiting on server: {e}")),
            }
        }
    }
    #[cfg(not(unix))]
    {
        let _ = child.kill();
        let _ = child.wait();
    }
    println!("slowloris gate passed");
}

//! Figures 6 and 10: impact of the frequency threshold `M` on PrivIM* at
//! ε = 3, for several subgraph sizes `n`.
//!
//! ```text
//! cargo run --release -p privim-bench --bin exp_fig6_m -- --dataset facebook,gowalla --fast
//! ```

use privim::pipeline::{run_method, EvalSetup, Method};
use privim_bench::{print_table, ExpArgs};
use privim_graph::datasets::Dataset;
use privim_im::metrics::mean_std;
use privim_rt::ChaCha8Rng;
use privim_rt::SeedableRng;

struct Row {
    dataset: String,
    n: usize,
    m: u32,
    spread_mean: f64,
    spread_std: f64,
}
privim_rt::impl_to_json_struct!(Row {
    dataset,
    n,
    m,
    spread_mean,
    spread_std
});

fn main() {
    let mut args = ExpArgs::parse_env();
    if args.eps == vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0] {
        args.eps = vec![3.0]; // Fig. 6 fixes ε = 3
    }
    let eps = args.eps[0];
    let n_grid = [20usize, 40, 60, 80];
    let mut rows: Vec<Row> = Vec::new();

    for dataset in args.datasets.clone() {
        // §V-C: M ∈ {4..12} for Email (1K nodes), {2..10} elsewhere.
        let m_grid: Vec<u32> = if dataset == Dataset::Email {
            vec![4, 6, 8, 10, 12]
        } else {
            vec![2, 4, 6, 8, 10]
        };
        let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
        let scale = args.dataset_scale(dataset);
        eprintln!("== {} (scale {scale:.4}) ==", dataset.spec().name);
        let g = dataset.generate_scaled(scale, &mut rng);

        for &n in &n_grid {
            for &m in &m_grid {
                let mut params = args.pipeline_params(g.num_nodes());
                params.subgraph_size = n;
                params.threshold = m;
                let mut setup_rng = ChaCha8Rng::seed_from_u64(args.seed);
                let setup = EvalSetup::with_params(&g, args.k, params, &mut setup_rng);
                let spreads: Vec<f64> = (0..args.reps)
                    .map(|r| {
                        privim_bench::must_run("fig cell", || run_method(
                            Method::PrivImStar { epsilon: eps },
                            &setup,
                            args.seed.wrapping_add(r),
                        ))
                        .spread
                    })
                    .collect();
                let (mean, std) = mean_std(&spreads);
                rows.push(Row {
                    dataset: dataset.spec().name.to_string(),
                    n,
                    m,
                    spread_mean: mean,
                    spread_std: std,
                });
            }
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                format!("{}", r.n),
                format!("{}", r.m),
                format!("{:.1} ± {:.1}", r.spread_mean, r.spread_std),
            ]
        })
        .collect();
    print_table(&["dataset", "n", "M", "influence spread"], &table);
    args.write_json(&rows);
}

//! Figure 13 (Appendix I): coverage ratio of naive PrivIM as the in-degree
//! bound θ varies over {5, 10, 15, 20} at ε = 3 — both very small and very
//! large θ should hurt (structure loss vs noise).
//!
//! ```text
//! cargo run --release -p privim-bench --bin exp_fig13_theta -- --fast
//! ```

use privim::pipeline::{run_method, EvalSetup, Method};
use privim_bench::{print_table, ExpArgs};
use privim_im::metrics::mean_std;
use privim_rt::ChaCha8Rng;
use privim_rt::SeedableRng;

struct Row {
    dataset: String,
    theta: usize,
    coverage_mean: f64,
    coverage_std: f64,
}
privim_rt::impl_to_json_struct!(Row {
    dataset,
    theta,
    coverage_mean,
    coverage_std
});

fn main() {
    let mut args = ExpArgs::parse_env();
    if args.eps == vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0] {
        args.eps = vec![3.0];
    }
    let eps = args.eps[0];
    let mut rows: Vec<Row> = Vec::new();

    for dataset in args.datasets.clone() {
        let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
        let scale = args.dataset_scale(dataset);
        eprintln!("== {} (scale {scale:.4}) ==", dataset.spec().name);
        let g = dataset.generate_scaled(scale, &mut rng);
        for theta in [5usize, 10, 15, 20] {
            let mut params = args.pipeline_params(g.num_nodes());
            params.theta = theta;
            let mut srng = ChaCha8Rng::seed_from_u64(args.seed);
            let setup = EvalSetup::with_params(&g, args.k, params, &mut srng);
            let coverages: Vec<f64> = (0..args.reps)
                .map(|r| {
                    privim_bench::must_run("fig13 cell", || run_method(Method::PrivIm { epsilon: eps }, &setup, args.seed + r))
                        .coverage_ratio
                })
                .collect();
            let (m, s) = mean_std(&coverages);
            rows.push(Row {
                dataset: dataset.spec().name.to_string(),
                theta,
                coverage_mean: m,
                coverage_std: s,
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                format!("{}", r.theta),
                format!("{:.2} ± {:.2}", r.coverage_mean, r.coverage_std),
            ]
        })
        .collect();
    print_table(&["dataset", "theta", "coverage ratio"], &table);
    args.write_json(&rows);
}

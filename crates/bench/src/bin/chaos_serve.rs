//! `chaos_serve` — kill-9 crash-recovery gate for the privim-serve
//! budget journal.
//!
//! Drives a real `privim-serve` process (not an in-process server: the
//! point is surviving the death of the OS process) through a
//! crash/recover cycle:
//!
//! 1. start the server on a metered bundle with a WAL, `--fsync always`;
//! 2. hammer it with metered traffic from concurrent clients, counting
//!    every 2xx-acknowledged charge per tenant;
//! 3. SIGKILL the process mid-traffic — no drain, no snapshot;
//! 4. restart it on the same bundle + journal;
//! 5. assert recovered per-tenant spend covers every acknowledged
//!    charge (`privim_tenant_queries_total{tenant=...} >= acks`), and
//!    that serving resumes and keeps charging on top.
//!
//! The invariant under test is the ledger's one-sided durability
//! contract: a crash may overcharge (unacknowledged in-flight records
//! are kept) but must never undercharge. Exits non-zero on violation.
//!
//! ```text
//! cargo run --release -p privim-bench --bin chaos_serve -- \
//!     --server-bin target/release/privim-serve --bundle chaos.json --smoke
//! ```

use privim_serve::metrics::parse_counter;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{exit, Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Flags {
    server_bin: PathBuf,
    bundle: PathBuf,
    wal: Option<PathBuf>,
    tenants: usize,
    kill_after_acks: u64,
    post_acks: u64,
    smoke: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: chaos_serve --server-bin <privim-serve> --bundle <bundle.json>
                   [--wal <path>] [--tenants 3] [--kill-after-acks 25]
                   [--post-acks 6] [--smoke]"
    );
    exit(2)
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("chaos_serve: FAIL: {msg}");
    exit(1)
}

fn parse_flags() -> Flags {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut f = Flags {
        server_bin: PathBuf::from("target/release/privim-serve"),
        bundle: PathBuf::new(),
        wal: None,
        tenants: 3,
        kill_after_acks: 25,
        post_acks: 6,
        smoke: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    usage()
                })
                .clone()
        };
        match a.as_str() {
            "--server-bin" => f.server_bin = PathBuf::from(val("--server-bin")),
            "--bundle" => f.bundle = PathBuf::from(val("--bundle")),
            "--wal" => f.wal = Some(PathBuf::from(val("--wal"))),
            "--tenants" => f.tenants = val("--tenants").parse().unwrap_or_else(|_| usage()),
            "--kill-after-acks" => {
                f.kill_after_acks = val("--kill-after-acks").parse().unwrap_or_else(|_| usage())
            }
            "--post-acks" => f.post_acks = val("--post-acks").parse().unwrap_or_else(|_| usage()),
            "--smoke" => f.smoke = true,
            _ => usage(),
        }
    }
    if f.bundle.as_os_str().is_empty() {
        usage()
    }
    if f.smoke {
        f.kill_after_acks = f.kill_after_acks.min(15);
        f.post_acks = f.post_acks.min(4);
    }
    if f.tenants == 0 {
        usage()
    }
    f
}

/// Spawn the server and block until it prints its "serving on port N"
/// banner (stdout is a pipe; the server flushes the banner explicitly).
fn spawn_server(f: &Flags, wal: &PathBuf) -> (Child, u16) {
    let mut child = Command::new(&f.server_bin)
        .arg("run")
        .arg("--bundle")
        .arg(&f.bundle)
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--workers")
        .arg("2")
        .arg("--wal")
        .arg(wal)
        .arg("--fsync")
        .arg("always")
        .arg("--compact-every")
        .arg("0")
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap_or_else(|e| fail(format!("spawning {}: {e}", f.server_bin.display())));
    let stdout = child.stdout.take().expect("stdout was piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .unwrap_or_else(|e| fail(format!("reading server stdout: {e}")));
        if n == 0 {
            let _ = child.kill();
            fail("server exited before printing its port banner");
        }
        print!("  server: {line}");
        if let Some(rest) = line.strip_prefix("serving on port ") {
            let port: u16 = rest
                .split_whitespace()
                .next()
                .and_then(|p| p.parse().ok())
                .unwrap_or_else(|| fail(format!("unparseable banner: {line:?}")));
            // Keep draining the pipe so the server never blocks on a
            // full stdout buffer once we stop reading.
            std::thread::spawn(move || {
                let mut sink = String::new();
                let _ = reader.read_to_string(&mut sink);
            });
            return (child, port);
        }
    }
}

/// One metered embed request; returns the HTTP status (0 on I/O error —
/// connection errors around the kill are expected, not acks).
fn metered_embed(port: u16, tenant: &str, node: u64) -> u16 {
    let Ok(mut stream) = TcpStream::connect(("127.0.0.1", port)) else {
        return 0;
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let body = format!("{{\"nodes\": [{node}]}}");
    let raw = format!(
        "POST /v1/embed HTTP/1.1\r\nHost: c\r\nConnection: close\r\nX-Privim-Tenant: {tenant}\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    if stream.write_all(raw.as_bytes()).is_err() {
        return 0;
    }
    let mut text = String::new();
    if stream.read_to_string(&mut text).is_err() {
        return 0;
    }
    text.split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn scrape_metrics(port: u16) -> String {
    let Ok(mut stream) = TcpStream::connect(("127.0.0.1", port)) else {
        fail("restarted server refused /metrics connection");
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let raw = "GET /metrics HTTP/1.1\r\nHost: c\r\nConnection: close\r\nContent-Length: 0\r\n\r\n";
    if stream.write_all(raw.as_bytes()).is_err() {
        fail("writing /metrics request");
    }
    let mut text = String::new();
    let _ = stream.read_to_string(&mut text);
    text
}

fn tenant_spend(metrics: &str, tenant: &str) -> u64 {
    parse_counter(
        metrics,
        &format!("privim_tenant_queries_total{{tenant=\"{tenant}\"}}"),
    )
    .unwrap_or(0)
}

fn main() {
    let f = parse_flags();
    let wal = f
        .wal
        .clone()
        .unwrap_or_else(|| PathBuf::from(format!("{}.wal", f.bundle.display())));
    let _ = std::fs::remove_file(&wal);

    println!("chaos_serve: phase 1 — serve and acknowledge charges");
    let (mut child, port) = spawn_server(&f, &wal);

    // Concurrent metered clients; only fully-read 2xx responses count as
    // acknowledged. acks[t] is monotone and updated *before* the driver
    // can observe the threshold, so every counted ack precedes the kill.
    let acks: Arc<Vec<AtomicU64>> = Arc::new((0..f.tenants).map(|_| AtomicU64::new(0)).collect());
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..2)
        .map(|w| {
            let acks = Arc::clone(&acks);
            let stop = Arc::clone(&stop);
            let tenants = f.tenants;
            std::thread::spawn(move || {
                let mut i = w as u64;
                while !stop.load(Ordering::Acquire) {
                    let t = (i % tenants as u64) as usize;
                    if metered_embed(port, &format!("tenant-{t}"), i % 7) == 200 {
                        acks[t].fetch_add(1, Ordering::AcqRel);
                    }
                    i += 2;
                }
            })
        })
        .collect();
    let total = |acks: &[AtomicU64]| -> u64 { acks.iter().map(|a| a.load(Ordering::Acquire)).sum() };
    let mut spins = 0u64;
    while total(&acks) < f.kill_after_acks {
        std::thread::sleep(Duration::from_millis(10));
        spins += 1;
        if spins > 6000 {
            let _ = child.kill();
            fail(format!(
                "only {} acks after 60s (wanted {}) — server not admitting",
                total(&acks),
                f.kill_after_acks
            ));
        }
    }

    println!("chaos_serve: phase 2 — SIGKILL mid-traffic");
    child
        .kill()
        .unwrap_or_else(|e| fail(format!("killing server: {e}")));
    let _ = child.wait();
    stop.store(true, Ordering::Release);
    for w in writers {
        let _ = w.join();
    }
    let acked: BTreeMap<String, u64> = (0..f.tenants)
        .map(|t| (format!("tenant-{t}"), acks[t].load(Ordering::Acquire)))
        .collect();
    let acked_total: u64 = acked.values().sum();
    println!("  {acked_total} charges acknowledged before the kill: {acked:?}");

    println!("chaos_serve: phase 3 — restart on the same bundle + journal");
    let (mut child, port) = spawn_server(&f, &wal);
    let metrics = scrape_metrics(port);
    let mut violations = 0u64;
    for (tenant, &n) in &acked {
        let recovered = tenant_spend(&metrics, tenant);
        let verdict = if recovered >= n { "ok" } else { "UNDERCHARGE" };
        println!("  {tenant}: acked {n}, recovered {recovered} — {verdict}");
        if recovered < n {
            violations += 1;
        }
    }
    if violations > 0 {
        let _ = child.kill();
        fail(format!(
            "{violations} tenant(s) lost acknowledged charges across kill-9"
        ));
    }

    println!("chaos_serve: phase 4 — serving resumes and keeps charging");
    let before = tenant_spend(&metrics, "tenant-0");
    let mut post = 0u64;
    let mut attempts = 0u64;
    while post < f.post_acks {
        attempts += 1;
        if attempts > 50 * f.post_acks {
            let _ = child.kill();
            fail("restarted server stopped admitting metered traffic");
        }
        if metered_embed(port, "tenant-0", attempts % 7) == 200 {
            post += 1;
        }
    }
    let after = tenant_spend(&scrape_metrics(port), "tenant-0");
    if after < before + post {
        let _ = child.kill();
        fail(format!(
            "post-restart spend {after} < recovered {before} + {post} new acks"
        ));
    }
    let _ = child.kill();
    let _ = child.wait();
    println!(
        "chaos_serve: PASS — {acked_total} pre-kill acks all recovered; \
         tenant-0 kept charging ({before} -> {after})"
    );
}

//! Figure 9: PrivIM* with five GNN architectures (GraphSAGE, GCN, GAT,
//! GIN, GRAT) at ε ∈ {2, 5}, coverage ratio per dataset.
//!
//! ```text
//! cargo run --release -p privim-bench --bin exp_fig9_gnn -- --fast
//! ```

use privim::pipeline::{run_method, EvalSetup, Method};
use privim_bench::{print_table, ExpArgs};
use privim_gnn::GnnKind;
use privim_im::metrics::mean_std;
use privim_rt::ChaCha8Rng;
use privim_rt::SeedableRng;

struct Row {
    dataset: String,
    model: String,
    epsilon: f64,
    coverage_mean: f64,
    coverage_std: f64,
}
privim_rt::impl_to_json_struct!(Row {
    dataset,
    model,
    epsilon,
    coverage_mean,
    coverage_std
});

fn main() {
    let mut args = ExpArgs::parse_env();
    if args.eps == vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0] {
        args.eps = vec![2.0, 5.0]; // Fig. 9's budgets
    }
    let mut rows: Vec<Row> = Vec::new();

    for dataset in args.datasets.clone() {
        let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
        let scale = args.dataset_scale(dataset);
        eprintln!("== {} (scale {scale:.4}) ==", dataset.spec().name);
        let g = dataset.generate_scaled(scale, &mut rng);
        let params = args.pipeline_params(g.num_nodes());
        let setup = EvalSetup::with_params(&g, args.k, params, &mut rng);

        for &eps in &args.eps {
            for kind in GnnKind::ALL {
                let coverages: Vec<f64> = (0..args.reps)
                    .map(|r| {
                        privim_bench::must_run("fig9 cell", || run_method(
                            Method::PrivImStarWith { epsilon: eps, kind },
                            &setup,
                            args.seed.wrapping_add(r),
                        ))
                        .coverage_ratio
                    })
                    .collect();
                let (m, s) = mean_std(&coverages);
                rows.push(Row {
                    dataset: dataset.spec().name.to_string(),
                    model: kind.name().to_string(),
                    epsilon: eps,
                    coverage_mean: m,
                    coverage_std: s,
                });
            }
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.model.clone(),
                format!("{}", r.epsilon),
                format!("{:.2} ± {:.2}", r.coverage_mean, r.coverage_std),
            ]
        })
        .collect();
    print_table(&["dataset", "model", "eps", "coverage ratio"], &table);
    args.write_json(&rows);
}

//! Crash-safe, resumable experiment execution.
//!
//! A full experiment suite is a grid of independent *cells* — one
//! (dataset, method, ε) combination each. The pre-existing harness ran the
//! whole grid in one process and wrote one JSON file at the very end, so a
//! panic in cell 37 of 40 threw away half an hour of finished work and a
//! `kill -9` mid-write could leave a truncated file. [`CellRunner`] fixes
//! both:
//!
//! * **Isolation** — each cell runs under `catch_unwind`, so one diverging
//!   configuration cannot take down the rest of the sweep.
//! * **Retries** — transient failures ([`PrivimError::is_transient`]) are
//!   retried with capped exponential backoff (`PRIVIM_RETRIES`, default 2).
//! * **Incremental atomic writes** — after every finished cell the full
//!   row array is rewritten via tmp-file + rename, so the output on disk
//!   is always a complete, valid JSON document.
//! * **Resume** — on startup the existing output file (if any) is indexed
//!   by cell key; already-present cells are served from it without
//!   recomputation. Because every cell seeds its own RNG from its key
//!   inputs alone, a resumed suite produces byte-for-byte the same final
//!   JSON as an uninterrupted one.

use privim::results::write_atomic;
use privim_rt::json::Value;
use privim_rt::{PrivimError, PrivimResult};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// How a cell was satisfied this run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellOutcome {
    /// Computed fresh in this process.
    Computed,
    /// Served from the existing output file.
    Resumed,
    /// All attempts failed; the cell is absent from the output.
    Failed,
}

/// Per-run failure record.
#[derive(Clone, Debug)]
pub struct CellFailure {
    /// The cell key that failed.
    pub key: String,
    /// Rendering of the last error (or panic payload).
    pub message: String,
    /// Attempts made, including retries.
    pub attempts: u32,
}

/// The resumable cell executor. Construct once per experiment binary,
/// funnel every grid cell through [`CellRunner::run_cell`], and call
/// [`CellRunner::finish`] at the end for the summary + process exit code.
pub struct CellRunner {
    out: Option<PathBuf>,
    rows: Vec<Value>,
    cache: BTreeMap<String, Value>,
    computed: usize,
    resumed: usize,
    failures: Vec<CellFailure>,
    max_retries: u32,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

impl CellRunner {
    /// Create a runner writing to `out` (or running write-free when
    /// `None`). An existing well-formed output file is loaded as the
    /// resume cache; a malformed one is ignored with a warning so a
    /// corrupted file never wedges the suite.
    pub fn new(out: Option<&Path>) -> CellRunner {
        let mut cache = BTreeMap::new();
        if let Some(path) = out {
            match std::fs::read_to_string(path) {
                Ok(text) => match Value::parse(&text) {
                    Ok(Value::Arr(rows)) => {
                        for row in rows {
                            if let Some(key) = row.get("cell").and_then(|v| v.as_str()) {
                                cache.insert(key.to_string(), row.clone());
                            }
                        }
                        if !cache.is_empty() {
                            eprintln!(
                                "resuming: {} finished cells found in {}",
                                cache.len(),
                                path.display()
                            );
                        }
                    }
                    Ok(_) => eprintln!(
                        "warning: {} is not a JSON array; starting fresh",
                        path.display()
                    ),
                    Err(e) => eprintln!(
                        "warning: cannot parse {} ({e}); starting fresh",
                        path.display()
                    ),
                },
                Err(_) => {} // no prior output: fresh run
            }
        }
        CellRunner {
            out: out.map(Path::to_path_buf),
            rows: Vec::new(),
            cache,
            computed: 0,
            resumed: 0,
            failures: Vec::new(),
            max_retries: env_u64("PRIVIM_RETRIES", 2) as u32,
        }
    }

    /// Run (or resume) one cell. `key` must uniquely identify the cell
    /// within the suite and be stable across runs — it is stored in the
    /// row under `"cell"`. `f` computes the row; it must derive all its
    /// randomness from the cell inputs (not from prior cells) so that
    /// resumed and uninterrupted runs agree.
    ///
    /// Returns the row and how it was obtained; on failure the cell is
    /// recorded and skipped.
    pub fn run_cell(
        &mut self,
        key: &str,
        f: impl FnMut() -> PrivimResult<Value>,
    ) -> (Option<Value>, CellOutcome) {
        if let Some(row) = self.cache.get(key).cloned() {
            self.rows.push(row.clone());
            self.resumed += 1;
            self.write_snapshot();
            return (Some(row), CellOutcome::Resumed);
        }
        match self.attempt_cell(key, f) {
            Ok(mut row) => {
                // Tag the row with its key so a later run can resume it.
                if let Value::Obj(fields) = &mut row {
                    if !fields.iter().any(|(k, _)| k == "cell") {
                        fields.insert(0, ("cell".to_string(), Value::Str(key.to_string())));
                    }
                }
                self.rows.push(row.clone());
                self.computed += 1;
                self.write_snapshot();
                (Some(row), CellOutcome::Computed)
            }
            Err(failure) => {
                eprintln!(
                    "cell {key} FAILED after {} attempt(s): {}",
                    failure.attempts, failure.message
                );
                self.failures.push(failure);
                (None, CellOutcome::Failed)
            }
        }
    }

    fn attempt_cell(
        &self,
        key: &str,
        mut f: impl FnMut() -> PrivimResult<Value>,
    ) -> Result<Value, CellFailure> {
        let mut last = String::new();
        for attempt in 0..=self.max_retries {
            if attempt > 0 {
                let backoff = backoff_ms(attempt);
                eprintln!("cell {key}: retry {attempt}/{} in {backoff} ms ({last})", self.max_retries);
                std::thread::sleep(std::time::Duration::from_millis(backoff));
            }
            match catch_unwind(AssertUnwindSafe(&mut f)) {
                Ok(Ok(row)) => return Ok(row),
                Ok(Err(e)) => {
                    let transient = e.is_transient();
                    last = e.to_string();
                    if !transient {
                        // Deterministic failures would just fail again.
                        return Err(CellFailure {
                            key: key.to_string(),
                            message: last,
                            attempts: attempt + 1,
                        });
                    }
                }
                Err(payload) => {
                    last = panic_message(&*payload);
                }
            }
        }
        Err(CellFailure {
            key: key.to_string(),
            message: last,
            attempts: self.max_retries + 1,
        })
    }

    /// Persist everything finished so far. A failed snapshot write is
    /// downgraded to a warning: the rows stay in memory and the next
    /// snapshot (or `finish`) retries.
    fn write_snapshot(&self) {
        if let Some(path) = &self.out {
            let doc = Value::Arr(self.rows.clone()).to_json_string_pretty();
            if let Err(e) = write_with_retry(path, &doc, self.max_retries) {
                eprintln!("warning: snapshot write to {} failed: {e}", path.display());
            }
        }
    }

    /// Whether `key` can be served from the resume cache without
    /// computing. Lets a binary skip expensive per-dataset setup when
    /// every cell that needs it is already on disk.
    pub fn is_cached(&self, key: &str) -> bool {
        self.cache.contains_key(key)
    }

    /// Rows finished this run, in execution order.
    pub fn rows(&self) -> &[Value] {
        &self.rows
    }

    /// Failures recorded this run.
    pub fn failures(&self) -> &[CellFailure] {
        &self.failures
    }

    /// Write the final output, print the run summary, and return the
    /// process exit code (0 iff no cell failed).
    pub fn finish(self) -> i32 {
        if let Some(path) = &self.out {
            let doc = Value::Arr(self.rows.clone()).to_json_string_pretty();
            match write_with_retry(path, &doc, self.max_retries) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("error: final write to {} failed: {e}", path.display());
                    return 1;
                }
            }
        }
        eprintln!(
            "cells: {} computed, {} resumed, {} failed",
            self.computed,
            self.resumed,
            self.failures.len()
        );
        if self.failures.is_empty() {
            0
        } else {
            for f in &self.failures {
                eprintln!("  FAILED {}: {}", f.key, f.message);
            }
            1
        }
    }
}

/// Capped exponential backoff: 100 ms · 2^(attempt−1), capped at 2 s.
/// `PRIVIM_RETRY_BACKOFF_MS` overrides the base (tests use 0).
fn backoff_ms(attempt: u32) -> u64 {
    let base = env_u64("PRIVIM_RETRY_BACKOFF_MS", 100);
    (base.saturating_mul(1u64 << (attempt - 1).min(8))).min(2_000)
}

fn write_with_retry(path: &Path, contents: &str, max_retries: u32) -> PrivimResult<()> {
    let mut last: Option<PrivimError> = None;
    for attempt in 0..=max_retries {
        if attempt > 0 {
            std::thread::sleep(std::time::Duration::from_millis(backoff_ms(attempt)));
        }
        match write_atomic(path, contents) {
            Ok(()) => return Ok(()),
            Err(e) if e.is_transient() => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last.unwrap_or_else(|| PrivimError::invalid("unreachable: no write attempted")))
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked (non-string payload)".to_string()
    }
}

/// Run a fallible computation with the same retry policy as a cell, but
/// abort the process on final failure — for experiment binaries whose
/// output is one indivisible document rather than a resumable grid.
pub fn must_run<T>(desc: &str, mut f: impl FnMut() -> PrivimResult<T>) -> T {
    let max_retries = env_u64("PRIVIM_RETRIES", 2) as u32;
    let mut last = String::new();
    for attempt in 0..=max_retries {
        if attempt > 0 {
            std::thread::sleep(std::time::Duration::from_millis(backoff_ms(attempt)));
        }
        match f() {
            Ok(v) => return v,
            Err(e) => {
                let transient = e.is_transient();
                last = e.to_string();
                if !transient {
                    break;
                }
            }
        }
    }
    eprintln!("error: {desc}: {last}");
    std::process::exit(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_rt::json::ToJson;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("privim_runner_test_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn row(x: f64) -> Value {
        Value::obj(vec![("x", x.to_json())])
    }

    #[test]
    fn cells_compute_and_write_incrementally() {
        let dir = tmpdir("basic");
        let out = dir.join("r.json");
        let mut runner = CellRunner::new(Some(&out));
        let (r, o) = runner.run_cell("a", || Ok(row(1.0)));
        assert_eq!(o, CellOutcome::Computed);
        assert_eq!(r.unwrap().get("cell").unwrap().as_str(), Some("a"));
        // the file already holds the finished cell before finish()
        let doc = Value::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert_eq!(doc.as_array().unwrap().len(), 1);
        runner.run_cell("b", || Ok(row(2.0)));
        assert_eq!(runner.finish(), 0);
        let doc = Value::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert_eq!(doc.as_array().unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_skips_finished_cells_and_matches_bytes() {
        let dir = tmpdir("resume");
        let out = dir.join("r.json");
        // Uninterrupted reference run.
        let mut full = CellRunner::new(Some(&out));
        full.run_cell("a", || Ok(row(1.5)));
        full.run_cell("b", || Ok(row(2.5)));
        assert_eq!(full.finish(), 0);
        let reference = std::fs::read_to_string(&out).unwrap();

        // Simulate a crash after cell a: output holds only a.
        let doc = Value::parse(&reference).unwrap();
        let partial = Value::Arr(doc.as_array().unwrap()[..1].to_vec());
        std::fs::write(&out, partial.to_json_string_pretty()).unwrap();

        // Resume: a must come from the cache, b recomputed.
        let mut resumed = CellRunner::new(Some(&out));
        let (_, oa) = resumed.run_cell("a", || panic!("must not recompute"));
        assert_eq!(oa, CellOutcome::Resumed);
        let (_, ob) = resumed.run_cell("b", || Ok(row(2.5)));
        assert_eq!(ob, CellOutcome::Computed);
        assert_eq!(resumed.finish(), 0);
        assert_eq!(
            std::fs::read_to_string(&out).unwrap(),
            reference,
            "resumed output must be byte-identical"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn panics_are_contained_and_reported() {
        std::env::set_var("PRIVIM_RETRY_BACKOFF_MS", "0");
        let mut runner = CellRunner::new(None);
        let (r, o) = runner.run_cell("bad", || panic!("boom"));
        assert!(r.is_none());
        assert_eq!(o, CellOutcome::Failed);
        // a later healthy cell still runs
        let (_, o2) = runner.run_cell("good", || Ok(row(3.0)));
        assert_eq!(o2, CellOutcome::Computed);
        assert_eq!(runner.failures().len(), 1);
        assert!(runner.failures()[0].message.contains("boom"));
        assert_eq!(runner.finish(), 1);
    }

    #[test]
    fn transient_errors_are_retried_fatal_ones_are_not() {
        std::env::set_var("PRIVIM_RETRY_BACKOFF_MS", "0");
        let mut runner = CellRunner::new(None);
        let mut calls = 0;
        let (r, _) = runner.run_cell("flaky", || {
            calls += 1;
            if calls < 3 {
                Err(PrivimError::InjectedFault {
                    point: "io_write_fail".into(),
                })
            } else {
                Ok(row(9.0))
            }
        });
        assert!(r.is_some(), "transient failure should be retried to success");
        assert_eq!(calls, 3);

        let mut fatal_calls = 0;
        let (r, _) = runner.run_cell("fatal", || {
            fatal_calls += 1;
            Err(PrivimError::invalid("bad config"))
        });
        assert!(r.is_none());
        assert_eq!(fatal_calls, 1, "deterministic failures must not be retried");
    }

    #[test]
    fn corrupt_output_file_starts_fresh() {
        let dir = tmpdir("corrupt");
        let out = dir.join("r.json");
        std::fs::write(&out, "{not json").unwrap();
        let mut runner = CellRunner::new(Some(&out));
        let (_, o) = runner.run_cell("a", || Ok(row(4.0)));
        assert_eq!(o, CellOutcome::Computed);
        assert_eq!(runner.finish(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! End-to-end serving tests over real TCP, covering the acceptance
//! criteria: (a) responses bit-identical to direct library calls,
//! (b) `/metrics` reflects request counts and micro-batched forwards,
//! (c) a full queue sheds with `503`, (d) shutdown drains in-flight
//! requests, (e) an exhausted tenant gets `429` + `Retry-After` and the
//! budget gauges agree, (f) counters are monotone across a graceful
//! drain.

use privim::ServeArtifact;
use privim_gnn::{GnnConfig, GnnModel};
use privim_graph::Graph;
use privim_im::{celf_exact, ic_spread_estimate};
use privim_rt::json::Value;
use privim_rt::{ChaCha8Rng, SeedableRng};
use privim_serve::{bundle, metrics, start, FrontEnd, LedgerConfig, LedgerState, ServeConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// A small but non-trivial serving bundle. The model is untrained —
/// serving behaviour does not depend on weight quality, and skipping
/// DP-SGD keeps the suite fast.
fn test_bundle(seed: u64) -> (bundle::Bundle, Graph, GnnModel) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = privim_graph::generators::barabasi_albert(120, 3, &mut rng)
        .with_uniform_weights(1.0);
    let model = GnnModel::new(GnnConfig::paper_default(), &mut rng);
    let artifact = ServeArtifact {
        model: model.clone(),
        epsilon: Some(2.0),
        delta: 1e-4,
        sigma: 1.5,
        steps: 80,
    };
    let mut buf = Vec::new();
    bundle::save(&artifact, &g, &mut buf).unwrap();
    (bundle::load(buf.as_slice()).unwrap(), g, model)
}

/// Same bundle, but packed metered: a per-tenant budget ledger rides in
/// the (version 2) bundle.
fn test_bundle_with_ledger(seed: u64, ledger: LedgerConfig) -> bundle::Bundle {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = privim_graph::generators::barabasi_albert(120, 3, &mut rng)
        .with_uniform_weights(1.0);
    let model = GnnModel::new(GnnConfig::paper_default(), &mut rng);
    let artifact = ServeArtifact {
        model,
        epsilon: Some(2.0),
        delta: 1e-4,
        sigma: 1.5,
        steps: 80,
    };
    let mut buf = Vec::new();
    bundle::save_with_ledger(&artifact, &g, &LedgerState::new(ledger), &mut buf).unwrap();
    bundle::load(buf.as_slice()).unwrap()
}

/// One-shot HTTP exchange: connect, send, read the full response,
/// return (status, body).
fn request(port: u16, method: &str, path: &str, body: &str) -> (u16, String) {
    let (status, _headers, body) = request_with_headers(port, method, path, &[], body);
    (status, body)
}

/// [`request`] with request headers attached and response headers
/// returned (the `429` test asserts on `Retry-After`).
fn request_with_headers(
    port: u16,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    // One-shot client: ask the server to close after the response so
    // `read_to_string` terminates under the keep-alive (reactor) front
    // end too.
    let mut raw = format!("{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n");
    for (name, value) in headers {
        raw.push_str(&format!("{name}: {value}\r\n"));
    }
    raw.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
    stream.write_all(raw.as_bytes()).unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    let status: u16 = text
        .split_ascii_whitespace()
        .nth(1)
        .unwrap_or("0")
        .parse()
        .unwrap_or(0);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    (status, head, body)
}

fn read_response(stream: &mut TcpStream) -> (u16, String) {
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    let status: u16 = text
        .split_ascii_whitespace()
        .nth(1)
        .unwrap_or("0")
        .parse()
        .unwrap_or(0);
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn post_json(port: u16, path: &str, body: &str) -> (u16, Value) {
    let (status, text) = request(port, "POST", path, body);
    (status, Value::parse(&text).unwrap())
}

#[test]
fn responses_are_bit_identical_to_library_calls() {
    let (b, g, model) = test_bundle(1);
    let handle = start(b, ServeConfig::default()).unwrap();
    let port = handle.port();

    // /v1/embed vs GnnModel::score_graph — exact f64 equality through
    // the JSON round-trip (the rt writer is exact for finite f64).
    let direct_scores = model.score_graph(&g);
    let (status, v) = post_json(port, "/v1/embed", "{\"nodes\": [0, 7, 63, 119]}");
    assert_eq!(status, 200);
    let rows = v.get("scores").and_then(|s| s.as_array()).unwrap();
    assert_eq!(rows.len(), 4);
    for row in rows {
        let pair = row.as_array().unwrap();
        let node = pair[0].as_usize().unwrap();
        let score = pair[1].as_f64().unwrap();
        assert_eq!(score, direct_scores[node], "node {node}");
    }

    // /v1/influence vs ic_spread_estimate under identical canonical
    // arguments (server sorts + dedups the seed list).
    let (status, v) = post_json(
        port,
        "/v1/influence",
        "{\"seeds\": [9, 3, 3, 40], \"runs\": 32, \"seed\": 5}",
    );
    assert_eq!(status, 200);
    let direct = ic_spread_estimate(&g, &[3, 9, 40], None, 32, 5);
    assert_eq!(v.get("spread").and_then(|s| s.as_f64()), Some(direct));
    assert_eq!(v.get("cached").and_then(|s| s.as_bool()), Some(false));
    // A permuted duplicate of the same query must hit the cache and
    // return the identical value.
    let (_, v2) = post_json(
        port,
        "/v1/influence",
        "{\"seeds\": [40, 9, 3], \"runs\": 32, \"seed\": 5}",
    );
    assert_eq!(v2.get("spread").and_then(|s| s.as_f64()), Some(direct));
    assert_eq!(v2.get("cached").and_then(|s| s.as_bool()), Some(true));

    // /v1/seeds vs celf_exact, twice: the second, smaller k is served
    // from the resumable CELF prefix and must still match exactly.
    for k in [8usize, 3] {
        let reference = celf_exact(&g, k);
        let (status, v) = post_json(port, "/v1/seeds", &format!("{{\"k\": {k}}}"));
        assert_eq!(status, 200);
        let got: Vec<u32> = v
            .get("seeds")
            .and_then(|s| s.as_array())
            .unwrap()
            .iter()
            .map(|x| x.as_usize().unwrap() as u32)
            .collect();
        assert_eq!(got, reference.seeds, "k={k}");
        assert_eq!(
            v.get("spread").and_then(|s| s.as_f64()),
            Some(reference.spread),
            "k={k}"
        );
    }

    // /healthz carries the graph fingerprint of the loaded bundle.
    let (status, text) = request(port, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let fp = format!("{:#018x}", bundle::graph_fingerprint(&g));
    assert!(text.contains(&fp), "healthz missing fingerprint: {text}");

    handle.shutdown();
}

#[test]
fn metrics_reflect_requests_and_batched_forward_passes() {
    let (b, _g, _m) = test_bundle(2);
    let cfg = ServeConfig {
        workers: 8,
        batch_window: Duration::from_millis(40),
        ..ServeConfig::default()
    };
    let handle = start(b, cfg).unwrap();
    let port = handle.port();

    // Fire 6 embed requests through the server at once; the batcher
    // must coalesce at least some of them.
    let n = 6;
    let barrier = Arc::new(Barrier::new(n));
    let threads: Vec<_> = (0..n)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                post_json(port, "/v1/embed", "{\"nodes\": [1, 2]}")
            })
        })
        .collect();
    let first = threads
        .into_iter()
        .map(|t| t.join().unwrap())
        .collect::<Vec<_>>();
    for (status, v) in &first {
        assert_eq!(*status, 200);
        // batching must not change payloads: all 6 are identical
        assert_eq!(v.to_json_string(), first[0].1.to_json_string());
    }

    let (status, text) = request(port, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let counter = |name: &str| metrics::parse_counter(&text, name);
    assert_eq!(
        counter("privim_requests_total{endpoint=\"embed\"}"),
        Some(n as u64)
    );
    let passes = counter("privim_batch_forward_passes_total").unwrap();
    let served = counter("privim_batch_batched_requests_total").unwrap();
    assert_eq!(served, n as u64, "all embed requests flow through the batcher");
    assert!(passes >= 1, "at least one forward pass must be recorded");
    assert!(
        passes < n as u64,
        "{n} simultaneous requests took {passes} passes — nothing was batched"
    );
    // the 2xx counter covers the embed requests plus this /metrics read's
    // predecessors; at minimum the n embeds are there
    assert!(counter("privim_responses_total{class=\"2xx\"}").unwrap() >= n as u64);

    // Durability counters are always exposed (zero on a journal-less
    // server) so dashboards can alert on them without a config change.
    assert_eq!(counter("privim_timeout_config_failures_total"), Some(0));
    assert_eq!(counter("privim_wal_appends_total"), Some(0));
    assert_eq!(counter("privim_wal_append_failures_total"), Some(0));
    assert_eq!(counter("privim_wal_compactions_total"), Some(0));
    assert_eq!(counter("privim_wal_compaction_failures_total"), Some(0));

    handle.shutdown();
}

#[test]
fn full_queue_sheds_with_503() {
    let (b, _g, _m) = test_bundle(3);
    // Threaded front end pinned: this test's premise — an idle
    // connection occupies a worker until its read deadline — only holds
    // for thread-per-connection. The reactor's queue-full shed is
    // covered in tests/reactor.rs with a pipelined burst instead.
    let cfg = ServeConfig {
        workers: 1,
        queue_cap: 1,
        deadline: Duration::from_millis(1500),
        frontend: FrontEnd::Threaded,
        ..ServeConfig::default()
    };
    let handle = start(b, cfg).unwrap();
    let port = handle.port();

    // Occupy the single worker: connect and send nothing. The worker
    // blocks reading this request until its deadline budget lapses.
    let holder = TcpStream::connect(("127.0.0.1", port)).unwrap();
    std::thread::sleep(Duration::from_millis(200)); // let the worker pop it
    // Fill the queue (cap = 1) with a second idle connection.
    let _queued = TcpStream::connect(("127.0.0.1", port)).unwrap();
    std::thread::sleep(Duration::from_millis(200));
    // The next connection overflows the queue: immediate 503.
    let mut overflow = TcpStream::connect(("127.0.0.1", port)).unwrap();
    overflow
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let (status, body) = read_response(&mut overflow);
    assert_eq!(status, 503, "expected shed, got {status}: {body}");
    assert!(body.contains("shed"), "{body}");

    // After the dust settles the shed counter is visible in /metrics.
    drop(holder);
    std::thread::sleep(Duration::from_millis(100));
    let (_, text) = request(port, "GET", "/metrics", "");
    assert!(metrics::parse_counter(&text, "privim_shed_total").unwrap() >= 1);

    handle.shutdown();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let (b, g, model) = test_bundle(4);
    let handle = start(b, ServeConfig::default()).unwrap();
    let port = handle.port();

    // Open a request and transmit only the headers; the body arrives
    // AFTER shutdown is initiated. A draining server must finish it.
    let body = "{\"nodes\": [5]}";
    let mut slow = TcpStream::connect(("127.0.0.1", port)).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    slow.write_all(
        format!(
            "POST /v1/embed HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(150)); // worker is now mid-read

    let finisher = {
        let mut half = slow.try_clone().unwrap();
        let body = body.to_string();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            half.write_all(body.as_bytes()).unwrap();
        })
    };

    // Shutdown while the request is in flight; this blocks until every
    // worker exits, so returning at all proves the drain completed.
    let drained = handle.shutdown();
    finisher.join().unwrap();
    let (status, text) = read_response(&mut slow);
    assert_eq!(status, 200, "in-flight request must complete: {text}");
    let v = Value::parse(&text).unwrap();
    let row = v.get("scores").and_then(|s| s.as_array()).unwrap()[0]
        .as_array()
        .unwrap();
    assert_eq!(row[1].as_f64(), Some(model.score_graph(&g)[5]));
    assert!(drained >= 1, "the drained counter must record the request");

    // The listener is gone: a fresh connection cannot complete an
    // exchange any more.
    match TcpStream::connect(("127.0.0.1", port)) {
        Err(_) => {}
        Ok(mut c) => {
            let _ = c.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
            let _ = c.set_read_timeout(Some(Duration::from_millis(500)));
            let mut buf = String::new();
            assert!(
                c.read_to_string(&mut buf).is_err() || buf.is_empty(),
                "server answered after shutdown: {buf}"
            );
        }
    }
}

#[test]
fn exhausted_tenant_gets_429_with_retry_after_and_correct_gauges() {
    // A tight budget: σ=8 under ε=1 admits a few queries, then refuses.
    let ledger = LedgerConfig {
        epsilon_budget: 1.0,
        delta: 1e-5,
        query_sigma: 8.0,
        retry_after_secs: 45,
    };
    let b = test_bundle_with_ledger(5, ledger);
    let handle = start(b, ServeConfig::default()).unwrap();
    let port = handle.port();
    let tenant_hdr = [("X-Privim-Tenant", "acme")];

    // Drive the tenant to exhaustion. Every granted query must be a 200;
    // the first refusal must be a 429 with Retry-After and a JSON body
    // naming the tenant and the spend.
    let mut granted = 0u64;
    let (retry_head, refusal_body) = loop {
        let (status, head, body) =
            request_with_headers(port, "POST", "/v1/embed", &tenant_hdr, "{\"nodes\": [1, 2]}");
        match status {
            200 => {
                granted += 1;
                assert!(granted < 1000, "tight budget never exhausted");
            }
            429 => break (head, body),
            other => panic!("unexpected status {other}: {body}"),
        }
    };
    assert!(granted >= 1, "at least one query must fit in the budget");
    assert!(
        retry_head.contains("Retry-After: 45"),
        "429 must carry Retry-After: {retry_head}"
    );
    let v = Value::parse(&refusal_body).unwrap();
    assert_eq!(v.get("tenant").and_then(|t| t.as_str()), Some("acme"));
    let spent = v.get("epsilon_spent").and_then(|e| e.as_f64()).unwrap();
    assert!(spent > 0.0 && spent <= 1.0, "spent {spent}");

    // Exhaustion is sticky: immediately refused again, on any metered
    // endpoint.
    let (status, head, _) =
        request_with_headers(port, "POST", "/v1/seeds", &tenant_hdr, "{\"k\": 3}");
    assert_eq!(status, 429);
    assert!(head.contains("Retry-After: 45"));

    // Unmetered requests (no tenant header) still work — and so does a
    // different tenant with its own untouched budget.
    let (status, _) = request(port, "POST", "/v1/embed", "{\"nodes\": [3]}");
    assert_eq!(status, 200, "requests without a tenant header are unmetered");
    let (status, _, _) = request_with_headers(
        port,
        "POST",
        "/v1/embed",
        &[("X-Privim-Tenant", "other")],
        "{\"nodes\": [4]}",
    );
    assert_eq!(status, 200, "tenants have independent budgets");

    // The /metrics gauges agree with what just happened.
    let (status, text) = request(port, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert_eq!(
        metrics::parse_counter(&text, "privim_tenant_queries_total{tenant=\"acme\"}"),
        Some(granted)
    );
    assert_eq!(
        metrics::parse_counter(&text, "privim_tenant_queries_total{tenant=\"other\"}"),
        Some(1)
    );
    assert_eq!(
        metrics::parse_gauge(&text, "privim_budget_epsilon_limit"),
        Some(1.0)
    );
    assert!(
        metrics::parse_counter(&text, "privim_budget_denied_total").unwrap() >= 2,
        "both refusals must be counted"
    );
    assert_eq!(
        metrics::parse_counter(&text, "privim_budget_admitted_total"),
        Some(granted + 1)
    );
    let spent_gauge =
        metrics::parse_gauge(&text, "privim_tenant_epsilon_spent{tenant=\"acme\"}").unwrap();
    let remaining =
        metrics::parse_gauge(&text, "privim_tenant_epsilon_remaining{tenant=\"acme\"}").unwrap();
    assert!((spent_gauge - spent).abs() < 1e-12, "{spent_gauge} vs {spent}");
    assert!(remaining >= 0.0 && remaining < 1.0);
    // remaining is what the budget has left of the exposed spend
    assert!((spent_gauge + remaining - 1.0).abs() < 0.6, "remaining must complement spend");
    // the 429s are 4xx-class responses
    assert!(metrics::parse_counter(&text, "privim_responses_total{class=\"4xx\"}").unwrap() >= 2);

    handle.shutdown();
}

#[test]
fn metrics_counters_are_monotone_across_graceful_drain() {
    let (b, _g, _m) = test_bundle(6);
    let handle = start(b, ServeConfig::default()).unwrap();
    let port = handle.port();

    for i in 0..4 {
        let (status, _) =
            request(port, "POST", "/v1/embed", &format!("{{\"nodes\": [{i}]}}"));
        assert_eq!(status, 200);
    }
    let (status, before) = request(port, "GET", "/metrics", "");
    assert_eq!(status, 200);

    // More traffic between the scrape and the drain.
    for _ in 0..2 {
        let (status, _) = request(
            port,
            "POST",
            "/v1/influence",
            "{\"seeds\": [2, 5], \"runs\": 16, \"seed\": 3}",
        );
        assert_eq!(status, 200);
    }
    let (_, _) = request(port, "GET", "/healthz", "");

    let (_drained, after) = handle.drain();

    // Every cumulative series present in the first scrape must be ≥ in
    // the post-drain exposition: draining completes requests, it never
    // resets or loses them. (Gauges — queue depth, cache entries — are
    // exempt; they legitimately move both ways.)
    let monotone = |name: &str| {
        name.contains("_total") || name.contains("_bucket") || name.contains("_sum")
    };
    let mut checked = 0usize;
    for line in before.lines() {
        let Some((name, value)) = line.rsplit_once(' ') else {
            continue;
        };
        if !monotone(name) {
            continue;
        }
        let prev: u64 = value.parse().unwrap();
        let now = metrics::parse_counter(&after, name)
            .unwrap_or_else(|| panic!("series {name} vanished across drain"));
        assert!(
            now >= prev,
            "{name} went backwards across drain: {prev} -> {now}"
        );
        checked += 1;
    }
    assert!(
        checked > 20,
        "expected to check many cumulative series, got {checked}"
    );
    // And the requests issued between scrape and drain are visible in
    // the final exposition.
    assert_eq!(
        metrics::parse_counter(&after, "privim_requests_total{endpoint=\"influence\"}"),
        Some(2)
    );
    assert_eq!(
        metrics::parse_counter(&after, "privim_requests_total{endpoint=\"embed\"}"),
        Some(4)
    );
}

//! Crash-durability tests for the budget-ledger WAL: every injected I/O
//! fault point must recover without undercharging, random crash points
//! must never lose an acknowledged charge, and a serving process that
//! stops without a clean re-pack must come back with per-tenant spend
//! >= everything it acknowledged over TCP.

use privim::ServeArtifact;
use privim_gnn::{GnnConfig, GnnModel};
use privim_rt::fault::{FaultPlan, FaultPoint};
use privim_rt::json::Value;
use privim_rt::{fault, ChaCha8Rng, Rng, SeedableRng};
use privim_serve::metrics::parse_counter;
use privim_serve::{
    bundle, start, wal, DurabilityConfig, FsyncPolicy, LedgerConfig, LedgerState, ServeConfig,
    WalWriter,
};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

const IO_POINTS: [FaultPoint; 4] = [
    FaultPoint::IoShortWrite,
    FaultPoint::IoTornWrite,
    FaultPoint::IoFsyncFail,
    FaultPoint::CrashAfterWrite,
];

fn tmp(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("privim-wal-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn generous_config() -> LedgerConfig {
    // sigma=24 under an eps=8 budget admits hundreds of queries — these
    // tests exercise durability, not exhaustion.
    LedgerConfig {
        epsilon_budget: 8.0,
        delta: 1e-5,
        query_sigma: 24.0,
        retry_after_secs: 60,
    }
}

/// A loaded metered bundle over a small graph (untrained model: serving
/// durability does not depend on weight quality).
fn metered_bundle(seed: u64) -> bundle::Bundle {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = privim_graph::generators::barabasi_albert(60, 3, &mut rng).with_uniform_weights(1.0);
    let artifact = ServeArtifact {
        model: GnnModel::new(GnnConfig::paper_default(), &mut rng),
        epsilon: Some(2.0),
        delta: 1e-4,
        sigma: 1.5,
        steps: 80,
    };
    let mut buf = Vec::new();
    bundle::save_with_ledger(&artifact, &g, &LedgerState::new(generous_config()), &mut buf)
        .unwrap();
    bundle::load(buf.as_slice()).unwrap()
}

fn post_metered(port: u16, tenant: &str) -> u16 {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let body = "{\"nodes\":[1,2,3]}";
    let raw = format!(
        "POST /v1/embed HTTP/1.1\r\nHost: t\r\nConnection: close\r\nX-Privim-Tenant: {tenant}\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    text.split_ascii_whitespace().nth(1).unwrap_or("0").parse().unwrap_or(0)
}

/// For each I/O fault point: append through a writer with that fault
/// armed, track which appends were acknowledged (returned Ok), recover
/// the journal, and assert recovered spend covers every acknowledged
/// charge. Pins each point's specific failure shape too.
#[test]
fn every_io_fault_point_recovers_without_undercharge() {
    for point in IO_POINTS {
        let path = tmp(&format!("point-{}", point.name()));
        let plan = FaultPlan::at_step(13, point, 2);
        let mut w = WalWriter::open_with_plan(&path, FsyncPolicy::Always, Some(plan)).unwrap();
        let mut acked = 0u64;
        let mut attempted = 0u64;
        for q in 1..=6u64 {
            if w.poisoned() {
                // A real process would be dead (crash) or refusing
                // appends (failed fsync): restart on the same journal.
                w = WalWriter::open_with_plan(&path, FsyncPolicy::Always, Some(plan)).unwrap();
            }
            attempted = q;
            if w.append("acme", q).is_ok() {
                acked = q;
            }
        }
        drop(w);
        let mut state = LedgerState::new(generous_config());
        let report = wal::recover_from_path(&mut state, &path).unwrap();
        assert!(report.wal_present, "{}", point.name());
        let recovered = state.tenants.get("acme").copied().unwrap_or(0);
        assert!(
            recovered >= acked,
            "{}: recovered {recovered} < acked {acked} — undercharge",
            point.name()
        );
        assert!(recovered <= attempted, "{}: recovered more than attempted", point.name());
        match point {
            // Write faults: the torn attempt was repaired away, every
            // acknowledged record is intact.
            FaultPoint::IoShortWrite | FaultPoint::IoTornWrite => {
                assert_eq!(recovered, acked, "{}", point.name());
                assert_eq!(report.torn_tail_bytes, 0, "{}: open/repair left a tail", point.name());
            }
            // The failed-fsync / crash-after-write record was durable (or
            // at least present) but never acknowledged: overcharge is
            // expected and allowed.
            FaultPoint::IoFsyncFail | FaultPoint::CrashAfterWrite => {
                // The fault fires at attempt 2 of each writer: q=3 on the
                // original and q=6 on the restarted one. Both records hit
                // the file before the failure, so recovery keeps them —
                // one query of overcharge, zero undercharge.
                assert_eq!(acked, 5, "restart must resume acknowledging");
                assert_eq!(recovered, 6, "{}", point.name());
            }
            _ => unreachable!(),
        }
        let _ = std::fs::remove_file(&path);
    }
}

/// Fsync failure semantics: the writer poisons itself (no further
/// appends — the journal's durable state is unknowable), and the
/// already-written record survives recovery in the overcharge direction.
#[test]
fn fsync_failure_poisons_the_writer_and_keeps_the_charge() {
    let path = tmp("fsync-poison");
    let plan = FaultPlan::at_step(5, FaultPoint::IoFsyncFail, 1);
    let mut w = WalWriter::open_with_plan(&path, FsyncPolicy::Always, Some(plan)).unwrap();
    w.append("acme", 1).unwrap();
    assert!(w.append("acme", 2).is_err());
    assert!(w.poisoned());
    assert!(w.append("acme", 3).is_err(), "poisoned writer must refuse appends");
    assert!(w.reset().is_err(), "poisoned writer must refuse reset");
    drop(w);
    let mut state = LedgerState::new(generous_config());
    wal::recover_from_path(&mut state, &path).unwrap();
    // Record 2 was written (sync failed after): kept — overcharge-safe.
    assert_eq!(state.tenants.get("acme"), Some(&2));
    let _ = std::fs::remove_file(&path);
}

/// Seeded property test: build a journal, crash at a random byte offset
/// (plus a CRC-corruption variant), recover, and assert recovered spend
/// is monotone >= acknowledged spend under the fsync=always ack model (a
/// charge is acknowledged only once its record is fully durable).
/// Replay of identical bytes must also be identical.
#[test]
fn random_crash_points_never_undercharge() {
    for seed in 0..60u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut buf = Vec::new();
        let mut counts = [0u64; 3];
        // (journal length after record, counts acknowledged by then)
        let mut acked_at: Vec<(usize, [u64; 3])> = Vec::new();
        let records = 5 + (rng.gen::<u64>() % 20) as usize;
        for _ in 0..records {
            let t = (rng.gen::<u64>() % 3) as usize;
            counts[t] += 1;
            wal::append_record(&mut buf, &format!("tenant-{t}"), counts[t]).unwrap();
            acked_at.push((buf.len(), counts));
        }
        let cut = (rng.gen::<u64>() % (buf.len() as u64 + 1)) as usize;
        let acked = acked_at
            .iter()
            .rev()
            .find(|(off, _)| *off <= cut)
            .map(|(_, c)| *c)
            .unwrap_or([0; 3]);
        let (rec_a, stats_a) = wal::replay(&buf[..cut]);
        let (rec_b, stats_b) = wal::replay(&buf[..cut]);
        assert_eq!(rec_a, rec_b, "seed={seed}: replay must be deterministic");
        assert_eq!(stats_a, stats_b, "seed={seed}");
        for (t, &acked_q) in acked.iter().enumerate() {
            let got = rec_a.get(&format!("tenant-{t}")).copied().unwrap_or(0);
            assert!(
                got >= acked_q,
                "seed={seed} cut={cut} tenant-{t}: recovered {got} < acked {acked_q}"
            );
            assert!(got <= counts[t], "seed={seed}: recovered beyond attempted");
        }
        // CRC-corruption variant: flip one stored-CRC byte (offset 4 of
        // a random record) — the ambiguous charge must be kept.
        if cut == buf.len() && !acked_at.is_empty() {
            let mut corrupted = buf.clone();
            let rec_idx = (rng.gen::<u64>() % acked_at.len() as u64) as usize;
            let rec_start = if rec_idx == 0 { 0 } else { acked_at[rec_idx - 1].0 };
            corrupted[rec_start + 4] ^= 0x5A;
            let (rec_c, stats_c) = wal::replay(&corrupted);
            assert_eq!(stats_c.ambiguous_kept, 1, "seed={seed}");
            for (t, &final_q) in counts.iter().enumerate() {
                let got = rec_c.get(&format!("tenant-{t}")).copied().unwrap_or(0);
                assert_eq!(got, final_q, "seed={seed}: ambiguous keep must not drop spend");
            }
        }
    }
}

/// The CI fault-matrix entry point: honors `PRIVIM_FAULT*` when set
/// (each matrix leg arms one I/O point), defaults to all four armed.
/// Appends through injected failures with restarts on poison, then
/// recovers and asserts no acknowledged charge was lost.
#[test]
fn env_plan_io_faults_recovery() {
    let plan = fault::env_plan().unwrap_or_else(|| FaultPlan::new(7, &IO_POINTS, 0.35));
    let path = tmp("env-matrix");
    let mut w = WalWriter::open_with_plan(&path, FsyncPolicy::Always, Some(plan)).unwrap();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut acked: BTreeMap<String, u64> = BTreeMap::new();
    let mut failures = 0u64;
    for i in 0..60u64 {
        let tenant = format!("tenant-{}", i % 3);
        // Admission charges in memory before journaling, so the logical
        // count advances even when the append fails (overcharge-safe).
        let q = counts.entry(tenant.clone()).or_insert(0);
        *q += 1;
        let q = *q;
        if w.poisoned() {
            w = WalWriter::open_with_plan(&path, FsyncPolicy::Always, Some(plan)).unwrap();
        }
        match w.append(&tenant, q) {
            Ok(()) => {
                acked.insert(tenant, q);
            }
            Err(_) => failures += 1,
        }
    }
    drop(w);
    let mut state = LedgerState::new(generous_config());
    let report = wal::recover_from_path(&mut state, &path).unwrap();
    assert!(report.wal_present);
    for (tenant, &acked_q) in &acked {
        let recovered = state.tenants.get(tenant).copied().unwrap_or(0);
        assert!(
            recovered >= acked_q,
            "{tenant}: recovered {recovered} < acked {acked_q} \
             (plan seed {}, {failures} injected failures)",
            plan.seed()
        );
        let attempted = counts.get(tenant).copied().unwrap_or(0);
        assert!(recovered <= attempted, "{tenant}: recovered beyond attempted");
    }
    // The default plan (and every CI matrix leg at its rate) must
    // actually exercise a failure path — a silent all-clean run would
    // prove nothing.
    if fault::env_plan().is_none() {
        assert!(failures > 0, "default plan injected nothing");
    }
    let _ = std::fs::remove_file(&path);
}

/// Full serving cycle: a metered server journals every acknowledged
/// charge; after an abrupt stop (no clean re-pack of the bundle),
/// recovery over the original ledger state must restore spend equal to
/// every 2xx the clients saw.
#[test]
fn server_recovers_acked_charges_after_abrupt_stop() {
    let wal_path = tmp("server-recover");
    let b = metered_bundle(40);
    let original_state = b.ledger.clone().unwrap();
    let cfg = ServeConfig {
        workers: 2,
        durability: Some(DurabilityConfig {
            wal_path: wal_path.clone(),
            fsync: FsyncPolicy::Always,
            compact_every: 0, // journal only — the bundle file never moves
            bundle_path: None,
        }),
        ..ServeConfig::default()
    };
    let handle = start(b, cfg).unwrap();
    let port = handle.port();
    let mut acked: BTreeMap<String, u64> = BTreeMap::new();
    for i in 0..12 {
        let tenant = format!("tenant-{}", i % 3);
        if post_metered(port, &tenant) == 200 {
            *acked.entry(tenant).or_insert(0) += 1;
        }
    }
    assert_eq!(acked.values().sum::<u64>(), 12, "generous budget must admit all");
    let text = handle.metrics_text();
    assert_eq!(parse_counter(&text, "privim_wal_appends_total"), Some(12));
    assert_eq!(parse_counter(&text, "privim_wal_append_failures_total"), Some(0));
    assert_eq!(parse_counter(&text, "privim_timeout_config_failures_total"), Some(0));
    // Abrupt stop: drop the server without folding the ledger back into
    // any bundle. The journal is the only record of the charges.
    let _ = handle.shutdown();
    let mut recovered = original_state;
    let report = wal::recover_from_path(&mut recovered, &wal_path).unwrap();
    assert!(report.wal_present);
    assert_eq!(report.records_applied, 12);
    for (tenant, &n) in &acked {
        assert_eq!(
            recovered.tenants.get(tenant).copied().unwrap_or(0),
            n,
            "{tenant}: recovered spend must equal acknowledged charges"
        );
    }
    // A restarted server on the recovered state keeps charging from
    // there, and journals into the same (truncation-repaired) file.
    let mut b2 = metered_bundle(40);
    b2.ledger = Some(recovered);
    let cfg2 = ServeConfig {
        workers: 2,
        durability: Some(DurabilityConfig {
            wal_path: wal_path.clone(),
            fsync: FsyncPolicy::Always,
            compact_every: 0,
            bundle_path: None,
        }),
        ..ServeConfig::default()
    };
    let handle2 = start(b2, cfg2).unwrap();
    assert_eq!(post_metered(handle2.port(), "tenant-0"), 200);
    let text2 = handle2.metrics_text();
    let acked0 = acked.get("tenant-0").copied().unwrap_or(0);
    assert_eq!(
        parse_counter(&text2, "privim_tenant_queries_total{tenant=\"tenant-0\"}"),
        Some(acked0 + 1),
        "post-restart spend must build on recovered spend"
    );
    let _ = handle2.shutdown();
    let _ = std::fs::remove_file(&wal_path);
}

/// Compaction folds the ledger into an atomically-replaced bundle
/// snapshot and truncates the journal; bundle + journal together always
/// reconstruct the full spend.
#[test]
fn compaction_snapshots_bundle_and_truncates_journal() {
    let wal_path = tmp("compact.wal");
    let bundle_path = tmp("compact-bundle.json");
    let b = metered_bundle(41);
    let cfg = ServeConfig {
        workers: 2,
        durability: Some(DurabilityConfig {
            wal_path: wal_path.clone(),
            fsync: FsyncPolicy::Always,
            compact_every: 3,
            bundle_path: Some(bundle_path.clone()),
        }),
        ..ServeConfig::default()
    };
    let handle = start(b, cfg).unwrap();
    let port = handle.port();
    for _ in 0..7 {
        assert_eq!(post_metered(port, "acme"), 200);
    }
    let text = handle.metrics_text();
    assert_eq!(parse_counter(&text, "privim_wal_compactions_total"), Some(2));
    assert_eq!(parse_counter(&text, "privim_wal_compaction_failures_total"), Some(0));
    let _ = handle.shutdown();
    // The snapshot is a loadable bundle carrying the compacted spend...
    let file = std::fs::File::open(&bundle_path).unwrap();
    let snapshot = bundle::load(std::io::BufReader::new(file)).unwrap();
    let mut state = snapshot.ledger.unwrap();
    let at_snapshot = state.tenants.get("acme").copied().unwrap();
    assert!(at_snapshot >= 6, "second compaction at append 6 must be in the snapshot");
    // ...and journal replay on top restores the post-snapshot tail.
    let report = wal::recover_from_path(&mut state, &wal_path).unwrap();
    assert!(report.wal_present);
    assert_eq!(state.tenants.get("acme"), Some(&7));
    let wal_len = std::fs::metadata(&wal_path).unwrap().len();
    assert!(
        wal_len < 3 * 40,
        "journal must have been truncated at compaction (len {wal_len})"
    );
    let _ = std::fs::remove_file(&wal_path);
    let _ = std::fs::remove_file(&bundle_path);
}

/// An unmetered bundle ignores durability config (nothing to journal);
/// a metered bundle without durability behaves exactly like PR 6.
#[test]
fn durability_is_inert_where_it_has_no_ledger() {
    let wal_path = tmp("inert");
    let mut rng = ChaCha8Rng::seed_from_u64(50);
    let g = privim_graph::generators::barabasi_albert(40, 3, &mut rng).with_uniform_weights(1.0);
    let artifact = ServeArtifact {
        model: GnnModel::new(GnnConfig::paper_default(), &mut rng),
        epsilon: None,
        delta: 1e-4,
        sigma: 1.5,
        steps: 10,
    };
    let mut buf = Vec::new();
    bundle::save(&artifact, &g, &mut buf).unwrap();
    let b = bundle::load(buf.as_slice()).unwrap();
    let cfg = ServeConfig {
        workers: 1,
        durability: Some(DurabilityConfig {
            wal_path: wal_path.clone(),
            fsync: FsyncPolicy::Always,
            compact_every: 1,
            bundle_path: None,
        }),
        ..ServeConfig::default()
    };
    let handle = start(b, cfg).unwrap();
    assert_eq!(post_metered(handle.port(), "acme"), 200);
    let text = handle.metrics_text();
    assert_eq!(parse_counter(&text, "privim_wal_appends_total"), Some(0));
    let _ = handle.shutdown();
    assert!(!wal_path.exists(), "unmetered serving must not create a journal");
}

/// Sanity for the e2e ack model: a 200 response implies the journal
/// append already happened (the counter is never behind the acks).
#[test]
fn two_hundreds_imply_durable_appends() {
    let wal_path = tmp("ack-order");
    let b = metered_bundle(42);
    let cfg = ServeConfig {
        workers: 4,
        durability: Some(DurabilityConfig {
            wal_path: wal_path.clone(),
            fsync: FsyncPolicy::Always,
            compact_every: 0,
            bundle_path: None,
        }),
        ..ServeConfig::default()
    };
    let handle = start(b, cfg).unwrap();
    let port = handle.port();
    let mut oks = 0u64;
    for i in 0..9 {
        if post_metered(port, &format!("t{}", i % 2)) == 200 {
            oks += 1;
            // Scrape between requests: appends >= acks at every point.
            let appends =
                parse_counter(&handle.metrics_text(), "privim_wal_appends_total").unwrap();
            assert!(appends >= oks, "appends {appends} < acks {oks}");
        }
    }
    let _ = handle.shutdown();
    let (counts, _) = wal::replay(&std::fs::read(&wal_path).unwrap());
    let journaled: u64 = counts.values().sum();
    assert!(journaled >= oks, "journaled {journaled} < acked {oks}");
    let _ = std::fs::remove_file(&wal_path);
    let _ = Value::parse("{}"); // keep the json import exercised under all cfgs
}

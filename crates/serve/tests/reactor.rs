//! Reactor front-end integration tests over real TCP: keep-alive reuse,
//! pipelined in-order responses, byte-identity with the threaded front
//! end, slowloris/idle reaping, queue-full shedding, and
//! drain-during-keep-alive.
//!
//! These tests use a *framed* client (parse `Content-Length`, read
//! exactly that many body bytes) rather than read-to-EOF, because the
//! whole point of keep-alive is that the connection stays open.

use privim::ServeArtifact;
use privim_gnn::{GnnConfig, GnnModel};
use privim_rt::{ChaCha8Rng, SeedableRng};
use privim_serve::{bundle, metrics, start, FrontEnd, ServeConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn test_bundle(seed: u64) -> bundle::Bundle {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = privim_graph::generators::barabasi_albert(120, 3, &mut rng)
        .with_uniform_weights(1.0);
    let model = GnnModel::new(GnnConfig::paper_default(), &mut rng);
    let artifact = ServeArtifact {
        model,
        epsilon: Some(2.0),
        delta: 1e-4,
        sigma: 1.5,
        steps: 80,
    };
    let mut buf = Vec::new();
    bundle::save(&artifact, &g, &mut buf).unwrap();
    bundle::load(buf.as_slice()).unwrap()
}

fn reactor_server(seed: u64, cfg: ServeConfig) -> ServerHandle {
    assert_eq!(cfg.frontend, FrontEnd::Reactor);
    start(test_bundle(seed), cfg).unwrap()
}

/// Serialize one request frame (keep-alive by default — no `Connection`
/// header on HTTP/1.1 means persist).
fn frame_request(method: &str, path: &str, body: &str, close: bool) -> Vec<u8> {
    let conn = if close { "Connection: close\r\n" } else { "" };
    format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\n{conn}Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Read exactly one framed response off the stream: returns
/// `(status, headers, body)`. `carry` holds bytes read past the frame
/// boundary (pipelined responses coalesce on the wire) — pass the same
/// buffer across calls on one connection. Panics on malformed framing —
/// these tests own both ends.
fn read_framed(stream: &mut TcpStream, carry: &mut Vec<u8>) -> (u16, String, String) {
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(p) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
            break p + 4;
        }
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "EOF before response head completed");
        carry.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(carry[..head_end].to_vec()).unwrap();
    let status: u16 = head.split_ascii_whitespace().nth(1).unwrap().parse().unwrap();
    let content_length: usize = head
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::trim).map(String::from))
        .unwrap()
        .parse()
        .unwrap();
    while carry.len() < head_end + content_length {
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "EOF mid-body");
        carry.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8(carry[head_end..head_end + content_length].to_vec()).unwrap();
    carry.drain(..head_end + content_length);
    (status, head, body)
}

#[test]
fn keepalive_connection_serves_many_requests() {
    let handle = reactor_server(11, ServeConfig::default());
    let port = handle.port();
    let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();

    let reuse = 8;
    let mut carry = Vec::new();
    let mut bodies = Vec::new();
    for i in 0..reuse {
        stream
            .write_all(&frame_request(
                "POST",
                "/v1/embed",
                &format!("{{\"nodes\": [{i}]}}"),
                false,
            ))
            .unwrap();
        let (status, head, body) = read_framed(&mut stream, &mut carry);
        assert_eq!(status, 200, "{body}");
        assert!(
            head.contains("Connection: keep-alive"),
            "persistent response expected: {head}"
        );
        bodies.push(body);
    }
    // All requests traveled one connection: reuse-1 reuses, 1 conn open.
    let text = handle.metrics_text();
    assert_eq!(
        metrics::parse_counter(&text, "privim_keepalive_reuses_total"),
        Some(reuse as u64 - 1)
    );
    assert_eq!(metrics::parse_counter(&text, "privim_open_connections"), Some(1));
    assert_eq!(metrics::parse_counter(&text, "privim_connections_total"), Some(1));

    // A Connection: close request ends the session after its response.
    stream
        .write_all(&frame_request("GET", "/healthz", "", true))
        .unwrap();
    let (status, head, _) = read_framed(&mut stream, &mut carry);
    assert_eq!(status, 200);
    assert!(head.contains("Connection: close"), "{head}");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "server must close after Connection: close");

    handle.shutdown();
}

#[test]
fn pipelined_requests_answer_in_order_with_identical_bodies() {
    let handle = reactor_server(12, ServeConfig::default());
    let port = handle.port();

    // Reference: the same two requests issued sequentially.
    let sequential: Vec<String> = (0..2)
        .map(|i| {
            let mut s = TcpStream::connect(("127.0.0.1", port)).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
            s.write_all(&frame_request(
                "POST",
                "/v1/embed",
                &format!("{{\"nodes\": [{}, {}]}}", i, i + 10),
                true,
            ))
            .unwrap();
            read_framed(&mut s, &mut Vec::new()).2
        })
        .collect();

    // Both requests in ONE write; responses must come back in request
    // order with byte-identical bodies.
    let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let mut burst = frame_request("POST", "/v1/embed", "{\"nodes\": [0, 10]}", false);
    burst.extend_from_slice(&frame_request("POST", "/v1/embed", "{\"nodes\": [1, 11]}", false));
    stream.write_all(&burst).unwrap();
    let mut carry = Vec::new();
    let (s0, _, b0) = read_framed(&mut stream, &mut carry);
    let (s1, _, b1) = read_framed(&mut stream, &mut carry);
    assert_eq!((s0, s1), (200, 200));
    assert_eq!(b0, sequential[0], "first pipelined response out of order or diverged");
    assert_eq!(b1, sequential[1], "second pipelined response out of order or diverged");

    let text = handle.metrics_text();
    // Every parse round records its depth: two sequential rounds plus at
    // least one for the burst.
    let observed =
        metrics::parse_counter(&text, "privim_pipeline_depth_bucket{le=\"+Inf\"}").unwrap();
    assert!(observed >= 3, "pipeline depth histogram must record parse rounds: {text}");
    handle.shutdown();
}

#[test]
fn headers_split_across_arbitrary_write_boundaries_still_parse() {
    let handle = reactor_server(13, ServeConfig::default());
    let port = handle.port();
    let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    stream.set_nodelay(true).unwrap();

    // Dribble the request a byte at a time with pauses, forcing the
    // reactor through many partial-parse rounds (the in-memory analog is
    // covered exhaustively in conn.rs unit tests; this pins the real
    // nonblocking-socket path).
    let raw = frame_request("POST", "/v1/embed", "{\"nodes\": [3]}", true);
    for chunk in raw.chunks(1) {
        stream.write_all(chunk).unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let (status, _, body) = read_framed(&mut stream, &mut Vec::new());
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("scores"), "{body}");
    handle.shutdown();
}

#[test]
fn reactor_matches_threaded_front_end_byte_for_byte() {
    let reactor = reactor_server(14, ServeConfig::default());
    let threaded = start(
        test_bundle(14),
        ServeConfig {
            frontend: FrontEnd::Threaded,
            ..ServeConfig::default()
        },
    )
    .unwrap();

    // Same bundle seed, same requests, raw response bytes compared:
    // `Connection: close` requests so both front ends emit close frames.
    for (method, path, body) in [
        ("POST", "/v1/embed", "{\"nodes\": [0, 7, 63, 119]}"),
        ("POST", "/v1/influence", "{\"seeds\": [9, 3, 40], \"runs\": 16, \"seed\": 5}"),
        ("POST", "/v1/seeds", "{\"k\": 4}"),
        ("GET", "/healthz", ""),
        ("POST", "/v1/embed", "{\"nodes\": [999]}"),   // routed 400
        ("DELETE", "/v1/embed", ""),                    // 405
        ("GET", "/nope", ""),                           // 404
    ] {
        let raw = |port: u16| -> Vec<u8> {
            let mut s = TcpStream::connect(("127.0.0.1", port)).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
            s.write_all(&frame_request(method, path, body, true)).unwrap();
            let mut out = Vec::new();
            s.read_to_end(&mut out).unwrap();
            out
        };
        let a = raw(reactor.port());
        let b = raw(threaded.port());
        assert_eq!(
            a,
            b,
            "front ends diverged on {method} {path}: reactor={:?} threaded={:?}",
            String::from_utf8_lossy(&a),
            String::from_utf8_lossy(&b)
        );
    }
    reactor.shutdown();
    threaded.shutdown();
}

#[test]
fn pipelined_burst_beyond_max_pipeline_is_fully_served() {
    // A burst deeper than the pipeline cap lands in one write: the
    // requests past the cap sit in the connection's read buffer with the
    // socket already drained, so serving them depends on the reactor
    // re-running the parser when worker completions free slots — no
    // readable event will ever fire for them.
    let cap = 4usize;
    let n = 3 * cap;
    let handle = reactor_server(
        19,
        ServeConfig {
            max_pipeline: cap,
            ..ServeConfig::default()
        },
    );
    let port = handle.port();

    // Reference bodies from sequential one-shot requests.
    let sequential: Vec<String> = (0..n)
        .map(|i| {
            let mut s = TcpStream::connect(("127.0.0.1", port)).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
            s.write_all(&frame_request(
                "POST",
                "/v1/embed",
                &format!("{{\"nodes\": [{i}]}}"),
                true,
            ))
            .unwrap();
            read_framed(&mut s, &mut Vec::new()).2
        })
        .collect();

    let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let mut burst = Vec::new();
    for i in 0..n {
        burst.extend_from_slice(&frame_request(
            "POST",
            "/v1/embed",
            &format!("{{\"nodes\": [{i}]}}"),
            false,
        ));
    }
    stream.write_all(&burst).unwrap();
    let mut carry = Vec::new();
    for (i, expect) in sequential.iter().enumerate() {
        let (status, _, body) = read_framed(&mut stream, &mut carry);
        assert_eq!(status, 200, "request {i} of the over-cap burst: {body}");
        assert_eq!(&body, expect, "request {i} answered out of order or diverged");
    }
    handle.shutdown();
}

#[test]
fn half_close_after_complete_requests_still_answers_them() {
    // Legal HTTP/1.1: write the requests, shutdown(SHUT_WR), then read.
    let handle = reactor_server(20, ServeConfig::default());
    let port = handle.port();
    let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let mut burst = frame_request("POST", "/v1/embed", "{\"nodes\": [5]}", false);
    burst.extend_from_slice(&frame_request("GET", "/healthz", "", false));
    stream.write_all(&burst).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();

    // Whether the FIN lands in the same read batch as the requests is a
    // kernel-level race, so the Connection header may honestly say either
    // close (EOF seen before parse) or keep-alive (EOF seen after); what
    // must hold is that both requests are answered and the connection
    // then closes.
    let mut carry = Vec::new();
    let (s0, _, b0) = read_framed(&mut stream, &mut carry);
    assert_eq!(s0, 200, "half-closed request must still be served: {b0}");
    assert!(b0.contains("scores"), "{b0}");
    let (s1, _, b1) = read_framed(&mut stream, &mut carry);
    assert_eq!(s1, 200, "{b1}");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "connection must close after the final response");
    handle.shutdown();
}

#[test]
fn half_sent_request_is_reaped_by_the_header_timeout() {
    let handle = reactor_server(
        15,
        ServeConfig {
            header_timeout: Duration::from_millis(300),
            idle_timeout: Duration::from_secs(30),
            ..ServeConfig::default()
        },
    );
    let port = handle.port();

    // A slowloris-style connection: half a request, then silence.
    let mut stalled = TcpStream::connect(("127.0.0.1", port)).unwrap();
    stalled.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stalled.write_all(b"POST /v1/embed HTTP/1.1\r\nHost: t\r\nContent-Le").unwrap();

    // The server must close it without ever getting a complete request.
    let mut buf = Vec::new();
    stalled.read_to_end(&mut buf).unwrap(); // EOF = server-side close
    assert!(buf.is_empty(), "no response should precede the reap: {buf:?}");
    let text = handle.metrics_text();
    assert!(
        metrics::parse_counter(&text, "privim_header_timeout_closes_total").unwrap() >= 1,
        "reap must be attributed to the header timeout: {text}"
    );
    assert_eq!(metrics::parse_counter(&text, "privim_open_connections"), Some(0));

    // A well-behaved client on the same server is unaffected.
    let mut ok = TcpStream::connect(("127.0.0.1", port)).unwrap();
    ok.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    ok.write_all(&frame_request("GET", "/healthz", "", true)).unwrap();
    let (status, _, _) = read_framed(&mut ok, &mut Vec::new());
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn idle_keepalive_connection_is_reaped_by_the_idle_timeout() {
    let handle = reactor_server(
        16,
        ServeConfig {
            idle_timeout: Duration::from_millis(300),
            header_timeout: Duration::from_secs(10),
            ..ServeConfig::default()
        },
    );
    let port = handle.port();
    let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // Complete one exchange, then idle: the server must reap the
    // connection once the idle timeout lapses.
    stream.write_all(&frame_request("GET", "/healthz", "", false)).unwrap();
    let (status, head, _) = read_framed(&mut stream, &mut Vec::new());
    assert_eq!(status, 200);
    assert!(head.contains("Connection: keep-alive"), "{head}");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap(); // blocks until server closes
    assert!(rest.is_empty());
    let text = handle.metrics_text();
    assert!(
        metrics::parse_counter(&text, "privim_idle_timeout_closes_total").unwrap() >= 1,
        "reap must be attributed to the idle timeout: {text}"
    );
    handle.shutdown();
}

#[test]
fn pipelined_burst_over_queue_cap_sheds_with_503() {
    // One worker + queue cap 1 + a wide batch window: the first embed
    // occupies the worker long enough that a pipelined burst must
    // overflow the bounded queue and be shed.
    let handle = reactor_server(
        17,
        ServeConfig {
            workers: 1,
            queue_cap: 1,
            batch_window: Duration::from_millis(200),
            ..ServeConfig::default()
        },
    );
    let port = handle.port();
    let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();

    let n = 8;
    let mut burst = Vec::new();
    for i in 0..n {
        burst.extend_from_slice(&frame_request(
            "POST",
            "/v1/embed",
            &format!("{{\"nodes\": [{i}]}}"),
            false,
        ));
    }
    stream.write_all(&burst).unwrap();

    // Every request gets a response, in order; the overflow ones are 503.
    let mut carry = Vec::new();
    let mut statuses = Vec::new();
    for _ in 0..n {
        statuses.push(read_framed(&mut stream, &mut carry).0);
    }
    assert_eq!(statuses[0], 200, "the first request was queued, not shed");
    assert!(
        statuses.iter().any(|&s| s == 503),
        "burst of {n} over queue_cap=1 must shed: {statuses:?}"
    );
    // The first queue-full 503 is close-marked, so nothing after it may
    // be a worker-served response — the rest of the batch is shed too.
    let first_shed = statuses.iter().position(|&s| s == 503).unwrap();
    assert!(
        statuses[first_shed..].iter().all(|&s| s == 503),
        "no response may follow a close-marked 503: {statuses:?}"
    );
    let text = handle.metrics_text();
    assert!(metrics::parse_counter(&text, "privim_shed_total").unwrap() >= 1);
    handle.shutdown();
}

#[test]
fn drain_during_keepalive_finishes_in_flight_then_closes() {
    // A wide batch window keeps the second request in flight long enough
    // for the drain to start while the worker still holds it.
    let handle = reactor_server(
        18,
        ServeConfig {
            batch_window: Duration::from_millis(300),
            ..ServeConfig::default()
        },
    );
    let port = handle.port();
    let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();

    // Establish the keep-alive session with one complete exchange.
    stream.write_all(&frame_request("POST", "/v1/embed", "{\"nodes\": [1]}", false)).unwrap();
    let mut carry = Vec::new();
    let (status, head, first_body) = read_framed(&mut stream, &mut carry);
    assert_eq!(status, 200);
    assert!(head.contains("Connection: keep-alive"), "{head}");

    // Send the next request and immediately begin the drain: the
    // in-flight request must be answered — with a forced close — and the
    // connection must then end.
    stream.write_all(&frame_request("POST", "/v1/embed", "{\"nodes\": [1]}", false)).unwrap();
    // Let the reactor read + enqueue the request before the drain begins
    // (well inside the 300ms the worker spends batching it).
    std::thread::sleep(Duration::from_millis(60));
    let shutdown = std::thread::spawn(move || handle.shutdown());
    let (status, head, body) = read_framed(&mut stream, &mut carry);
    assert_eq!(status, 200, "in-flight keep-alive request must complete: {body}");
    assert!(
        head.contains("Connection: close"),
        "drain must force close on the final response: {head}"
    );
    assert_eq!(body, first_body, "drain must not change the payload");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(carry.is_empty() && rest.is_empty(), "connection must close after the drained response");
    let drained = shutdown.join().unwrap();
    assert!(drained >= 1, "drained counter must record the in-flight request");
}

//! The versioned serving bundle: model + privacy statement + graph.
//!
//! `privim-serve pack` writes one JSON document that a serving process
//! can trust end-to-end:
//!
//! ```json
//! {"format": "privim-serve-bundle", "version": 3, "crc32": "0x…",
//!  "payload": {
//!     "model": { …GnnModel checkpoint payload… },
//!     "privacy": {"epsilon": 4.0, "delta": 1e-4, "sigma": 1.7, "steps": 80},
//!     "graph": {"num_nodes": n, "directed": false, "edges": [[u,v,w]…]},
//!     "graph_fingerprint": "0x…",
//!     "ledger": {"epsilon_budget": 1.0, "delta": 1e-5, "query_sigma": 4.0,
//!                "retry_after_secs": 60, "tenants": {"acme": 12}}
//!  }}
//! ```
//!
//! Version history: v1 had no `ledger` section; v2 added it as an
//! *optional* field (a metered deployment persists per-tenant budget
//! state, an unmetered one omits it). v3 added quantized model storage:
//! the `model` section may be replaced by `model_q8` (per-column int8
//! codes served through exact-integer SIMD matmuls, no dequantization at
//! serve time) or `model_f16` (storage-only binary16, decoded to the
//! dense path at load). Exactly one of the three model sections must be
//! present. v1/v2 bundles still load — absent ledger means every tenant
//! is unmetered, absent quant sections mean a dense model — so nothing
//! packed before the version bumps needs re-packing.
//!
//! Three integrity layers, each with a typed failure:
//!
//! 1. **format + version** — a bundle from a future incompatible writer
//!    is rejected up front, not half-parsed;
//! 2. **CRC-32 over the payload** — truncation/bit-rot detection (same
//!    checksum the GNN checkpoint format uses);
//! 3. **graph fingerprint** — a 64-bit FNV-1a over the canonical CSR arc
//!    list, recomputed after rebuild and compared to the stored value, so
//!    the serving graph is byte-for-byte the one the seeds/cache were
//!    computed against. Serialised as a hex *string*: JSON numbers are
//!    `f64` and would silently round 64-bit identifiers above 2^53.
//!
//! The privacy statement rides along because under DP the released
//! artifact *is* `(model, ε, δ, σ, steps)` — a server should be able to
//! state the budget of the model it is serving (`/metrics` could expose
//! it; the CLI prints it on startup).

use crate::cache::fnv1a64;
use crate::ledger::LedgerState;
use privim::ServeArtifact;
use privim_gnn::{GnnConfig, GnnModel, QuantGnnModel};
use privim_graph::{Graph, GraphBuilder, NodeId};
use privim_rt::json::Value;
use privim_rt::{crc, PrivimError, PrivimResult};
use privim_tensor::quant::F16Matrix;
use std::sync::Arc;

/// Format tag of a serve bundle.
pub const BUNDLE_FORMAT: &str = "privim-serve-bundle";
/// Current bundle format version (v2 added the optional ledger section;
/// v3 added the `model_q8`/`model_f16` quantized model sections).
pub const BUNDLE_VERSION: u64 = 3;
/// Oldest version [`load`] still accepts (v1 = no ledger).
pub const MIN_BUNDLE_VERSION: u64 = 1;

/// How the model weights are stored in (and served from) a bundle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuantMode {
    /// Dense `f64` checkpoint payload (the `model` section).
    None,
    /// Per-column int8 codes (`model_q8`), served via exact integer
    /// matmuls without dequantization.
    Int8,
    /// Storage-only binary16 (`model_f16`), decoded to dense at load.
    F16,
}

impl QuantMode {
    /// CLI name (`none`/`int8`/`f16`).
    pub fn name(self) -> &'static str {
        match self {
            QuantMode::None => "none",
            QuantMode::Int8 => "int8",
            QuantMode::F16 => "f16",
        }
    }

    /// Parse a CLI name.
    pub fn from_name(s: &str) -> Option<QuantMode> {
        match s.to_ascii_lowercase().as_str() {
            "none" => Some(QuantMode::None),
            "int8" => Some(QuantMode::Int8),
            "f16" => Some(QuantMode::F16),
            _ => None,
        }
    }
}

/// The (ε, δ)-DP statement a bundle carries alongside the model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrivacyStatement {
    /// Privacy budget ε (`None` = trained without DP).
    pub epsilon: Option<f64>,
    /// The δ of the statement.
    pub delta: f64,
    /// Calibrated noise multiplier σ.
    pub sigma: f64,
    /// DP-SGD steps taken.
    pub steps: u64,
}

/// A loaded, integrity-checked bundle, ready to serve.
#[derive(Debug)]
pub struct Bundle {
    /// The trained model in dense form. For `model_f16` bundles this is
    /// the (exactly re-encodable) decoded model; for `model_q8` bundles
    /// it is the dequantized reconstruction (serving should prefer
    /// [`Self::quant`]).
    pub model: GnnModel,
    /// The int8 serving model (`model_q8` bundles only).
    pub quant: Option<QuantGnnModel>,
    /// Which model section the bundle was stored with (compaction
    /// re-packs in the same mode).
    pub mode: QuantMode,
    /// Privacy statement the model was trained under.
    pub privacy: PrivacyStatement,
    /// The serving graph (shared: server workers, batcher and CELF state
    /// all hold clones of this `Arc`).
    pub graph: Arc<Graph>,
    /// FNV-1a fingerprint of the graph's canonical arc list.
    pub fingerprint: u64,
    /// Per-tenant serving budget ledger (`None` = unmetered deployment,
    /// including every v1 bundle).
    pub ledger: Option<LedgerState>,
}

/// 64-bit fingerprint of a graph: FNV-1a over `(n, directed, arcs)` in
/// canonical CSR order. Weights contribute their exact bit patterns.
pub fn graph_fingerprint(g: &Graph) -> u64 {
    let mut bytes = Vec::with_capacity(16 + g.num_arcs() * 16);
    bytes.extend_from_slice(&(g.num_nodes() as u64).to_le_bytes());
    bytes.push(g.is_directed() as u8);
    for (u, v, w) in g.arcs() {
        bytes.extend_from_slice(&u.to_le_bytes());
        bytes.extend_from_slice(&v.to_le_bytes());
        bytes.extend_from_slice(&w.to_bits().to_le_bytes());
    }
    fnv1a64(&bytes)
}

fn graph_to_json(g: &Graph) -> Value {
    // Undirected CSR stores each edge as two arcs; keep one per pair so
    // the builder round-trips it (it re-materialises the reverse arcs).
    let edges: Vec<Value> = g
        .arcs()
        .filter(|&(u, v, _)| g.is_directed() || u <= v)
        .map(|(u, v, w)| {
            Value::Arr(vec![
                Value::Num(u as f64),
                Value::Num(v as f64),
                Value::Num(w),
            ])
        })
        .collect();
    Value::obj(vec![
        ("num_nodes", Value::Num(g.num_nodes() as f64)),
        ("directed", Value::Bool(g.is_directed())),
        ("edges", Value::Arr(edges)),
    ])
}

fn graph_from_json(v: &Value) -> PrivimResult<Graph> {
    let bad = |msg: &str| PrivimError::Parse(format!("bundle graph: {msg}"));
    let n = v
        .get("num_nodes")
        .and_then(|x| x.as_usize())
        .ok_or_else(|| bad("missing num_nodes"))?;
    let directed = v
        .get("directed")
        .and_then(|x| x.as_bool())
        .ok_or_else(|| bad("missing directed"))?;
    let edges = v
        .get("edges")
        .and_then(|x| x.as_array())
        .ok_or_else(|| bad("missing edges"))?;
    let mut b = if directed {
        GraphBuilder::new_directed(n)
    } else {
        GraphBuilder::new_undirected(n)
    };
    for e in edges {
        let arr = e.as_array().ok_or_else(|| bad("edge is not an array"))?;
        let [u, v_, w] = arr else {
            return Err(bad("edge is not a [u, v, w] triple"));
        };
        let (u, v_, w) = match (u.as_usize(), v_.as_usize(), w.as_f64()) {
            (Some(u), Some(v_), Some(w)) if u < n && v_ < n && (0.0..=1.0).contains(&w) => {
                (u, v_, w)
            }
            _ => return Err(bad("edge endpoint/weight out of range")),
        };
        b.add_edge(u as NodeId, v_ as NodeId, w);
    }
    Ok(b.build())
}

/// Build the full bundle document (header + checksummed payload) for an
/// exported artifact and its serving graph. Unmetered: no ledger section.
pub fn pack(artifact: &ServeArtifact, graph: &Graph) -> Value {
    pack_with_ledger(artifact, graph, None)
}

/// [`pack`] with an optional per-tenant budget ledger (a metered
/// deployment persists its admission state in the bundle itself).
pub fn pack_with_ledger(
    artifact: &ServeArtifact,
    graph: &Graph,
    ledger: Option<&LedgerState>,
) -> Value {
    let privacy = PrivacyStatement {
        epsilon: artifact.epsilon,
        delta: artifact.delta,
        sigma: artifact.sigma,
        steps: artifact.steps as u64,
    };
    pack_parts(&artifact.model, &privacy, graph, ledger)
}

/// Build the bundle document from its parts. A running server compacts
/// its journal through this (it holds a model + privacy statement, not a
/// [`ServeArtifact`]); byte-for-byte the same output as pack-time for
/// the same parts, so a snapshot is indistinguishable from a fresh pack.
pub fn pack_parts(
    model: &GnnModel,
    privacy: &PrivacyStatement,
    graph: &Graph,
    ledger: Option<&LedgerState>,
) -> Value {
    pack_parts_section(("model", model.checkpoint_payload()), privacy, graph, ledger)
}

/// [`pack_parts`] storing the model as per-column int8 codes in a
/// `model_q8` section. The quantized model *is* the serving artifact —
/// its exact-integer matmuls make scores backend-invariant — and
/// compaction re-serialises it code-for-code, so the mode survives
/// snapshot cycles.
pub fn pack_parts_q8(
    quant: &QuantGnnModel,
    privacy: &PrivacyStatement,
    graph: &Graph,
    ledger: Option<&LedgerState>,
) -> Value {
    pack_parts_section(("model_q8", quant.to_json()), privacy, graph, ledger)
}

/// [`pack_parts`] storing the model as storage-only binary16 in a
/// `model_f16` section. Loading decodes to a dense model; because
/// `f16_encode(f16_decode(h)) == h`, re-packing that model reproduces
/// the section bit-for-bit.
pub fn pack_parts_f16(
    model: &GnnModel,
    privacy: &PrivacyStatement,
    graph: &Graph,
    ledger: Option<&LedgerState>,
) -> Value {
    pack_parts_section(("model_f16", model_to_f16_json(model)), privacy, graph, ledger)
}

/// Mode-aware pack: compaction re-packs a bundle in the mode it was
/// loaded with. An `Int8` mode without a quantized model in hand (which
/// [`load`] never produces) degrades to a dense pack rather than failing
/// a snapshot.
pub fn pack_parts_in_mode(
    model: &GnnModel,
    quant: Option<&QuantGnnModel>,
    mode: QuantMode,
    privacy: &PrivacyStatement,
    graph: &Graph,
    ledger: Option<&LedgerState>,
) -> Value {
    match (mode, quant) {
        (QuantMode::Int8, Some(q)) => pack_parts_q8(q, privacy, graph, ledger),
        (QuantMode::F16, _) => pack_parts_f16(model, privacy, graph, ledger),
        _ => pack_parts(model, privacy, graph, ledger),
    }
}

fn model_to_f16_json(model: &GnnModel) -> Value {
    let params: Vec<Value> = model
        .params()
        .iter()
        .map(|m| F16Matrix::from_matrix(m).to_json())
        .collect();
    Value::obj(vec![
        ("config", model.config().to_json()),
        ("params", Value::Arr(params)),
    ])
}

fn model_from_f16_json(v: &Value) -> PrivimResult<GnnModel> {
    let bad = |msg: &str| PrivimError::Parse(format!("bundle model_f16: {msg}"));
    let config = GnnConfig::from_json(v.get("config").ok_or_else(|| bad("missing config"))?)?;
    let params = v
        .get("params")
        .and_then(|p| p.as_array())
        .ok_or_else(|| bad("missing params"))?
        .iter()
        .map(|p| {
            F16Matrix::from_json(p)
                .map(|f| f.to_matrix())
                .map_err(|e| bad(&e))
        })
        .collect::<PrivimResult<Vec<_>>>()?;
    GnnModel::from_parts(config, params)
}

fn pack_parts_section(
    model_section: (&'static str, Value),
    privacy: &PrivacyStatement,
    graph: &Graph,
    ledger: Option<&LedgerState>,
) -> Value {
    let fingerprint = graph_fingerprint(graph);
    let mut fields = vec![
        model_section,
        (
            "privacy",
            Value::obj(vec![
                (
                    "epsilon",
                    privacy.epsilon.map(Value::Num).unwrap_or(Value::Null),
                ),
                ("delta", Value::Num(privacy.delta)),
                ("sigma", Value::Num(privacy.sigma)),
                ("steps", Value::Num(privacy.steps as f64)),
            ]),
        ),
        ("graph", graph_to_json(graph)),
        ("graph_fingerprint", Value::Str(format!("{fingerprint:#018x}"))),
    ];
    if let Some(state) = ledger {
        fields.push(("ledger", state.to_json()));
    }
    let payload = Value::obj(fields);
    let crc = crc::crc32(payload.to_json_string().as_bytes());
    Value::obj(vec![
        ("format", Value::Str(BUNDLE_FORMAT.to_string())),
        ("version", Value::Num(BUNDLE_VERSION as f64)),
        ("crc32", Value::Str(format!("{crc:#010x}"))),
        ("payload", payload),
    ])
}

/// Serialise a packed bundle to a writer. Unmetered: no ledger section.
pub fn save<W: std::io::Write>(artifact: &ServeArtifact, graph: &Graph, mut w: W) -> PrivimResult<()> {
    w.write_all(pack(artifact, graph).to_json_string().as_bytes())
        .map_err(|e| PrivimError::io("writing serve bundle", e))
}

/// [`save`] with a per-tenant budget ledger.
pub fn save_with_ledger<W: std::io::Write>(
    artifact: &ServeArtifact,
    graph: &Graph,
    ledger: &LedgerState,
    mut w: W,
) -> PrivimResult<()> {
    ledger.config.validate()?;
    w.write_all(
        pack_with_ledger(artifact, graph, Some(ledger))
            .to_json_string()
            .as_bytes(),
    )
    .map_err(|e| PrivimError::io("writing serve bundle", e))
}

fn parse_hex_u64(s: &str) -> Option<u64> {
    let digits = s.strip_prefix("0x").unwrap_or(s);
    if digits.is_empty() || digits.len() > 16 {
        return None;
    }
    u64::from_str_radix(digits, 16).ok()
}

fn parse_hex_u32(s: &str) -> Option<u32> {
    let digits = s.strip_prefix("0x").unwrap_or(s);
    if digits.is_empty() || digits.len() > 8 {
        return None;
    }
    u32::from_str_radix(digits, 16).ok()
}

/// Load and fully verify a bundle: format, version, CRC-32, model layout
/// and graph fingerprint. Every failure is a typed [`PrivimError`].
pub fn load<R: std::io::Read>(mut r: R) -> PrivimResult<Bundle> {
    let mut text = String::new();
    r.read_to_string(&mut text)
        .map_err(|e| PrivimError::io("reading serve bundle", e))?;
    let doc = Value::parse(&text).map_err(|e| PrivimError::Parse(format!("serve bundle: {e}")))?;
    let format = doc.get("format").and_then(|v| v.as_str()).unwrap_or("");
    if format != BUNDLE_FORMAT {
        return Err(PrivimError::Parse(format!(
            "not a {BUNDLE_FORMAT} file (format = {format:?})"
        )));
    }
    let version = doc
        .get("version")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| PrivimError::Parse("bundle missing version".into()))?;
    if !(MIN_BUNDLE_VERSION..=BUNDLE_VERSION).contains(&version) {
        return Err(PrivimError::invalid(format!(
            "bundle version {version} not supported (accepted: {MIN_BUNDLE_VERSION}..={BUNDLE_VERSION})"
        )));
    }
    let payload = doc
        .get("payload")
        .ok_or_else(|| PrivimError::Parse("bundle missing payload".into()))?;
    let stored_crc = doc
        .get("crc32")
        .and_then(|v| v.as_str())
        .and_then(parse_hex_u32)
        .ok_or_else(|| PrivimError::Parse("bundle missing/bad crc32".into()))?;
    let actual_crc = crc::crc32(payload.to_json_string().as_bytes());
    if stored_crc != actual_crc {
        return Err(PrivimError::Parse(format!(
            "bundle checksum mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x}) \
             — file is corrupted or truncated"
        )));
    }

    let dense = payload.get("model");
    let q8 = payload.get("model_q8");
    let f16 = payload.get("model_f16");
    let present = dense.is_some() as u8 + q8.is_some() as u8 + f16.is_some() as u8;
    if present != 1 {
        return Err(PrivimError::Parse(format!(
            "bundle must carry exactly one of model/model_q8/model_f16 ({present} present)"
        )));
    }
    if version < 3 && dense.is_none() {
        return Err(PrivimError::invalid(format!(
            "quantized model sections require bundle version >= 3 (bundle is v{version})"
        )));
    }
    let (model, quant, mode) = if let Some(mp) = dense {
        (GnnModel::from_checkpoint_payload(mp)?, None, QuantMode::None)
    } else if let Some(qp) = q8 {
        let q = QuantGnnModel::from_json(qp)?;
        // Dense reconstruction so embedding/export paths keep working;
        // serving prefers the exact quantized model.
        (q.to_dense_model()?, Some(q), QuantMode::Int8)
    } else {
        let fp = f16.ok_or_else(|| PrivimError::Parse("bundle missing model".into()))?;
        (model_from_f16_json(fp)?, None, QuantMode::F16)
    };

    let priv_v = payload
        .get("privacy")
        .ok_or_else(|| PrivimError::Parse("bundle missing privacy statement".into()))?;
    let privacy = PrivacyStatement {
        epsilon: priv_v.get("epsilon").and_then(|v| v.as_f64()),
        delta: priv_v
            .get("delta")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| PrivimError::Parse("privacy statement missing delta".into()))?,
        sigma: priv_v
            .get("sigma")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| PrivimError::Parse("privacy statement missing sigma".into()))?,
        steps: priv_v
            .get("steps")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| PrivimError::Parse("privacy statement missing steps".into()))?,
    };

    let graph = graph_from_json(
        payload
            .get("graph")
            .ok_or_else(|| PrivimError::Parse("bundle missing graph".into()))?,
    )?;
    let stored_fp = payload
        .get("graph_fingerprint")
        .and_then(|v| v.as_str())
        .and_then(parse_hex_u64)
        .ok_or_else(|| PrivimError::Parse("bundle missing/bad graph_fingerprint".into()))?;
    let actual_fp = graph_fingerprint(&graph);
    if stored_fp != actual_fp {
        return Err(PrivimError::Parse(format!(
            "graph fingerprint mismatch (stored {stored_fp:#018x}, rebuilt {actual_fp:#018x})"
        )));
    }
    // Optional in v2, structurally absent in v1: either way `None` means
    // an unmetered deployment.
    let ledger = match payload.get("ledger") {
        Some(v) => Some(LedgerState::from_json(v)?),
        None => None,
    };
    Ok(Bundle {
        model,
        quant,
        mode,
        privacy,
        graph: Arc::new(graph),
        fingerprint: actual_fp,
        ledger,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_gnn::GnnConfig;
    use privim_rt::{ChaCha8Rng, SeedableRng};

    fn tiny_artifact(seed: u64) -> ServeArtifact {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        ServeArtifact {
            model: GnnModel::new(GnnConfig::paper_default(), &mut rng),
            epsilon: Some(4.0),
            delta: 1e-4,
            sigma: 1.25,
            steps: 80,
        }
    }

    fn tiny_graph(seed: u64) -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        privim_graph::generators::barabasi_albert(30, 2, &mut rng).with_uniform_weights(1.0)
    }

    #[test]
    fn bundle_round_trips_model_graph_and_privacy() {
        let art = tiny_artifact(1);
        let g = tiny_graph(2);
        let mut buf = Vec::new();
        save(&art, &g, &mut buf).unwrap();
        let loaded = load(buf.as_slice()).unwrap();
        assert_eq!(loaded.privacy.epsilon, Some(4.0));
        assert_eq!(loaded.privacy.steps, 80);
        assert_eq!(loaded.fingerprint, graph_fingerprint(&g));
        assert_eq!(loaded.graph.num_nodes(), g.num_nodes());
        assert_eq!(loaded.graph.num_arcs(), g.num_arcs());
        // the round-tripped model scores identically
        assert_eq!(loaded.model.score_graph(&g), art.model.score_graph(&g));
    }

    #[test]
    fn directed_graph_round_trips_every_arc() {
        let art = tiny_artifact(3);
        let mut b = GraphBuilder::new_directed(4);
        b.add_edge(0, 1, 0.5);
        b.add_edge(1, 0, 0.25);
        b.add_edge(2, 3, 1.0);
        let g = b.build();
        let mut buf = Vec::new();
        save(&art, &g, &mut buf).unwrap();
        let loaded = load(buf.as_slice()).unwrap();
        let arcs: Vec<_> = loaded.graph.arcs().collect();
        assert_eq!(arcs, g.arcs().collect::<Vec<_>>());
    }

    #[test]
    fn corrupted_bundle_is_rejected_by_checksum() {
        let art = tiny_artifact(4);
        let g = tiny_graph(5);
        let mut buf = Vec::new();
        save(&art, &g, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let pos = text.rfind(|c: char| c.is_ascii_digit()).unwrap();
        let mut corrupted = text.into_bytes();
        corrupted[pos] = if corrupted[pos] == b'5' { b'6' } else { b'5' };
        let err = load(corrupted.as_slice()).unwrap_err();
        match err {
            PrivimError::Parse(msg) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("expected checksum Parse error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_and_garbage_bundles_are_typed_errors() {
        let art = tiny_artifact(6);
        let g = tiny_graph(7);
        let mut buf = Vec::new();
        save(&art, &g, &mut buf).unwrap();
        for cut in [0, 5, buf.len() / 2, buf.len() - 1] {
            assert!(load(&buf[..cut]).is_err(), "cut={cut}");
        }
        assert!(load(&b"not a bundle"[..]).is_err());
    }

    #[test]
    fn version_and_format_mismatches_are_rejected() {
        let art = tiny_artifact(8);
        let g = tiny_graph(9);
        let mut buf = Vec::new();
        save(&art, &g, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let bumped = text.replacen("\"version\":3", "\"version\":9", 1);
        assert!(matches!(
            load(bumped.as_bytes()).unwrap_err(),
            PrivimError::InvalidInput(_)
        ));
        let ancient = text.replacen("\"version\":3", "\"version\":0", 1);
        assert!(matches!(
            load(ancient.as_bytes()).unwrap_err(),
            PrivimError::InvalidInput(_)
        ));
        let renamed = text.replacen(BUNDLE_FORMAT, "mystery-format", 1);
        assert!(matches!(
            load(renamed.as_bytes()).unwrap_err(),
            PrivimError::Parse(_)
        ));
    }

    #[test]
    fn version_1_bundles_still_load_as_unmetered() {
        // The version lives in the header, outside the CRC'd payload, so
        // rewriting it reproduces a v1 writer's output exactly: same
        // payload, no ledger section.
        let art = tiny_artifact(12);
        let g = tiny_graph(13);
        let mut buf = Vec::new();
        save(&art, &g, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let v1 = text.replacen("\"version\":3", "\"version\":1", 1);
        let loaded = load(v1.as_bytes()).unwrap();
        assert!(loaded.ledger.is_none(), "v1 bundles are unmetered");
        assert_eq!(loaded.mode, QuantMode::None);
        assert_eq!(loaded.fingerprint, graph_fingerprint(&g));
    }

    #[test]
    fn q8_bundle_round_trips_the_quantized_model_exactly() {
        let art = tiny_artifact(40);
        let g = tiny_graph(41);
        let q = QuantGnnModel::from_model(&art.model);
        let privacy = PrivacyStatement {
            epsilon: art.epsilon,
            delta: art.delta,
            sigma: art.sigma,
            steps: art.steps as u64,
        };
        let text = pack_parts_q8(&q, &privacy, &g, None).to_json_string();
        let loaded = load(text.as_bytes()).unwrap();
        assert_eq!(loaded.mode, QuantMode::Int8);
        let lq = loaded.quant.as_ref().expect("q8 bundle carries a quant model");
        // The serving scores survive the round trip bitwise (int8 codes
        // and f64 scales are stored exactly).
        assert_eq!(lq.score_graph(&g), q.score_graph(&g));
        // The dense reconstruction is present and usable for export paths.
        assert_eq!(
            loaded.model.config().to_json().to_json_string(),
            q.config().to_json().to_json_string()
        );
        // Compaction re-packs byte-for-byte: mode is not lossy.
        let repacked =
            pack_parts_in_mode(&loaded.model, loaded.quant.as_ref(), loaded.mode, &privacy, &g, None);
        assert_eq!(repacked.to_json_string(), text);
    }

    #[test]
    fn f16_bundle_round_trips_byte_for_byte_through_compaction() {
        let art = tiny_artifact(42);
        let g = tiny_graph(43);
        let privacy = PrivacyStatement {
            epsilon: art.epsilon,
            delta: art.delta,
            sigma: art.sigma,
            steps: art.steps as u64,
        };
        let text = pack_parts_f16(&art.model, &privacy, &g, None).to_json_string();
        let loaded = load(text.as_bytes()).unwrap();
        assert_eq!(loaded.mode, QuantMode::F16);
        assert!(loaded.quant.is_none(), "f16 decodes to the dense path");
        // The loaded model is the f16-rounded model.
        let expected = model_from_f16_json(&model_to_f16_json(&art.model)).unwrap();
        assert_eq!(loaded.model.score_graph(&g), expected.score_graph(&g));
        // f16_encode(f16_decode(h)) == h, so a compaction snapshot of the
        // decoded model reproduces the original bundle bit-for-bit.
        let repacked =
            pack_parts_in_mode(&loaded.model, None, loaded.mode, &privacy, &g, None);
        assert_eq!(repacked.to_json_string(), text);
    }

    #[test]
    fn quant_sections_are_rejected_below_v3() {
        let art = tiny_artifact(44);
        let g = tiny_graph(45);
        let q = QuantGnnModel::from_model(&art.model);
        let privacy = PrivacyStatement {
            epsilon: art.epsilon,
            delta: art.delta,
            sigma: art.sigma,
            steps: art.steps as u64,
        };
        let text = pack_parts_q8(&q, &privacy, &g, None).to_json_string();
        let downgraded = text.replacen("\"version\":3", "\"version\":2", 1);
        assert!(matches!(
            load(downgraded.as_bytes()).unwrap_err(),
            PrivimError::InvalidInput(_)
        ));
    }

    #[test]
    fn bundles_with_zero_or_two_model_sections_are_rejected() {
        let art = tiny_artifact(46);
        let g = tiny_graph(47);
        let q = QuantGnnModel::from_model(&art.model);
        let privacy = PrivacyStatement {
            epsilon: art.epsilon,
            delta: art.delta,
            sigma: art.sigma,
            steps: art.steps as u64,
        };
        // Rebuild the payload with an extra (or no) model section and the
        // CRC recomputed, so the model-section arity check itself fires.
        let rebuild = |extra: Option<(&'static str, Value)>, drop_model: bool| {
            let doc = pack_parts(&art.model, &privacy, &g, None);
            let Value::Obj(header) = doc else { panic!("doc not an object") };
            let mut payload = header
                .iter()
                .find(|(k, _)| k == "payload")
                .map(|(_, v)| v.clone())
                .unwrap();
            let Value::Obj(fields) = &mut payload else { panic!("payload not an object") };
            if drop_model {
                fields.retain(|(k, _)| k != "model");
            }
            if let Some((k, v)) = extra {
                fields.push((k.to_string(), v));
            }
            let crc = crc::crc32(payload.to_json_string().as_bytes());
            Value::obj(vec![
                ("format", Value::Str(BUNDLE_FORMAT.to_string())),
                ("version", Value::Num(BUNDLE_VERSION as f64)),
                ("crc32", Value::Str(format!("{crc:#010x}"))),
                ("payload", payload),
            ])
            .to_json_string()
        };
        let doubled = rebuild(Some(("model_q8", q.to_json())), false);
        let none = rebuild(None, true);
        for (what, text) in [("two sections", doubled), ("no section", none)] {
            match load(text.as_bytes()).unwrap_err() {
                PrivimError::Parse(msg) => {
                    assert!(msg.contains("exactly one"), "{what}: {msg}")
                }
                other => panic!("{what}: expected Parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn ledger_state_round_trips_through_the_bundle() {
        use crate::ledger::{LedgerConfig, LedgerState};
        let art = tiny_artifact(14);
        let g = tiny_graph(15);
        let mut state = LedgerState::new(LedgerConfig {
            epsilon_budget: 2.5,
            delta: 1e-5,
            query_sigma: 3.0,
            retry_after_secs: 30,
        });
        state.tenants.insert("acme".into(), 7);
        state.tenants.insert("zephyr".into(), 1);
        let mut buf = Vec::new();
        save_with_ledger(&art, &g, &state, &mut buf).unwrap();
        let loaded = load(buf.as_slice()).unwrap();
        assert_eq!(loaded.ledger, Some(state));
        // An unmetered save stays ledger-free.
        let mut buf2 = Vec::new();
        save(&art, &g, &mut buf2).unwrap();
        assert!(load(buf2.as_slice()).unwrap().ledger.is_none());
        // A corrupt ledger section is a typed error, not a silent
        // unmetered fallback.
        let text = String::from_utf8(buf).unwrap();
        let broken = text.replacen("\"epsilon_budget\":", "\"epsilon_fudget\":", 1);
        // (CRC catches the edit first — which is the right failure: a
        // tampered budget must not load at all.)
        assert!(load(broken.as_bytes()).is_err());
    }

    /// Rebuild a packed metered bundle with its ledger section replaced
    /// by `ledger` and the payload CRC *recomputed*, so the checksum
    /// layer passes and the ledger parser itself must reject the section.
    fn bundle_with_raw_ledger(seed: u64, ledger: Value) -> String {
        use crate::ledger::{LedgerConfig, LedgerState};
        let art = tiny_artifact(seed);
        let g = tiny_graph(seed + 1);
        let state = LedgerState::new(LedgerConfig {
            epsilon_budget: 1.0,
            delta: 1e-5,
            query_sigma: 8.0,
            retry_after_secs: 60,
        });
        let doc = pack_with_ledger(&art, &g, Some(&state));
        let Value::Obj(header) = doc else { panic!("doc not an object") };
        let mut payload = header
            .iter()
            .find(|(k, _)| k == "payload")
            .map(|(_, v)| v.clone())
            .unwrap();
        let Value::Obj(fields) = &mut payload else { panic!("payload not an object") };
        let slot = fields.iter_mut().find(|(k, _)| k == "ledger").unwrap();
        slot.1 = ledger;
        let crc = crc::crc32(payload.to_json_string().as_bytes());
        Value::obj(vec![
            ("format", Value::Str(BUNDLE_FORMAT.to_string())),
            ("version", Value::Num(BUNDLE_VERSION as f64)),
            ("crc32", Value::Str(format!("{crc:#010x}"))),
            ("payload", payload),
        ])
        .to_json_string()
    }

    #[test]
    fn corrupt_ledger_sections_are_typed_errors_not_unmetered_fallbacks() {
        // Structurally-broken ledger sections that survive the CRC layer
        // (checksum recomputed over the corrupted payload, as bit-rot
        // before packing or a buggy writer would produce them).
        let cases: Vec<(&str, Value)> = vec![
            ("truncated section", Value::obj(vec![("epsilon_budget", Value::Num(1.0))])),
            ("wrong type", Value::Str("not an object".into())),
            (
                "negative count",
                Value::obj(vec![
                    ("epsilon_budget", Value::Num(1.0)),
                    ("delta", Value::Num(1e-5)),
                    ("query_sigma", Value::Num(8.0)),
                    ("retry_after_secs", Value::Num(60.0)),
                    ("tenants", Value::obj(vec![("acme", Value::Num(-2.0))])),
                ]),
            ),
            (
                "invalid policy",
                Value::obj(vec![
                    ("epsilon_budget", Value::Num(0.0)),
                    ("delta", Value::Num(1e-5)),
                    ("query_sigma", Value::Num(8.0)),
                    ("retry_after_secs", Value::Num(60.0)),
                    ("tenants", Value::Obj(vec![])),
                ]),
            ),
        ];
        for (what, bad) in cases {
            let text = bundle_with_raw_ledger(20, bad);
            let err = load(text.as_bytes());
            match err {
                Err(PrivimError::Parse(_)) | Err(PrivimError::InvalidInput(_)) => {}
                Ok(b) => panic!(
                    "{what}: loaded with ledger = {:?} — corrupt section silently \
                     degraded to {} behavior",
                    b.ledger,
                    if b.ledger.is_none() { "unmetered v1" } else { "metered" }
                ),
                Err(other) => panic!("{what}: expected Parse/InvalidInput, got {other:?}"),
            }
        }
        // Sanity: the helper itself produces a loadable bundle when the
        // section is valid — the failures above are the ledger's, not an
        // artifact of the rebuild.
        let good = bundle_with_raw_ledger(
            20,
            Value::obj(vec![
                ("epsilon_budget", Value::Num(1.0)),
                ("delta", Value::Num(1e-5)),
                ("query_sigma", Value::Num(8.0)),
                ("retry_after_secs", Value::Num(60.0)),
                ("tenants", Value::obj(vec![("acme", Value::Num(3.0))])),
            ]),
        );
        let loaded = load(good.as_bytes()).unwrap();
        assert_eq!(loaded.ledger.unwrap().tenants.get("acme"), Some(&3));
    }

    #[test]
    fn pack_parts_matches_pack_with_ledger_byte_for_byte() {
        use crate::ledger::{LedgerConfig, LedgerState};
        let art = tiny_artifact(30);
        let g = tiny_graph(31);
        let mut state = LedgerState::new(LedgerConfig {
            epsilon_budget: 2.0,
            delta: 1e-5,
            query_sigma: 8.0,
            retry_after_secs: 60,
        });
        state.tenants.insert("acme".into(), 4);
        let privacy = PrivacyStatement {
            epsilon: art.epsilon,
            delta: art.delta,
            sigma: art.sigma,
            steps: art.steps as u64,
        };
        let a = pack_with_ledger(&art, &g, Some(&state)).to_json_string();
        let b = pack_parts(&art.model, &privacy, &g, Some(&state)).to_json_string();
        assert_eq!(a, b, "a compaction snapshot must be indistinguishable from a fresh pack");
    }

    #[test]
    fn fingerprint_is_sensitive_to_graph_identity() {
        let g1 = tiny_graph(10);
        let g2 = tiny_graph(11);
        assert_ne!(graph_fingerprint(&g1), graph_fingerprint(&g2));
        // weight bits matter too
        let mut b1 = GraphBuilder::new_directed(2);
        b1.add_edge(0, 1, 1.0);
        let mut b2 = GraphBuilder::new_directed(2);
        b2.add_edge(0, 1, 0.5);
        assert_ne!(graph_fingerprint(&b1.build()), graph_fingerprint(&b2.build()));
    }
}

//! Front-end selection, worker pool, router and request handlers.
//!
//! Two front ends share one request path (`process_request`):
//!
//! * [`FrontEnd::Reactor`] (default on unix): an epoll/poll readiness
//!   loop ([`crate::reactor`]) owns accept + socket I/O, supports
//!   HTTP/1.1 keep-alive and pipelining, and hands parsed requests to
//!   the worker pool;
//! * [`FrontEnd::Threaded`]: the original thread-per-connection layout —
//!   one acceptor + `workers` request threads sharing a bounded queue of
//!   connections, one request per connection, `Connection: close`.
//!
//! Both shed identically: `503` at the queue cap (the cheapest possible
//! point) and for any request whose *queue wait* already exceeded the
//! deadline — a reply that can no longer arrive in time is better
//! dropped than served late while newer requests rot.
//!
//! Graceful shutdown: set the flag, wake the front end, let workers
//! finish everything queued and in flight, then join. No request that
//! was accepted is ever abandoned — under the reactor this includes a
//! request whose bytes are still arriving when shutdown begins.

use crate::batch::Batcher;
use crate::bundle::{Bundle, PrivacyStatement, QuantMode};
use crate::cache::ShardedLru;
use crate::http::{read_request, write_response, write_response_with_headers, Request};
use crate::ledger::{Admission, TenantLedger};
use crate::metrics::{endpoint_index, render_ledger_section, Metrics};
use crate::wal::{FsyncPolicy, WalWriter};
use privim_gnn::{GnnModel, QuantGnnModel};
use privim_graph::NodeId;
use privim_im::{ic_spread_estimate, LazyGreedy};
use privim_rt::fsio;
use privim_rt::json::Value;
use privim_rt::{PrivimError, PrivimResult};
use std::collections::VecDeque;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Durability settings for a metered deployment: where charges are
/// journaled before admission is acknowledged, and how the journal is
/// folded back into the bundle.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Journal path; created on first append if missing. Opening truncates
    /// any torn tail a crash left behind.
    pub wal_path: PathBuf,
    /// When journal appends are fsync'd. [`FsyncPolicy::Always`] is the
    /// only setting under which every 2xx-acknowledged charge is durable.
    pub fsync: FsyncPolicy,
    /// Fold the ledger into an atomic bundle snapshot (and truncate the
    /// journal) after every this-many appends; `0` = never compact.
    pub compact_every: u64,
    /// Where compaction snapshots go — normally the bundle the server
    /// loaded. `None` disables compaction (the journal only grows).
    pub bundle_path: Option<PathBuf>,
}

/// Which connection-handling front end drives the worker pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrontEnd {
    /// Thread-per-connection, one request per connection (PR 6 layout).
    Threaded,
    /// Epoll/poll readiness loop with keep-alive + pipelining (unix
    /// only; non-unix builds silently use [`FrontEnd::Threaded`]).
    Reactor,
}

impl FrontEnd {
    /// Parse a CLI/bench flag value.
    pub fn parse(s: &str) -> Option<FrontEnd> {
        match s {
            "threaded" => Some(FrontEnd::Threaded),
            "reactor" => Some(FrontEnd::Reactor),
            _ => None,
        }
    }
}

/// Server tunables. The defaults suit a laptop-scale smoke deployment;
/// the bench harness stresses them explicitly.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::port`]).
    pub addr: String,
    /// Request worker threads.
    pub workers: usize,
    /// Bounded accept-queue capacity; overflow is shed with `503`.
    pub queue_cap: usize,
    /// Per-request deadline measured from *arrival* (queue wait counts).
    pub deadline: Duration,
    /// Micro-batch collection window for `/v1/embed`.
    pub batch_window: Duration,
    /// Spread-cache shards.
    pub cache_shards: usize,
    /// Spread-cache entries per shard.
    pub cache_cap_per_shard: usize,
    /// Default Monte-Carlo runs for `/v1/influence` when the request
    /// does not specify `runs`.
    pub default_runs: usize,
    /// Charge-journal durability (metered deployments only; ignored when
    /// the bundle has no ledger). `None` = in-memory ledger, PR 6
    /// behavior.
    pub durability: Option<DurabilityConfig>,
    /// Connection-handling front end.
    pub frontend: FrontEnd,
    /// Reactor: close a kept-alive connection after this long with no
    /// socket activity and no in-flight request.
    pub idle_timeout: Duration,
    /// Reactor: close a connection that *started* sending a request but
    /// has not completed it within this long — measured from the first
    /// partial byte, so a slowloris dribble cannot reset it.
    pub header_timeout: Duration,
    /// Reactor: max pipelined requests in flight per connection before
    /// reads pause (TCP backpressure instead of unbounded buffering).
    pub max_pipeline: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_cap: 128,
            deadline: Duration::from_secs(5),
            batch_window: Duration::from_millis(2),
            cache_shards: 8,
            cache_cap_per_shard: 256,
            default_runs: 64,
            durability: None,
            frontend: FrontEnd::Reactor,
            idle_timeout: Duration::from_secs(30),
            header_timeout: Duration::from_secs(10),
            max_pipeline: 32,
        }
    }
}

pub(crate) struct Shared {
    graph: Arc<privim_graph::Graph>,
    fingerprint: u64,
    pub(crate) metrics: Metrics,
    cache: ShardedLru<f64>,
    batcher: Batcher,
    /// Resumable CELF state: one instance serves every `/v1/seeds`
    /// request (greedy prefix stability makes cached answers exact).
    seeds: Mutex<LazyGreedy>,
    /// Per-tenant budget ledger (`None` = unmetered deployment). Metered
    /// requests carry an `X-Privim-Tenant` header and are admitted — or
    /// refused with `429` — before any work happens.
    ledger: Option<TenantLedger>,
    /// Charge journal: every granted admission is appended here before
    /// the handler runs (and so before any 2xx can be written). `None`
    /// when unmetered or durability is not configured.
    wal: Option<Mutex<WalWriter>>,
    durability: Option<DurabilityConfig>,
    /// Model + privacy statement retained for compaction snapshots
    /// (a snapshot is a full re-pack of the loaded bundle).
    model: Arc<GnnModel>,
    /// Int8 serving model and storage mode of the loaded bundle, so
    /// compaction re-packs in the same mode it loaded.
    quant: Option<Arc<QuantGnnModel>>,
    mode: QuantMode,
    privacy: PrivacyStatement,
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    queue_ready: Condvar,
    pub(crate) shutting_down: AtomicBool,
    pub(crate) deadline: Duration,
    default_runs: usize,
}

pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // privim-lint: allow(panic, reason = "a poisoned server lock means a worker already panicked; propagating is the only sound recovery")
    m.lock().unwrap()
}

/// The running front end's join handles.
enum FrontHandles {
    Threaded {
        acceptor: Option<std::thread::JoinHandle<()>>,
        workers: Vec<std::thread::JoinHandle<()>>,
    },
    #[cfg(unix)]
    Reactor(crate::reactor::ReactorHandle),
}

/// A running server: join handles plus the shared state.
pub struct ServerHandle {
    port: u16,
    shared: Arc<Shared>,
    front: FrontHandles,
}

impl ServerHandle {
    /// The port actually bound (useful with `addr = "127.0.0.1:0"`).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Requests completed after shutdown began.
    pub fn drained_count(&self) -> u64 {
        self.shared.metrics.drained_count()
    }

    /// Current `/metrics` exposition, rendered from the live counters —
    /// identical to what `GET /metrics` would return right now.
    pub fn metrics_text(&self) -> String {
        render_metrics(&self.shared)
    }

    /// [`Self::shutdown`], then render the final `/metrics` exposition
    /// from the fully drained counters. The returned text is the server's
    /// last word: every accepted request is in it, which lets tests (and
    /// operators' final scrapes) assert counter monotonicity across the
    /// graceful drain.
    pub fn drain(self) -> (u64, String) {
        let shared = Arc::clone(&self.shared);
        let drained = self.shutdown();
        (drained, render_metrics(&shared))
    }

    /// Stop accepting, finish every queued and in-flight request, join
    /// all threads. Returns the number of requests drained after the
    /// shutdown signal.
    pub fn shutdown(mut self) -> u64 {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        match &mut self.front {
            FrontHandles::Threaded { acceptor, workers } => {
                // Wake the acceptor out of its blocking accept() with a
                // self-connection; it checks the flag before enqueuing.
                let _ = TcpStream::connect(("127.0.0.1", self.port));
                self.shared.queue_ready.notify_all();
                if let Some(a) = acceptor.take() {
                    let _ = a.join();
                }
                for w in workers.drain(..) {
                    // Keep waking workers: one notify can be consumed by
                    // a thread that goes back to processing.
                    self.shared.queue_ready.notify_all();
                    let _ = w.join();
                }
            }
            #[cfg(unix)]
            FrontHandles::Reactor(r) => r.shutdown(),
        }
        self.shared.metrics.drained_count()
    }
}

/// Bind, spawn the acceptor and workers, and return a handle. The CELF
/// state, batcher tensors and cache are initialised here, so the first
/// request pays no setup cost.
pub fn start(bundle: Bundle, cfg: ServeConfig) -> PrivimResult<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)
        .map_err(|e| PrivimError::io("binding serve listener", e))?;
    let port = listener
        .local_addr()
        .map_err(|e| PrivimError::io("reading bound address", e))?
        .port();

    let model = Arc::new(bundle.model);
    let quant = bundle.quant.map(Arc::new);
    let ledger = match bundle.ledger {
        Some(state) => Some(TenantLedger::new(state)?),
        None => None,
    };
    // A journal only exists for a metered deployment with durability
    // configured; opening it truncates any torn tail from a prior crash
    // (recovery replayed those bytes before `start` was called).
    let (wal, durability) = match (&ledger, cfg.durability.clone()) {
        (Some(_), Some(d)) => (
            Some(Mutex::new(WalWriter::open(&d.wal_path, d.fsync)?)),
            Some(d),
        ),
        _ => (None, None),
    };
    let shared = Arc::new(Shared {
        batcher: Batcher::new_quant(
            Arc::clone(&model),
            quant.as_ref().map(Arc::clone),
            &bundle.graph,
            cfg.batch_window,
        ),
        seeds: Mutex::new(LazyGreedy::new(Arc::clone(&bundle.graph))),
        ledger,
        wal,
        durability,
        model,
        quant,
        mode: bundle.mode,
        privacy: bundle.privacy,
        graph: bundle.graph,
        fingerprint: bundle.fingerprint,
        metrics: Metrics::new(),
        cache: ShardedLru::new(cfg.cache_shards, cfg.cache_cap_per_shard),
        queue: Mutex::new(VecDeque::with_capacity(cfg.queue_cap)),
        queue_ready: Condvar::new(),
        shutting_down: AtomicBool::new(false),
        deadline: cfg.deadline,
        default_runs: cfg.default_runs,
    });

    let front = spawn_front_end(listener, &shared, &cfg)?;
    Ok(ServerHandle {
        port,
        shared,
        front,
    })
}

/// Spawn the configured front end. The reactor is unix-only; elsewhere
/// (and on reactor setup failure) the threaded layout serves instead, so
/// a bundle that serves on one platform serves on all of them.
fn spawn_front_end(
    listener: TcpListener,
    shared: &Arc<Shared>,
    cfg: &ServeConfig,
) -> PrivimResult<FrontHandles> {
    #[cfg(unix)]
    if cfg.frontend == FrontEnd::Reactor {
        let rcfg = crate::reactor::ReactorConfig {
            workers: cfg.workers,
            queue_cap: cfg.queue_cap.max(1),
            idle_timeout: cfg.idle_timeout,
            header_timeout: cfg.header_timeout,
            max_pipeline: (cfg.max_pipeline.max(1)) as u64,
        };
        let handle = crate::reactor::spawn_reactor(listener, Arc::clone(shared), rcfg)
            .map_err(|e| PrivimError::io("starting reactor front end", e))?;
        return Ok(FrontHandles::Reactor(handle));
    }
    let acceptor = {
        let shared = Arc::clone(shared);
        let cap = cfg.queue_cap.max(1);
        std::thread::spawn(move || acceptor_loop(&listener, &shared, cap))
    };
    let workers = (0..cfg.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(shared);
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();
    Ok(FrontHandles::Threaded {
        acceptor: Some(acceptor),
        workers,
    })
}

// privim-lint: allow(wall-clock, reason = "latency telemetry: arrival timestamps feed the latency histogram and deadline shedding, never response payloads")
fn acceptor_loop(listener: &TcpListener, shared: &Shared, cap: usize) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.shutting_down.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            return; // the wake-up self-connection lands here too
        }
        // Small request/response exchanges; never trade latency for
        // segment coalescing.
        let _ = stream.set_nodelay(true);
        let arrival = Instant::now();
        let mut q = lock(&shared.queue);
        if q.len() >= cap {
            drop(q);
            shed(stream, shared, "queue full");
            continue;
        }
        q.push_back((stream, arrival));
        shared.metrics.queue_push();
        drop(q);
        shared.queue_ready.notify_one();
    }
}

/// Reject a connection with an immediate `503` (best-effort write).
fn shed(mut stream: TcpStream, shared: &Shared, why: &str) {
    shared.metrics.shed();
    shared.metrics.observe_status(503);
    let body = Value::obj(vec![("error", Value::Str(format!("shed: {why}"))) ])
        .to_json_string();
    // Without a write timeout a dead client could pin this thread on the
    // 503 write; if the socket refuses the timeout, just close.
    if stream
        .set_write_timeout(Some(Duration::from_millis(200)))
        .is_err()
    {
        shared.metrics.timeout_config_failure();
        return;
    }
    let _ = write_response(&mut stream, 503, "application/json", body.as_bytes());
}

fn worker_loop(shared: &Shared) {
    loop {
        let popped = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(item) = q.pop_front() {
                    shared.metrics.queue_pop();
                    break Some(item);
                }
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break None;
                }
                // privim-lint: allow(panic, reason = "a poisoned server lock means a worker already panicked; propagating is the only sound recovery")
                q = shared.queue_ready.wait(q).unwrap();
            }
        };
        let Some((stream, arrival)) = popped else {
            return; // shutdown with an empty queue: fully drained
        };
        handle_connection(stream, arrival, shared);
        // A request that *completes* after the shutdown signal was in
        // flight (or queued) when it arrived — that is the drain.
        if shared.shutting_down.load(Ordering::SeqCst) {
            shared.metrics.drained();
        }
    }
}

fn handle_connection(mut stream: TcpStream, arrival: Instant, shared: &Shared) {
    let waited = arrival.elapsed();
    if waited >= shared.deadline {
        shed(stream, shared, "deadline exceeded while queued");
        return;
    }
    // A stalled or dead client may hold this worker no longer than the
    // request's remaining deadline budget. If the socket won't take a
    // timeout, serving it would mean serving without a deadline — close
    // it instead and count the refusal.
    let remaining = shared.deadline - waited;
    if stream.set_read_timeout(Some(remaining)).is_err()
        || stream.set_write_timeout(Some(remaining)).is_err()
    {
        shared.metrics.timeout_config_failure();
        return;
    }

    let (routed, content_type, ep) = match read_request(&mut stream) {
        Ok(parsed) => process_request(&parsed.request, shared),
        Err(e) => {
            let body = Value::obj(vec![("error", Value::Str(e.to_string()))]).to_json_string();
            (Routed::new(e.status, body), "application/json", None)
        }
    };
    let status = routed.status;
    let extra: Vec<(&str, String)> = routed
        .retry_after_secs
        .map(|s| vec![("Retry-After", s.to_string())])
        .unwrap_or_default();
    let _ = write_response_with_headers(
        &mut stream,
        status,
        content_type,
        &extra,
        routed.body.as_bytes(),
    );
    let latency_us = arrival.elapsed().as_micros().min(u64::MAX as u128) as u64;
    match ep {
        Some(ep) => shared.metrics.observe(ep, latency_us, status),
        None => shared.metrics.observe_status(status),
    }
}

/// Route one parsed request and pick its response content type — the
/// single request path both front ends share, which is what makes
/// reactor responses byte-identical to threaded ones.
pub(crate) fn process_request(
    req: &Request,
    shared: &Shared,
) -> (Routed, &'static str, Option<usize>) {
    let ep = endpoint_index(&req.path);
    let routed = route(req, shared);
    let ct = if req.path == "/metrics" && routed.status == 200 {
        "text/plain; version=0.0.4"
    } else {
        "application/json"
    };
    (routed, ct, ep)
}

/// A routed response: status + body, plus the `Retry-After` a budget
/// refusal carries.
pub(crate) struct Routed {
    pub(crate) status: u16,
    pub(crate) body: String,
    pub(crate) retry_after_secs: Option<u64>,
}

impl Routed {
    fn new(status: u16, body: String) -> Routed {
        Routed {
            status,
            body,
            retry_after_secs: None,
        }
    }
}

/// The full `/metrics` exposition: request counters + one consistent
/// snapshot of the cache/batcher totals, then the budget-ledger section
/// when the deployment is metered.
fn render_metrics(shared: &Shared) -> String {
    let (passes, served) = shared.batcher.stats();
    let mut text = shared.metrics.render(
        shared.cache.hits(),
        shared.cache.misses(),
        shared.cache.len(),
        passes,
        served,
    );
    if let Some(ledger) = &shared.ledger {
        render_ledger_section(
            &mut text,
            ledger.config().epsilon_budget,
            &ledger.snapshot(),
            ledger.admitted_total(),
            ledger.denied_total(),
        );
    }
    text
}

/// Budget admission for the query endpoints. No tenant header or no
/// ledger → unmetered, proceed. A metered tenant whose next query would
/// overspend gets the `429` refusal (and was charged nothing).
fn admit_tenant(req: &Request, shared: &Shared) -> Result<(), Routed> {
    let (Some(tenant), Some(ledger)) = (req.header("x-privim-tenant"), &shared.ledger) else {
        return Ok(());
    };
    let tenant = tenant.trim();
    if tenant.is_empty() {
        return Err(Routed::new(
            400,
            "{\"error\":\"X-Privim-Tenant header must be non-empty\"}".to_string(),
        ));
    }
    match ledger.admit(tenant) {
        Admission::Granted { queries, .. } => journal_charge(shared, tenant, queries),
        Admission::Exhausted {
            epsilon_spent,
            retry_after_secs,
            ..
        } => {
            let body = Value::obj(vec![
                (
                    "error",
                    Value::Str("privacy budget exhausted for tenant".to_string()),
                ),
                ("tenant", Value::Str(tenant.to_string())),
                ("epsilon_spent", Value::Num(epsilon_spent)),
                (
                    "epsilon_budget",
                    Value::Num(ledger.config().epsilon_budget),
                ),
            ])
            .to_json_string();
            Err(Routed {
                status: 429,
                body,
                retry_after_secs: Some(retry_after_secs),
            })
        }
    }
}

/// Make a granted charge durable before the handler (and therefore any
/// 2xx response) can run. An append failure refuses the query with `500`
/// — the in-memory charge stands, which can only overcharge the tenant,
/// never undercharge. Compaction piggybacks here: the journal lock is
/// held across snapshot + atomic bundle replace + truncation, so a
/// concurrent admission that has charged in memory but not yet journaled
/// is already inside the snapshot and its (redundant, absolute-count)
/// record simply lands in the fresh journal.
fn journal_charge(shared: &Shared, tenant: &str, queries_after: u64) -> Result<(), Routed> {
    let Some(wal) = &shared.wal else {
        return Ok(());
    };
    // privim-lint: allow(lock-order, reason = "deliberate §13 durability contract: the append+fsync must be serialized under the journal lock so a crash can never reorder records; admissions block behind it by design")
    let mut writer = lock(wal);
    if let Err(e) = writer.append(tenant, queries_after) {
        shared.metrics.wal_append_failure();
        let body = Value::obj(vec![(
            "error",
            Value::Str(format!("budget journal write failed; query refused: {e}")),
        )])
        .to_json_string();
        return Err(Routed::new(500, body));
    }
    shared.metrics.wal_append();
    if let Some(d) = &shared.durability {
        if d.compact_every > 0 && writer.appended() % d.compact_every == 0 {
            compact(shared, &mut writer);
        }
    }
    Ok(())
}

/// Fold the live ledger into an atomically-replaced bundle snapshot,
/// then truncate the journal. Caller holds the journal lock. Failure at
/// any step leaves the journal in place — uncompacted but never
/// undercharged (stale absolute counts replay as a no-op under max).
fn compact(shared: &Shared, writer: &mut WalWriter) {
    let (Some(d), Some(ledger)) = (&shared.durability, &shared.ledger) else {
        return;
    };
    let Some(bundle_path) = &d.bundle_path else {
        return;
    };
    let state = ledger.state();
    let doc = crate::bundle::pack_parts_in_mode(
        &shared.model,
        shared.quant.as_deref(),
        shared.mode,
        &shared.privacy,
        &shared.graph,
        Some(&state),
    );
    let snapshot_ok =
        fsio::atomic_write_durable(bundle_path, doc.to_json_string().as_bytes()).is_ok();
    if snapshot_ok && writer.reset().is_ok() {
        shared.metrics.wal_compaction();
    } else {
        shared.metrics.wal_compaction_failure();
    }
}

/// Route a metered query endpoint: admission first, handler only if the
/// budget allows the query.
fn metered(
    req: &Request,
    shared: &Shared,
    handler: fn(&Request, &Shared) -> PrivimResult<Value>,
) -> Routed {
    match admit_tenant(req, shared) {
        Ok(()) => reply(handler(req, shared)),
        Err(refused) => refused,
    }
}

fn route(req: &Request, shared: &Shared) -> Routed {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Routed::new(
            200,
            Value::obj(vec![
                ("status", Value::Str("ok".to_string())),
                (
                    "graph_fingerprint",
                    Value::Str(format!("{:#018x}", shared.fingerprint)),
                ),
            ])
            .to_json_string(),
        ),
        ("GET", "/metrics") => Routed::new(200, render_metrics(shared)),
        ("POST", "/v1/influence") => metered(req, shared, handle_influence),
        ("POST", "/v1/seeds") => metered(req, shared, handle_seeds),
        ("POST", "/v1/embed") => metered(req, shared, handle_embed),
        (_, "/healthz" | "/metrics" | "/v1/influence" | "/v1/seeds" | "/v1/embed") => Routed::new(
            405,
            "{\"error\":\"method not allowed\"}".to_string(),
        ),
        _ => Routed::new(404, "{\"error\":\"no such route\"}".to_string()),
    }
}

fn reply(result: PrivimResult<Value>) -> Routed {
    match result {
        Ok(v) => Routed::new(200, v.to_json_string()),
        Err(e) => Routed::new(
            400,
            Value::obj(vec![("error", Value::Str(e.to_string()))]).to_json_string(),
        ),
    }
}

fn parse_body(req: &Request) -> PrivimResult<Value> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| PrivimError::Parse("body is not UTF-8".into()))?;
    Ok(Value::parse(text)?)
}

/// Extract, validate and canonicalise (sort + dedup) a seed list.
fn seed_list(v: &Value, key: &str, n: usize) -> PrivimResult<Vec<NodeId>> {
    let arr = v
        .get(key)
        .and_then(|s| s.as_array())
        .ok_or_else(|| PrivimError::invalid(format!("missing array field {key:?}")))?;
    if arr.is_empty() {
        return Err(PrivimError::empty(format!("{key} must be non-empty")));
    }
    let mut out = Vec::with_capacity(arr.len());
    for s in arr {
        let id = s
            .as_usize()
            .filter(|&id| id < n)
            .ok_or_else(|| PrivimError::invalid(format!("{key} contains an invalid node id")))?;
        out.push(id as NodeId);
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

/// The exact canonical cache key for one spread query; the hash only
/// picks the shard (see cache module docs). The graph fingerprint leads
/// the key: a cache can then never serve an entry computed against a
/// different graph, even if it outlives a graph swap (regression test in
/// `tests/e2e.rs` pins this).
pub fn influence_cache_key(
    fingerprint: u64,
    seeds: &[NodeId],
    runs: usize,
    max_steps: Option<usize>,
    mc_seed: u64,
) -> Vec<u8> {
    let mut key = Vec::with_capacity(seeds.len() * 4 + 32);
    key.extend_from_slice(&fingerprint.to_le_bytes());
    for &s in seeds {
        key.extend_from_slice(&s.to_le_bytes());
    }
    key.extend_from_slice(&(runs as u64).to_le_bytes());
    key.extend_from_slice(&max_steps.map(|m| m as u64 + 1).unwrap_or(0).to_le_bytes());
    key.extend_from_slice(&mc_seed.to_le_bytes());
    key
}

/// `POST /v1/influence` — `{"seeds":[…], "runs"?, "max_steps"?, "seed"?}`.
///
/// The seed list is canonicalised (sorted, deduplicated) before both the
/// cache lookup and the estimator call, so `[3,1]` and `[1,3]` are the
/// same query and the cached value is exactly what the estimator would
/// return.
fn handle_influence(req: &Request, shared: &Shared) -> PrivimResult<Value> {
    let body = parse_body(req)?;
    let seeds = seed_list(&body, "seeds", shared.graph.num_nodes())?;
    let runs = match body.get("runs") {
        Some(v) => v
            .as_usize()
            .filter(|&r| (1..=100_000).contains(&r))
            .ok_or_else(|| PrivimError::invalid("runs must be in 1..=100000"))?,
        None => shared.default_runs,
    };
    let max_steps = match body.get("max_steps") {
        None | Some(Value::Null) => None,
        Some(v) => Some(
            v.as_usize()
                .ok_or_else(|| PrivimError::invalid("max_steps must be a non-negative integer"))?,
        ),
    };
    let mc_seed = match body.get("seed") {
        Some(v) => v
            .as_u64()
            .ok_or_else(|| PrivimError::invalid("seed must be a non-negative integer"))?,
        None => 0,
    };

    let key = influence_cache_key(shared.fingerprint, &seeds, runs, max_steps, mc_seed);

    let (spread, cached) = match shared.cache.get(&key) {
        Some(v) => (v, true),
        None => {
            let v = ic_spread_estimate(&shared.graph, &seeds, max_steps, runs, mc_seed);
            shared.cache.put(key, v);
            (v, false)
        }
    };
    Ok(Value::obj(vec![
        ("spread", Value::Num(spread)),
        ("runs", Value::Num(runs as f64)),
        ("cached", Value::Bool(cached)),
    ]))
}

/// `POST /v1/seeds` — `{"k": n}`: top-`k` seeds via the shared resumable
/// CELF state. Any `k` not exceeding what a previous request already
/// computed is answered from memory with zero oracle calls.
fn handle_seeds(req: &Request, shared: &Shared) -> PrivimResult<Value> {
    let body = parse_body(req)?;
    let k = body
        .get("k")
        .and_then(|v| v.as_usize())
        .filter(|&k| k >= 1)
        .ok_or_else(|| PrivimError::invalid("k must be a positive integer"))?;
    if k > shared.graph.num_nodes() {
        return Err(PrivimError::invalid(format!(
            "k = {k} exceeds |V| = {}",
            shared.graph.num_nodes()
        )));
    }
    let mut greedy = lock(&shared.seeds);
    let already = greedy.computed();
    let seeds: Vec<Value> = greedy
        .extend_to(k)
        .iter()
        .map(|&s| Value::Num(s as f64))
        .collect();
    let spread = greedy.prefix_spread(k);
    Ok(Value::obj(vec![
        ("seeds", Value::Arr(seeds)),
        ("spread", Value::Num(spread)),
        ("served_from_cache", Value::Bool(already >= k)),
    ]))
}

/// `POST /v1/embed` — `{"nodes":[…]}`: model scores for the requested
/// nodes, computed through the micro-batcher.
fn handle_embed(req: &Request, shared: &Shared) -> PrivimResult<Value> {
    let body = parse_body(req)?;
    let nodes = seed_list(&body, "nodes", shared.graph.num_nodes())?;
    let scores = shared.batcher.scores();
    let out: Vec<Value> = nodes
        .iter()
        .map(|&v| {
            Value::Arr(vec![
                Value::Num(v as f64),
                Value::Num(scores[v as usize]),
            ])
        })
        .collect();
    Ok(Value::obj(vec![("scores", Value::Arr(out))]))
}

//! Epoll readiness-loop front end: accept, nonblocking socket I/O, and
//! connection timeouts on one reactor thread; request *execution* stays
//! on the existing worker pool.
//!
//! Division of labor (DESIGN.md §15): the reactor owns the listener and
//! every connection's byte streams — it accepts, reads into each
//! connection's buffer, peels off pipelined requests via
//! [`crate::conn::Conn`], and drains write buffers as sockets accept
//! bytes. Parsed requests become jobs on the same bounded queue
//! discipline as the threaded front end (503 shed at the cap, deadline
//! shed measured from arrival), and workers run the *identical*
//! routing/admission/batching/journaling path — which is why response
//! bodies are byte-for-byte what the threaded front end produces and the
//! WAL/chaos guarantees carry over unchanged.
//!
//! The poller is raw `epoll_create1`/`epoll_ctl`/`epoll_wait` on Linux
//! (via `extern "C"` shims over `std::os::fd` — no libc crate), and
//! `poll(2)` on other unixes. Non-unix builds fall back to the threaded
//! front end in `server.rs` and never compile this module.
//!
//! Timeouts ride a coarse timer wheel (100 ms ticks): an idle kept-alive
//! connection is closed after `idle_timeout`, and a connection that has
//! *started but not finished* sending a request is closed
//! `header_timeout` after the first partial byte — measured from the
//! start of the partial request, not the last byte received, so a
//! slowloris dribbling one header byte per second cannot hold memory
//! open indefinitely.

use crate::conn::Conn;
use crate::http::{response_frame, HttpError, Request};
use crate::server::{lock, process_request, Shared};
use privim_rt::json::Value;
use std::collections::{BTreeMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Timer-wheel tick. Coarse on purpose: connection timeouts are seconds,
/// and a 100 ms granularity bounds the reactor's idle wakeup rate at 10/s.
const TICK: Duration = Duration::from_millis(100);
/// Wheel slots; deadlines beyond `SLOTS * TICK` are clamped to the
/// horizon and lazily re-armed when they fire early.
const SLOTS: usize = 512;
/// Poll token of the listener.
const TOKEN_LISTENER: u64 = 0;
/// Poll token of the waker's read end.
const TOKEN_WAKER: u64 = 1;
/// First token handed to an accepted connection.
const TOKEN_FIRST_CONN: u64 = 2;

/// Reactor front-end tunables (carved out of `ServeConfig` by
/// `server::start`).
#[derive(Clone)]
pub(crate) struct ReactorConfig {
    pub workers: usize,
    pub queue_cap: usize,
    pub idle_timeout: Duration,
    pub header_timeout: Duration,
    pub max_pipeline: u64,
}

/// One parsed request traveling to the worker pool.
struct Job {
    token: u64,
    seq: u64,
    request: Request,
    keep_alive: bool,
    arrival: Instant,
}

/// One finished response traveling back to the reactor.
struct Completion {
    token: u64,
    seq: u64,
    frame: Vec<u8>,
    close_after: bool,
}

/// State shared between the reactor thread and its workers.
struct ReactorShared {
    jobs: Mutex<VecDeque<Job>>,
    jobs_ready: Condvar,
    completions: Mutex<Vec<Completion>>,
    /// Write end of the waker pair; any thread can poke the reactor out
    /// of `wait` with a 1-byte write (nonblocking: a full pipe already
    /// guarantees a pending wakeup).
    waker_tx: UnixStream,
    /// Set by the reactor as it exits; workers drain the job queue and
    /// stop.
    reactor_done: AtomicBool,
}

impl ReactorShared {
    fn wake(&self) {
        let _ = (&self.waker_tx).write(&[1]);
    }
}

/// Handles for a running reactor front end.
pub(crate) struct ReactorHandle {
    rs: Arc<ReactorShared>,
    reactor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ReactorHandle {
    /// Wake the reactor so it notices `shutting_down`, wait for it to
    /// drain every connection, then join the workers.
    pub(crate) fn shutdown(&mut self) {
        self.rs.wake();
        if let Some(r) = self.reactor.take() {
            let _ = r.join();
        }
        for w in self.workers.drain(..) {
            self.rs.jobs_ready.notify_all();
            let _ = w.join();
        }
    }
}

/// Spawn the reactor thread and its worker pool over an already-bound
/// listener.
pub(crate) fn spawn_reactor(
    listener: TcpListener,
    shared: Arc<Shared>,
    cfg: ReactorConfig,
) -> std::io::Result<ReactorHandle> {
    let (waker_tx, waker_rx) = UnixStream::pair()?;
    waker_tx.set_nonblocking(true)?;
    waker_rx.set_nonblocking(true)?;
    listener.set_nonblocking(true)?;
    let rs = Arc::new(ReactorShared {
        jobs: Mutex::new(VecDeque::new()),
        jobs_ready: Condvar::new(),
        completions: Mutex::new(Vec::new()),
        waker_tx,
        reactor_done: AtomicBool::new(false),
    });
    let reactor = {
        let rs = Arc::clone(&rs);
        let shared = Arc::clone(&shared);
        let cfg = cfg.clone();
        std::thread::spawn(move || reactor_loop(listener, waker_rx, &shared, &rs, &cfg))
    };
    let workers = (0..cfg.workers.max(1))
        .map(|_| {
            let rs = Arc::clone(&rs);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared, &rs))
        })
        .collect();
    Ok(ReactorHandle {
        rs,
        reactor: Some(reactor),
        workers,
    })
}

// ---------------------------------------------------------------------
// Worker pool: identical request semantics to the threaded front end.
// ---------------------------------------------------------------------

/// Pop jobs, shed-or-route through the shared `process_request` path,
/// and push the finished frame back to the reactor.
fn worker_loop(shared: &Shared, rs: &ReactorShared) {
    loop {
        let popped = {
            let mut q = lock(&rs.jobs);
            loop {
                if let Some(job) = q.pop_front() {
                    shared.metrics.queue_pop();
                    break Some(job);
                }
                if rs.reactor_done.load(Ordering::SeqCst) {
                    break None;
                }
                // privim-lint: allow(panic, reason = "a poisoned server lock means a worker already panicked; propagating is the only sound recovery")
                q = rs.jobs_ready.wait(q).unwrap();
            }
        };
        let Some(job) = popped else {
            return; // reactor gone and queue empty: fully drained
        };
        let waited = job.arrival.elapsed();
        let (status, content_type, body, extra, ep) = if waited >= shared.deadline {
            shared.metrics.shed();
            let body = Value::obj(vec![(
                "error",
                Value::Str("shed: deadline exceeded while queued".to_string()),
            )])
            .to_json_string();
            (503u16, "application/json", body, Vec::new(), None)
        } else {
            let (routed, ct, ep) = process_request(&job.request, shared);
            let extra: Vec<(&str, String)> = routed
                .retry_after_secs
                .map(|s| vec![("Retry-After", s.to_string())])
                .unwrap_or_default();
            (routed.status, ct, routed.body, extra, ep)
        };
        // A drain forces `Connection: close` on every in-flight response;
        // a deadline shed closes too (mirroring the threaded shed).
        let keep_alive =
            job.keep_alive && status != 503 && !shared.shutting_down.load(Ordering::SeqCst);
        let frame = response_frame(status, content_type, &extra, body.as_bytes(), keep_alive);
        let latency_us = job.arrival.elapsed().as_micros().min(u64::MAX as u128) as u64;
        match ep {
            Some(ep) => shared.metrics.observe(ep, latency_us, status),
            None => shared.metrics.observe_status(status),
        }
        {
            let mut c = lock(&rs.completions);
            c.push(Completion {
                token: job.token,
                seq: job.seq,
                frame,
                close_after: !keep_alive,
            });
        }
        rs.wake();
        if shared.shutting_down.load(Ordering::SeqCst) {
            shared.metrics.drained();
        }
    }
}

// ---------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------

/// Coarse hashed timer wheel over connection tokens. Slots hold tokens
/// scheduled to fire at that tick; cancellation is lazy — the reactor
/// re-checks a fired token's *actual* deadline and re-arms it if
/// activity pushed the deadline out since scheduling.
pub(crate) struct TimerWheel {
    slots: Vec<Vec<u64>>,
    /// The tick the wheel has advanced to.
    now: u64,
}

impl TimerWheel {
    pub(crate) fn new(nslots: usize) -> TimerWheel {
        TimerWheel {
            slots: (0..nslots.max(2)).map(|_| Vec::new()).collect(),
            now: 0,
        }
    }

    /// Schedule `token` to fire at `at_tick` (clamped into the wheel's
    /// horizon; never the current slot, so a just-scheduled token cannot
    /// fire in the same advance that scheduled it).
    pub(crate) fn schedule(&mut self, token: u64, at_tick: u64) {
        let horizon = (self.slots.len() - 1) as u64;
        let delay = at_tick.saturating_sub(self.now).clamp(1, horizon);
        let slot = ((self.now + delay) % self.slots.len() as u64) as usize;
        self.slots[slot].push(token);
    }

    /// Advance to `to_tick`, appending every fired token to `due`.
    pub(crate) fn advance(&mut self, to_tick: u64, due: &mut Vec<u64>) {
        while self.now < to_tick {
            self.now += 1;
            let slot = (self.now % self.slots.len() as u64) as usize;
            due.append(&mut self.slots[slot]);
        }
    }

}

// ---------------------------------------------------------------------
// Poller: epoll on Linux, poll(2) elsewhere on unix.
// ---------------------------------------------------------------------

/// One readiness report from a poll wait.
struct Ready {
    token: u64,
    readable: bool,
    writable: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    //! Raw epoll via `extern "C"` shims (ISSUE 10: zero dependencies —
    //! the workspace has no libc crate, matching the `signal()` shim in
    //! `bin/privim-serve.rs`).
    use super::Ready;
    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

    /// Kernel `struct epoll_event`. x86-64 is the one ABI where the
    /// kernel declares it packed; everywhere else it is a plain C struct.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    }

    pub struct Poller {
        ep: OwnedFd,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // privim-lint: allow(unsafe, reason = "epoll_create1 FFI takes one flag int and returns an fd or -1; the returned fd is immediately owned by OwnedFd so it cannot leak")
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            // privim-lint: allow(unsafe, reason = "fd was just returned >= 0 by epoll_create1 and is owned by nothing else, satisfying from_raw_fd's exclusive-ownership contract")
            let ep = unsafe { OwnedFd::from_raw_fd(fd) };
            Ok(Poller {
                ep,
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: (if read { EPOLLIN | EPOLLRDHUP } else { 0 })
                    | (if write { EPOLLOUT } else { 0 }),
                data: token,
            };
            // privim-lint: allow(unsafe, reason = "epoll_ctl FFI: epfd and fd are live (epfd owned by self, fd owned by the caller's socket), and the event pointer refers to a stack value that outlives the call")
            let rc = unsafe { epoll_ctl(self.ep.as_raw_fd(), op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, read, write)
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, read, write)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, false, false)
        }

        pub fn wait(&mut self, timeout: std::time::Duration, out: &mut Vec<Ready>) {
            let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as i32;
            let cap = self.buf.len() as i32;
            // privim-lint: allow(unsafe, reason = "epoll_wait FFI: the events pointer and maxevents come from the same live Vec, so the kernel writes only into owned memory; a negative return (EINTR included) is handled as zero events")
            let n = unsafe { epoll_wait(self.ep.as_raw_fd(), self.buf.as_mut_ptr(), cap, timeout_ms) };
            if n <= 0 {
                return; // timeout, or EINTR — the caller re-loops either way
            }
            for ev in &self.buf[..n as usize] {
                // A copy first: the struct is packed on x86-64, so field
                // reads must not take references into it.
                let (events, data) = (ev.events, ev.data);
                out.push(Ready {
                    token: data,
                    readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                    writable: events & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                });
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    //! Portable fallback: `poll(2)` with an interest table rebuilt per
    //! wait. O(n) per wakeup, which is fine for a dev box; Linux gets
    //! the epoll path above.
    use super::Ready;
    use std::collections::BTreeMap;
    use std::io;
    use std::os::fd::RawFd;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    extern "C" {
        // nfds_t is `unsigned int` on the BSD/mac unixes this branch targets.
        fn poll(fds: *mut PollFd, nfds: u32, timeout_ms: i32) -> i32;
    }

    pub struct Poller {
        interest: BTreeMap<RawFd, (u64, bool, bool)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                interest: BTreeMap::new(),
            })
        }

        pub fn register(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            self.interest.insert(fd, (token, read, write));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            self.interest.insert(fd, (token, read, write));
            Ok(())
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.interest.remove(&fd);
            Ok(())
        }

        pub fn wait(&mut self, timeout: std::time::Duration, out: &mut Vec<Ready>) {
            let mut fds: Vec<PollFd> = self
                .interest
                .iter()
                .filter(|(_, (_, r, w))| *r || *w)
                .map(|(&fd, &(_, r, w))| PollFd {
                    fd,
                    events: (if r { POLLIN } else { 0 }) | (if w { POLLOUT } else { 0 }),
                    revents: 0,
                })
                .collect();
            let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as i32;
            // privim-lint: allow(unsafe, reason = "poll FFI: the fds pointer and count come from the same live Vec so the kernel writes revents only into owned memory; negative returns (EINTR included) are handled as zero events")
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u32, timeout_ms) };
            if n <= 0 {
                return;
            }
            for pfd in &fds {
                if pfd.revents == 0 {
                    continue;
                }
                let Some(&(token, _, _)) = self.interest.get(&pfd.fd) else {
                    continue;
                };
                out.push(Ready {
                    token,
                    readable: pfd.revents & (POLLIN | POLLHUP | POLLERR) != 0,
                    writable: pfd.revents & (POLLOUT | POLLHUP | POLLERR) != 0,
                });
            }
        }
    }
}

use sys::Poller;

// ---------------------------------------------------------------------
// The reactor event loop
// ---------------------------------------------------------------------

/// Reactor-side connection record: socket + protocol state machine +
/// interest/timer bookkeeping.
struct ConnEntry {
    stream: TcpStream,
    conn: Conn,
    /// Currently registered (read, write) interest.
    interest: (bool, bool),
    /// Tick of the last socket activity (read bytes, write progress, or
    /// a completion) — drives the idle timeout.
    last_activity_tick: u64,
    /// Tick at which the currently buffered *partial* request started —
    /// drives the header-read timeout. Cleared when the buffer empties.
    partial_since_tick: Option<u64>,
    /// Whether the wheel currently holds this token (lazy cancellation).
    timer_armed: bool,
    /// Socket hit a fatal error; discard instead of flushing.
    dead: bool,
}

impl ConnEntry {
    /// The tick at which this connection should be reaped: the header
    /// timeout (measured from the *start* of the buffered partial
    /// request) beats the idle timeout (measured from last activity).
    fn deadline_tick(&self, idle_ticks: u64, header_ticks: u64) -> u64 {
        if let Some(start) = self.partial_since_tick {
            start + header_ticks
        } else {
            self.last_activity_tick + idle_ticks
        }
    }
}

fn ticks(d: Duration) -> u64 {
    ((d.as_millis() + TICK.as_millis() - 1) / TICK.as_millis()).max(1) as u64
}

/// The reactor thread: one poller, one timer wheel, all connections.
// privim-lint: allow(wall-clock, reason = "timing-only telemetry and timeouts: the clock drives the timer wheel, arrival stamps, and idle reaping; no response payload depends on it")
fn reactor_loop(
    listener: TcpListener,
    waker_rx: UnixStream,
    shared: &Shared,
    rs: &ReactorShared,
    cfg: &ReactorConfig,
) {
    let mut poller = match Poller::new() {
        Ok(p) => p,
        Err(_) => {
            // Cannot poll: report done so workers exit; shutdown() joins us.
            rs.reactor_done.store(true, Ordering::SeqCst);
            rs.jobs_ready.notify_all();
            return;
        }
    };
    let idle_ticks = ticks(cfg.idle_timeout);
    let header_ticks = ticks(cfg.header_timeout);
    let mut listener = Some(listener);
    if let Some(l) = &listener {
        if poller.register(l.as_raw_fd(), TOKEN_LISTENER, true, false).is_err() {
            rs.reactor_done.store(true, Ordering::SeqCst);
            rs.jobs_ready.notify_all();
            return;
        }
    }
    let _ = poller.register(waker_rx.as_raw_fd(), TOKEN_WAKER, true, false);

    let mut conns: BTreeMap<u64, ConnEntry> = BTreeMap::new();
    let mut wheel = TimerWheel::new(SLOTS);
    let mut next_token = TOKEN_FIRST_CONN;
    let t0 = Instant::now();
    let mut ready: Vec<Ready> = Vec::new();
    let mut due: Vec<u64> = Vec::new();
    let mut touched: Vec<u64> = Vec::new();
    let mut draining = false;

    loop {
        ready.clear();
        poller.wait(TICK, &mut ready);
        shared.metrics.reactor_wakeup();
        let now_tick = (t0.elapsed().as_millis() / TICK.as_millis()) as u64;
        touched.clear();

        // Drain transition: stop accepting, flip idle connections to
        // Draining. Connections mid-request (partial bytes buffered) are
        // left open so the request they already started is still served —
        // the same "no accepted request is abandoned" contract as the
        // threaded front end — bounded by the header timeout.
        if !draining && shared.shutting_down.load(Ordering::SeqCst) {
            draining = true;
            if let Some(l) = listener.take() {
                let _ = poller.deregister(l.as_raw_fd());
            }
            for (&token, entry) in conns.iter_mut() {
                if entry.conn.partial_bytes() == 0 {
                    entry.conn.start_draining();
                }
                touched.push(token);
            }
        }

        // Timer expiries (lazy: re-check the real deadline, re-arm if
        // activity moved it).
        due.clear();
        wheel.advance(now_tick, &mut due);
        for &token in due.iter() {
            let Some(entry) = conns.get_mut(&token) else {
                continue;
            };
            entry.timer_armed = false;
            let deadline = entry.deadline_tick(idle_ticks, header_ticks);
            if deadline > now_tick {
                wheel.schedule(token, deadline);
                entry.timer_armed = true;
                continue;
            }
            if entry.conn.inflight() > 0 {
                // The worker deadline bounds this job; just re-check later.
                wheel.schedule(token, now_tick + idle_ticks);
                entry.timer_armed = true;
                continue;
            }
            if entry.partial_since_tick.is_some() {
                shared.metrics.header_timeout_close();
            } else {
                shared.metrics.idle_timeout_close();
            }
            entry.dead = true;
            touched.push(token);
        }

        // Readiness events.
        for i in 0..ready.len() {
            let (token, readable, writable) = (ready[i].token, ready[i].readable, ready[i].writable);
            match token {
                TOKEN_LISTENER => {
                    accept_ready(&mut poller, &listener, &mut conns, &mut next_token, now_tick, shared, draining);
                }
                TOKEN_WAKER => {
                    let mut sink = [0u8; 64];
                    while matches!((&waker_rx).read(&mut sink), Ok(n) if n > 0) {}
                }
                token => {
                    if let Some(entry) = conns.get_mut(&token) {
                        if readable {
                            read_ready(entry, token, now_tick, shared, rs, cfg);
                        }
                        if writable && !entry.dead {
                            write_ready(entry, now_tick);
                        }
                        touched.push(token);
                    }
                }
            }
        }

        // Worker completions: swap the vec out under the lock, apply after.
        let done: Vec<Completion> = {
            let mut c = lock(&rs.completions);
            std::mem::take(&mut *c)
        };
        for comp in done {
            let Some(entry) = conns.get_mut(&comp.token) else {
                continue; // connection died while the job was in flight
            };
            entry.conn.complete(comp.seq, comp.frame);
            if comp.close_after {
                entry.conn.start_draining();
            }
            entry.last_activity_tick = now_tick;
            // Opportunistic write: most responses fit the socket buffer,
            // so this usually finishes the exchange without another
            // EPOLLOUT round trip.
            write_ready(entry, now_tick);
            touched.push(comp.token);
        }

        // Finalize every touched connection: close finished/dead ones,
        // refresh interest + timers on the rest.
        touched.sort_unstable();
        touched.dedup();
        for &token in touched.iter() {
            let Some(entry) = conns.get_mut(&token) else {
                continue;
            };
            // Completions may have freed pipeline slots while requests
            // beyond the cap sit already-buffered in `read_buf`; the
            // socket buffer is drained, so no readable event will ever
            // re-trigger the parser — re-run it here or those requests
            // would hang until a timeout kills the connection.
            if !entry.dead && entry.conn.can_parse_more(cfg.max_pipeline) {
                parse_and_enqueue(entry, token, now_tick, shared, rs, cfg);
            }
            if entry.dead || entry.conn.finished() {
                let _ = poller.deregister(entry.stream.as_raw_fd());
                conns.remove(&token);
                shared.metrics.conn_closed();
                continue;
            }
            let want = (
                entry.conn.wants_read(cfg.max_pipeline),
                !entry.conn.writable().is_empty(),
            );
            if want != entry.interest {
                let fd = entry.stream.as_raw_fd();
                if poller.modify(fd, token, want.0, want.1).is_err() {
                    entry.dead = true;
                } else {
                    entry.interest = want;
                }
            }
            if !entry.timer_armed {
                wheel.schedule(token, entry.deadline_tick(idle_ticks, header_ticks));
                entry.timer_armed = true;
            }
        }

        if draining && conns.is_empty() {
            break;
        }
    }
    rs.reactor_done.store(true, Ordering::SeqCst);
    rs.jobs_ready.notify_all();
}

/// Accept until `WouldBlock`. During drain the listener is already gone;
/// this also covers the race where a connection lands between the drain
/// flag and deregistration — it is accepted and immediately dropped.
fn accept_ready(
    poller: &mut Poller,
    listener: &Option<TcpListener>,
    conns: &mut BTreeMap<u64, ConnEntry>,
    next_token: &mut u64,
    now_tick: u64,
    shared: &Shared,
    draining: bool,
) {
    let Some(l) = listener else {
        return;
    };
    loop {
        let stream = match l.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(_) => return,
        };
        if draining {
            continue; // dropped: never accepted into service
        }
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let _ = stream.set_nodelay(true);
        let token = *next_token;
        *next_token += 1;
        if poller.register(stream.as_raw_fd(), token, true, false).is_err() {
            continue;
        }
        shared.metrics.conn_opened();
        conns.insert(
            token,
            ConnEntry {
                stream,
                conn: Conn::new(),
                interest: (true, false),
                last_activity_tick: now_tick,
                partial_since_tick: None,
                timer_armed: false,
                dead: false,
            },
        );
    }
}

/// Read until `WouldBlock`/EOF, then parse and enqueue whatever became
/// complete.
fn read_ready(
    entry: &mut ConnEntry,
    token: u64,
    now_tick: u64,
    shared: &Shared,
    rs: &ReactorShared,
    cfg: &ReactorConfig,
) {
    let mut chunk = [0u8; 16 * 1024];
    let mut got_bytes = false;
    loop {
        match entry.stream.read(&mut chunk) {
            Ok(0) => {
                // Peer EOF — possibly a half-close after one or more
                // complete requests (write-then-shutdown(SHUT_WR) is
                // legal HTTP/1.1). Record it on the state machine
                // *before* parsing below, so buffered complete requests
                // are still served and only then the connection drains.
                entry.conn.input_closed();
                break;
            }
            Ok(n) => {
                entry.conn.push_bytes(&chunk[..n]);
                got_bytes = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                entry.dead = true;
                return;
            }
        }
    }
    if got_bytes {
        entry.last_activity_tick = now_tick;
    }
    parse_and_enqueue(entry, token, now_tick, shared, rs, cfg);
}

/// Run the state machine's parser and hand complete requests to the
/// worker queue (shedding with an immediate 503 frame at the cap).
// privim-lint: allow(wall-clock, reason = "arrival timestamps: each parsed request is stamped for deadline shedding and the latency histogram, never for response payloads")
fn parse_and_enqueue(
    entry: &mut ConnEntry,
    token: u64,
    now_tick: u64,
    shared: &Shared,
    rs: &ReactorShared,
    cfg: &ReactorConfig,
) {
    // Loop until quiescent: a protocol error hit after requests were
    // already accepted in the same parse round is deferred by the state
    // machine and surfaces on the follow-up call.
    loop {
        match entry.conn.parse_available(cfg.max_pipeline) {
            Ok(jobs) if jobs.is_empty() => break,
            Ok(jobs) => {
                shared.metrics.observe_pipeline_depth(entry.conn.inflight());
                let arrival = Instant::now();
                // A half-closed peer gets honest `Connection: close`
                // responses (the threaded front end always closes, so
                // this also keeps the write-then-shutdown pattern
                // byte-identical across front ends).
                let peer_gone = entry.conn.input_eof();
                let mut shedding = false;
                for job in jobs {
                    if job.seq > 0 {
                        shared.metrics.keepalive_reuse();
                    }
                    if !shedding {
                        // Bounded queue: same cap + same 503 shape as
                        // the threaded acceptor, but the refusal is a
                        // frame in the response order rather than a raw
                        // socket write.
                        let mut q = lock(&rs.jobs);
                        if q.len() < cfg.queue_cap {
                            q.push_back(Job {
                                token,
                                seq: job.seq,
                                request: job.request,
                                keep_alive: job.keep_alive && !peer_gone,
                                arrival,
                            });
                            shared.metrics.queue_push();
                            drop(q);
                            rs.jobs_ready.notify_one();
                            continue;
                        }
                        drop(q);
                        shedding = true;
                        entry.conn.start_draining();
                    }
                    // Queue full: the first 503 carries
                    // `Connection: close`, so every later request from
                    // the same parse batch is shed too — running them
                    // through workers would emit response frames behind
                    // a close-marked response.
                    shared.metrics.shed();
                    shared.metrics.observe_status(503);
                    let body = Value::obj(vec![(
                        "error",
                        Value::Str("shed: queue full".to_string()),
                    )])
                    .to_json_string();
                    let frame =
                        response_frame(503, "application/json", &[], body.as_bytes(), false);
                    entry.conn.complete(job.seq, frame);
                }
            }
            Err(e) => {
                // Protocol error: the refusal takes the next response
                // slot so it lands after every already-accepted response,
                // then the connection closes (framing can't be trusted
                // past this point).
                refuse(entry, &e, shared);
                break;
            }
        }
    }
    entry.partial_since_tick = if entry.conn.partial_bytes() > 0 {
        entry.partial_since_tick.or(Some(now_tick))
    } else {
        None
    };
}

/// Enqueue an error response frame for a protocol-level refusal.
fn refuse(entry: &mut ConnEntry, e: &HttpError, shared: &Shared) {
    shared.metrics.observe_status(e.status);
    let body = Value::obj(vec![("error", Value::Str(e.to_string()))]).to_json_string();
    let frame = response_frame(e.status, "application/json", &[], body.as_bytes(), false);
    let seq = entry.conn.claim_seq();
    entry.conn.complete(seq, frame);
}

/// Drain the write buffer into the socket until it empties or the socket
/// stops accepting bytes.
fn write_ready(entry: &mut ConnEntry, now_tick: u64) {
    loop {
        let pending = entry.conn.writable();
        if pending.is_empty() {
            return;
        }
        match entry.stream.write(pending) {
            Ok(0) => {
                entry.dead = true;
                return;
            }
            Ok(n) => {
                entry.conn.advance_write(n);
                entry.last_activity_tick = now_tick;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                entry.dead = true;
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_fires_at_the_scheduled_tick() {
        let mut w = TimerWheel::new(8);
        w.schedule(7, 3);
        let mut due = Vec::new();
        w.advance(2, &mut due);
        assert!(due.is_empty());
        w.advance(3, &mut due);
        assert_eq!(due, vec![7]);
        assert_eq!(w.now, 3);
    }

    #[test]
    fn wheel_clamps_past_and_far_deadlines() {
        let mut w = TimerWheel::new(8);
        // A deadline already in the past still fires on the next tick,
        // never the current one.
        w.schedule(1, 0);
        let mut due = Vec::new();
        w.advance(1, &mut due);
        assert_eq!(due, vec![1]);
        // A deadline beyond the horizon is clamped to horizon ticks out;
        // the reactor's lazy re-check re-arms it from there.
        due.clear();
        w.schedule(2, 1_000_000);
        w.advance(1 + 7, &mut due);
        assert_eq!(due, vec![2]);
    }

    #[test]
    fn wheel_wraps_around_its_slots() {
        let mut w = TimerWheel::new(4);
        let mut due = Vec::new();
        for round in 0..5u64 {
            let at = (round + 1) * 3;
            w.schedule(round, at);
            w.advance(at, &mut due);
            assert_eq!(due, vec![round], "round {round}");
            due.clear();
        }
    }

    #[test]
    fn tick_conversion_rounds_up_and_never_hits_zero() {
        assert_eq!(ticks(Duration::from_millis(1)), 1);
        assert_eq!(ticks(Duration::from_millis(100)), 1);
        assert_eq!(ticks(Duration::from_millis(101)), 2);
        assert_eq!(ticks(Duration::from_secs(30)), 300);
        assert_eq!(ticks(Duration::ZERO), 1);
    }
}

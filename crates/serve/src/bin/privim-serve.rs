//! `privim-serve` — pack a serving bundle and run the inference server.
//!
//! ```text
//! privim-serve pack --out bundle.json [--graph edges.txt [--directed]]
//!              [--nodes 300] [--k 20] [--eps 2] [--seed 7]
//!              [--method privim*|privim|privim+scs|non-private] [--fast]
//!              [--quant none|int8|f16]
//! privim-serve run --bundle bundle.json [--addr 127.0.0.1:7878]
//!              [--workers 4] [--queue-cap 128] [--deadline-ms 5000]
//!              [--batch-window-ms 2] [--runs 64]
//!              [--frontend reactor|threaded] [--idle-timeout-ms 30000]
//!              [--header-timeout-ms 10000] [--max-pipeline 32]
//! ```
//!
//! `pack` trains a model with the library pipeline (or on a synthetic
//! Barabási–Albert graph when no edge list is given) and writes the
//! versioned, checksummed bundle; `run` loads a bundle, serves it, and
//! drains in-flight requests on SIGINT/SIGTERM before exiting.

use privim::{export_serve_artifact, EvalSetup, Method};
use privim_gnn::QuantGnnModel;
use privim_graph::{io::read_edge_list, Graph};
use privim_rt::{fsio, ChaCha8Rng, SeedableRng};
use privim_serve::{
    bundle, start, wal, DurabilityConfig, FrontEnd, FsyncPolicy, LedgerConfig, LedgerState,
    ServeConfig,
};
use std::fs::File;
use std::io::{BufReader, Write};
use std::path::PathBuf;
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage:
  privim-serve pack --out <bundle.json>
               [--graph <edge-list> [--directed]] [--nodes 300]
               [--k 20] [--eps 2] [--seed 7] [--fast]
               [--method privim*|privim|privim+scs|non-private]
               [--quant none|int8|f16]
               [--tenant-budget <eps> [--query-sigma 8] [--ledger-delta 1e-5]
                [--retry-after 60]]
  privim-serve run --bundle <bundle.json> [--addr 127.0.0.1:7878]
               [--workers 4] [--queue-cap 128] [--deadline-ms 5000]
               [--batch-window-ms 2] [--runs 64]
               [--frontend reactor|threaded] [--idle-timeout-ms 30000]
               [--header-timeout-ms 10000] [--max-pipeline 32]
               [--wal <path>] [--no-wal] [--fsync always|never|every=N]
               [--compact-every 256]"
    );
    exit(2)
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("privim-serve: {msg}");
    exit(1)
}

struct Flags {
    out: Option<PathBuf>,
    graph: Option<PathBuf>,
    directed: bool,
    nodes: usize,
    k: usize,
    eps: f64,
    seed: u64,
    fast: bool,
    method: String,
    quant: bundle::QuantMode,
    tenant_budget: Option<f64>,
    query_sigma: f64,
    ledger_delta: f64,
    retry_after: u64,
    bundle: Option<PathBuf>,
    addr: String,
    workers: usize,
    queue_cap: usize,
    deadline_ms: u64,
    batch_window_ms: u64,
    runs: usize,
    frontend: FrontEnd,
    idle_timeout_ms: u64,
    header_timeout_ms: u64,
    max_pipeline: usize,
    wal: Option<PathBuf>,
    no_wal: bool,
    fsync: FsyncPolicy,
    compact_every: u64,
}

fn parse_flags(args: &[String]) -> Flags {
    let mut f = Flags {
        out: None,
        graph: None,
        directed: false,
        nodes: 300,
        k: 20,
        eps: 2.0,
        seed: 7,
        fast: false,
        method: "privim*".into(),
        quant: bundle::QuantMode::None,
        tenant_budget: None,
        query_sigma: 8.0,
        ledger_delta: 1e-5,
        retry_after: 60,
        bundle: None,
        addr: "127.0.0.1:7878".into(),
        workers: 4,
        queue_cap: 128,
        deadline_ms: 5_000,
        batch_window_ms: 2,
        runs: 64,
        frontend: FrontEnd::Reactor,
        idle_timeout_ms: 30_000,
        header_timeout_ms: 10_000,
        max_pipeline: 32,
        wal: None,
        no_wal: false,
        fsync: FsyncPolicy::Always,
        compact_every: 256,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    usage()
                })
                .clone()
        };
        match a.as_str() {
            "--out" => f.out = Some(PathBuf::from(val("--out"))),
            "--graph" => f.graph = Some(PathBuf::from(val("--graph"))),
            "--directed" => f.directed = true,
            "--nodes" => f.nodes = val("--nodes").parse().unwrap_or_else(|_| usage()),
            "--k" => f.k = val("--k").parse().unwrap_or_else(|_| usage()),
            "--eps" => f.eps = val("--eps").parse().unwrap_or_else(|_| usage()),
            "--seed" => f.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--fast" => f.fast = true,
            "--method" => f.method = val("--method"),
            "--quant" => {
                f.quant =
                    bundle::QuantMode::from_name(&val("--quant")).unwrap_or_else(|| usage())
            }
            "--tenant-budget" => {
                f.tenant_budget =
                    Some(val("--tenant-budget").parse().unwrap_or_else(|_| usage()))
            }
            "--query-sigma" => {
                f.query_sigma = val("--query-sigma").parse().unwrap_or_else(|_| usage())
            }
            "--ledger-delta" => {
                f.ledger_delta = val("--ledger-delta").parse().unwrap_or_else(|_| usage())
            }
            "--retry-after" => {
                f.retry_after = val("--retry-after").parse().unwrap_or_else(|_| usage())
            }
            "--bundle" => f.bundle = Some(PathBuf::from(val("--bundle"))),
            "--addr" => f.addr = val("--addr"),
            "--workers" => f.workers = val("--workers").parse().unwrap_or_else(|_| usage()),
            "--queue-cap" => f.queue_cap = val("--queue-cap").parse().unwrap_or_else(|_| usage()),
            "--deadline-ms" => {
                f.deadline_ms = val("--deadline-ms").parse().unwrap_or_else(|_| usage())
            }
            "--batch-window-ms" => {
                f.batch_window_ms = val("--batch-window-ms").parse().unwrap_or_else(|_| usage())
            }
            "--runs" => f.runs = val("--runs").parse().unwrap_or_else(|_| usage()),
            "--frontend" => {
                f.frontend = FrontEnd::parse(&val("--frontend")).unwrap_or_else(|| usage())
            }
            "--idle-timeout-ms" => {
                f.idle_timeout_ms = val("--idle-timeout-ms").parse().unwrap_or_else(|_| usage())
            }
            "--header-timeout-ms" => {
                f.header_timeout_ms =
                    val("--header-timeout-ms").parse().unwrap_or_else(|_| usage())
            }
            "--max-pipeline" => {
                f.max_pipeline = val("--max-pipeline").parse().unwrap_or_else(|_| usage())
            }
            "--wal" => f.wal = Some(PathBuf::from(val("--wal"))),
            "--no-wal" => f.no_wal = true,
            "--fsync" => {
                f.fsync = FsyncPolicy::parse(&val("--fsync")).unwrap_or_else(|| usage())
            }
            "--compact-every" => {
                f.compact_every = val("--compact-every").parse().unwrap_or_else(|_| usage())
            }
            _ => usage(),
        }
    }
    f
}

fn method_for(name: &str, epsilon: f64) -> Method {
    match name {
        "privim*" => Method::PrivImStar { epsilon },
        "privim" => Method::PrivIm { epsilon },
        "privim+scs" => Method::PrivImScs { epsilon },
        "non-private" => Method::NonPrivate,
        other => {
            eprintln!("unknown method {other:?}");
            usage()
        }
    }
}

fn load_or_generate_graph(f: &Flags) -> Graph {
    match &f.graph {
        Some(path) => read_edge_list(path, f.directed)
            .unwrap_or_else(|e| fail(format!("read {}: {e}", path.display())))
            .graph,
        None => {
            let mut rng = ChaCha8Rng::seed_from_u64(f.seed);
            privim_graph::generators::barabasi_albert(f.nodes.max(10), 3, &mut rng)
                .with_uniform_weights(1.0)
        }
    }
}

// privim-lint: allow(dp-taint, reason = "packs the finished DP-trained artifact: weights are post-clip/post-noise and the bundle records the accounted epsilon; no raw per-example state is serialized")
fn cmd_pack(f: &Flags) {
    let out = f.out.clone().unwrap_or_else(|| usage());
    let graph = load_or_generate_graph(f);
    let mut rng = ChaCha8Rng::seed_from_u64(f.seed);
    let mut setup = EvalSetup::paper_defaults(&graph, f.k.min(graph.num_nodes()), &mut rng);
    if f.fast {
        // CI-sized training: same pipeline, fewer steps and shorter walks.
        setup.params.iters = 20;
        setup.params.walk_len = 50;
        setup.params.expected_starts = 64;
    }
    let artifact = export_serve_artifact(method_for(&f.method, f.eps), &setup, f.seed)
        .unwrap_or_else(|e| fail(e));
    let state = f.tenant_budget.map(|epsilon_budget| {
        let config = LedgerConfig {
            epsilon_budget,
            delta: f.ledger_delta,
            query_sigma: f.query_sigma,
            retry_after_secs: f.retry_after,
        };
        config.validate().unwrap_or_else(|e| fail(e));
        LedgerState::new(config)
    });
    let metered = match &state {
        Some(s) => format!(
            "metered(eps_budget={}, query_sigma={})",
            s.config.epsilon_budget, f.query_sigma
        ),
        None => "unmetered".to_string(),
    };
    let privacy = bundle::PrivacyStatement {
        epsilon: artifact.epsilon,
        delta: artifact.delta,
        sigma: artifact.sigma,
        steps: artifact.steps as u64,
    };
    let doc = match f.quant {
        bundle::QuantMode::None => {
            bundle::pack_parts(&artifact.model, &privacy, &graph, state.as_ref())
        }
        bundle::QuantMode::Int8 => bundle::pack_parts_q8(
            &QuantGnnModel::from_model(&artifact.model),
            &privacy,
            &graph,
            state.as_ref(),
        ),
        bundle::QuantMode::F16 => {
            bundle::pack_parts_f16(&artifact.model, &privacy, &graph, state.as_ref())
        }
    };
    // Atomic replace (temp + fsync + rename + dir fsync): a crash
    // mid-pack can never leave a torn bundle at the target path.
    fsio::atomic_write_durable(&out, doc.to_json_string().as_bytes())
        .unwrap_or_else(|e| fail(format!("write {}: {e}", out.display())));
    println!(
        "packed {}: |V|={} |E|={} method={} eps={} quant={} {metered} fingerprint={:#018x}",
        out.display(),
        graph.num_nodes(),
        graph.num_edges(),
        f.method,
        artifact.epsilon.map(|e| e.to_string()).unwrap_or_else(|| "inf".into()),
        f.quant.name(),
        bundle::graph_fingerprint(&graph),
    );
}

static STOP: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    extern "C" fn on_signal(_: i32) {
        STOP.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // privim-lint: allow(unsafe, reason = "libc signal() FFI with the correct extern C fn-pointer signature; the handler only does a lock-free SeqCst store into a static AtomicBool, which is async-signal-safe")
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn cmd_run(f: &Flags) {
    let path = f.bundle.clone().unwrap_or_else(|| usage());
    let file =
        File::open(&path).unwrap_or_else(|e| fail(format!("open {}: {e}", path.display())));
    let mut b = bundle::load(BufReader::new(file)).unwrap_or_else(|e| fail(e));
    println!(
        "loaded {}: |V|={} fingerprint={:#018x} quant={} eps={} delta={} sigma={} steps={}",
        path.display(),
        b.graph.num_nodes(),
        b.fingerprint,
        b.mode.name(),
        b.privacy.epsilon.map(|e| e.to_string()).unwrap_or_else(|| "inf".into()),
        b.privacy.delta,
        b.privacy.sigma,
        b.privacy.steps,
    );
    match &b.ledger {
        Some(l) => println!(
            "budget ledger: eps_budget={} query_sigma={} tenants_on_record={}",
            l.config.epsilon_budget,
            l.config.query_sigma,
            l.tenants.len()
        ),
        None => println!("budget ledger: none (unmetered deployment)"),
    }
    // Metered deployments get a charge journal next to the bundle unless
    // --no-wal opts out. Recovery runs before the server starts: the
    // journal's charges merge into the in-memory ledger (max per tenant),
    // so a kill-9'd process restarts with spend >= everything it ever
    // acknowledged.
    let durability = match (&mut b.ledger, f.no_wal) {
        (Some(state), false) => {
            let wal_path = f
                .wal
                .clone()
                .unwrap_or_else(|| PathBuf::from(format!("{}.wal", path.display())));
            let report = wal::recover_from_path(state, &wal_path).unwrap_or_else(|e| fail(e));
            if report.wal_present {
                println!(
                    "wal recovery: {} record(s) applied, {} ambiguous kept, \
                     {} torn byte(s) dropped, {} tenant(s) raised",
                    report.records_applied,
                    report.ambiguous_kept,
                    report.torn_tail_bytes,
                    report.tenants_raised,
                );
            } else {
                println!("wal recovery: no journal at {} (clean boot)", wal_path.display());
            }
            Some(DurabilityConfig {
                wal_path,
                fsync: f.fsync,
                compact_every: f.compact_every,
                bundle_path: Some(path.clone()),
            })
        }
        _ => None,
    };
    let cfg = ServeConfig {
        addr: f.addr.clone(),
        workers: f.workers.max(1),
        queue_cap: f.queue_cap.max(1),
        deadline: Duration::from_millis(f.deadline_ms.max(1)),
        batch_window: Duration::from_millis(f.batch_window_ms),
        default_runs: f.runs.max(1),
        durability,
        frontend: f.frontend,
        idle_timeout: Duration::from_millis(f.idle_timeout_ms.max(1)),
        header_timeout: Duration::from_millis(f.header_timeout_ms.max(1)),
        max_pipeline: f.max_pipeline.max(1),
        ..ServeConfig::default()
    };
    install_signal_handlers();
    let frontend = cfg.frontend;
    let handle = start(b, cfg).unwrap_or_else(|e| fail(e));
    println!(
        "serving on port {} ({} workers, {frontend:?} front end); ctrl-c to drain and exit",
        handle.port(),
        f.workers
    );
    // Line-buffer semantics don't hold on a pipe: the chaos driver parses
    // this line from piped stdout, so push it out now.
    let _ = std::io::stdout().flush();
    while !STOP.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("signal received; draining in-flight requests");
    let drained = handle.shutdown();
    println!("shutdown complete; {drained} request(s) drained after the signal");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("pack") => cmd_pack(&parse_flags(&args[1..])),
        Some("run") => cmd_run(&parse_flags(&args[1..])),
        _ => usage(),
    }
}

//! Micro-batching for `/v1/embed`.
//!
//! Every embed request needs the model's scores, and scores come from a
//! *full-graph* forward pass — the per-request cost is identical whether
//! one or fifty requests are waiting. So concurrent requests coalesce:
//! the first arrival becomes the batch leader, sleeps for the batching
//! window, then runs ONE forward pass (whose matmul and SpMM kernels
//! already fan out over the persistent `privim_rt::par` worker pool) and
//! publishes the scores to every member of the batch. The round stays
//! open until the pass publishes — requests arriving mid-pass join it
//! and are served by it, so under saturation the pass duration itself
//! becomes the batching window.
//!
//! Batching changes *when* the forward pass runs, never its result: the
//! pass is deterministic in `(model, graph)`, so a batched response is
//! bit-identical to an unbatched one (the e2e suite pins this).
//!
//! No dedicated thread: leadership is carried by request threads, so an
//! idle server burns nothing and shutdown has nothing extra to join.

use privim_gnn::{node_features, GnnModel, GraphTensors, QuantGnnModel};
use privim_graph::Graph;
use privim_tensor::Matrix;
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

struct State {
    /// Id of the batch currently accepting joiners.
    round: u64,
    /// Requests joined to the current round.
    joiners: u64,
    /// Whether a leader is already collecting the current round.
    has_leader: bool,
    /// Published results: round → (scores, readers still to collect).
    results: BTreeMap<u64, (Arc<Vec<f64>>, u64)>,
    /// Forward passes run and requests served through them (telemetry).
    passes: u64,
    served: u64,
}

/// Coalesces concurrent score requests into single forward passes.
pub struct Batcher {
    model: Arc<GnnModel>,
    /// Int8 serving model from a `model_q8` bundle; when present the
    /// forward pass runs the dequantize-free integer path instead of the
    /// dense model.
    quant: Option<Arc<QuantGnnModel>>,
    tensors: GraphTensors,
    features: Matrix,
    window: Duration,
    state: Mutex<State>,
    published: Condvar,
}

fn lock(m: &Mutex<State>) -> MutexGuard<'_, State> {
    // privim-lint: allow(panic, reason = "a poisoned batch lock means a forward pass panicked; propagating is the only sound recovery")
    m.lock().unwrap()
}

impl Batcher {
    /// Precompute graph tensors and node features once; every batch
    /// reuses them (the graph is immutable for the server's lifetime).
    pub fn new(model: Arc<GnnModel>, graph: &Graph, window: Duration) -> Batcher {
        Batcher::new_quant(model, None, graph, window)
    }

    /// [`Batcher::new`] with an optional int8 serving model (a `model_q8`
    /// bundle serves through the quantized path, everything else through
    /// the dense one).
    pub fn new_quant(
        model: Arc<GnnModel>,
        quant: Option<Arc<QuantGnnModel>>,
        graph: &Graph,
        window: Duration,
    ) -> Batcher {
        Batcher {
            model,
            quant,
            tensors: GraphTensors::new(graph),
            features: node_features(graph),
            window,
            state: Mutex::new(State {
                round: 0,
                joiners: 0,
                has_leader: false,
                results: BTreeMap::new(),
                passes: 0,
                served: 0,
            }),
            published: Condvar::new(),
        }
    }

    /// Block until a forward pass covering this call completes and return
    /// the full per-node score vector. Calls overlapping in time share
    /// one pass.
    pub fn scores(&self) -> Arc<Vec<f64>> {
        let my_round;
        let lead;
        {
            let mut st = lock(&self.state);
            my_round = st.round;
            st.joiners += 1;
            lead = !st.has_leader;
            if lead {
                st.has_leader = true;
            }
        }
        if lead {
            // Collect followers for one window first, but keep the round
            // open through the forward pass itself: the pass depends only
            // on the immutable (model, graph), so its result is
            // bit-identical for a request that arrives mid-compute, and
            // under saturation the pass duration IS the batching window —
            // closing the round early would serialize one pass per
            // request exactly when coalescing matters most.
            std::thread::sleep(self.window);
            let scores = Arc::new(match &self.quant {
                Some(q) => q.infer(&self.tensors, &self.features),
                None => self.model.infer(&self.tensors, &self.features),
            });
            let mut st = lock(&self.state);
            let members = st.joiners;
            st.joiners = 0;
            st.round += 1;
            st.has_leader = false;
            st.passes += 1;
            st.served += members;
            st.results.insert(my_round, (scores, members));
            self.published.notify_all();
            take_result(&mut st, my_round)
        } else {
            let mut st = lock(&self.state);
            while !st.results.contains_key(&my_round) {
                let guard = self
                    .published
                    .wait(st)
                    // privim-lint: allow(panic, reason = "a poisoned batch lock means a forward pass panicked; propagating is the only sound recovery")
                    .unwrap();
                st = guard;
            }
            take_result(&mut st, my_round)
        }
    }

    /// `(forward passes run, requests served through them)`.
    pub fn stats(&self) -> (u64, u64) {
        let st = lock(&self.state);
        (st.passes, st.served)
    }
}

/// Hand one reader its copy of the round's scores, dropping the entry
/// once every member has collected it.
fn take_result(st: &mut State, round: u64) -> Arc<Vec<f64>> {
    let Some((scores, remaining)) = st.results.get_mut(&round) else {
        // Unreachable by protocol (an entry is only removed after its
        // last member takes it), but stay total instead of panicking.
        return Arc::new(Vec::new());
    };
    let out = Arc::clone(scores);
    *remaining -= 1;
    if *remaining == 0 {
        st.results.remove(&round);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_gnn::GnnConfig;
    use privim_rt::{ChaCha8Rng, SeedableRng};
    use std::sync::Barrier;

    fn setup() -> (Arc<GnnModel>, Graph) {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g = privim_graph::generators::barabasi_albert(60, 3, &mut rng)
            .with_uniform_weights(1.0);
        let model = Arc::new(GnnModel::new(GnnConfig::paper_default(), &mut rng));
        (model, g)
    }

    #[test]
    fn batched_scores_equal_direct_inference() {
        let (model, g) = setup();
        let b = Batcher::new(Arc::clone(&model), &g, Duration::from_millis(1));
        let direct = model.score_graph(&g);
        assert_eq!(*b.scores(), direct);
    }

    #[test]
    fn concurrent_requests_share_forward_passes() {
        let (model, g) = setup();
        let b = Arc::new(Batcher::new(
            Arc::clone(&model),
            &g,
            Duration::from_millis(50),
        ));
        let n = 6;
        let barrier = Arc::new(Barrier::new(n));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let b = Arc::clone(&b);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    b.scores()
                })
            })
            .collect();
        let direct = model.score_graph(&g);
        for h in handles {
            assert_eq!(*h.join().unwrap(), direct);
        }
        let (passes, served) = b.stats();
        assert_eq!(served, n as u64, "every request must be accounted");
        assert!(
            passes < n as u64,
            "6 overlapping requests took {passes} passes — no batching happened"
        );
        assert!(passes >= 1);
    }

    #[test]
    fn quantized_batcher_serves_the_quant_model_scores() {
        let (model, g) = setup();
        let q = Arc::new(QuantGnnModel::from_model(&model));
        let b = Batcher::new_quant(Arc::clone(&model), Some(Arc::clone(&q)), &g, Duration::from_millis(1));
        assert_eq!(*b.scores(), q.score_graph(&g));
    }

    #[test]
    fn sequential_requests_each_get_a_pass() {
        let (model, g) = setup();
        let b = Batcher::new(model, &g, Duration::from_millis(1));
        let a = b.scores();
        let c = b.scores();
        assert_eq!(*a, *c);
        let (passes, served) = b.stats();
        assert_eq!(passes, 2);
        assert_eq!(served, 2);
    }
}

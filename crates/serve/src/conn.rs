//! Per-connection state machine for the reactor front end.
//!
//! This module is pure bookkeeping — no sockets, no clocks, no syscalls —
//! so the whole pipelining protocol is unit-testable byte by byte:
//!
//! * **read side**: bytes accumulate in `read_buf`; [`Conn::parse_available`]
//!   peels off as many complete pipelined requests as the pipeline cap
//!   allows, assigning each a monotonically increasing sequence number;
//! * **response side**: workers finish requests in *any* order;
//!   [`Conn::complete`] parks each frame until every lower-sequence
//!   response has been emitted, guaranteeing RFC 9112 §9.3.2 in-order
//!   pipelined responses;
//! * **write side**: in-order frames concatenate into `write_buf`, which
//!   the reactor drains as the socket accepts bytes (partial writes and
//!   EAGAIN leave the remainder for the next writability event).
//!
//! A `Connection: close` request or a protocol error funnels into one
//! shutdown shape: stop parsing, finish what was accepted, close after
//! the write buffer drains. That is also exactly the graceful-drain
//! shape, which is why drain under the reactor needs no special casing
//! per connection. Peer EOF (half-close) is gentler: requests already
//! buffered in full are still parsed and answered — a client may legally
//! write its requests and `shutdown(SHUT_WR)` before reading — and the
//! shutdown shape begins only once nothing parseable remains.

use crate::http::{parse_one, HttpError, Request};
use std::collections::BTreeMap;

/// One parsed request, tagged with its response-ordering sequence number.
#[derive(Debug)]
pub(crate) struct ParsedJob {
    /// Position in the connection's response order; pass back to
    /// [`Conn::complete`].
    pub seq: u64,
    /// The request to route.
    pub request: Request,
    /// Whether the connection may persist after this response.
    pub keep_alive: bool,
}

/// Connection lifecycle as the reactor sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnPhase {
    /// Reading and parsing normally.
    Open,
    /// No more requests will be parsed (close requested, protocol error,
    /// peer EOF, or server drain); outstanding responses still flush.
    Draining,
}

/// Per-connection state: buffers, sequence bookkeeping, and the pending
/// out-of-order response map.
pub(crate) struct Conn {
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Sequence the next parsed request will get.
    next_seq: u64,
    /// Sequence the next emitted response must have.
    next_write_seq: u64,
    /// Completed frames waiting for their turn in the response order.
    parked: BTreeMap<u64, Vec<u8>>,
    /// Requests handed to workers whose frames have not yet been emitted.
    inflight: u64,
    /// A protocol error hit *after* this call already yielded requests;
    /// surfaced by the next `parse_available` so the accepted requests
    /// are not lost.
    deferred_error: Option<HttpError>,
    /// Peer sent EOF (half-close): no further bytes will arrive, but
    /// requests already buffered in full are still parsed and served.
    eof: bool,
    phase: ConnPhase,
    /// Total requests parsed over the connection's lifetime (reuse = this
    /// minus one).
    requests_parsed: u64,
}

impl Conn {
    pub(crate) fn new() -> Conn {
        Conn {
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            next_seq: 0,
            next_write_seq: 0,
            parked: BTreeMap::new(),
            inflight: 0,
            deferred_error: None,
            eof: false,
            phase: ConnPhase::Open,
            requests_parsed: 0,
        }
    }

    /// Append freshly read bytes to the parse buffer.
    pub(crate) fn push_bytes(&mut self, data: &[u8]) {
        self.read_buf.extend_from_slice(data);
    }

    /// Peel complete pipelined requests off the front of the buffer, up
    /// to `max_pipeline` outstanding. A request carrying
    /// `Connection: close` (or HTTP/1.0 without keep-alive) is the last
    /// one parsed — trailing bytes are dropped, matching RFC 9112's
    /// "close" meaning. On a protocol error the connection flips to
    /// [`ConnPhase::Draining`] and the caller must enqueue the error
    /// frame itself (via [`Conn::claim_seq`] + [`Conn::complete`]) so it
    /// still lands after every already-accepted response.
    pub(crate) fn parse_available(
        &mut self,
        max_pipeline: u64,
    ) -> Result<Vec<ParsedJob>, HttpError> {
        if let Some(e) = self.deferred_error.take() {
            return Err(e);
        }
        let mut jobs = Vec::new();
        while self.phase == ConnPhase::Open && self.inflight < max_pipeline {
            match parse_one(&self.read_buf) {
                Ok(Some(parsed)) => {
                    self.read_buf.drain(..parsed.consumed);
                    let seq = self.claim_seq();
                    self.requests_parsed += 1;
                    if !parsed.keep_alive {
                        self.phase = ConnPhase::Draining;
                        self.read_buf.clear();
                    }
                    jobs.push(ParsedJob {
                        seq,
                        request: parsed.request,
                        keep_alive: parsed.keep_alive,
                    });
                }
                Ok(None) => break,
                Err(e) => {
                    self.phase = ConnPhase::Draining;
                    self.read_buf.clear();
                    if jobs.is_empty() {
                        return Err(e);
                    }
                    // Don't lose requests accepted earlier in this call:
                    // hand them out now, report the error next call.
                    self.deferred_error = Some(e);
                    break;
                }
            }
        }
        // Half-close: after peer EOF, bytes that do not already form a
        // complete request can never become one. A complete request held
        // back only by the pipeline cap keeps the phase Open so a freed
        // slot can still parse it; anything else drains now.
        if self.eof
            && self.phase == ConnPhase::Open
            && !matches!(parse_one(&self.read_buf), Ok(Some(_)))
        {
            self.phase = ConnPhase::Draining;
            self.read_buf.clear();
        }
        Ok(jobs)
    }

    /// Reserve the next response slot (used directly for error frames,
    /// which have no routed request behind them).
    pub(crate) fn claim_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.inflight += 1;
        seq
    }

    /// Deliver the finished frame for `seq`. Frames arrive in worker
    /// completion order; they are emitted in sequence order.
    pub(crate) fn complete(&mut self, seq: u64, frame: Vec<u8>) {
        self.parked.insert(seq, frame);
        while let Some(frame) = self.parked.remove(&self.next_write_seq) {
            self.write_buf.extend_from_slice(&frame);
            self.next_write_seq += 1;
            self.inflight -= 1;
        }
    }

    /// Stop accepting further requests (server drain or a response that
    /// carried `Connection: close`); pending work flushes.
    pub(crate) fn start_draining(&mut self) {
        self.phase = ConnPhase::Draining;
    }

    /// Peer EOF (half-close): no more bytes will arrive, but a client
    /// that wrote a full request and then `shutdown(SHUT_WR)` — legal
    /// HTTP/1.1 — still gets buffered complete requests parsed and
    /// answered. [`Conn::parse_available`] flips the phase to Draining
    /// once nothing parseable remains.
    pub(crate) fn input_closed(&mut self) {
        self.eof = true;
    }

    /// Whether the peer has half-closed its write side.
    pub(crate) fn input_eof(&self) -> bool {
        self.eof
    }

    /// Whether buffered bytes may still yield requests once pipeline
    /// slots free up. Drives the completion-time re-parse in the
    /// reactor: the socket buffer is already drained into `read_buf`,
    /// so no readable event will ever re-trigger the parser.
    pub(crate) fn can_parse_more(&self, max_pipeline: u64) -> bool {
        self.phase == ConnPhase::Open
            && self.inflight < max_pipeline
            && !self.read_buf.is_empty()
    }

    #[cfg(test)]
    pub(crate) fn phase(&self) -> ConnPhase {
        self.phase
    }

    /// Requests handed out but not yet emitted as responses.
    pub(crate) fn inflight(&self) -> u64 {
        self.inflight
    }

    /// Requests parsed over the connection's lifetime.
    #[cfg(test)]
    pub(crate) fn requests_parsed(&self) -> u64 {
        self.requests_parsed
    }

    /// Bytes sitting unparsed in the read buffer (a request in progress
    /// — drives the header-read timeout).
    pub(crate) fn partial_bytes(&self) -> usize {
        self.read_buf.len()
    }

    /// Whether reads should stay registered: an open connection with
    /// pipeline room. A full pipeline deregisters read interest — TCP
    /// backpressure reaches the client instead of unbounded buffering.
    /// After peer EOF the socket stays level-readable forever, so read
    /// interest drops too; parsing progress is driven by completions.
    pub(crate) fn wants_read(&self, max_pipeline: u64) -> bool {
        self.phase == ConnPhase::Open && !self.eof && self.inflight < max_pipeline
    }

    /// The bytes the reactor should try to write next (empty = no write
    /// interest).
    pub(crate) fn writable(&self) -> &[u8] {
        &self.write_buf[self.write_pos..]
    }

    /// Record `n` bytes accepted by the socket; frees the buffer once
    /// fully drained.
    pub(crate) fn advance_write(&mut self, n: usize) {
        self.write_pos += n;
        debug_assert!(self.write_pos <= self.write_buf.len());
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        }
    }

    /// A draining connection with nothing left to emit or flush is done.
    pub(crate) fn finished(&self) -> bool {
        self.phase == ConnPhase::Draining && self.inflight == 0 && self.writable().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::response_frame;

    fn frame(body: &[u8], keep_alive: bool) -> Vec<u8> {
        response_frame(200, "application/json", &[], body, keep_alive)
    }

    #[test]
    fn byte_by_byte_feed_yields_each_request_exactly_once() {
        let raw = b"POST /v1/embed HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /healthz HTTP/1.1\r\n\r\n";
        let mut c = Conn::new();
        let mut jobs = Vec::new();
        for &b in raw.iter() {
            c.push_bytes(&[b]);
            jobs.extend(c.parse_available(32).unwrap());
        }
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].seq, 0);
        assert_eq!(jobs[0].request.path, "/v1/embed");
        assert_eq!(jobs[0].request.body, b"hi");
        assert_eq!(jobs[1].seq, 1);
        assert_eq!(jobs[1].request.path, "/healthz");
        assert_eq!(c.requests_parsed(), 2);
        assert_eq!(c.partial_bytes(), 0);
    }

    #[test]
    fn out_of_order_completions_emit_in_sequence_order() {
        let mut c = Conn::new();
        c.push_bytes(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\nGET /c HTTP/1.1\r\n\r\n");
        let jobs = c.parse_available(32).unwrap();
        assert_eq!(jobs.len(), 3);
        // Worker for /c finishes first: nothing may be written yet.
        c.complete(2, frame(b"c", true));
        assert!(c.writable().is_empty());
        // /a unblocks only itself; /b then releases both b and the parked c.
        c.complete(0, frame(b"a", true));
        let after_a = c.writable().len();
        assert_eq!(c.writable(), &frame(b"a", true)[..]);
        c.complete(1, frame(b"b", true));
        let mut expect = frame(b"a", true);
        expect.extend_from_slice(&frame(b"b", true));
        expect.extend_from_slice(&frame(b"c", true));
        assert_eq!(c.writable(), &expect[..]);
        assert!(after_a < c.writable().len());
        assert_eq!(c.inflight(), 0);
    }

    #[test]
    fn partial_writes_resume_where_they_left_off() {
        let mut c = Conn::new();
        c.push_bytes(b"GET /a HTTP/1.1\r\n\r\n");
        c.parse_available(32).unwrap();
        let f = frame(b"hello", true);
        c.complete(0, f.clone());
        // Socket accepts 3 bytes, then EAGAIN, then the rest.
        c.advance_write(3);
        assert_eq!(c.writable(), &f[3..]);
        let rest = c.writable().len();
        c.advance_write(rest);
        assert!(c.writable().is_empty());
        assert!(!c.finished(), "keep-alive connection stays open");
    }

    #[test]
    fn pipeline_cap_pauses_parsing_until_responses_drain() {
        let mut c = Conn::new();
        for _ in 0..4 {
            c.push_bytes(b"GET /x HTTP/1.1\r\n\r\n");
        }
        let first = c.parse_available(2).unwrap();
        assert_eq!(first.len(), 2, "cap of 2 holds back the rest");
        assert!(!c.wants_read(2), "full pipeline drops read interest");
        assert!(c.parse_available(2).unwrap().is_empty());
        c.complete(0, frame(b"a", true));
        assert_eq!(c.inflight(), 1);
        assert!(c.wants_read(2));
        let more = c.parse_available(2).unwrap();
        assert_eq!(more.len(), 1, "one slot freed, one more request parsed");
        assert_eq!(more[0].seq, 2);
    }

    #[test]
    fn connection_close_request_stops_parsing_and_finishes() {
        let mut c = Conn::new();
        c.push_bytes(
            b"GET /a HTTP/1.1\r\nConnection: close\r\n\r\nGET /smuggled HTTP/1.1\r\n\r\n",
        );
        let jobs = c.parse_available(32).unwrap();
        assert_eq!(jobs.len(), 1, "nothing after a close request is parsed");
        assert!(!jobs[0].keep_alive);
        assert_eq!(c.phase(), ConnPhase::Draining);
        assert!(!c.finished(), "response still owed");
        c.complete(0, frame(b"a", false));
        let n = c.writable().len();
        c.advance_write(n);
        assert!(c.finished());
    }

    #[test]
    fn protocol_error_drains_and_error_frame_orders_after_accepted_work() {
        let mut c = Conn::new();
        c.push_bytes(b"GET /ok HTTP/1.1\r\n\r\nPOST /bad HTTP/1.1\r\nContent-Length: nope\r\n\r\n");
        let jobs = c.parse_available(32).unwrap();
        assert_eq!(jobs.len(), 1);
        let err = c.parse_available(32).unwrap_err();
        assert_eq!(err.status, 400);
        assert_eq!(c.phase(), ConnPhase::Draining);
        // Reactor enqueues the error frame behind the good response.
        let err_seq = c.claim_seq();
        assert_eq!(err_seq, 1);
        c.complete(err_seq, frame(b"err", false));
        assert!(
            c.writable().is_empty(),
            "error frame must wait for the accepted request's response"
        );
        c.complete(0, frame(b"ok", true));
        let mut expect = frame(b"ok", true);
        expect.extend_from_slice(&frame(b"err", false));
        assert_eq!(c.writable(), &expect[..]);
    }

    #[test]
    fn half_close_after_complete_request_still_serves_it() {
        // write-then-shutdown(SHUT_WR): the buffered request must be
        // parsed and answered, and only then the connection finishes.
        let mut c = Conn::new();
        c.push_bytes(b"GET /a HTTP/1.1\r\n\r\n");
        c.input_closed();
        assert!(!c.wants_read(32), "EOF'd socket must drop read interest");
        let jobs = c.parse_available(32).unwrap();
        assert_eq!(jobs.len(), 1, "half-close must not discard the request");
        assert_eq!(c.phase(), ConnPhase::Draining, "nothing parseable remains");
        assert!(!c.finished(), "response still owed");
        c.complete(0, frame(b"a", false));
        let n = c.writable().len();
        c.advance_write(n);
        assert!(c.finished());
    }

    #[test]
    fn half_close_with_capped_pipeline_parses_the_rest_as_slots_free() {
        let mut c = Conn::new();
        for _ in 0..3 {
            c.push_bytes(b"GET /x HTTP/1.1\r\n\r\n");
        }
        c.input_closed();
        let first = c.parse_available(2).unwrap();
        assert_eq!(first.len(), 2);
        assert_eq!(
            c.phase(),
            ConnPhase::Open,
            "a complete-but-capped request must keep the phase Open"
        );
        assert!(!c.can_parse_more(2), "no slot free yet");
        c.complete(0, frame(b"a", true));
        assert!(c.can_parse_more(2), "freed slot re-enables parsing");
        let more = c.parse_available(2).unwrap();
        assert_eq!(more.len(), 1);
        assert_eq!(more[0].seq, 2);
        assert_eq!(c.phase(), ConnPhase::Draining, "buffer exhausted after EOF");
    }

    #[test]
    fn half_close_discards_an_unfinishable_fragment() {
        let mut c = Conn::new();
        c.push_bytes(b"GET /a HTTP/1.1\r\n\r\nGET /par");
        c.input_closed();
        let jobs = c.parse_available(32).unwrap();
        assert_eq!(jobs.len(), 1, "the complete request is still served");
        assert_eq!(c.phase(), ConnPhase::Draining);
        assert_eq!(c.partial_bytes(), 0, "the fragment can never complete");
    }

    #[test]
    fn capped_buffered_requests_parse_after_completions_without_new_bytes() {
        // The reviewer scenario behind the reactor's completion-time
        // re-parse: a burst beyond the cap arrives in one read, and no
        // further readable event will ever fire.
        let mut c = Conn::new();
        for _ in 0..5 {
            c.push_bytes(b"GET /x HTTP/1.1\r\n\r\n");
        }
        let mut served = c.parse_available(2).unwrap().len() as u64;
        assert_eq!(served, 2, "cap holds back the rest of the burst");
        let mut completed = 0u64;
        while completed < 5 {
            assert!(c.inflight() > 0, "stalled with {served} served");
            // One worker completion frees one slot...
            c.complete(completed, frame(b"x", true));
            completed += 1;
            // ...and the completion-time re-parse picks up the slack.
            if c.can_parse_more(2) {
                served += c.parse_available(2).unwrap().len() as u64;
            }
        }
        assert_eq!(served, 5, "every buffered request must eventually parse");
        assert_eq!(c.partial_bytes(), 0);
    }

    #[test]
    fn drain_finishes_inflight_then_closes() {
        let mut c = Conn::new();
        c.push_bytes(b"GET /a HTTP/1.1\r\n\r\n");
        let jobs = c.parse_available(32).unwrap();
        assert_eq!(jobs.len(), 1);
        c.start_draining(); // server shutdown mid-request
        assert!(!c.finished(), "in-flight request must be answered first");
        c.complete(0, frame(b"a", false));
        let n = c.writable().len();
        c.advance_write(n);
        assert!(c.finished());
        // An idle connection, by contrast, finishes immediately on drain.
        let mut idle = Conn::new();
        idle.start_draining();
        assert!(idle.finished());
    }
}

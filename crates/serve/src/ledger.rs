//! Per-tenant RDP budget ledger: budget-aware admission for serving.
//!
//! Training spends one privacy budget; *serving* can spend another. A
//! deployment that adds per-query Gaussian noise to released scores (the
//! output-perturbation regime) must meter each tenant's cumulative
//! spend, or an adversarial tenant simply averages the noise away with
//! repeated queries. This module is that meter:
//!
//! * each admitted query is charged as one plain Gaussian-mechanism
//!   release at the configured `query_sigma`
//!   ([`privim_dp::gaussian_rdp`]), composed on the accountant's α grid;
//! * [`TenantLedger::admit`] converts the *post-query* Rényi curve to
//!   `(ε, δ)` and refuses — before any work happens — when the tenant's
//!   ε would exceed the budget. The server maps a refusal to `429 Too
//!   Many Requests` plus a `Retry-After` header;
//! * the per-tenant query counts are the whole mutable state, so the
//!   ledger persists exactly in the bundle format (version 2) and the ε
//!   spend is recomputed — bit-identically — on load: the RDP charge is
//!   linear in the count.
//!
//! Because Gaussian RDP is linear in the release count and the
//! RDP→(ε, δ) conversion is monotone in γ, ε(count) is non-decreasing:
//! once a tenant is exhausted it stays exhausted. Requests with no
//! tenant header are *unmetered* — the ledger governs tenants that
//! asked to be metered (multi-tenant deployments inject the header at
//! the gateway); a bundle without a ledger section serves everyone
//! unmetered, which keeps version-1 bundles working.

use privim_dp::RdpAccountant;
use privim_rt::json::Value;
use privim_rt::{PrivimError, PrivimResult};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Budget policy shared by every tenant of one serving process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LedgerConfig {
    /// Per-tenant ε budget; admission stops when a tenant's spend would
    /// exceed it.
    pub epsilon_budget: f64,
    /// The δ the ε spend is converted at.
    pub delta: f64,
    /// Noise multiplier of the per-query Gaussian release being metered.
    pub query_sigma: f64,
    /// Advisory `Retry-After` (seconds) attached to `429` responses.
    /// Budgets do not regenerate; this tells clients when to re-check
    /// (e.g. after an operator re-packs the bundle with a larger budget).
    pub retry_after_secs: u64,
}

impl LedgerConfig {
    /// Validate the policy; every field that could make the accountant
    /// panic or the arithmetic meaningless is a typed error here.
    pub fn validate(&self) -> PrivimResult<()> {
        if !(self.epsilon_budget.is_finite() && self.epsilon_budget > 0.0) {
            return Err(PrivimError::invalid("ledger epsilon_budget must be finite and > 0"));
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return Err(PrivimError::invalid("ledger delta must be in (0, 1)"));
        }
        if !(self.query_sigma.is_finite() && self.query_sigma > 0.0) {
            return Err(PrivimError::invalid("ledger query_sigma must be finite and > 0"));
        }
        Ok(())
    }
}

/// The persistable ledger state: policy + per-tenant admitted-query
/// counts. This is what rides in a version-2 bundle.
#[derive(Clone, Debug, PartialEq)]
pub struct LedgerState {
    /// Budget policy.
    pub config: LedgerConfig,
    /// Admitted queries per tenant id.
    pub tenants: BTreeMap<String, u64>,
}

impl LedgerState {
    /// A fresh state with no tenants recorded.
    pub fn new(config: LedgerConfig) -> LedgerState {
        LedgerState {
            config,
            tenants: BTreeMap::new(),
        }
    }

    /// JSON payload section (`BTreeMap` keeps tenant order canonical, so
    /// packing is deterministic).
    pub fn to_json(&self) -> Value {
        let tenants: Vec<(String, Value)> = self
            .tenants
            .iter()
            .map(|(t, &q)| (t.clone(), Value::Num(q as f64)))
            .collect();
        Value::obj(vec![
            ("epsilon_budget", Value::Num(self.config.epsilon_budget)),
            ("delta", Value::Num(self.config.delta)),
            ("query_sigma", Value::Num(self.config.query_sigma)),
            (
                "retry_after_secs",
                Value::Num(self.config.retry_after_secs as f64),
            ),
            ("tenants", Value::Obj(tenants)),
        ])
    }

    /// Parse and validate a ledger section.
    pub fn from_json(v: &Value) -> PrivimResult<LedgerState> {
        let bad = |msg: &str| PrivimError::Parse(format!("bundle ledger: {msg}"));
        let num = |key: &str| v.get(key).and_then(|x| x.as_f64());
        let config = LedgerConfig {
            epsilon_budget: num("epsilon_budget").ok_or_else(|| bad("missing epsilon_budget"))?,
            delta: num("delta").ok_or_else(|| bad("missing delta"))?,
            query_sigma: num("query_sigma").ok_or_else(|| bad("missing query_sigma"))?,
            retry_after_secs: v
                .get("retry_after_secs")
                .and_then(|x| x.as_u64())
                .ok_or_else(|| bad("missing retry_after_secs"))?,
        };
        config.validate()?;
        let mut tenants = BTreeMap::new();
        let Some(Value::Obj(fields)) = v.get("tenants") else {
            return Err(bad("missing tenants object"));
        };
        for (tenant, count) in fields {
            let q = count
                .as_u64()
                .ok_or_else(|| bad("tenant query count is not a non-negative integer"))?;
            if tenant.is_empty() {
                return Err(bad("empty tenant id"));
            }
            tenants.insert(tenant.clone(), q);
        }
        Ok(LedgerState { config, tenants })
    }
}

/// Outcome of one admission decision.
#[derive(Clone, Debug, PartialEq)]
pub enum Admission {
    /// The query was admitted and charged.
    Granted {
        /// Admitted queries for this tenant, this one included.
        queries: u64,
        /// ε spent after this query.
        epsilon_spent: f64,
        /// Budget left (`epsilon_budget − epsilon_spent`).
        epsilon_remaining: f64,
    },
    /// Admitting the query would exceed the budget; nothing was charged.
    Exhausted {
        /// Admitted queries so far (unchanged by this decision).
        queries: u64,
        /// ε spent so far.
        epsilon_spent: f64,
        /// Advisory retry delay for the `Retry-After` header.
        retry_after_secs: u64,
    },
}

/// The live, thread-safe ledger a running server consults on every
/// metered request.
pub struct TenantLedger {
    config: LedgerConfig,
    tenants: Mutex<BTreeMap<String, u64>>,
    admitted_total: AtomicU64,
    denied_total: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // privim-lint: allow(panic, reason = "a poisoned ledger lock means a worker already panicked; serving past a possibly-torn budget record would be a privacy bug")
    m.lock().unwrap()
}

impl TenantLedger {
    /// Build a live ledger from persisted (or fresh) state.
    pub fn new(state: LedgerState) -> PrivimResult<TenantLedger> {
        state.config.validate()?;
        Ok(TenantLedger {
            config: state.config,
            tenants: Mutex::new(state.tenants),
            admitted_total: AtomicU64::new(0),
            denied_total: AtomicU64::new(0),
        })
    }

    /// The budget policy.
    pub fn config(&self) -> &LedgerConfig {
        &self.config
    }

    /// ε spent by `queries` admitted queries: `queries` Gaussian releases
    /// at `query_sigma` composed in RDP, converted at the ledger's δ.
    /// Deterministic in `queries` alone, which is why persisting counts
    /// (not floats) round-trips the spend bit-exactly.
    pub fn epsilon_spent(&self, queries: u64) -> f64 {
        if queries == 0 {
            return 0.0;
        }
        let mut acc = RdpAccountant::new(self.config.delta);
        acc.record_gaussian_releases(self.config.query_sigma, queries);
        acc.epsilon()
    }

    /// Decide (and, when granted, charge) one query for `tenant`. The
    /// check-then-charge is atomic under the tenant map lock, so
    /// concurrent requests can never jointly overspend.
    pub fn admit(&self, tenant: &str) -> Admission {
        let mut tenants = lock(&self.tenants);
        let queries = tenants.get(tenant).copied().unwrap_or(0);
        let spent_next = self.epsilon_spent(queries + 1);
        if spent_next > self.config.epsilon_budget {
            self.denied_total.fetch_add(1, Ordering::Relaxed);
            return Admission::Exhausted {
                queries,
                epsilon_spent: self.epsilon_spent(queries),
                retry_after_secs: self.config.retry_after_secs,
            };
        }
        tenants.insert(tenant.to_string(), queries + 1);
        drop(tenants);
        self.admitted_total.fetch_add(1, Ordering::Relaxed);
        Admission::Granted {
            queries: queries + 1,
            epsilon_spent: spent_next,
            epsilon_remaining: self.config.epsilon_budget - spent_next,
        }
    }

    /// Point-in-time view for `/metrics`:
    /// `(tenant, queries, ε spent, ε remaining)` per tenant, in canonical
    /// (sorted) tenant order.
    pub fn snapshot(&self) -> Vec<(String, u64, f64, f64)> {
        let tenants = lock(&self.tenants);
        tenants
            .iter()
            .map(|(t, &q)| {
                let spent = self.epsilon_spent(q);
                (
                    t.clone(),
                    q,
                    spent,
                    (self.config.epsilon_budget - spent).max(0.0),
                )
            })
            .collect()
    }

    /// The persistable state (for re-packing a bundle after serving).
    pub fn state(&self) -> LedgerState {
        LedgerState {
            config: self.config,
            tenants: lock(&self.tenants).clone(),
        }
    }

    /// Queries admitted since this process loaded the ledger.
    pub fn admitted_total(&self) -> u64 {
        self.admitted_total.load(Ordering::Relaxed)
    }

    /// Queries denied since this process loaded the ledger.
    pub fn denied_total(&self) -> u64 {
        self.denied_total.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight_config() -> LedgerConfig {
        // σ=8 admits a handful of queries under ε=1 before exhausting
        // (ε(1) ≈ 0.48, and spend grows with every query).
        LedgerConfig {
            epsilon_budget: 1.0,
            delta: 1e-5,
            query_sigma: 8.0,
            retry_after_secs: 60,
        }
    }

    #[test]
    fn spend_is_zero_at_zero_and_strictly_monotone() {
        let ledger = TenantLedger::new(LedgerState::new(tight_config())).unwrap();
        assert_eq!(ledger.epsilon_spent(0), 0.0);
        let mut prev = 0.0;
        for q in 1..40u64 {
            let spent = ledger.epsilon_spent(q);
            assert!(spent > prev, "ε must grow with the query count: q={q}");
            prev = spent;
        }
    }

    #[test]
    fn admission_charges_until_exhaustion_then_refuses_forever() {
        let ledger = TenantLedger::new(LedgerState::new(tight_config())).unwrap();
        let mut granted = 0u64;
        loop {
            match ledger.admit("acme") {
                Admission::Granted {
                    queries,
                    epsilon_spent,
                    epsilon_remaining,
                } => {
                    granted += 1;
                    assert_eq!(queries, granted);
                    assert!(epsilon_spent <= 1.0);
                    assert!(epsilon_remaining >= 0.0);
                    assert!(granted < 10_000, "tight budget must exhaust");
                }
                Admission::Exhausted {
                    queries,
                    epsilon_spent,
                    retry_after_secs,
                } => {
                    assert!(granted >= 1, "σ=8 must admit at least one query under ε=1");
                    assert_eq!(queries, granted);
                    assert!(epsilon_spent <= 1.0);
                    assert_eq!(retry_after_secs, 60);
                    break;
                }
            }
        }
        // Exhaustion is permanent and uncharged: counts do not move.
        for _ in 0..3 {
            match ledger.admit("acme") {
                Admission::Exhausted { queries, .. } => assert_eq!(queries, granted),
                other => panic!("expected Exhausted, got {other:?}"),
            }
        }
        assert_eq!(ledger.admitted_total(), granted);
        assert_eq!(ledger.denied_total(), 4);
        // Other tenants have their own budget.
        assert!(matches!(ledger.admit("other"), Admission::Granted { queries: 1, .. }));
    }

    #[test]
    fn concurrent_admissions_never_overspend() {
        let ledger =
            std::sync::Arc::new(TenantLedger::new(LedgerState::new(tight_config())).unwrap());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let ledger = std::sync::Arc::clone(&ledger);
                std::thread::spawn(move || {
                    let mut granted = 0u64;
                    for _ in 0..200 {
                        if matches!(ledger.admit("shared"), Admission::Granted { .. }) {
                            granted += 1;
                        }
                    }
                    granted
                })
            })
            .collect();
        let total: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
        let state = ledger.state();
        assert_eq!(state.tenants.get("shared").copied(), Some(total));
        assert!(ledger.epsilon_spent(total) <= ledger.config().epsilon_budget);
        assert!(ledger.epsilon_spent(total + 1) > ledger.config().epsilon_budget);
    }

    #[test]
    fn state_round_trips_through_json_bit_exactly() {
        let ledger = TenantLedger::new(LedgerState::new(tight_config())).unwrap();
        for _ in 0..3 {
            ledger.admit("a");
        }
        ledger.admit("b");
        let state = ledger.state();
        let json = state.to_json().to_json_string();
        let back = LedgerState::from_json(&Value::parse(&json).unwrap()).unwrap();
        assert_eq!(back, state);
        // The recomputed spend is bit-identical because only counts persist.
        let reloaded = TenantLedger::new(back).unwrap();
        for q in [1u64, 3, 4] {
            assert_eq!(
                reloaded.epsilon_spent(q).to_bits(),
                ledger.epsilon_spent(q).to_bits()
            );
        }
    }

    #[test]
    fn invalid_configs_and_sections_are_typed_errors() {
        for cfg in [
            LedgerConfig { epsilon_budget: 0.0, ..tight_config() },
            LedgerConfig { epsilon_budget: f64::INFINITY, ..tight_config() },
            LedgerConfig { delta: 0.0, ..tight_config() },
            LedgerConfig { delta: 1.0, ..tight_config() },
            LedgerConfig { query_sigma: 0.0, ..tight_config() },
            LedgerConfig { query_sigma: f64::NAN, ..tight_config() },
        ] {
            assert!(cfg.validate().is_err(), "{cfg:?}");
            assert!(TenantLedger::new(LedgerState::new(cfg)).is_err());
        }
        for bad in [
            "{}",
            "{\"epsilon_budget\":1,\"delta\":1e-5,\"query_sigma\":1,\"retry_after_secs\":9}",
            "{\"epsilon_budget\":1,\"delta\":1e-5,\"query_sigma\":1,\"retry_after_secs\":9,\"tenants\":3}",
            "{\"epsilon_budget\":1,\"delta\":1e-5,\"query_sigma\":1,\"retry_after_secs\":9,\"tenants\":{\"a\":-2}}",
            "{\"epsilon_budget\":1,\"delta\":1e-5,\"query_sigma\":1,\"retry_after_secs\":9,\"tenants\":{\"\":1}}",
        ] {
            let v = Value::parse(bad).unwrap();
            assert!(LedgerState::from_json(&v).is_err(), "{bad}");
        }
    }
}
